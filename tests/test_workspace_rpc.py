"""The JSON-RPC serving front end (`p4bid serve`).

Drives `WorkspaceServer.handle_line` directly -- the same code path the
stdio and TCP transports use -- and checks both the protocol plumbing
(framing, error codes, notifications) and that served answers match the
one-shot pipeline.
"""

from __future__ import annotations

import io
import json

from repro.synth import sharded_dataflow_program
from repro.tool.pipeline import check_source
from repro.workspace.rpc import (
    INVALID_PARAMS,
    INVALID_REQUEST,
    METHOD_NOT_FOUND,
    PARSE_ERROR,
    WORKSPACE_ERROR,
    WorkspaceServer,
    serve_stdio,
)

SECURE = sharded_dataflow_program(2, depth=3)
# Make shard0 leak: annotate its last sink field low while the seed is high.
LEAKY = SECURE.replace("bit<8> s2;\n}", "<bit<8>, low> s2;\n}", 1)


def call(server: WorkspaceServer, method: str, params=None, request_id=1):
    """One request/response round trip, decoded."""
    request = {"jsonrpc": "2.0", "id": request_id, "method": method}
    if params is not None:
        request["params"] = params
    line = server.handle_line(json.dumps(request))
    assert line is not None
    response = json.loads(line)
    assert response["jsonrpc"] == "2.0"
    assert response["id"] == request_id
    return response


def result_of(server: WorkspaceServer, method: str, params=None):
    response = call(server, method, params)
    assert "error" not in response, response
    return response["result"]


class TestProtocol:
    def test_ping(self):
        server = WorkspaceServer()
        result = result_of(server, "ping", {"hello": "world"})
        assert result == {"pong": True, "echo": {"hello": "world"}}

    def test_blank_lines_are_ignored(self):
        server = WorkspaceServer()
        assert server.handle_line("") is None
        assert server.handle_line("   \n") is None

    def test_malformed_json_is_parse_error(self):
        server = WorkspaceServer()
        response = json.loads(server.handle_line("{not json"))
        assert response["error"]["code"] == PARSE_ERROR
        assert response["id"] is None

    def test_non_object_request_is_invalid(self):
        server = WorkspaceServer()
        response = json.loads(server.handle_line("[1, 2, 3]"))
        assert response["error"]["code"] == INVALID_REQUEST

    def test_missing_method_is_invalid(self):
        server = WorkspaceServer()
        response = json.loads(server.handle_line(json.dumps({"id": 7})))
        assert response["error"]["code"] == INVALID_REQUEST
        assert response["id"] == 7

    def test_unknown_method(self):
        response = call(WorkspaceServer(), "frobnicate")
        assert response["error"]["code"] == METHOD_NOT_FOUND

    def test_non_object_params(self):
        server = WorkspaceServer()
        line = json.dumps(
            {"jsonrpc": "2.0", "id": 3, "method": "open", "params": [1]}
        )
        response = json.loads(server.handle_line(line))
        assert response["error"]["code"] == INVALID_PARAMS

    def test_missing_required_param(self):
        response = call(WorkspaceServer(), "open", {})
        assert response["error"]["code"] == INVALID_PARAMS

    def test_workspace_errors_map_to_application_code(self):
        server = WorkspaceServer()
        result_of(server, "open", {"source": SECURE})
        response = call(server, "pin", {"slot": "no-such-slot", "label": "high"})
        assert response["error"]["code"] == WORKSPACE_ERROR

    def test_notifications_get_no_response(self):
        server = WorkspaceServer()
        line = json.dumps({"jsonrpc": "2.0", "method": "open", "params": {"source": SECURE}})
        assert server.handle_line(line) is None
        # The notification still took effect.
        assert result_of(server, "stats")["parsed"] is True

    def test_shutdown_stops_the_session(self):
        server = WorkspaceServer()
        assert result_of(server, "shutdown") == {"ok": True}
        assert server.running is False

    def test_error_responses_echo_the_request_id(self):
        """Every error kind (except parse errors, where no id is
        recoverable) must carry the caller's id -- including string ids --
        so concurrent clients can correlate failures."""
        server = WorkspaceServer()
        for request_id in (42, "req-abc"):
            for method, params, code in (
                ("frobnicate", None, METHOD_NOT_FOUND),
                ("open", {}, INVALID_PARAMS),
                ("pin", {"slot": "s", "label": "high"}, WORKSPACE_ERROR),
                ("policy.decide", {"request": 0}, WORKSPACE_ERROR),
            ):
                response = call(server, method, params, request_id=request_id)
                assert response["error"]["code"] == code, (method, response)
                assert response["id"] == request_id

    def test_parse_error_has_null_id(self):
        server = WorkspaceServer()
        response = json.loads(server.handle_line('{"id": 9, "method": '))
        assert response["error"]["code"] == PARSE_ERROR
        assert response["id"] is None

    def test_failing_notifications_still_report_the_error(self):
        # A notification (no id) that cannot be dispatched gets an error
        # response with a null id, so the failure is never swallowed.
        server = WorkspaceServer()
        line = json.dumps({"jsonrpc": "2.0", "method": "frobnicate"})
        response = json.loads(server.handle_line(line))
        assert response["error"]["code"] == METHOD_NOT_FOUND
        assert response["id"] is None


class TestPolicyMethods:
    def open_session(self, server, **params):
        defaults = {
            "lattice": "policy-mini",
            "subjects": 6,
            "datasets": 8,
            "events": 60,
            "revoke_every": 20,
            "seed": 0,
        }
        defaults.update(params)
        return result_of(server, "policy.open", defaults)

    def test_methods_require_an_open_session(self):
        server = WorkspaceServer()
        for method, params in (
            ("policy.decide", {"request": 0}),
            ("policy.explain", {"request": 0}),
            ("policy.grant", {"subject": "s0", "label": "bot"}),
            ("policy.replay", {}),
            ("policy.stats", {}),
        ):
            response = call(server, method, params)
            assert response["error"]["code"] == WORKSPACE_ERROR
            assert "policy.open" in response["error"]["message"]

    def test_open_reports_engine_stats(self):
        server = WorkspaceServer()
        opened = self.open_session(server)
        assert opened["opened"] is True
        assert opened["events"] == 60
        assert opened["lattice"] == "policy-mini"
        assert opened["backend"] == "packed"
        assert opened["subjects"] == 6 and opened["datasets"] == 8

    def test_open_rejects_non_policy_lattice_and_bad_sizes(self):
        server = WorkspaceServer()
        response = call(server, "policy.open", {"lattice": "two-point"})
        assert response["error"]["code"] == INVALID_PARAMS
        response = call(server, "policy.open", {"lattice": "no-such"})
        assert response["error"]["code"] == WORKSPACE_ERROR
        response = call(server, "policy.open", {"subjects": "many"})
        assert response["error"]["code"] == INVALID_PARAMS
        response = call(server, "policy.open", {"backend": "quantum"})
        assert response["error"]["code"] == INVALID_PARAMS
        response = call(server, "policy.open", {"subjects": 0})
        assert response["error"]["code"] == WORKSPACE_ERROR

    def test_decide_by_stream_uid_and_adhoc(self):
        server = WorkspaceServer()
        self.open_session(server)
        by_uid = result_of(server, "policy.decide", {"request": 1})
        assert by_uid["request"] == 1
        assert isinstance(by_uid["permit"], bool)
        assert set(by_uid) == {
            "request", "kind", "dataset", "permit", "demand", "bound", "backend",
        }
        adhoc = result_of(
            server,
            "policy.decide",
            {
                "dataset": "raw0",
                "purpose": "analytics",
                "recipient": "store",
                "retention": "t0",
            },
        )
        assert adhoc["kind"] == "adhoc"
        assert adhoc["request"] == 60  # uids continue after the stream
        # Unknown labels are an application error, not a crash.
        response = call(
            server,
            "policy.decide",
            {
                "dataset": "raw0",
                "purpose": "nope",
                "recipient": "store",
                "retention": "t0",
            },
        )
        assert response["error"]["code"] == WORKSPACE_ERROR

    def test_decide_rejects_bad_request_params(self):
        server = WorkspaceServer()
        self.open_session(server)
        response = call(server, "policy.decide", {"request": "one"})
        assert response["error"]["code"] == INVALID_PARAMS
        response = call(server, "policy.decide", {"request": 10_000})
        assert response["error"]["code"] == INVALID_PARAMS
        response = call(server, "policy.decide", {"dataset": "raw0"})
        assert response["error"]["code"] == INVALID_PARAMS

    def test_grant_then_decide_flips_to_deny(self):
        server = WorkspaceServer()
        self.open_session(server)
        params = {
            "dataset": "raw0",
            "purpose": "analytics",
            "recipient": "store",
            "retention": "t0",
        }
        before = result_of(server, "policy.decide", dict(params))
        granted = result_of(
            server, "policy.grant", {"subject": "s0", "label": "bot"}
        )
        assert granted["subject"] == "s0"
        assert "raw0" in granted["recompiled_datasets"]
        after = result_of(server, "policy.decide", dict(params))
        assert after["permit"] is False
        assert before["bound"] != after["bound"]
        # Unparseable labels are invalid params.
        response = call(
            server, "policy.grant", {"subject": "s0", "label": "???"}
        )
        assert response["error"]["code"] == INVALID_PARAMS
        response = call(
            server, "policy.grant", {"subject": "ghost", "label": "bot"}
        )
        assert response["error"]["code"] == WORKSPACE_ERROR

    def test_explain_deny_carries_witnesses(self):
        server = WorkspaceServer()
        self.open_session(server)
        result_of(server, "policy.grant", {"subject": "s0", "label": "bot"})
        explained = result_of(
            server,
            "policy.explain",
            {
                "dataset": "raw0",
                "purpose": "analytics",
                "recipient": "store",
                "retention": "t0",
            },
        )
        assert explained["decision"]["permit"] is False
        assert explained["violated_subjects"] == ["s0"]
        assert explained["witnesses"]
        assert all(
            isinstance(line, str)
            for witness in explained["witnesses"]
            for line in witness
        )

    def test_replay_returns_report_and_optional_log(self):
        server = WorkspaceServer()
        self.open_session(server)
        payload = result_of(server, "policy.replay", {"limit": 30, "log": True})
        assert payload["events"] == 30
        assert payload["decisions"] + payload["revocations"] == 30
        assert len(payload["log"]) == payload["decisions"]
        assert payload["checks_per_sec"] > 0
        assert set(payload["latency_us"]) == {"mean", "p50", "p95", "p99", "max"}
        response = call(server, "policy.replay", {"limit": 0})
        assert response["error"]["code"] == INVALID_PARAMS

    def test_stats_accumulate(self):
        server = WorkspaceServer()
        self.open_session(server)
        result_of(server, "policy.decide", {"request": 1})
        result_of(server, "policy.replay", {"limit": 10})
        stats = result_of(server, "policy.stats", {})
        assert stats["events"] == 60
        assert stats["decisions"] >= 11
        assert stats["permits"] + stats["denies"] == stats["decisions"]

    def test_policy_session_is_independent_of_workspace(self):
        server = WorkspaceServer()
        self.open_session(server)
        result_of(server, "open", {"source": SECURE, "filename": "<input>"})
        assert result_of(server, "infer")["ok"] is True
        assert result_of(server, "policy.stats", {})["events"] == 60


class TestServedAnswers:
    def test_open_check_matches_one_shot_pipeline(self):
        server = WorkspaceServer()
        opened = result_of(server, "open", {"source": LEAKY, "filename": "<input>"})
        assert opened == {"parsed": True, "revision": 1, "parse_error": None}
        served = result_of(server, "check", {"infer": True, "lint": True})
        report = check_source(LEAKY, infer=True, lint=True, filename="<input>")
        from repro.tool.report import report_to_dict

        expected = report_to_dict(report)
        # Wall-clock timing is the one legitimately nondeterministic field.
        for payload in (served, expected):
            payload.get("inference", {}).get("solver", {}).pop("solve_ms", None)
        for key in ("ok", "diagnostics", "inference", "analysis"):
            assert served.get(key) == expected.get(key)

    def test_edit_then_infer_matches_cold(self):
        server = WorkspaceServer()
        result_of(server, "open", {"source": SECURE, "filename": "<input>"})
        result_of(server, "check", {"infer": True})
        edited = result_of(server, "edit", {"source": LEAKY})
        assert edited["revision"] == 2
        served = result_of(server, "infer")
        cold = check_source(LEAKY, infer=True, filename="<input>").inference_result
        lattice = server.workspace.lattice
        assert served["ok"] == cold.ok
        assert served["assignment"] == {
            site.hint: lattice.format_label(site.label) for site in cold.inferred
        }
        assert served["diagnostics"] == [str(x) for x in cold.diagnostics]
        # The edit was served warm: shard1 was never re-walked.
        regen = result_of(server, "stats")["regen"]
        assert regen["units_reused"] > 0

    def test_unsat_core_and_witnesses(self):
        server = WorkspaceServer()
        result_of(server, "open", {"source": LEAKY, "filename": "<input>"})
        cores = result_of(server, "unsat_core")["cores"]
        assert cores and all(core["core"] for core in cores)
        witnesses = result_of(server, "witnesses")["witnesses"]
        assert witnesses and all(isinstance(w, str) for w in witnesses)

    def test_pin_round_trip(self):
        server = WorkspaceServer()
        result_of(server, "open", {"source": SECURE, "filename": "<input>"})
        baseline = result_of(server, "infer")["assignment"]
        slot = sorted(baseline)[0]
        pins = result_of(server, "pin", {"slot": slot, "label": "high"})["pins"]
        assert pins == {slot: "high"}
        assert result_of(server, "infer")["assignment"][slot] == "high"
        pins = result_of(server, "pin", {"slot": slot, "label": None})["pins"]
        assert pins == {}
        assert result_of(server, "infer")["assignment"] == baseline

    def test_save_and_load(self, tmp_path):
        path = str(tmp_path / "served.p4bidws")
        server = WorkspaceServer()
        result_of(server, "open", {"source": LEAKY, "filename": "<input>"})
        before = result_of(server, "infer")
        saved = result_of(server, "save", {"path": path})
        assert saved["saved"] == path

        fresh = WorkspaceServer()
        loaded = result_of(fresh, "load", {"path": path})
        assert loaded["revision"] == 1
        assert result_of(fresh, "infer") == before

    def test_lint_findings_serialised(self):
        server = WorkspaceServer()
        result_of(server, "open", {"source": SECURE, "filename": "<input>"})
        findings = result_of(server, "lint")["findings"]
        for finding in findings:
            assert set(finding) == {"code", "severity", "message", "span"}


class TestStdioTransport:
    def test_request_response_loop(self):
        lines = [
            json.dumps({"jsonrpc": "2.0", "id": 1, "method": "open",
                        "params": {"source": SECURE, "filename": "<input>"}}),
            json.dumps({"jsonrpc": "2.0", "id": 2, "method": "infer"}),
            json.dumps({"jsonrpc": "2.0", "id": 3, "method": "shutdown"}),
            json.dumps({"jsonrpc": "2.0", "id": 4, "method": "ping"}),
        ]
        stdin = io.StringIO("\n".join(lines) + "\n")
        stdout = io.StringIO()
        assert serve_stdio(stdin=stdin, stdout=stdout) == 0
        responses = [json.loads(l) for l in stdout.getvalue().splitlines()]
        # The loop stops at shutdown; the trailing ping is never served.
        assert [r["id"] for r in responses] == [1, 2, 3]
        assert responses[0]["result"]["parsed"] is True
        assert responses[1]["result"]["ok"] is True
        assert responses[2]["result"] == {"ok": True}
