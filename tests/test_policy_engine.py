"""The policy model and decision engine: semantics, parity, witnesses."""

import pytest

import repro.policy.engine as engine_module
from repro.lattice import get_lattice, mini_policy_lattice
from repro.policy import (
    Dataset,
    PolicyEngine,
    PolicyError,
    PolicyUniverse,
    Request,
    SubjectGrant,
)
from repro.synth import policy_traffic, scenario_universe
from repro.telemetry import TraceRecorder, use_recorder


def small_universe():
    lattice = mini_policy_lattice()
    grants = [
        SubjectGrant("alice", lattice.label(["analytics"], ["store"], "t1")),
        SubjectGrant("bob", lattice.label(["analytics", "ads"], ["store"], "t2")),
        SubjectGrant("carol", lattice.label(["ads"], ["partner", "store"], "t0")),
    ]
    datasets = [
        Dataset("clicks", subjects=frozenset({"alice"})),
        Dataset("views", subjects=frozenset({"bob"})),
        Dataset("joined", parents=("clicks", "views")),
        Dataset("enriched", subjects=frozenset({"carol"}), parents=("joined",)),
    ]
    return PolicyUniverse(lattice, grants, datasets)


# ---------------------------------------------------------------------------
# universe semantics


def test_lineage_closure_is_transitive():
    universe = small_universe()
    assert universe.contributing_subjects("clicks") == ("alice",)
    assert universe.contributing_subjects("joined") == ("alice", "bob")
    assert universe.contributing_subjects("enriched") == ("alice", "bob", "carol")


def test_effective_bound_is_meet_of_grants():
    universe = small_universe()
    lattice = universe.lattice
    # joined = alice ⊓ bob = {analytics}|{store}|t1
    assert universe.effective_bound("joined") == lattice.label(
        ["analytics"], ["store"], "t1"
    )
    # enriched additionally meets carol: purposes {analytics}∩{ads} = {}, t0
    assert universe.effective_bound("enriched") == lattice.label([], ["store"], "t0")


def test_universe_validation():
    lattice = mini_policy_lattice()
    with pytest.raises(PolicyError, match="unknown subject"):
        PolicyUniverse(lattice, [], [Dataset("d", subjects=frozenset({"ghost"}))])
    with pytest.raises(PolicyError, match="unknown dataset"):
        PolicyUniverse(lattice, [], [Dataset("d", parents=("missing",))])
    with pytest.raises(PolicyError, match="cyclic"):
        PolicyUniverse(
            lattice,
            [],
            [Dataset("a", parents=("b",)), Dataset("b", parents=("a",))],
        )
    with pytest.raises(PolicyError, match="duplicate"):
        PolicyUniverse(
            lattice,
            [
                SubjectGrant("s", lattice.bottom),
                SubjectGrant("s", lattice.top),
            ],
            [],
        )


# ---------------------------------------------------------------------------
# decisions


def decide_brute_force(universe, request):
    """The spec: demand ⊑ meet of grants over the lineage closure."""
    return universe.lattice.leq(
        universe.demand(request), universe.effective_bound(request.dataset)
    )


def test_decide_matches_brute_force_on_both_backends():
    for backend in ("packed", "graph"):
        universe = small_universe()
        engine = PolicyEngine(universe, backend=backend)
        assert engine.backend == backend
        uid = 0
        lattice = universe.lattice
        for dataset in universe.datasets:
            for purpose in lattice.purposes:
                for recipient in lattice.recipients:
                    for retention in lattice.retention_classes:
                        request = Request(uid, dataset, purpose, recipient, retention)
                        uid += 1
                        decision = engine.decide(request)
                        assert decision.permit == decide_brute_force(
                            universe, request
                        ), request.describe()


def test_decide_rejects_unknown_names():
    for backend in ("packed", "graph"):
        engine = PolicyEngine(small_universe(), backend=backend)
        with pytest.raises(PolicyError):
            engine.decide(Request(0, "nope", "analytics", "store", "t0"))
        with pytest.raises(PolicyError):
            engine.decide(Request(1, "clicks", "nope", "store", "t0"))


def test_backend_parity_on_generated_scenarios():
    lattice = get_lattice("policy-mini")
    for seed in (0, 1, 7):
        decisions = {}
        for backend in ("packed", "graph"):
            universe = scenario_universe(lattice, subjects=8, datasets=10, seed=seed)
            engine = PolicyEngine(universe, backend=backend)
            stream = policy_traffic(universe, events=300, revoke_every=50, seed=seed)
            log = []
            for event in stream:
                if event.regrant is not None:
                    engine.set_grant(*event.regrant)
                    continue
                decision = engine.decide(event.request)
                log.append((event.uid, decision.permit, str(decision.demand)))
            decisions[backend] = log
        assert decisions["packed"] == decisions["graph"]


def test_revocation_tightens_bounds_monotonically():
    universe = small_universe()
    engine = PolicyEngine(universe)
    request = Request(0, "joined", "analytics", "store", "t0")
    assert engine.decide(request).permit
    # Alice revokes analytics: the joined dataset's bound must shrink.
    affected = engine.set_grant(
        "alice", universe.lattice.label([], ["store"], "t1")
    )
    assert "joined" in affected and "clicks" in affected
    assert not engine.decide(request).permit
    # Re-granting restores the permit.
    engine.set_grant("alice", universe.lattice.label(["analytics"], ["store"], "t1"))
    assert engine.decide(request).permit


def test_graph_fallback_when_codec_unavailable(monkeypatch):
    monkeypatch.setattr(engine_module, "codec_for", lambda lattice: None)
    recorder = TraceRecorder()
    with use_recorder(recorder):
        engine = PolicyEngine(small_universe(), backend="packed")
    assert engine.backend == "graph"
    assert engine.fallback_reason
    assert recorder.counters.get("policy.fallbacks") == 1
    # Decisions still work (and still match the spec).
    request = Request(0, "clicks", "analytics", "store", "t0")
    assert engine.decide(request).permit == decide_brute_force(
        engine.universe, request
    )


# ---------------------------------------------------------------------------
# explanations


def test_explain_permit_is_empty():
    engine = PolicyEngine(small_universe())
    explanation = engine.explain(Request(0, "clicks", "analytics", "store", "t0"))
    assert explanation.decision.permit
    assert explanation.witnesses == ()
    assert explanation.violated_subjects == ()


def test_explain_deny_names_the_violated_consent():
    engine = PolicyEngine(small_universe())
    # carol never consented to analytics, so enriched denies it.
    request = Request(0, "enriched", "analytics", "store", "t0")
    explanation = engine.explain(request)
    assert not explanation.decision.permit
    assert explanation.witnesses
    assert "carol" in explanation.violated_subjects
    text = explanation.describe(engine)
    assert "DENY" in text and "leak path" in text


def test_explain_deny_walks_derivation_lineage():
    engine = PolicyEngine(small_universe())
    # Denied only because of grants on ancestors: the witness chain must
    # cross the derivation hops to reach them.
    request = Request(0, "enriched", "analytics", "partner", "t2")
    explanation = engine.explain(request)
    assert not explanation.decision.permit
    lattice = engine.universe.lattice
    rendered = "\n".join(w.describe(lattice) for w in explanation.witnesses)
    assert "derived from" in rendered
    # Witnesses are ranked shortest-first.
    lengths = [w.length for w in explanation.witnesses]
    assert lengths == sorted(lengths)


# ---------------------------------------------------------------------------
# audits and stats


def test_audit_is_deterministic_across_backends_and_workers():
    universe = small_universe()
    engine = PolicyEngine(universe)
    requests = [
        Request(uid, dataset, purpose, "store", "t0")
        for uid, (dataset, purpose) in enumerate(
            (d, p) for d in universe.datasets for p in universe.lattice.purposes
        )
    ]
    outcomes = []
    for backend, workers in (("graph", 1), ("packed", 1), ("packed", 2)):
        solution = engine.audit(requests, backend=backend, workers=workers)
        outcomes.append(
            [
                (str(c.constraint.lhs.describe()), str(c.constraint.rhs.describe()))
                for c in solution.conflicts
            ]
        )
    assert outcomes[0] == outcomes[1] == outcomes[2]


def test_stats_and_telemetry_counters():
    recorder = TraceRecorder()
    with use_recorder(recorder):
        engine = PolicyEngine(small_universe())
        engine.decide(Request(0, "clicks", "analytics", "store", "t0"))
        engine.decide(Request(1, "clicks", "ads", "partner", "t2"))
        engine.set_grant("alice", engine.universe.lattice.bottom)
    stats = engine.stats()
    assert stats["decisions"] == 2
    assert stats["permits"] == 1 and stats["denies"] == 1
    assert stats["revocations"] == 1
    assert recorder.counters["policy.decisions"] == 2
    assert recorder.counters["policy.permits"] == 1
    assert recorder.counters["policy.denies"] == 1
    assert recorder.counters["policy.revocations"] == 1
    assert recorder.spans_named("policy.compile")
    assert recorder.spans_named("policy.regrant")
    assert "policy.decide_us" in recorder.histograms
