"""Unit tests for the ordinary (label-free) Core P4 type checker."""

import pytest

from repro.frontend.parser import parse_program
from repro.typechecker import check_core_types
from repro.typechecker.errors import CoreTypeError


def check(source):
    return check_core_types(parse_program(source))


def diagnostics(source):
    return [str(d) for d in check(source).diagnostics]


HEADER_PRELUDE = """
header h_t { bit<8> small; bit<32> big; bool flag; }
struct headers { h_t h; }
"""


def in_control(body: str, locals_: str = "") -> str:
    return (
        HEADER_PRELUDE
        + "control C(inout headers hdr) {\n"
        + locals_
        + "\n  apply {\n"
        + body
        + "\n  }\n}"
    )


class TestWellTypedPrograms:
    def test_minimal(self, minimal_source):
        assert check(minimal_source).ok

    def test_assignment_same_width(self):
        assert check(in_control("hdr.h.small = 8w3;")).ok

    def test_int_literal_fits_any_bit_width(self):
        assert check(in_control("hdr.h.big = 123456;")).ok

    def test_arithmetic(self):
        assert check(in_control("hdr.h.big = hdr.h.big + 1;")).ok

    def test_boolean_condition(self):
        assert check(in_control("if (hdr.h.flag) { hdr.h.small = 1; }")).ok

    def test_comparison_condition(self):
        assert check(in_control("if (hdr.h.small == 3) { hdr.h.small = 1; }")).ok

    def test_local_variable(self):
        assert check(in_control("bit<8> t = hdr.h.small; hdr.h.small = t;")).ok

    def test_typedef_resolution(self):
        source = (
            "typedef bit<48> mac_t;\n"
            "header e_t { mac_t addr; }\n"
            "struct headers { e_t e; }\n"
            "control C(inout headers hdr) { apply { hdr.e.addr = 1; } }"
        )
        assert check(source).ok

    def test_action_and_table(self):
        locals_ = """
  action set_small(bit<8> v) { hdr.h.small = v; }
  action nop() { }
  table t { key = { hdr.h.big: exact; } actions = { set_small; nop; } }
"""
        assert check(in_control("t.apply();", locals_)).ok

    def test_function_with_return(self):
        locals_ = """
  function bit<8> bump(in bit<8> v) { return v + 1; }
"""
        assert check(in_control("hdr.h.small = bump(hdr.h.small);", locals_)).ok

    def test_exit_statement(self):
        assert check(in_control("exit;")).ok

    def test_header_stacks(self):
        source = (
            "header lane_t { bit<8> v; }\n"
            "struct headers { lane_t[4] lanes; bit<32> idx; }\n"
            "control C(inout headers hdr) { apply { hdr.lanes[2].v = 7; } }"
        )
        assert check(source).ok


class TestTypeErrors:
    def test_unknown_variable(self):
        result = check(in_control("ghost = 1;"))
        assert not result.ok
        assert any("unknown variable" in str(d) for d in result.diagnostics)

    def test_unknown_field(self):
        assert any("no field" in d for d in diagnostics(in_control("hdr.h.missing = 1;")))

    def test_width_mismatch(self):
        bad = in_control("hdr.h.small = hdr.h.big;")
        assert any("T-Assign" in d for d in diagnostics(bad))

    def test_bool_assigned_number(self):
        assert not check(in_control("hdr.h.flag = 3;")).ok

    def test_condition_must_be_bool(self):
        assert any(
            "expected bool" in d
            for d in diagnostics(in_control("if (hdr.h.small) { hdr.h.small = 1; }"))
        )

    def test_arithmetic_on_bool(self):
        assert not check(in_control("hdr.h.small = hdr.h.flag + 1;")).ok

    def test_mixed_width_arithmetic(self):
        assert not check(in_control("hdr.h.big = hdr.h.big + hdr.h.small;")).ok

    def test_unknown_type_name(self):
        source = (
            "struct headers { mystery_t m; }\n"
            "control C(inout headers hdr) { apply { hdr.m = 1; } }"
        )
        assert any("unknown type name" in d for d in diagnostics(source))

    def test_unknown_action_in_table(self):
        locals_ = "  table t { key = { hdr.h.small: exact; } actions = { ghost; } }\n"
        assert any("undeclared action" in d for d in diagnostics(in_control("t.apply();", locals_)))

    def test_unknown_match_kind(self):
        locals_ = (
            "  action nop() { }\n"
            "  table t { key = { hdr.h.small: sorted; } actions = { nop; } }\n"
        )
        assert any("unknown match kind" in d for d in diagnostics(in_control("t.apply();", locals_)))

    def test_call_wrong_argument_type(self):
        locals_ = "  action set_flag(bool v) { hdr.h.flag = v; }\n"
        assert not check(in_control("set_flag(3);", locals_)).ok

    def test_call_too_many_arguments(self):
        locals_ = "  action nop() { }\n"
        assert not check(in_control("nop(1);", locals_)).ok

    def test_inout_argument_must_be_lvalue(self):
        locals_ = "  action bump(inout bit<8> v) { v = v + 1; }\n"
        assert not check(in_control("bump(3);", locals_)).ok

    def test_inout_argument_lvalue_ok(self):
        locals_ = "  action bump(inout bit<8> v) { v = v + 1; }\n"
        assert check(in_control("bump(hdr.h.small);", locals_)).ok

    def test_return_outside_function(self):
        assert any(
            "outside of a function" in d for d in diagnostics(in_control("return 1;"))
        )

    def test_return_type_mismatch(self):
        locals_ = "  function bit<8> f(in bit<8> v) { return hdr.h.flag; }\n"
        assert not check(in_control("hdr.h.small = f(1);", locals_)).ok

    def test_assignment_to_literal_rejected_by_parser_or_checker(self):
        # `1 = x;` parses as an assignment whose target is read-only
        result = check(in_control("hdr.h.small = 1;") )
        assert result.ok  # sanity: the valid direction works

    def test_table_applied_as_expression(self):
        locals_ = (
            "  action nop() { }\n"
            "  table t { key = { hdr.h.small: exact; } actions = { nop; } }\n"
        )
        bad = in_control("hdr.h.small = t();", locals_)
        assert not check(bad).ok

    def test_var_init_type_mismatch(self):
        assert not check(in_control("bit<8> t = hdr.h.flag;")).ok

    def test_indexing_non_array(self):
        assert not check(in_control("hdr.h.small = hdr.h.big[0];")).ok

    def test_multiple_errors_reported(self):
        bad = in_control("ghost1 = 1; ghost2 = 2; hdr.h.missing = 3;")
        assert len(check(bad).diagnostics) >= 3

    def test_raise_on_error(self):
        with pytest.raises(CoreTypeError):
            check(in_control("ghost = 1;")).raise_on_error()

    def test_raise_on_error_passthrough(self, minimal_source):
        result = check(minimal_source)
        assert result.raise_on_error() is result


class TestCaseStudiesCoreTyping:
    def test_all_variants_core_typecheck(self, case_study):
        for source in (
            case_study.secure_source,
            case_study.insecure_source,
            case_study.unannotated_source,
        ):
            result = check(source)
            assert result.ok, [str(d) for d in result.diagnostics]
