"""Unit and property tests for the value-level operator semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.semantics.errors import EvaluationError
from repro.semantics.operators import eval_binary, eval_unary
from repro.semantics.values import BoolValue, IntValue


class TestArithmetic:
    def test_addition(self):
        assert eval_binary("+", IntValue(3, 8), IntValue(4, 8)) == IntValue(7, 8)

    def test_addition_wraps(self):
        assert eval_binary("+", IntValue(255, 8), IntValue(1, 8)) == IntValue(0, 8)

    def test_subtraction_wraps(self):
        assert eval_binary("-", IntValue(0, 8), IntValue(1, 8)) == IntValue(255, 8)

    def test_multiplication(self):
        assert eval_binary("*", IntValue(20, 16), IntValue(10, 16)).value == 200

    def test_division_by_zero_is_zero(self):
        assert eval_binary("/", IntValue(9, 8), IntValue(0, 8)).value == 0
        assert eval_binary("%", IntValue(9, 8), IntValue(0, 8)).value == 0

    def test_width_propagates_from_either_side(self):
        assert eval_binary("+", IntValue(1, 8), IntValue(1, None)).width == 8
        assert eval_binary("+", IntValue(1, None), IntValue(1, 8)).width == 8

    def test_bitwise(self):
        assert eval_binary("&", IntValue(0b1100, 8), IntValue(0b1010, 8)).value == 0b1000
        assert eval_binary("|", IntValue(0b1100, 8), IntValue(0b1010, 8)).value == 0b1110
        assert eval_binary("^", IntValue(0b1100, 8), IntValue(0b1010, 8)).value == 0b0110

    def test_shifts(self):
        assert eval_binary("<<", IntValue(1, 8), IntValue(3, 8)).value == 8
        assert eval_binary(">>", IntValue(8, 8), IntValue(2, 8)).value == 2


class TestComparisonsAndBooleans:
    def test_comparisons(self):
        assert eval_binary("<", IntValue(1, 8), IntValue(2, 8)) == BoolValue(True)
        assert eval_binary(">=", IntValue(2, 8), IntValue(2, 8)) == BoolValue(True)
        assert eval_binary("==", IntValue(3, 8), IntValue(4, 8)) == BoolValue(False)
        assert eval_binary("!=", IntValue(3, 8), IntValue(4, 8)) == BoolValue(True)

    def test_bool_equality(self):
        assert eval_binary("==", BoolValue(True), BoolValue(True)) == BoolValue(True)

    def test_logical_connectives(self):
        assert eval_binary("&&", BoolValue(True), BoolValue(False)) == BoolValue(False)
        assert eval_binary("||", BoolValue(True), BoolValue(False)) == BoolValue(True)

    def test_logical_on_numbers_rejected(self):
        with pytest.raises(EvaluationError):
            eval_binary("&&", IntValue(1, 8), IntValue(1, 8))

    def test_unknown_operator(self):
        with pytest.raises(EvaluationError):
            eval_binary("**", IntValue(1, 8), IntValue(1, 8))


class TestUnary:
    def test_negation(self):
        assert eval_unary("!", BoolValue(True)) == BoolValue(False)

    def test_negation_needs_bool(self):
        with pytest.raises(EvaluationError):
            eval_unary("!", IntValue(1, 8))

    def test_arithmetic_minus_wraps(self):
        assert eval_unary("-", IntValue(1, 8)).value == 255

    def test_bitwise_not(self):
        assert eval_unary("~", IntValue(0, 8)).value == 255

    def test_unknown(self):
        with pytest.raises(EvaluationError):
            eval_unary("?", IntValue(1, 8))


bits8 = st.integers(min_value=0, max_value=255)


class TestProperties:
    @given(bits8, bits8)
    @settings(max_examples=200)
    def test_determinism(self, a, b):
        """E(⊕, v1, v2) is a function: equal inputs give equal outputs."""
        for op in ("+", "-", "*", "&", "|", "^", "==", "<"):
            first = eval_binary(op, IntValue(a, 8), IntValue(b, 8))
            second = eval_binary(op, IntValue(a, 8), IntValue(b, 8))
            assert first == second

    @given(bits8, bits8)
    @settings(max_examples=200)
    def test_results_stay_in_range(self, a, b):
        for op in ("+", "-", "*", "&", "|", "^", "<<", ">>"):
            result = eval_binary(op, IntValue(a, 8), IntValue(b, 8))
            assert 0 <= result.value <= 255

    @given(bits8, bits8)
    @settings(max_examples=200)
    def test_addition_commutes(self, a, b):
        assert eval_binary("+", IntValue(a, 8), IntValue(b, 8)) == eval_binary(
            "+", IntValue(b, 8), IntValue(a, 8)
        )

    @given(bits8)
    @settings(max_examples=100)
    def test_double_negation(self, a):
        assert eval_unary("~", eval_unary("~", IntValue(a, 8))).value == a
