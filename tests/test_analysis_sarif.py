"""Shape tests for the SARIF 2.1.0 serialisation and the CLI surface.

No JSON-schema validator ships in the environment, so these tests pin the
required SARIF structure by hand: ``version``, ``runs[].tool.driver``
(name, version, rules with metadata), and ``results[]`` whose physical
locations carry 1-based regions with both start and end positions.  The
CLI tests exercise ``p4bid --lint --sarif FILE`` end to end, including
the parse-error and core-type-error mappings.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    ALL_RULES,
    finding_from_parse_error,
    findings_from_core,
    findings_from_diagnostics,
    run_lints,
    sarif_document,
    sarif_json,
)
from repro.frontend.parser import parse_program
from repro.ifc.errors import IfcDiagnostic, ViolationKind
from repro.lattice.registry import get_lattice
from repro.syntax.source import Position, SourceSpan
from repro.tool.cli import main as cli_main
from repro.typechecker.errors import TypeDiagnostic
from repro.version import __version__

LEAKY = """\
header h_t {
    <bit<8>, high> secret;
    <bit<8>, low> pub;
}

control C(inout h_t hdr) {
    bit<8> scratch = hdr.secret;
    apply {
        hdr.pub = hdr.secret;
    }
}
"""


def _lint_findings(source: str):
    lattice = get_lattice("two-point")
    return run_lints(parse_program(source), lattice)


class TestSarifShape:
    def test_document_skeleton(self):
        doc = sarif_document([("leaky.p4", _lint_findings(LEAKY))])
        assert doc["version"] == "2.1.0"
        assert doc["$schema"].endswith("sarif-2.1.0.json")
        assert len(doc["runs"]) == 1
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == "p4bid"
        assert driver["version"] == __version__
        assert driver["informationUri"].startswith("https://")

    def test_rules_carry_full_metadata(self):
        doc = sarif_document([])
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == [rule.code for rule in ALL_RULES]
        for rule in rules:
            assert rule["name"]
            assert rule["shortDescription"]["text"]
            assert rule["fullDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in (
                "note",
                "warning",
                "error",
            )

    def test_results_reference_rules_by_index(self):
        doc = sarif_document([("leaky.p4", _lint_findings(LEAKY))])
        run = doc["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        assert run["results"], "the leaky program must produce findings"
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]
            assert result["level"] in ("note", "warning", "error")
            assert result["message"]["text"]

    def test_regions_are_one_based_with_ends(self):
        doc = sarif_document([("leaky.p4", _lint_findings(LEAKY))])
        for result in doc["runs"][0]["results"]:
            for location in result["locations"]:
                physical = location["physicalLocation"]
                assert physical["artifactLocation"]["uri"] == "leaky.p4"
                region = physical["region"]
                assert region["startLine"] >= 1
                assert region["startColumn"] >= 1
                assert region["endLine"] >= region["startLine"]
                assert (
                    region["endLine"] > region["startLine"]
                    or region["endColumn"] >= region["startColumn"]
                )

    def test_unknown_spans_pin_to_first_character(self):
        diag = IfcDiagnostic(
            ViolationKind.EXPLICIT_FLOW, "synthesised", SourceSpan.unknown(), "rule"
        )
        doc = sarif_document([("x.p4", findings_from_diagnostics([diag]))])
        region = doc["runs"][0]["results"][0]["locations"][0]["physicalLocation"][
            "region"
        ]
        assert region == {
            "startLine": 1,
            "startColumn": 1,
            "endLine": 1,
            "endColumn": 1,
        }

    def test_diagnostic_mappings(self):
        span = SourceSpan(Position(3, 1), Position(3, 9), "x.p4")
        ifc = findings_from_diagnostics(
            [IfcDiagnostic(ViolationKind.IMPLICIT_FLOW, "implicit", span, "if-t")]
        )
        assert [f.code for f in ifc] == ["P4B102"]
        core = findings_from_core([TypeDiagnostic("bad width", span, "t-assign")])
        assert [f.code for f in core] == ["P4B110"]
        parse = finding_from_parse_error("unexpected token", "x.p4")
        assert parse.code == "P4B100"
        assert parse.span.filename == "x.p4"

    def test_json_round_trips(self):
        text = sarif_json([("leaky.p4", _lint_findings(LEAKY))])
        assert json.loads(text)["version"] == "2.1.0"

    def test_artifacts_listed_per_file(self):
        doc = sarif_document([("a.p4", []), ("b.p4", [])])
        uris = [
            entry["location"]["uri"] for entry in doc["runs"][0]["artifacts"]
        ]
        assert uris == ["a.p4", "b.p4"]


class TestCliSarif:
    def _write(self, tmp_path, name, source):
        path = tmp_path / name
        path.write_text(source, encoding="utf-8")
        return path

    def test_lint_sarif_end_to_end(self, tmp_path, capsys):
        program = self._write(tmp_path, "leaky.p4", LEAKY)
        out = tmp_path / "report.sarif"
        code = cli_main(
            [str(program), "--lint", "--infer", "--sarif", str(out)]
        )
        assert code == 1
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["version"] == "2.1.0"
        results = doc["runs"][0]["results"]
        codes = {r["ruleId"] for r in results}
        assert "P4B004" in codes, "the dead scratch slot must be reported"
        assert any(c.startswith("P4B10") for c in codes), (
            "the leak itself must be reported as an error result"
        )
        for result in results:
            uri = result["locations"][0]["physicalLocation"]["artifactLocation"][
                "uri"
            ]
            assert uri == str(program)
        text = capsys.readouterr().out
        assert "lint finding(s)" in text

    def test_parse_error_becomes_sarif_result(self, tmp_path, capsys):
        program = self._write(tmp_path, "broken.p4", "header h_t {")
        out = tmp_path / "report.sarif"
        code = cli_main([str(program), "--sarif", str(out)])
        assert code == 1
        doc = json.loads(out.read_text(encoding="utf-8"))
        results = doc["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["P4B100"]
        assert results[0]["level"] == "error"
        capsys.readouterr()

    def test_sarif_collects_multiple_files(self, tmp_path, capsys):
        clean = self._write(
            tmp_path,
            "clean.p4",
            LEAKY.replace("hdr.pub = hdr.secret;", "hdr.pub = hdr.pub;").replace(
                "bit<8> scratch = hdr.secret;", ""
            ),
        )
        leaky = self._write(tmp_path, "leaky.p4", LEAKY)
        out = tmp_path / "both.sarif"
        code = cli_main([str(clean), str(leaky), "--lint", "--sarif", str(out)])
        assert code == 1
        doc = json.loads(out.read_text(encoding="utf-8"))
        uris = [e["location"]["uri"] for e in doc["runs"][0]["artifacts"]]
        assert uris == [str(clean), str(leaky)]
        result_uris = {
            r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
            for r in doc["runs"][0]["results"]
        }
        assert result_uris == {str(leaky)}
        capsys.readouterr()

    def test_explain_flows_implies_allow_declassify(self, tmp_path, capsys):
        source = LEAKY.replace(
            "hdr.pub = hdr.secret;", "hdr.pub = declassify(hdr.secret);"
        ).replace("bit<8> scratch = hdr.secret;", "")
        program = self._write(tmp_path, "release.p4", source)
        code = cli_main([str(program), "--explain-flows", "--lint"])
        assert code == 0
        text = capsys.readouterr().out
        assert "released flow(s)" in text
        assert "leak path" in text

    def test_presolve_requires_infer(self, tmp_path):
        program = self._write(tmp_path, "p.p4", LEAKY)
        with pytest.raises(SystemExit):
            cli_main([str(program), "--presolve"])

    def test_lint_conflicts_with_core_only(self, tmp_path):
        program = self._write(tmp_path, "p.p4", LEAKY)
        with pytest.raises(SystemExit):
            cli_main([str(program), "--lint", "--core-only"])
