"""Smoke tests: every example script runs to completion against the public API."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_module(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_exist():
    assert len(EXAMPLE_FILES) >= 3


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    module = load_module(path)
    assert hasattr(module, "main"), f"{path.name} must expose a main() function"
    module.main()
    output = capsys.readouterr().out
    assert output.strip(), f"{path.name} should print something"


def test_quickstart_reports_the_leak(capsys):
    module = load_module(EXAMPLES_DIR / "quickstart.py")
    module.main()
    output = capsys.readouterr().out
    assert "explicit-flow" in output
    assert "OK" in output
