"""IFC typing of declarations (Figure 7): actions/functions (pc_fn
inference), tables (pc_tbl and the key/action constraint), arguments."""

from repro.frontend.parser import parse_program
from repro.ifc import ViolationKind, check_ifc
from repro.lattice.two_point import HIGH, LOW

PRELUDE = """
header h_t {
    <bit<8>, low>  pub;
    <bit<8>, low>  pub2;
    <bit<8>, high> sec;
    <bit<8>, high> sec2;
    <bool, high>   sec_flag;
}
struct headers { h_t h; }
"""


def ifc(locals_: str, body: str = ""):
    source = (
        PRELUDE
        + "control C(inout headers hdr) {\n"
        + locals_
        + "\n  apply {\n"
        + body
        + "\n  }\n}"
    )
    return check_ifc(parse_program(source))


def kinds(result):
    return [diag.kind for diag in result.diagnostics]


class TestFunctionWriteBounds:
    def test_low_writer_has_low_bound(self):
        result = ifc("  action f() { hdr.h.pub = 1; }")
        assert result.ok
        assert result.function_bounds["f"] == LOW

    def test_high_writer_has_high_bound(self):
        result = ifc("  action f() { hdr.h.sec = 1; }")
        assert result.function_bounds["f"] == HIGH

    def test_mixed_writer_has_low_bound(self):
        result = ifc("  action f() { hdr.h.sec = 1; hdr.h.pub = 2; }")
        assert result.function_bounds["f"] == LOW

    def test_no_writes_means_top_bound(self):
        result = ifc("  action f() { }")
        assert result.function_bounds["f"] == HIGH

    def test_exit_forces_bottom_bound(self):
        result = ifc("  action f() { exit; }")
        assert result.function_bounds["f"] == LOW

    def test_nested_call_propagates_bound(self):
        result = ifc(
            "  action inner() { hdr.h.pub = 1; }\n"
            "  action outer() { inner(); hdr.h.sec = 2; }"
        )
        assert result.function_bounds["outer"] == LOW

    def test_write_to_inout_param_counts(self):
        result = ifc("  action f(inout <bit<8>, high> x) { x = 1; }")
        assert result.function_bounds["f"] == HIGH

    def test_leak_inside_body_reported_once(self):
        result = ifc("  action f() { hdr.h.pub = hdr.h.sec; }")
        assert kinds(result) == [ViolationKind.EXPLICIT_FLOW]

    def test_implicit_leak_inside_body(self):
        result = ifc("  action f() { if (hdr.h.sec_flag) { hdr.h.pub = 1; } }")
        assert kinds(result) == [ViolationKind.IMPLICIT_FLOW]


class TestFunctionArguments:
    def test_in_argument_may_be_relabelled_upwards(self):
        locals_ = "  action f(in <bit<8>, high> v) { hdr.h.sec = v; }"
        assert ifc(locals_, "f(hdr.h.pub);").ok

    def test_in_argument_must_not_exceed_parameter(self):
        locals_ = "  action f(in <bit<8>, low> v) { hdr.h.pub = v; }"
        result = ifc(locals_, "f(hdr.h.sec);")
        assert ViolationKind.ARGUMENT_FLOW in kinds(result)

    def test_inout_argument_requires_equal_labels(self):
        locals_ = "  action bump(inout <bit<8>, high> v) { v = v + 1; }"
        result = ifc(locals_, "bump(hdr.h.pub);")
        assert ViolationKind.ARGUMENT_FLOW in kinds(result)

    def test_inout_argument_with_matching_label(self):
        locals_ = "  action bump(inout <bit<8>, high> v) { v = v + 1; }"
        assert ifc(locals_, "bump(hdr.h.sec);").ok

    def test_inout_high_label_on_low_param_rejected(self):
        locals_ = "  action bump(inout <bit<8>, low> v) { v = v + 1; }"
        result = ifc(locals_, "bump(hdr.h.sec);")
        assert ViolationKind.ARGUMENT_FLOW in kinds(result)

    def test_return_value_label(self):
        locals_ = "  function <bit<8>, high> get() { return hdr.h.sec; }"
        assert ifc(locals_, "hdr.h.sec2 = get();").ok

    def test_high_return_into_low_rejected(self):
        locals_ = "  function <bit<8>, high> get() { return hdr.h.sec; }"
        result = ifc(locals_, "hdr.h.pub = get();")
        assert ViolationKind.EXPLICIT_FLOW in kinds(result)

    def test_high_value_returned_from_low_function_rejected(self):
        locals_ = "  function <bit<8>, low> get() { return hdr.h.sec; }"
        result = ifc(locals_)
        assert ViolationKind.EXPLICIT_FLOW in kinds(result)


class TestVarDeclarations:
    def test_control_level_high_local(self):
        result = ifc("  <bit<8>, high> failures = hdr.h.sec - hdr.h.pub;")
        assert result.ok

    def test_control_level_low_local_from_high_rejected(self):
        result = ifc("  <bit<8>, low> leak = hdr.h.sec;")
        assert kinds(result) == [ViolationKind.EXPLICIT_FLOW]

    def test_unknown_label_reported(self):
        result = ifc("  <bit<8>, medium> odd;")
        assert kinds(result) == [ViolationKind.LABEL_ERROR]


class TestTableDeclarations:
    def test_low_key_low_action(self):
        locals_ = """
  action set_pub() { hdr.h.pub = 1; }
  table t { key = { hdr.h.pub2: exact; } actions = { set_pub; } }
"""
        result = ifc(locals_, "t.apply();")
        assert result.ok
        assert result.table_bounds["t"] == LOW

    def test_high_key_low_action_rejected(self):
        locals_ = """
  action set_pub() { hdr.h.pub = 1; }
  table t { key = { hdr.h.sec: exact; } actions = { set_pub; } }
"""
        result = ifc(locals_, "t.apply();")
        assert ViolationKind.TABLE_KEY_FLOW in kinds(result)

    def test_high_key_high_action(self):
        locals_ = """
  action set_sec() { hdr.h.sec = 1; }
  table t { key = { hdr.h.sec2: exact; } actions = { set_sec; } }
"""
        result = ifc(locals_, "t.apply();")
        assert result.ok
        assert result.table_bounds["t"] == HIGH

    def test_bound_is_meet_over_actions(self):
        locals_ = """
  action set_sec() { hdr.h.sec = 1; }
  action set_pub() { hdr.h.pub = 1; }
  table t { key = { hdr.h.pub2: exact; } actions = { set_sec; set_pub; } }
"""
        result = ifc(locals_, "t.apply();")
        assert result.table_bounds["t"] == LOW

    def test_every_offending_key_action_pair_reported(self):
        locals_ = """
  action a1() { hdr.h.pub = 1; }
  action a2() { hdr.h.pub2 = 1; }
  table t { key = { hdr.h.sec: exact; hdr.h.sec2: exact; } actions = { a1; a2; } }
"""
        result = ifc(locals_, "t.apply();")
        violations = [k for k in kinds(result) if k is ViolationKind.TABLE_KEY_FLOW]
        assert len(violations) == 4  # 2 keys x 2 actions

    def test_declaration_time_argument_flow(self):
        locals_ = """
  <bit<8>, high> failures = hdr.h.sec;
  action prioritise(in <bit<8>, low> f) { hdr.h.pub = f; }
  table t { key = { hdr.h.pub2: exact; } actions = { prioritise(failures); } }
"""
        result = ifc(locals_, "t.apply();")
        assert ViolationKind.ARGUMENT_FLOW in kinds(result)

    def test_declaration_time_argument_matching(self):
        locals_ = """
  <bit<8>, high> failures = hdr.h.sec;
  action prioritise(in <bit<8>, high> f) { hdr.h.sec2 = f; }
  table t { key = { hdr.h.pub2: exact; } actions = { prioritise(failures); } }
"""
        assert ifc(locals_, "t.apply();").ok

    def test_keyless_table(self):
        locals_ = """
  action set_pub() { hdr.h.pub = 1; }
  table t { key = { } actions = { set_pub; } }
"""
        assert ifc(locals_, "t.apply();").ok

    def test_actionless_table_gets_top_bound(self):
        locals_ = "  table t { key = { hdr.h.sec: exact; } actions = { } }"
        result = ifc(locals_, "t.apply();")
        assert result.table_bounds["t"] == HIGH
        assert result.ok
