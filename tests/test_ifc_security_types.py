"""Unit tests for security types and their structural helpers."""

from repro.ifc.security_types import (
    SBit,
    SBool,
    SFunction,
    SHeader,
    SInt,
    SParam,
    SRecord,
    SStack,
    STable,
    SUnit,
    SecurityType,
    bodies_compatible,
    flow_allowed,
    join_into,
    labels_equal,
    read_label,
)
from repro.ifc.checker import write_label
from repro.lattice.two_point import HIGH, LOW, TwoPointLattice
from repro.lattice.diamond import ALICE, BOB, BOT, TOP, DiamondLattice

L = TwoPointLattice()
D = DiamondLattice()


def bit(label, width=8):
    return SecurityType(SBit(width), label)


def header(**fields):
    return SecurityType(SHeader(tuple(fields.items())), L.bottom)


def dheader(**fields):
    """A header whose outer label is the diamond lattice's bottom."""
    return SecurityType(SHeader(tuple(fields.items())), D.bottom)


class TestBodiesCompatible:
    def test_scalars(self):
        assert bodies_compatible(SBit(8), SBit(8))
        assert not bodies_compatible(SBit(8), SBit(16))
        assert bodies_compatible(SBit(8), SInt())
        assert bodies_compatible(SBool(), SBool())
        assert not bodies_compatible(SBool(), SBit(1))
        assert bodies_compatible(SUnit(), SUnit())

    def test_records_field_by_field(self):
        a = SRecord((("x", bit(LOW)), ("y", bit(HIGH))))
        b = SRecord((("x", bit(HIGH)), ("y", bit(LOW))))
        assert bodies_compatible(a, b)  # labels ignored, shapes match
        c = SRecord((("x", bit(LOW)),))
        assert not bodies_compatible(a, c)

    def test_header_vs_record_not_compatible(self):
        h = SHeader((("x", bit(LOW)),))
        r = SRecord((("x", bit(LOW)),))
        assert not bodies_compatible(h, r)

    def test_stacks(self):
        a = SStack(bit(LOW), 4)
        b = SStack(bit(HIGH), 4)
        c = SStack(bit(LOW), 5)
        assert bodies_compatible(a, b)
        assert not bodies_compatible(a, c)


class TestFlowAllowed:
    def test_scalar_upward_flow(self):
        assert flow_allowed(L, bit(LOW), bit(HIGH))
        assert not flow_allowed(L, bit(HIGH), bit(LOW))
        assert flow_allowed(L, bit(LOW), bit(LOW))

    def test_diamond_incomparable(self):
        assert not flow_allowed(D, bit(ALICE), bit(BOB))
        assert not flow_allowed(D, bit(BOB), bit(ALICE))
        assert flow_allowed(D, bit(ALICE), bit(TOP))
        assert flow_allowed(D, bit(BOT), bit(BOB))

    def test_composite_fieldwise(self):
        source = header(a=bit(LOW), b=bit(LOW))
        dest = header(a=bit(LOW), b=bit(HIGH))
        assert flow_allowed(L, source, dest)
        assert not flow_allowed(L, dest, source)

    def test_stack_elementwise(self):
        low_stack = SecurityType(SStack(bit(LOW), 3), LOW)
        high_stack = SecurityType(SStack(bit(HIGH), 3), LOW)
        assert flow_allowed(L, low_stack, high_stack)
        assert not flow_allowed(L, high_stack, low_stack)


class TestLabelsEqual:
    def test_equal_iff_both_directions(self):
        assert labels_equal(L, bit(HIGH), bit(HIGH))
        assert not labels_equal(L, bit(LOW), bit(HIGH))
        assert not labels_equal(L, bit(HIGH), bit(LOW))

    def test_composite_equality(self):
        a = header(x=bit(LOW), y=bit(HIGH))
        b = header(x=bit(LOW), y=bit(HIGH))
        c = header(x=bit(HIGH), y=bit(HIGH))
        assert labels_equal(L, a, b)
        assert not labels_equal(L, a, c)


class TestJoinInto:
    def test_scalar_join(self):
        raised = join_into(L, bit(LOW), HIGH)
        assert raised.label == HIGH

    def test_composite_pushes_into_fields(self):
        raised = join_into(D, dheader(x=bit(BOT), y=bit(BOB)), ALICE)
        assert raised.label == D.bottom  # outer label stays bottom (Fig. 4)
        fields = dict(raised.body.fields)
        assert fields["x"].label == ALICE
        assert fields["y"].label == TOP  # join(B, A) = top

    def test_stack_pushes_into_element(self):
        stack = SecurityType(SStack(bit(LOW), 2), LOW)
        raised = join_into(L, stack, HIGH)
        assert raised.body.element.label == HIGH


class TestReadAndWriteLabels:
    def test_read_label_scalar(self):
        assert read_label(L, bit(HIGH)) == HIGH

    def test_read_label_composite_is_join(self):
        assert read_label(L, header(x=bit(LOW), y=bit(HIGH))) == HIGH
        assert read_label(L, header(x=bit(LOW), y=bit(LOW))) == LOW
        assert read_label(D, dheader(x=bit(ALICE), y=bit(BOB))) == TOP

    def test_write_label_scalar(self):
        assert write_label(L, bit(HIGH)) == HIGH

    def test_write_label_composite_is_meet(self):
        assert write_label(L, header(x=bit(LOW), y=bit(HIGH))) == LOW
        assert write_label(D, header(x=bit(ALICE), y=bit(BOB))) == BOT

    def test_write_label_stack(self):
        assert write_label(L, SecurityType(SStack(bit(HIGH), 4), LOW)) == HIGH


class TestDescriptions:
    def test_describe_function(self):
        fn = SFunction(
            (SParam("in", bit(HIGH), "x"),), LOW, SecurityType(SUnit(), LOW)
        )
        text = fn.describe()
        assert "-->" in text and "low" in text

    def test_describe_table(self):
        assert "table(high)" in STable(HIGH).describe()

    def test_describe_security_type(self):
        assert bit(HIGH).describe() == "<bit<8>, high>"

    def test_with_label(self):
        assert bit(LOW).with_label(HIGH).label == HIGH

    def test_function_parameter_partition(self):
        fn = SFunction(
            (
                SParam("in", bit(LOW), "a", control_plane=False),
                SParam("in", bit(HIGH), "b", control_plane=True),
            ),
            LOW,
            SecurityType(SUnit(), LOW),
        )
        assert [p.name for p in fn.directional_parameters()] == ["a"]
        assert [p.name for p in fn.control_plane_parameters()] == ["b"]
