"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.casestudies import all_case_studies, get_case_study
from repro.frontend.parser import parse_program
from repro.lattice import DiamondLattice, TwoPointLattice
from repro.lattice.registry import get_lattice


@pytest.fixture
def two_point():
    return TwoPointLattice()


@pytest.fixture
def diamond():
    return DiamondLattice()


@pytest.fixture(scope="session")
def case_studies():
    """All case studies, constructed once per session."""
    return all_case_studies()


@pytest.fixture(params=["d2r", "app", "lattice", "topology", "cache", "netchain"])
def case_study(request):
    """Parametrised over every case study."""
    return get_case_study(request.param)


@pytest.fixture
def parse():
    """A helper that parses source text into a Program."""
    return parse_program


@pytest.fixture
def lattice_of():
    """A helper that resolves lattice names."""
    return get_lattice


MINIMAL_PROGRAM = """
header h_t { <bit<8>, low> a; <bit<8>, high> b; }
struct headers { h_t h; }
control Main(inout headers hdr) {
    apply {
        hdr.h.a = 1;
    }
}
"""


@pytest.fixture
def minimal_source():
    return MINIMAL_PROGRAM
