"""Tests for the P4BID pipeline, report rendering, and the CLI."""

import json

import pytest

from repro import check_source
from repro.casestudies import get_case_study
from repro.frontend.parser import parse_program
from repro.lattice import DiamondLattice
from repro.synth import deep_dataflow_program
from repro.tool.cli import build_arg_parser, main
from repro.tool.pipeline import check_program, check_source as pipeline_check_source
from repro.tool.report import format_report, report_to_dict, report_to_json


class TestPipeline:
    def test_package_level_reexport(self, minimal_source):
        assert check_source is pipeline_check_source or check_source(minimal_source).ok

    def test_ok_program(self, minimal_source):
        report = check_source(minimal_source, name="minimal")
        assert report.ok
        assert report.parsed
        assert report.core_ok
        assert report.name == "minimal"

    def test_parse_error_reported(self):
        report = check_source("control {", name="broken")
        assert not report.ok
        assert not report.parsed
        assert report.parse_error is not None
        assert report.diagnostics == []

    def test_include_ifc_false_skips_security_checks(self):
        case = get_case_study("cache")
        report = check_source(case.insecure_source, include_ifc=False)
        assert report.ok
        assert report.ifc_result is None
        assert report.timing.ifc_ms == 0.0

    def test_full_pipeline_times_all_phases(self):
        case = get_case_study("cache")
        report = check_source(case.secure_source)
        assert report.timing.parse_ms > 0
        assert report.timing.core_ms > 0
        assert report.timing.ifc_ms > 0
        assert report.timing.total_ms >= report.timing.ifc_ms

    def test_lattice_by_name(self):
        case = get_case_study("lattice")
        report = check_source(case.secure_source, "diamond")
        assert report.ok
        assert report.lattice_name == "diamond"

    def test_lattice_by_instance(self):
        case = get_case_study("lattice")
        report = check_source(case.secure_source, DiamondLattice())
        assert report.ok

    def test_check_program_entry_point(self, minimal_source):
        program = parse_program(minimal_source)
        report = check_program(program, name="from-ast")
        assert report.ok
        assert report.name == "from-ast"

    def test_diagnostics_merge_core_and_ifc(self):
        source = """
        header h_t { <bit<8>, high> sec; <bit<8>, low> pub; }
        struct headers { h_t h; }
        control C(inout headers hdr) {
            apply {
                hdr.h.pub = hdr.h.sec;
                ghost = 1;
            }
        }
        """
        report = check_source(source)
        assert report.core_diagnostics
        assert report.ifc_diagnostics
        assert len(report.diagnostics) == len(report.core_diagnostics) + len(
            report.ifc_diagnostics
        )


class TestReportRendering:
    def test_text_report_accepted(self, minimal_source):
        text = format_report(check_source(minimal_source))
        assert "OK" in text
        assert "timing" in text

    def test_text_report_rejected(self):
        case = get_case_study("topology")
        text = format_report(check_source(case.insecure_source))
        assert "REJECTED" in text
        assert "explicit-flow" in text

    def test_text_report_parse_error(self):
        text = format_report(check_source("control {"))
        assert "parse error" in text

    def test_verbose_report_shows_bounds(self):
        case = get_case_study("cache")
        text = format_report(check_source(case.secure_source), verbose=True)
        assert "pc_tbl" in text or "table bounds" in text

    def test_json_report(self):
        case = get_case_study("cache")
        payload = json.loads(report_to_json(check_source(case.insecure_source)))
        assert payload["ok"] is False
        assert payload["ifc_diagnostics"]
        assert payload["ifc_diagnostics"][0]["kind"] == "table-key-flow"
        assert "timing_ms" in payload

    def test_dict_report_round_trips_through_json(self, minimal_source):
        payload = report_to_dict(check_source(minimal_source))
        assert json.loads(json.dumps(payload)) == payload

    def test_solver_stats_threaded_through_report(self):
        report = check_source(deep_dataflow_program(8), infer=True)
        assert report.ok
        stats = report.inference_result.solution.stats
        assert stats is not None and stats.edge_count > 0
        # The solve portion of the infer phase is recorded separately.
        assert 0.0 < report.timing.solve_ms <= report.timing.infer_ms

        text = format_report(report, solver_stats=True)
        assert "solver statistics" in text
        assert "SCCs:" in text
        assert "solver statistics" not in format_report(report)

        payload = report_to_dict(report)
        assert payload["inference"]["solver"]["edges"] == stats.edge_count
        assert payload["inference"]["solver"]["sccs"] == stats.scc_count
        assert payload["timing_ms"]["solve"] == report.timing.solve_ms
        assert json.loads(json.dumps(payload)) == payload


class TestCli:
    def write(self, tmp_path, name, content):
        path = tmp_path / name
        path.write_text(content, encoding="utf-8")
        return str(path)

    def test_accept_exit_code(self, tmp_path, capsys, minimal_source):
        path = self.write(tmp_path, "ok.p4", minimal_source)
        assert main([path]) == 0
        assert "OK" in capsys.readouterr().out

    def test_reject_exit_code(self, tmp_path, capsys):
        case = get_case_study("topology")
        path = self.write(tmp_path, "bad.p4", case.insecure_source)
        assert main([path]) == 1
        assert "explicit-flow" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["/nonexistent/program.p4"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_core_only_flag(self, tmp_path, capsys):
        case = get_case_study("cache")
        path = self.write(tmp_path, "cache.p4", case.insecure_source)
        assert main(["--core-only", path]) == 0

    def test_lattice_flag(self, tmp_path, capsys):
        case = get_case_study("lattice")
        path = self.write(tmp_path, "iso.p4", case.secure_source)
        assert main(["--lattice", "diamond", path]) == 0

    def test_json_flag(self, tmp_path, capsys):
        path = self.write(tmp_path, "ok.p4", get_case_study("cache").secure_source)
        assert main(["--json", path]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True

    def test_multiple_files_any_failure_fails(self, tmp_path, capsys, minimal_source):
        good = self.write(tmp_path, "good.p4", minimal_source)
        bad = self.write(tmp_path, "bad.p4", get_case_study("cache").insecure_source)
        assert main([good, bad]) == 1

    def test_verbose_flag(self, tmp_path, capsys):
        path = self.write(tmp_path, "ok.p4", get_case_study("cache").secure_source)
        assert main(["--verbose", path]) == 0

    def test_arg_parser_defaults(self):
        args = build_arg_parser().parse_args(["x.p4"])
        assert args.lattice == "two-point"
        assert not args.core_only
        assert not args.json
        assert not args.solver_stats

    def test_solver_stats_flag(self, tmp_path, capsys):
        path = self.write(tmp_path, "deep.p4", deep_dataflow_program(6))
        assert main(["--infer", "--solver-stats", path]) == 0
        out = capsys.readouterr().out
        assert "solver statistics" in out
        assert "worklist pops" in out

    def test_solver_stats_requires_infer(self, tmp_path, capsys):
        path = self.write(tmp_path, "deep.p4", deep_dataflow_program(6))
        with pytest.raises(SystemExit):
            main(["--solver-stats", path])

    def test_packed_fallback_prints_a_notice(self, tmp_path, capsys, monkeypatch):
        """When the packed backend silently solves on the graph, the CLI
        must say so -- otherwise benchmark runs read graph numbers as
        packed numbers."""
        import repro.inference.packed as packed_module

        def refuse(graph):
            raise packed_module.CodecError("codec disabled for this test")

        monkeypatch.setattr(packed_module, "packed_system_for", refuse)
        path = self.write(tmp_path, "deep.p4", deep_dataflow_program(6))
        assert main(["--infer", "--backend", "packed", path]) == 0
        err = capsys.readouterr().err
        assert "packed backend fell back to graph" in err
        assert "codec disabled for this test" in err

    def test_packed_without_fallback_prints_no_notice(self, tmp_path, capsys):
        path = self.write(tmp_path, "deep.p4", deep_dataflow_program(6))
        assert main(["--infer", "--backend", "packed", path]) == 0
        assert "fell back" not in capsys.readouterr().err
