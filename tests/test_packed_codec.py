"""Round-trip and algebra tests for the packed backend's label codecs.

The packed solver is only as correct as the embedding of labels into
machine integers, so this suite pins the codec contract directly: for
every lattice with a codec, ``decode(encode(x)) == x`` and the object
lattice's ``leq`` / ``join`` / ``meet`` agree with subset-test / ``|`` /
``&`` on the encoded bits.  Powersets are exercised up to 64 principals
(sampled -- the carrier is 2^64), products and chains exhaustively, and
a non-distributive lattice (M3) is pinned to *reject* encoding so the
solver falls back to the object backend instead of computing wrong joins.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.inference import CodecError, codec_for, solve
from repro.inference.constraints import Constraint
from repro.inference.terms import ConstTerm, VarSupply, VarTerm
from repro.lattice.chain import ChainLattice
from repro.lattice.finite import FiniteLattice
from repro.lattice.powerset import PowersetLattice
from repro.lattice.product import ProductLattice
from repro.lattice.registry import available_lattices, get_lattice

LATTICE_NAMES = sorted(set(available_lattices()) | {"chain-3", "chain-5"})


def _m3():
    """The smallest non-distributive lattice: three incomparable atoms."""
    return FiniteLattice(
        ["bot", "a", "b", "c", "top"],
        [
            ("bot", "a"),
            ("bot", "b"),
            ("bot", "c"),
            ("a", "top"),
            ("b", "top"),
            ("c", "top"),
        ],
        name="m3",
    )


def _assert_codec_contract(lattice, codec, labels):
    """The full LabelCodec contract over the given label sample."""
    assert codec.encode(lattice.bottom) == 0
    for a in labels:
        bits = codec.encode(a)
        assert lattice.equal(codec.decode(bits), a), f"round-trip broke on {a!r}"
    for a in labels:
        for b in labels:
            ea, eb = codec.encode(a), codec.encode(b)
            assert lattice.leq(a, b) == (ea | eb == eb)
            assert lattice.equal(codec.decode(ea | eb), lattice.join(a, b))
            assert lattice.equal(codec.decode(ea & eb), lattice.meet(a, b))


# ---------------------------------------------------------------------------
# exhaustive checks on every registered (small) lattice


@pytest.mark.parametrize("name", LATTICE_NAMES)
def test_registered_lattices_satisfy_codec_contract(name):
    lattice = get_lattice(name)
    codec = codec_for(lattice)
    assert codec is not None, f"{name} should be encodable"
    _assert_codec_contract(lattice, codec, list(lattice.labels()))


# ---------------------------------------------------------------------------
# powersets up to 64 principals (sampled: the carrier is astronomically big)


@settings(max_examples=40, deadline=None)
@given(
    n_principals=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_powerset_codec_up_to_64_principals(n_principals, seed):
    lattice = PowersetLattice([f"p{i}" for i in range(n_principals)])
    codec = codec_for(lattice)
    assert codec is not None
    assert codec.width == n_principals
    rng = random.Random(seed)
    principals = [f"p{i}" for i in range(n_principals)]
    sample = [lattice.bottom, lattice.top] + [
        frozenset(rng.sample(principals, rng.randrange(0, n_principals + 1)))
        for _ in range(6)
    ]
    _assert_codec_contract(lattice, codec, sample)


def test_powerset_bits_follow_declaration_order():
    """Bit ``i`` is exactly the ``i``-th declared principal -- the property
    that makes the encoding PYTHONHASHSEED-independent."""
    lattice = PowersetLattice(["alice", "bob", "carol"])
    codec = codec_for(lattice)
    assert codec.encode(frozenset({"alice"})) == 0b001
    assert codec.encode(frozenset({"bob"})) == 0b010
    assert codec.encode(frozenset({"carol"})) == 0b100
    assert codec.encode(frozenset({"alice", "carol"})) == 0b101


# ---------------------------------------------------------------------------
# chains and products


@pytest.mark.parametrize("height", [2, 3, 5, 9])
def test_chain_codec_is_rank_unary(height):
    lattice = ChainLattice.of_height(height)
    codec = codec_for(lattice)
    assert codec is not None
    _assert_codec_contract(lattice, codec, list(lattice.labels()))
    for rank, label in enumerate(lattice.labels()):
        assert codec.encode(label) == (1 << rank) - 1


def test_product_codec_concatenates_components():
    lattice = ProductLattice(get_lattice("two-point"), ChainLattice.of_height(3))
    codec = codec_for(lattice)
    assert codec is not None
    _assert_codec_contract(lattice, codec, list(lattice.labels()))


def test_nested_product_codec():
    inner = ProductLattice(get_lattice("two-point"), get_lattice("diamond"))
    lattice = ProductLattice(inner, PowersetLattice(["x", "y"]))
    codec = codec_for(lattice)
    assert codec is not None
    _assert_codec_contract(lattice, codec, list(lattice.labels()))


def test_codec_rejects_foreign_bits():
    """Decoding bits outside the image raises instead of inventing labels."""
    codec = codec_for(ChainLattice.of_height(3))
    with pytest.raises(CodecError):
        codec.decode(0b101)  # not of the form 2^i - 1


# ---------------------------------------------------------------------------
# unencodable lattices fall back to the object backend


def test_non_distributive_lattice_has_no_codec():
    assert codec_for(_m3()) is None


def test_packed_solve_falls_back_on_unencodable_lattice():
    """``backend="packed"`` on M3 silently degrades to the graph backend
    and still returns the correct least solution."""
    lattice = _m3()
    supply = VarSupply()
    x, y = supply.fresh("x"), supply.fresh("y")
    constraints = [
        Constraint(ConstTerm("a"), VarTerm(x)),
        Constraint(VarTerm(x), VarTerm(y)),
        Constraint(ConstTerm("b"), VarTerm(y)),
    ]
    solution = solve(lattice, constraints, backend="packed")
    assert solution.ok
    assert solution.value_of(x) == "a"
    assert solution.value_of(y) == "top"
    assert solution.stats.backend == "graph"
    assert "m3" in solution.stats.fallback_reason


def test_packed_solve_uses_codec_when_available():
    lattice = get_lattice("diamond")
    supply = VarSupply()
    x = supply.fresh("x")
    solution = solve(
        lattice, [Constraint(ConstTerm("A"), VarTerm(x))], backend="packed"
    )
    assert solution.stats.backend == "packed"
    assert solution.stats.fallback_reason == ""
    assert solution.value_of(x) == "A"
