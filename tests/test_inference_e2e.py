"""End-to-end label inference over the Section 5 case studies.

The acceptance criteria of the inference subsystem:

* every case study, stripped of *all* security annotations, round-trips
  through ``infer → elaborate → check_ifc`` with zero diagnostics on its
  paper lattice;
* keeping only the header/struct annotations (the policy on the packet
  formats) and inferring everything else reconstructs an assignment the
  stock checker accepts for the secure variants, and produces inference
  conflicts -- pointing at source spans -- for the leaky variants;
* solved programs remain *empirically* non-interfering under the
  differential harness (cross-validation against Definition 4.2).
"""

from __future__ import annotations

import pytest

from repro.casestudies import all_case_studies, get_case_study
from repro.casestudies.base import strip_body_annotations, strip_security_annotations
from repro.frontend.parser import parse_program
from repro.ifc.checker import check_ifc
from repro.inference import infer_labels
from repro.lattice.registry import get_lattice
from repro.ni import check_non_interference
from repro.tool.cli import main as cli_main
from repro.tool.pipeline import check_source

CASE_NAMES = [case.name for case in all_case_studies()]


@pytest.fixture(params=CASE_NAMES)
def named_case(request):
    return get_case_study(request.param)


class TestStrippedRoundTrip:
    def test_fully_stripped_secure_variant_reinfers_and_rechecks(self, named_case):
        lattice = get_lattice(named_case.lattice_name)
        stripped = strip_security_annotations(named_case.secure_source)
        result = infer_labels(parse_program(stripped), lattice)
        assert result.ok, [str(d) for d in result.diagnostics]
        recheck = check_ifc(result.elaborated, lattice)
        assert recheck.ok, [str(d) for d in recheck.diagnostics]

    def test_header_annotations_alone_suffice_for_secure_variant(self, named_case):
        """Keep the packet-format policy, infer all the body labels."""
        lattice = get_lattice(named_case.lattice_name)
        partial = strip_body_annotations(named_case.secure_source)
        result = infer_labels(parse_program(partial), lattice)
        assert result.ok, [str(d) for d in result.diagnostics]
        recheck = check_ifc(result.elaborated, lattice)
        assert recheck.ok, [str(d) for d in recheck.diagnostics]

    def test_inference_runs_through_the_pipeline(self, named_case):
        lattice_name = named_case.lattice_name
        stripped = strip_security_annotations(named_case.secure_source)
        report = check_source(stripped, lattice_name, infer=True, name=named_case.name)
        assert report.ok, [str(d) for d in report.diagnostics]
        assert report.inference_result is not None
        assert report.timing.infer_ms > 0
        assert report.checked_program is report.inference_result.elaborated


class TestLeakyVariantsConflict:
    def test_annotated_insecure_variant_conflicts(self, named_case):
        """Inference over the annotated leaky variant reports conflicts whose
        kinds cover the violations the plain checker finds."""
        lattice = get_lattice(named_case.lattice_name)
        result = infer_labels(parse_program(named_case.insecure_source), lattice)
        assert not result.ok
        kinds = {diag.kind for diag in result.diagnostics}
        for expected in named_case.expected_violations:
            assert expected in kinds, (
                f"{named_case.name}: expected a {expected.value} conflict, saw "
                f"{[k.value for k in kinds]}"
            )

    def test_conflicts_point_at_source_spans(self, named_case):
        lattice = get_lattice(named_case.lattice_name)
        result = infer_labels(parse_program(named_case.insecure_source), lattice)
        assert result.diagnostics
        for diag in result.diagnostics:
            assert not diag.span.is_unknown(), str(diag)

    def test_body_stripped_insecure_d2r_blames_the_header_secret(self):
        """With only the header annotations kept, the conflict's core chains
        back to the declaration of the secret field."""
        case = get_case_study("d2r")
        partial = strip_body_annotations(case.insecure_source)
        result = infer_labels(parse_program(partial), get_lattice(case.lattice_name))
        assert not result.ok
        assert any("forced up at" in diag.message for diag in result.diagnostics)

    def test_pipeline_reports_conflicts_as_diagnostics(self):
        case = get_case_study("cache")
        report = check_source(case.insecure_source, case.lattice_name, infer=True)
        assert not report.ok
        assert report.inference_diagnostics
        assert report.ifc_result is None


class TestNICrossValidation:
    """Solved programs stay empirically non-interfering (Definition 4.2)."""

    @pytest.mark.parametrize("name", CASE_NAMES)
    def test_elaborated_secure_variant_holds(self, name):
        case = get_case_study(name)
        lattice = get_lattice(case.lattice_name)
        partial = strip_body_annotations(case.secure_source)
        result = infer_labels(parse_program(partial), lattice)
        assert result.ok
        control_name = case.control_names[0] if case.control_names else None
        level = (
            lattice.parse_label(case.ni_observation_level)
            if case.ni_observation_level is not None
            else None
        )
        ni = check_non_interference(
            result.elaborated,
            lattice,
            level=level,
            control_name=control_name,
            control_plane=case.control_plane(),
            trials=20,
            seed=7,
        )
        assert ni.holds, str(ni.counterexample)


class TestStripBodyAnnotations:
    def test_keeps_header_annotations(self):
        case = get_case_study("d2r")
        partial = strip_body_annotations(case.secure_source)
        assert "<bit<32>, high> num_hops" in partial
        assert "<bit<32>, low> tried" not in partial

    def test_comment_mentioning_control_does_not_move_the_anchor(self):
        source = (
            "// the ingress control pipeline\n"
            "header h_t { <bit<8>, high> s; }\n"
            "struct headers { h_t h; }\n"
            "control I(inout headers hdr) { <bit<8>, low> x; apply { } }\n"
        )
        partial = strip_body_annotations(source)
        assert "<bit<8>, high> s;" in partial  # header labels preserved
        assert "<bit<8>, low> x;" not in partial  # body labels stripped

    def test_program_without_controls_is_unchanged(self):
        source = "header h_t { <bit<8>, high> s; }\n"
        assert strip_body_annotations(source) == source

    def test_declarations_after_a_control_keep_their_labels(self):
        source = (
            "header a_t { <bit<8>, high> s; }\n"
            "struct headers { a_t a; }\n"
            "control One(inout headers hdr) { <bit<8>, low> x; apply { } }\n"
            "header b_t { <bit<8>, high> t; }\n"
            "control Two(inout headers hdr) { <bit<8>, low> y; apply { } }\n"
        )
        partial = strip_body_annotations(source)
        assert "<bit<8>, high> s;" in partial
        assert "<bit<8>, high> t;" in partial  # declared *after* control One
        assert "<bit<8>, low> x;" not in partial
        assert "<bit<8>, low> y;" not in partial


class TestCli:
    def test_infer_conflicts_with_core_only(self, tmp_path, capsys):
        path = tmp_path / "x.p4"
        path.write_text("header h_t { bit<8> a; }", encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--infer", "--core-only", str(path)])
        assert excinfo.value.code == 2

    def test_infer_flag_prints_assignment(self, tmp_path, capsys):
        case = get_case_study("d2r")
        path = tmp_path / "d2r_stripped.p4"
        path.write_text(strip_body_annotations(case.secure_source), encoding="utf-8")
        assert cli_main(["--infer", str(path)]) == 0
        out = capsys.readouterr().out
        assert "inferred security labels" in out
        assert "infer" in out.split("timing:")[1]

    def test_infer_flag_reports_conflicts(self, tmp_path, capsys):
        case = get_case_study("d2r")
        path = tmp_path / "d2r_leaky.p4"
        path.write_text(strip_body_annotations(case.insecure_source), encoding="utf-8")
        assert cli_main(["--infer", str(path)]) == 1
        out = capsys.readouterr().out
        assert "label-inference conflict" in out

    def test_json_report_includes_inference(self, tmp_path, capsys):
        import json

        case = get_case_study("cache")
        path = tmp_path / "cache_stripped.p4"
        path.write_text(strip_body_annotations(case.secure_source), encoding="utf-8")
        assert cli_main(["--infer", "--json", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["inference"]["ok"] is True
        assert payload["inference"]["labels"]
        assert payload["timing_ms"]["infer"] > 0
