"""Unit and property tests for the inference constraint solver.

The headline property: the solver computes the *least* solution.  For any
constraint system and any other satisfying assignment, the solved
assignment is point-wise ``⊑`` it, across every lattice the registry knows
(plus taller chains).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ifc.errors import ViolationKind
from repro.inference import (
    Constraint,
    ConstTerm,
    JoinTerm,
    MeetTerm,
    VarSupply,
    VarTerm,
    evaluate,
    join_terms,
    meet_terms,
    solve,
)
from repro.lattice.registry import available_lattices, get_lattice

#: Every registered lattice, plus chains tall enough to exercise joins that
#: are neither ⊥ nor ⊤.
LATTICE_NAMES = sorted(set(available_lattices()) | {"chain-3", "chain-5"})


def _lattices():
    return [get_lattice(name) for name in LATTICE_NAMES]


# ---------------------------------------------------------------------------
# term simplification


class TestTerms:
    @pytest.mark.parametrize("lattice", _lattices(), ids=LATTICE_NAMES)
    def test_join_of_constants_folds(self, lattice):
        labels = list(lattice.labels())
        for a in labels:
            for b in labels:
                term = join_terms(lattice, [ConstTerm(a), ConstTerm(b)])
                assert term == ConstTerm(lattice.join(a, b))

    @pytest.mark.parametrize("lattice", _lattices(), ids=LATTICE_NAMES)
    def test_meet_of_constants_folds(self, lattice):
        labels = list(lattice.labels())
        for a in labels:
            for b in labels:
                term = meet_terms(lattice, [ConstTerm(a), ConstTerm(b)])
                assert term == ConstTerm(lattice.meet(a, b))

    def test_join_drops_bottom_and_flattens(self):
        lattice = get_lattice("two-point")
        supply = VarSupply()
        x, y = VarTerm(supply.fresh("x")), VarTerm(supply.fresh("y"))
        inner = join_terms(lattice, [x, ConstTerm(lattice.bottom)])
        assert inner == x
        nested = join_terms(lattice, [JoinTerm((x, y)), x])
        assert nested == JoinTerm((x, y))

    def test_join_saturates_at_top(self):
        lattice = get_lattice("two-point")
        x = VarTerm(VarSupply().fresh("x"))
        assert join_terms(lattice, [x, ConstTerm(lattice.top)]) == ConstTerm(lattice.top)

    def test_meet_collapses_at_bottom(self):
        lattice = get_lattice("two-point")
        x = VarTerm(VarSupply().fresh("x"))
        assert meet_terms(lattice, [x, ConstTerm(lattice.bottom)]) == ConstTerm(
            lattice.bottom
        )

    def test_empty_join_and_meet_are_the_bounds(self):
        lattice = get_lattice("diamond")
        assert join_terms(lattice, []) == ConstTerm(lattice.bottom)
        assert meet_terms(lattice, []) == ConstTerm(lattice.top)


# ---------------------------------------------------------------------------
# direct solver behaviour


class TestSolve:
    def test_propagates_along_chain(self):
        lattice = get_lattice("two-point")
        supply = VarSupply()
        a, b, c = (supply.fresh(h) for h in "abc")
        constraints = [
            Constraint(ConstTerm("high"), VarTerm(a)),
            Constraint(VarTerm(a), VarTerm(b)),
            Constraint(VarTerm(b), VarTerm(c)),
        ]
        solution = solve(lattice, constraints)
        assert solution.ok
        assert solution.value_of(a) == "high"
        assert solution.value_of(c) == "high"

    def test_unconstrained_variables_stay_bottom(self):
        lattice = get_lattice("diamond")
        supply = VarSupply()
        a, b = supply.fresh("a"), supply.fresh("b")
        constraints = [Constraint(VarTerm(a), VarTerm(b))]
        solution = solve(lattice, constraints)
        assert solution.value_of(a) == lattice.bottom
        assert solution.value_of(b) == lattice.bottom

    def test_meet_rhs_decomposes(self):
        # a ⊑ b ⊓ c forces both b and c above a.
        lattice = get_lattice("two-point")
        supply = VarSupply()
        a, b, c = (supply.fresh(h) for h in "abc")
        constraints = [
            Constraint(ConstTerm("high"), VarTerm(a)),
            Constraint(VarTerm(a), MeetTerm((VarTerm(b), VarTerm(c)))),
        ]
        solution = solve(lattice, constraints)
        assert solution.ok
        assert solution.value_of(b) == "high"
        assert solution.value_of(c) == "high"

    def test_conflict_reports_core(self):
        lattice = get_lattice("two-point")
        supply = VarSupply()
        a, b = supply.fresh("a"), supply.fresh("b")
        source = Constraint(
            ConstTerm("high"), VarTerm(a), rule="T-VarInit"
        )
        middle = Constraint(VarTerm(a), VarTerm(b), rule="T-Assign")
        sink = Constraint(
            VarTerm(b),
            ConstTerm("low"),
            rule="T-Assign",
            kind=ViolationKind.EXPLICIT_FLOW,
        )
        solution = solve(lattice, [source, middle, sink])
        assert not solution.ok
        (conflict,) = solution.conflicts
        assert conflict.constraint is sink
        assert conflict.observed == "high"
        assert conflict.required == "low"
        assert source in conflict.core
        assert middle in conflict.core

    def test_conflict_diagnostic_carries_kind_and_rule(self):
        lattice = get_lattice("two-point")
        bad = Constraint(
            ConstTerm("high"),
            ConstTerm("low"),
            rule="T-Assign",
            kind=ViolationKind.IMPLICIT_FLOW,
            reason="guard leaks",
        )
        solution = solve(lattice, [bad])
        (conflict,) = solution.conflicts
        diag = conflict.as_diagnostic(lattice)
        assert diag.kind is ViolationKind.IMPLICIT_FLOW
        assert diag.rule == "T-Assign"
        assert "guard leaks" in diag.message

    def test_join_lhs_counts_all_parts(self):
        lattice = get_lattice("diamond")
        supply = VarSupply()
        a, b = supply.fresh("a"), supply.fresh("b")
        constraints = [
            Constraint(ConstTerm("A"), VarTerm(a)),
            Constraint(JoinTerm((VarTerm(a), ConstTerm("B"))), VarTerm(b)),
        ]
        solution = solve(lattice, constraints)
        assert solution.value_of(b) == "top"


# ---------------------------------------------------------------------------
# the least-solution property


def _constraint_systems(draw, lattice, n_vars):
    """A random system of propagation constraints over ``n_vars`` variables."""
    supply = VarSupply()
    variables = [supply.fresh(f"v{i}") for i in range(n_vars)]
    labels = list(lattice.labels())

    def atom():
        if draw(st.booleans()):
            return VarTerm(draw(st.sampled_from(variables)))
        return ConstTerm(draw(st.sampled_from(labels)))

    constraints = []
    for _ in range(draw(st.integers(min_value=0, max_value=12))):
        lhs_atoms = [atom() for _ in range(draw(st.integers(min_value=1, max_value=3)))]
        lhs = join_terms(lattice, lhs_atoms)
        target = draw(st.sampled_from(variables))
        constraints.append(Constraint(lhs, VarTerm(target)))
    return variables, constraints


def _satisfies(lattice, assignment, constraints):
    return all(
        lattice.leq(
            evaluate(c.lhs, lattice, assignment), evaluate(c.rhs, lattice, assignment)
        )
        for c in constraints
    )


def _close(lattice, assignment, constraints):
    """Grow ``assignment`` until it satisfies ``constraints`` (always possible
    by pushing joins upward; terminates because the lattice is finite)."""
    closed = dict(assignment)
    changed = True
    while changed:
        changed = False
        for constraint in constraints:
            value = evaluate(constraint.lhs, lattice, closed)
            target = constraint.rhs.var  # type: ignore[union-attr]
            if not lattice.leq(value, closed[target]):
                closed[target] = lattice.join(closed[target], value)
                changed = True
    return closed


@settings(max_examples=60, deadline=None)
@given(data=st.data(), name=st.sampled_from(LATTICE_NAMES))
def test_solver_computes_a_solution(data, name):
    """The solved assignment satisfies every propagation constraint."""
    lattice = get_lattice(name)
    _, constraints = _constraint_systems(data.draw, lattice, n_vars=4)
    solution = solve(lattice, constraints)
    assert solution.ok
    assert _satisfies(lattice, dict(solution.assignment), constraints)


@settings(max_examples=60, deadline=None)
@given(data=st.data(), name=st.sampled_from(LATTICE_NAMES))
def test_solver_computes_the_least_solution(data, name):
    """solution ⊑ any other satisfying assignment, point-wise.

    Other satisfying assignments are produced by seeding every variable with
    an arbitrary label and closing upward; the closure of *any* seed is
    satisfying, so the least solution must sit below all of them.
    """
    lattice = get_lattice(name)
    variables, constraints = _constraint_systems(data.draw, lattice, n_vars=4)
    solution = solve(lattice, constraints)

    labels = list(lattice.labels())
    seed = {
        var: data.draw(st.sampled_from(labels), label=f"seed[{var.uid}]")
        for var in variables
    }
    other = _close(lattice, seed, constraints)
    assert _satisfies(lattice, other, constraints)
    for var in variables:
        assert lattice.leq(solution.value_of(var), other[var]), (
            f"solved {solution.value_of(var)!r} for {var} is not below the "
            f"alternative satisfying assignment's {other[var]!r}"
        )


@settings(max_examples=40, deadline=None)
@given(data=st.data(), name=st.sampled_from(LATTICE_NAMES))
def test_checks_do_not_disturb_the_assignment(data, name):
    """Upper-bound (check) constraints never raise the solved labels."""
    lattice = get_lattice(name)
    variables, constraints = _constraint_systems(data.draw, lattice, n_vars=3)
    baseline = solve(lattice, constraints)
    labels = list(lattice.labels())
    with_checks = constraints + [
        Constraint(VarTerm(var), ConstTerm(data.draw(st.sampled_from(labels))))
        for var in variables
    ]
    solution = solve(lattice, with_checks)
    for var in variables:
        assert solution.value_of(var) == baseline.value_of(var)
