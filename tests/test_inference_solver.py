"""Unit and property tests for the inference constraint solver.

The headline property: the solver computes the *least* solution.  For any
constraint system and any other satisfying assignment, the solved
assignment is point-wise ``⊑`` it, across every lattice the registry knows
(plus taller chains).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ifc.errors import ViolationKind
from repro.frontend.parser import parse_program
from repro.inference import (
    Constraint,
    ConstTerm,
    JoinTerm,
    MeetTerm,
    VarSupply,
    VarTerm,
    evaluate,
    generate_constraints,
    join_terms,
    meet_terms,
    solve,
    solve_worklist,
)
from repro.lattice.chain import ChainLattice
from repro.lattice.powerset import PowersetLattice
from repro.lattice.product import ProductLattice
from repro.lattice.registry import available_lattices, get_lattice
from repro.synth import random_straightline_program

#: Every registered lattice, plus chains tall enough to exercise joins that
#: are neither ⊥ nor ⊤.
LATTICE_NAMES = sorted(set(available_lattices()) | {"chain-3", "chain-5"})


def _lattices():
    return [get_lattice(name) for name in LATTICE_NAMES]


# ---------------------------------------------------------------------------
# term simplification


class TestTerms:
    @pytest.mark.parametrize("lattice", _lattices(), ids=LATTICE_NAMES)
    def test_join_of_constants_folds(self, lattice):
        labels = list(lattice.labels())
        for a in labels:
            for b in labels:
                term = join_terms(lattice, [ConstTerm(a), ConstTerm(b)])
                assert term == ConstTerm(lattice.join(a, b))

    @pytest.mark.parametrize("lattice", _lattices(), ids=LATTICE_NAMES)
    def test_meet_of_constants_folds(self, lattice):
        labels = list(lattice.labels())
        for a in labels:
            for b in labels:
                term = meet_terms(lattice, [ConstTerm(a), ConstTerm(b)])
                assert term == ConstTerm(lattice.meet(a, b))

    def test_join_drops_bottom_and_flattens(self):
        lattice = get_lattice("two-point")
        supply = VarSupply()
        x, y = VarTerm(supply.fresh("x")), VarTerm(supply.fresh("y"))
        inner = join_terms(lattice, [x, ConstTerm(lattice.bottom)])
        assert inner == x
        nested = join_terms(lattice, [JoinTerm((x, y)), x])
        assert nested == JoinTerm((x, y))

    def test_join_saturates_at_top(self):
        lattice = get_lattice("two-point")
        x = VarTerm(VarSupply().fresh("x"))
        assert join_terms(lattice, [x, ConstTerm(lattice.top)]) == ConstTerm(lattice.top)

    def test_meet_collapses_at_bottom(self):
        lattice = get_lattice("two-point")
        x = VarTerm(VarSupply().fresh("x"))
        assert meet_terms(lattice, [x, ConstTerm(lattice.bottom)]) == ConstTerm(
            lattice.bottom
        )

    def test_empty_join_and_meet_are_the_bounds(self):
        lattice = get_lattice("diamond")
        assert join_terms(lattice, []) == ConstTerm(lattice.bottom)
        assert meet_terms(lattice, []) == ConstTerm(lattice.top)


# ---------------------------------------------------------------------------
# direct solver behaviour


class TestSolve:
    def test_propagates_along_chain(self):
        lattice = get_lattice("two-point")
        supply = VarSupply()
        a, b, c = (supply.fresh(h) for h in "abc")
        constraints = [
            Constraint(ConstTerm("high"), VarTerm(a)),
            Constraint(VarTerm(a), VarTerm(b)),
            Constraint(VarTerm(b), VarTerm(c)),
        ]
        solution = solve(lattice, constraints)
        assert solution.ok
        assert solution.value_of(a) == "high"
        assert solution.value_of(c) == "high"

    def test_unconstrained_variables_stay_bottom(self):
        lattice = get_lattice("diamond")
        supply = VarSupply()
        a, b = supply.fresh("a"), supply.fresh("b")
        constraints = [Constraint(VarTerm(a), VarTerm(b))]
        solution = solve(lattice, constraints)
        assert solution.value_of(a) == lattice.bottom
        assert solution.value_of(b) == lattice.bottom

    def test_meet_rhs_decomposes(self):
        # a ⊑ b ⊓ c forces both b and c above a.
        lattice = get_lattice("two-point")
        supply = VarSupply()
        a, b, c = (supply.fresh(h) for h in "abc")
        constraints = [
            Constraint(ConstTerm("high"), VarTerm(a)),
            Constraint(VarTerm(a), MeetTerm((VarTerm(b), VarTerm(c)))),
        ]
        solution = solve(lattice, constraints)
        assert solution.ok
        assert solution.value_of(b) == "high"
        assert solution.value_of(c) == "high"

    def test_conflict_reports_core(self):
        lattice = get_lattice("two-point")
        supply = VarSupply()
        a, b = supply.fresh("a"), supply.fresh("b")
        source = Constraint(
            ConstTerm("high"), VarTerm(a), rule="T-VarInit"
        )
        middle = Constraint(VarTerm(a), VarTerm(b), rule="T-Assign")
        sink = Constraint(
            VarTerm(b),
            ConstTerm("low"),
            rule="T-Assign",
            kind=ViolationKind.EXPLICIT_FLOW,
        )
        solution = solve(lattice, [source, middle, sink])
        assert not solution.ok
        (conflict,) = solution.conflicts
        assert conflict.constraint is sink
        assert conflict.observed == "high"
        assert conflict.required == "low"
        assert source in conflict.core
        assert middle in conflict.core

    def test_conflict_diagnostic_carries_kind_and_rule(self):
        lattice = get_lattice("two-point")
        bad = Constraint(
            ConstTerm("high"),
            ConstTerm("low"),
            rule="T-Assign",
            kind=ViolationKind.IMPLICIT_FLOW,
            reason="guard leaks",
        )
        solution = solve(lattice, [bad])
        (conflict,) = solution.conflicts
        diag = conflict.as_diagnostic(lattice)
        assert diag.kind is ViolationKind.IMPLICIT_FLOW
        assert diag.rule == "T-Assign"
        assert "guard leaks" in diag.message

    def test_join_lhs_counts_all_parts(self):
        lattice = get_lattice("diamond")
        supply = VarSupply()
        a, b = supply.fresh("a"), supply.fresh("b")
        constraints = [
            Constraint(ConstTerm("A"), VarTerm(a)),
            Constraint(JoinTerm((VarTerm(a), ConstTerm("B"))), VarTerm(b)),
        ]
        solution = solve(lattice, constraints)
        assert solution.value_of(b) == "top"


# ---------------------------------------------------------------------------
# unsat cores (regression: deque-based backward slice, deduplicated edges)


class TestUnsatCore:
    def test_core_is_minimal_and_source_ordered_on_diamond(self):
        """The core lists exactly the guilty chain, check-to-source, and
        skips edges that kept their variable within the violated bound."""
        lattice = get_lattice("diamond")
        supply = VarSupply()
        a, b, c = supply.fresh("a"), supply.fresh("b"), supply.fresh("c")
        d = supply.fresh("d")
        source = Constraint(ConstTerm("top"), VarTerm(a), rule="T-VarInit")
        mid_ab = Constraint(VarTerm(a), VarTerm(b), rule="T-Assign")
        mid_bc = Constraint(VarTerm(b), VarTerm(c), rule="T-Assign")
        covered = Constraint(ConstTerm("bot"), VarTerm(c), rule="T-Lit")
        unrelated = Constraint(ConstTerm("B"), VarTerm(d), rule="T-VarInit")
        sink = Constraint(
            VarTerm(c),
            ConstTerm("bot"),
            rule="T-Assign",
            kind=ViolationKind.EXPLICIT_FLOW,
        )
        solution = solve(
            lattice, [source, mid_ab, mid_bc, covered, unrelated, sink]
        )
        (conflict,) = solution.conflicts
        # Minimal: neither the ⊥-valued edge into c nor the unrelated d
        # edge appears; source-ordered: conflicting check's edge first,
        # original source last.
        assert conflict.core == (mid_bc, mid_ab, source)

    def test_core_keeps_provenance_of_deduplicated_edges(self):
        """Repeated use sites collapse to one edge but every originating
        constraint stays available to the conflict explanation."""
        lattice = get_lattice("two-point")
        supply = VarSupply()
        a, b = supply.fresh("a"), supply.fresh("b")
        source = Constraint(ConstTerm("high"), VarTerm(a), rule="T-VarInit")
        first_use = Constraint(VarTerm(a), VarTerm(b), rule="T-Assign")
        second_use = Constraint(VarTerm(a), VarTerm(b), rule="T-TblDecl")
        sink = Constraint(VarTerm(b), ConstTerm("low"), rule="T-Assign")
        solution = solve(lattice, [source, first_use, second_use, sink])
        assert solution.propagation_count == 2  # deduped: high→a, a→b
        (conflict,) = solution.conflicts
        assert first_use in conflict.core
        assert second_use in conflict.core
        assert source in conflict.core

    def test_core_terminates_on_cycles(self):
        lattice = get_lattice("two-point")
        supply = VarSupply()
        a, b = supply.fresh("a"), supply.fresh("b")
        constraints = [
            Constraint(ConstTerm("high"), VarTerm(a)),
            Constraint(VarTerm(a), VarTerm(b)),
            Constraint(VarTerm(b), VarTerm(a)),
            Constraint(VarTerm(b), ConstTerm("low")),
        ]
        solution = solve(lattice, constraints)
        (conflict,) = solution.conflicts
        assert len(conflict.core) == len(set(conflict.core))


# ---------------------------------------------------------------------------
# height bounds (regression: no carrier enumeration for powersets/products)


class TestHeightBound:
    def test_powerset_bound_is_principal_count_plus_one(self):
        lattice = PowersetLattice([f"p{i}" for i in range(40)])
        # The seed computed max(2, len(list(labels()))): 2^40 labels.
        assert lattice.height_bound() == 41

    def test_product_bound_adds_component_heights(self):
        lattice = ProductLattice(
            PowersetLattice([f"a{i}" for i in range(20)]),
            PowersetLattice([f"b{i}" for i in range(20)]),
        )
        assert lattice.height_bound() == 41

    def test_chain_bound_is_exact(self):
        assert ChainLattice.of_height(7).height_bound() == 7

    def test_small_lattices_fall_back_to_enumeration(self):
        assert get_lattice("two-point").height_bound() == 2
        assert get_lattice("diamond").height_bound() == 4

    def test_solve_over_large_powerset_is_fast(self):
        """Solving over powerset-48 must not materialise 2^48 labels."""
        lattice = PowersetLattice([f"p{i}" for i in range(48)])
        supply = VarSupply()
        a, b = supply.fresh("a"), supply.fresh("b")
        constraints = [
            Constraint(ConstTerm(frozenset({"p0", "p1"})), VarTerm(a)),
            Constraint(VarTerm(a), VarTerm(b)),
        ]
        solution = solve(lattice, constraints)
        assert solution.value_of(b) == frozenset({"p0", "p1"})


# ---------------------------------------------------------------------------
# the least-solution property


def _constraint_systems(draw, lattice, n_vars):
    """A random system of propagation constraints over ``n_vars`` variables."""
    supply = VarSupply()
    variables = [supply.fresh(f"v{i}") for i in range(n_vars)]
    labels = list(lattice.labels())

    def atom():
        if draw(st.booleans()):
            return VarTerm(draw(st.sampled_from(variables)))
        return ConstTerm(draw(st.sampled_from(labels)))

    constraints = []
    for _ in range(draw(st.integers(min_value=0, max_value=12))):
        lhs_atoms = [atom() for _ in range(draw(st.integers(min_value=1, max_value=3)))]
        lhs = join_terms(lattice, lhs_atoms)
        target = draw(st.sampled_from(variables))
        constraints.append(Constraint(lhs, VarTerm(target)))
    return variables, constraints


def _satisfies(lattice, assignment, constraints):
    return all(
        lattice.leq(
            evaluate(c.lhs, lattice, assignment), evaluate(c.rhs, lattice, assignment)
        )
        for c in constraints
    )


def _close(lattice, assignment, constraints):
    """Grow ``assignment`` until it satisfies ``constraints`` (always possible
    by pushing joins upward; terminates because the lattice is finite)."""
    closed = dict(assignment)
    changed = True
    while changed:
        changed = False
        for constraint in constraints:
            value = evaluate(constraint.lhs, lattice, closed)
            target = constraint.rhs.var  # type: ignore[union-attr]
            if not lattice.leq(value, closed[target]):
                closed[target] = lattice.join(closed[target], value)
                changed = True
    return closed


@settings(max_examples=60, deadline=None)
@given(data=st.data(), name=st.sampled_from(LATTICE_NAMES))
def test_solver_computes_a_solution(data, name):
    """The solved assignment satisfies every propagation constraint."""
    lattice = get_lattice(name)
    _, constraints = _constraint_systems(data.draw, lattice, n_vars=4)
    solution = solve(lattice, constraints)
    assert solution.ok
    assert _satisfies(lattice, dict(solution.assignment), constraints)


@settings(max_examples=60, deadline=None)
@given(data=st.data(), name=st.sampled_from(LATTICE_NAMES))
def test_solver_computes_the_least_solution(data, name):
    """solution ⊑ any other satisfying assignment, point-wise.

    Other satisfying assignments are produced by seeding every variable with
    an arbitrary label and closing upward; the closure of *any* seed is
    satisfying, so the least solution must sit below all of them.
    """
    lattice = get_lattice(name)
    variables, constraints = _constraint_systems(data.draw, lattice, n_vars=4)
    solution = solve(lattice, constraints)

    labels = list(lattice.labels())
    seed = {
        var: data.draw(st.sampled_from(labels), label=f"seed[{var.uid}]")
        for var in variables
    }
    other = _close(lattice, seed, constraints)
    assert _satisfies(lattice, other, constraints)
    for var in variables:
        assert lattice.leq(solution.value_of(var), other[var]), (
            f"solved {solution.value_of(var)!r} for {var} is not below the "
            f"alternative satisfying assignment's {other[var]!r}"
        )


# ---------------------------------------------------------------------------
# SCC-scheduled solver vs the reference worklist solver


#: A maximal chain of level names inside each lattice, usable both as field
#: identifiers and as annotation spellings in synthesised programs.
_PROGRAM_LEVELS = {
    "two-point": ["low", "high"],
    "diamond": ["bot", "A", "top"],
    # A maximal chain through the policy lattice: add one purpose, one
    # recipient, one retention rank at a time (canonical spellings are
    # identifier-safe by construction).
    "policy-mini": [
        "P__R__t0",
        "Pads__R__t0",
        "Pads_analytics__R__t0",
        "Pads_analytics__Rpartner__t0",
        "Pads_analytics__Rpartner_store__t0",
        "Pads_analytics__Rpartner_store__t1",
        "Pads_analytics__Rpartner_store__t2",
    ],
}


def _program_levels(lattice):
    if lattice.name in _PROGRAM_LEVELS:
        return _PROGRAM_LEVELS[lattice.name]
    if isinstance(lattice, ChainLattice):
        return list(lattice.levels)
    raise AssertionError(f"no program levels defined for {lattice.name!r}")


def _unannotate_fields(source: str, levels, keep) -> str:
    """Strip the header annotation of every level not in ``keep``, turning
    those fields into inference variables."""
    for level in levels:
        if level not in keep:
            source = source.replace(
                f"<bit<8>, {level}> f_{level};", f"bit<8> f_{level};"
            )
    return source


def _conflict_key(lattice, conflict):
    return (
        conflict.constraint,
        lattice.format_label(conflict.observed),
        lattice.format_label(conflict.required),
        conflict.core,
    )


def _assert_solvers_agree(lattice, constraints):
    scheduled = solve(lattice, constraints)
    reference = solve_worklist(lattice, constraints)
    all_vars = set(scheduled.assignment) | set(reference.assignment)
    for var in all_vars:
        assert lattice.equal(
            scheduled.value_of(var), reference.value_of(var)
        ), f"solvers disagree on {var}"
    scheduled_conflicts = sorted(
        (_conflict_key(lattice, c) for c in scheduled.conflicts), key=repr
    )
    reference_conflicts = sorted(
        (_conflict_key(lattice, c) for c in reference.conflicts), key=repr
    )
    assert scheduled_conflicts == reference_conflicts
    return scheduled


@settings(max_examples=60, deadline=None)
@given(data=st.data(), name=st.sampled_from(LATTICE_NAMES))
def test_scc_solver_matches_worklist_on_random_systems(data, name):
    """Identical least solutions on random propagation-constraint systems."""
    lattice = get_lattice(name)
    _, constraints = _constraint_systems(data.draw, lattice, n_vars=4)
    _assert_solvers_agree(lattice, constraints)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    name=st.sampled_from(LATTICE_NAMES),
    data=st.data(),
)
def test_scc_solver_matches_worklist_on_synth_programs(seed, name, data):
    """Identical least solutions *and* conflict sets on partially annotated
    random straightline programs, across every registered lattice.

    A random subset of the header fields loses its annotation (becoming
    label variables); the remaining annotated fields act as fixed sources
    and sinks, so both satisfiable and conflicting systems are generated.
    """
    lattice = get_lattice(name)
    levels = _program_levels(lattice)
    source = random_straightline_program(seed, statements=6, levels=levels)
    keep = {
        level for level in levels if data.draw(st.booleans(), label=level)
    }
    program = parse_program(_unannotate_fields(source, levels, keep))
    generation = generate_constraints(program, lattice)
    assert not generation.errors
    _assert_solvers_agree(lattice, generation.constraints)


@settings(max_examples=40, deadline=None)
@given(data=st.data(), name=st.sampled_from(LATTICE_NAMES))
def test_checks_do_not_disturb_the_assignment(data, name):
    """Upper-bound (check) constraints never raise the solved labels."""
    lattice = get_lattice(name)
    variables, constraints = _constraint_systems(data.draw, lattice, n_vars=3)
    baseline = solve(lattice, constraints)
    labels = list(lattice.labels())
    with_checks = constraints + [
        Constraint(VarTerm(var), ConstTerm(data.draw(st.sampled_from(labels))))
        for var in variables
    ]
    solution = solve(lattice, with_checks)
    for var in variables:
        assert solution.value_of(var) == baseline.value_of(var)
