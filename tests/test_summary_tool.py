"""Tests for the security-interface summary tool."""

import json

from repro.casestudies import get_case_study
from repro.frontend.parser import parse_program
from repro.ifc import check_ifc
from repro.lattice import DiamondLattice, TwoPointLattice
from repro.lattice.two_point import HIGH, LOW
from repro.tool.cli import main
from repro.tool.pipeline import check_source
from repro.tool.summary import (
    format_summary,
    summarise_program,
    summarise_report,
)


def summarise(source, lattice=None):
    lattice = lattice or TwoPointLattice()
    program = parse_program(source)
    return summarise_program(program, lattice, check_ifc(program, lattice))


class TestProgramSummary:
    def test_leaf_fields_and_labels(self):
        case = get_case_study("cache")
        summary = summarise(case.insecure_source)
        (control,) = summary.controls
        labels = {f.path: f.label for f in control.fields}
        assert labels["hdr.req.query"] == HIGH
        assert labels["hdr.resp.hit"] == LOW
        assert labels["hdr.eth.srcAddr"] == LOW

    def test_observable_field_filter(self):
        case = get_case_study("cache")
        summary = summarise(case.insecure_source)
        (control,) = summary.controls
        lattice = TwoPointLattice()
        observable = {f.path for f in control.observable_fields(lattice, LOW)}
        assert "hdr.resp.hit" in observable
        assert "hdr.req.query" not in observable

    def test_bounds_included(self):
        case = get_case_study("cache")
        summary = summarise(case.secure_source)
        assert summary.table_bounds["fetch_from_cache"] == HIGH
        assert summary.action_bounds["cache_miss"] == HIGH

    def test_violation_count(self):
        case = get_case_study("cache")
        assert summarise(case.insecure_source).violation_count >= 1
        assert summarise(case.secure_source).violation_count == 0

    def test_pc_labels_of_controls(self):
        case = get_case_study("lattice")
        summary = summarise(case.secure_source, DiamondLattice())
        pcs = {control.name: control.pc_label for control in summary.controls}
        assert pcs["Alice_Ingress"] == "A"
        assert pcs["Bob_Ingress"] == "B"

    def test_stack_fields_enumerated(self):
        source = (
            "header lane_t { <bit<8>, high> v; }\n"
            "struct headers { lane_t[2] lanes; }\n"
            "control C(inout headers hdr) { apply { } }"
        )
        summary = summarise(source)
        paths = {f.path for f in summary.controls[0].fields}
        assert paths == {"hdr.lanes[0].v", "hdr.lanes[1].v"}

    def test_as_dict_is_json_serialisable(self):
        case = get_case_study("app")
        payload = summarise(case.secure_source).as_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["controls"][0]["fields"]

    def test_summarise_report_helper(self):
        case = get_case_study("topology")
        report = check_source(case.secure_source)
        summary = summarise_report(report, TwoPointLattice())
        assert summary is not None
        assert summary.name == report.name

    def test_summarise_report_on_parse_error(self):
        report = check_source("control {")
        assert summarise_report(report, TwoPointLattice()) is None

    def test_summarise_report_records_solver_stats_when_inferred(self):
        from repro.synth import deep_dataflow_program

        report = check_source(deep_dataflow_program(6), infer=True)
        summary = summarise_report(report, TwoPointLattice())
        assert summary is not None
        assert summary.solver is not None
        assert summary.solver["edges"] > 0
        assert summary.as_dict()["solver"] == summary.solver
        assert "labels derived by inference" in format_summary(summary)

    def test_summary_without_inference_has_no_solver_stats(self):
        case = get_case_study("topology")
        summary = summarise_report(check_source(case.secure_source), TwoPointLattice())
        assert summary is not None
        assert summary.solver is None

    def test_format_summary_text(self):
        case = get_case_study("cache")
        text = format_summary(summarise(case.secure_source))
        assert "security interface" in text
        assert "hdr.req.query" in text
        assert "pc_tbl" in text or "table bounds" in text


class TestCliSummary:
    def test_text_summary_flag(self, tmp_path, capsys):
        case = get_case_study("cache")
        path = tmp_path / "cache.p4"
        path.write_text(case.secure_source, encoding="utf-8")
        assert main(["--summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "security interface" in out
        assert "hdr.req.query" in out

    def test_json_summary_flag(self, tmp_path, capsys):
        case = get_case_study("cache")
        path = tmp_path / "cache.p4"
        path.write_text(case.secure_source, encoding="utf-8")
        assert main(["--summary", "--json", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["controls"][0]["name"] == "Cache_Ingress"
