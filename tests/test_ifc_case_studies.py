"""End-to-end IFC results on the paper's case studies (the accept/reject
matrix of Section 5)."""

import pytest

from repro.casestudies import get_case_study, strip_security_annotations, table1_case_studies
from repro.ifc.errors import ViolationKind
from repro.tool.pipeline import check_source


class TestAcceptRejectMatrix:
    def test_secure_variant_accepted(self, case_study):
        report = check_source(
            case_study.secure_source, case_study.lattice_name, name=case_study.name
        )
        assert report.ok, [str(d) for d in report.diagnostics]

    def test_insecure_variant_rejected(self, case_study):
        report = check_source(
            case_study.insecure_source, case_study.lattice_name, name=case_study.name
        )
        assert not report.ok
        assert report.ifc_diagnostics, "rejection must come from the IFC checker"

    def test_insecure_variant_core_typechecks(self, case_study):
        """The leak is a *security* error, not an ordinary type error."""
        report = check_source(
            case_study.insecure_source, case_study.lattice_name, include_ifc=False
        )
        assert report.ok, [str(d) for d in report.diagnostics]

    def test_expected_violation_kinds(self, case_study):
        report = check_source(case_study.insecure_source, case_study.lattice_name)
        seen = {diag.kind for diag in report.ifc_diagnostics}
        for expected in case_study.expected_violations:
            assert expected in seen, (
                f"{case_study.name}: expected a {expected.value} violation, saw "
                f"{[k.value for k in seen]}"
            )

    def test_unannotated_variant_accepted_by_baseline(self, case_study):
        report = check_source(
            case_study.unannotated_source, case_study.lattice_name, include_ifc=False
        )
        assert report.ok, [str(d) for d in report.diagnostics]

    def test_unannotated_variant_accepted_by_full_pipeline(self, case_study):
        """With no annotations every label defaults to ⊥, so nothing can leak."""
        report = check_source(case_study.unannotated_source, case_study.lattice_name)
        assert report.ok, [str(d) for d in report.diagnostics]


class TestSpecificFindings:
    def test_topology_flags_the_ttl_assignment(self):
        case = get_case_study("topology")
        report = check_source(case.insecure_source)
        (diag,) = report.ifc_diagnostics
        assert diag.kind is ViolationKind.EXPLICIT_FLOW
        assert "hdr.ipv4.ttl" in diag.message

    def test_d2r_flags_both_priority_writes(self):
        case = get_case_study("d2r")
        report = check_source(case.insecure_source)
        implicit = [
            d for d in report.ifc_diagnostics if d.kind is ViolationKind.IMPLICIT_FLOW
        ]
        assert len(implicit) == 2  # one per branch of the threshold conditional
        assert all("priority" in d.message for d in implicit)

    def test_cache_flags_the_table_key(self):
        case = get_case_study("cache")
        report = check_source(case.insecure_source)
        key_flows = [
            d for d in report.ifc_diagnostics if d.kind is ViolationKind.TABLE_KEY_FLOW
        ]
        assert key_flows
        assert any("query" in d.message for d in key_flows)

    def test_cache_key_leaks_into_both_actions(self):
        case = get_case_study("cache")
        report = check_source(case.insecure_source)
        key_flows = [
            d for d in report.ifc_diagnostics if d.kind is ViolationKind.TABLE_KEY_FLOW
        ]
        named = {d.message.split("action ")[1].split("'")[1] for d in key_flows}
        assert named == {"cache_hit", "cache_miss"}

    def test_app_flags_the_app_id_key(self):
        case = get_case_study("app")
        report = check_source(case.insecure_source)
        assert any(
            d.kind is ViolationKind.TABLE_KEY_FLOW and "appID" in d.message
            for d in report.ifc_diagnostics
        )

    def test_isolation_flags_both_leaks(self):
        case = get_case_study("lattice")
        report = check_source(case.insecure_source, "diamond")
        seen = {d.kind for d in report.ifc_diagnostics}
        assert ViolationKind.EXPLICIT_FLOW in seen or ViolationKind.ARGUMENT_FLOW in seen
        assert ViolationKind.TABLE_KEY_FLOW in seen
        assert len(report.ifc_diagnostics) >= 2

    def test_isolation_wrong_lattice_reports_label_errors(self):
        case = get_case_study("lattice")
        report = check_source(case.secure_source, "two-point")
        assert any(
            d.kind is ViolationKind.LABEL_ERROR for d in report.ifc_diagnostics
        )

    def test_netchain_flags_the_role_branch(self):
        case = get_case_study("netchain")
        report = check_source(case.insecure_source)
        assert any(
            d.kind is ViolationKind.CALL_CONTEXT for d in report.ifc_diagnostics
        )

    def test_diagnostics_carry_source_locations(self, case_study):
        report = check_source(case_study.insecure_source, case_study.lattice_name)
        for diag in report.ifc_diagnostics:
            assert diag.span.start.line > 0


class TestStripAnnotations:
    def test_strip_removes_labels(self):
        source = "header h_t { <bit<8>, high> x; <bool, low> y; }"
        assert strip_security_annotations(source) == "header h_t { bit<8> x; bool y; }"

    def test_strip_removes_pc_annotations(self):
        source = "@pc(A)\ncontrol C() { apply { } }"
        assert "@pc" not in strip_security_annotations(source)

    def test_strip_preserves_plain_types(self):
        source = "header h_t { bit<8> x; }"
        assert strip_security_annotations(source) == source

    def test_strip_output_reparses(self, case_study):
        from repro.frontend.parser import parse_program

        stripped = strip_security_annotations(case_study.secure_source)
        assert "<bit" not in stripped.replace("bit<", "")  # no annotations left
        parse_program(stripped)

    def test_unannotated_and_secure_have_same_shape(self):
        from repro.frontend.parser import parse_program
        from repro.syntax.visitor import walk

        for case in table1_case_studies():
            secure_nodes = sum(1 for _ in walk(parse_program(case.secure_source)))
            plain_nodes = sum(1 for _ in walk(parse_program(case.unannotated_source)))
            assert secure_nodes == plain_nodes


class TestTable1Registry:
    def test_table1_rows(self):
        names = [case.name for case in table1_case_studies()]
        assert names == ["d2r", "app", "lattice", "topology", "cache"]

    def test_registry_lookup_case_insensitive(self):
        assert get_case_study("Topology").name == "topology"

    def test_unknown_case_study(self):
        with pytest.raises(KeyError):
            get_case_study("quantum")

    def test_descriptions_present(self, case_study):
        assert case_study.description
        assert case_study.title
        assert case_study.section
