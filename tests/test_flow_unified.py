"""Differential drift tests for the unified Figure 5–7 traversal.

The checker and the constraint generator are façades over one shared
:class:`repro.flow.analysis.FlowAnalysis`, so their rule *sites* agree by
construction.  These tests pin the remaining degree of freedom -- the two
algebras' *interpretations* of each site -- against each other:

* the concrete checker defaults every missing annotation to ⊥, and an
  unassigned label variable also evaluates to ⊥, so **evaluating the
  symbolic constraint system under the empty assignment must reproduce
  the concrete verdict exactly**, site for site (span, rule, kind);
* the symbolically inferred ``pc_fn`` / ``pc_tbl`` bounds must evaluate
  to the concrete checker's inferred bounds;
* solving-then-evaluating must agree with concrete re-checking: a
  satisfiable system elaborates to a program the stock checker accepts,
  an unsatisfiable one comes from a program the checker rejects.

Corpora: the random straight-line generator (leaky and leak-free
programs), the deep-dataflow chains (unannotated slots, satisfiable and
unsatisfiable variants), and the wide-table family (table keys, actions,
``pc_fn``/``pc_tbl`` bounds) -- across every registered lattice plus a
four-level chain.  CI runs this module as the ``drift-guard`` step.
"""

from __future__ import annotations

import pytest

from repro.frontend.parser import parse_program
from repro.ifc import ViolationKind, check_ifc
from repro.inference import evaluate, generate_constraints, infer_labels, solve
from repro.lattice.registry import available_lattices, get_lattice
from repro.synth import (
    deep_dataflow_program,
    random_straightline_program,
    wide_table_program,
)

#: Kinds the require_* hooks produce (flow conditions: constraints in the
#: symbolic reading, diagnostics in the concrete one).
FLOW_KINDS = frozenset(
    {
        ViolationKind.EXPLICIT_FLOW,
        ViolationKind.IMPLICIT_FLOW,
        ViolationKind.TABLE_KEY_FLOW,
        ViolationKind.CALL_CONTEXT,
        ViolationKind.ARGUMENT_FLOW,
        ViolationKind.CONTROL_SIGNAL,
    }
)
#: Kinds reported through the shared ``error`` hook in both algebras.
ERROR_KINDS = frozenset(
    {
        ViolationKind.LABEL_ERROR,
        ViolationKind.TYPE_ERROR,
        ViolationKind.DECLASSIFICATION,
    }
)

#: Every registered lattice, plus a taller chain for multi-level coverage.
LATTICE_NAMES = tuple(available_lattices()) + ("chain-4",)

#: Fixed seed matrix (also exercised by the CI drift-guard step).
SEEDS = tuple(range(0, 90, 3))


def generator_levels(lattice):
    """The lattice's labels as generator level names, lowest first."""
    members = list(lattice.labels())
    ranked = sorted(members, key=lambda a: sum(lattice.leq(b, a) for b in members))
    return [str(label) for label in ranked]


def assert_no_drift(source, lattice, *, allow_declassification=False):
    """Check ``source`` with both algebras and compare site-for-site."""
    program = parse_program(source)
    concrete = check_ifc(
        program, lattice, allow_declassification=allow_declassification
    )
    generation = generate_constraints(
        program, lattice, allow_declassification=allow_declassification
    )
    # Unassigned variables evaluate to ⊥ -- the checker's default for a
    # missing annotation -- so the ⊥-evaluated system is the checker.
    # Sites are compared as (span, rule): the constraint IR deduplicates
    # syntactically identical ⊑ facts, so when one rule application imposes
    # the same comparison twice under different kinds (T-Assign's explicit
    # value flow and implicit pc flow can coincide), the system keeps one
    # constraint where the checker reports two diagnostics.
    violated = {
        (c.span, c.rule)
        for c in generation.constraints
        if not lattice.leq(
            evaluate(c.lhs, lattice, {}), evaluate(c.rhs, lattice, {})
        )
    }
    concrete_flows = {
        (diag.span, diag.rule)
        for diag in concrete.diagnostics
        if diag.kind in FLOW_KINDS
    }
    assert violated == concrete_flows, (
        f"drift between algebras under {lattice.name}:\n"
        f"  symbolic-only: {sorted(map(str, violated - concrete_flows))}\n"
        f"  concrete-only: {sorted(map(str, concrete_flows - violated))}\n{source}"
    )
    generated_errors = {(d.span, d.rule, d.kind) for d in generation.errors}
    concrete_errors = {
        (diag.span, diag.rule, diag.kind)
        for diag in concrete.diagnostics
        if diag.kind in ERROR_KINDS
    }
    assert generated_errors == concrete_errors
    for name, bound in generation.function_bounds.items():
        assert lattice.equal(
            concrete.function_bounds[name], evaluate(bound, lattice, {})
        ), f"pc_fn of {name!r} drifted under {lattice.name}"
    for name, bound in generation.table_bounds.items():
        assert lattice.equal(
            concrete.table_bounds[name], evaluate(bound, lattice, {})
        ), f"pc_tbl of {name!r} drifted under {lattice.name}"
    return concrete, generation


@pytest.mark.parametrize("lattice_name", LATTICE_NAMES)
@pytest.mark.parametrize("seed", SEEDS)
def test_straightline_corpus_has_no_drift(lattice_name, seed):
    lattice = get_lattice(lattice_name)
    source = random_straightline_program(
        seed, statements=6, levels=generator_levels(lattice)
    )
    concrete, generation = assert_no_drift(source, lattice)
    # Fully annotated: no label variables, so solving the system is the
    # same as evaluating it -- the solver verdict *is* the checker verdict.
    assert not generation.sites
    solution = solve(lattice, generation.constraints)
    assert solution.ok == concrete.ok


@pytest.mark.parametrize("lattice_name", LATTICE_NAMES)
def test_wide_table_corpus_has_no_drift(lattice_name):
    lattice = get_lattice(lattice_name)
    levels = generator_levels(lattice)
    for secure in (True, False):
        source = wide_table_program(
            tables=3, actions_per_table=3, keys_per_table=2, secure=secure, seed=7
        )
        # The generator spells labels low/high; map those onto the lattice's
        # own bottom/top levels so the variant is meaningful everywhere.
        source = source.replace("low", levels[0]).replace("high", levels[-1])
        concrete, generation = assert_no_drift(source, lattice)
        solution = solve(lattice, generation.constraints)
        assert solution.ok == concrete.ok
        assert concrete.ok is secure


@pytest.mark.parametrize("lattice_name", LATTICE_NAMES)
@pytest.mark.parametrize("satisfiable", [True, False], ids=["sat", "unsat"])
def test_deep_dataflow_corpus_has_no_drift(lattice_name, satisfiable):
    lattice = get_lattice(lattice_name)
    levels = generator_levels(lattice)
    source = deep_dataflow_program(
        12,
        chains=2,
        source_level=levels[-1],
        sink_level=None if satisfiable else levels[0],
    )
    assert_no_drift(source, lattice)
    # Solving-then-evaluating: the inferred (elaborated) program must get
    # the stock checker's blessing exactly when the system is satisfiable.
    result = infer_labels(parse_program(source), lattice)
    assert result.ok is satisfiable
    if satisfiable:
        assert check_ifc(result.elaborated, lattice).ok
    else:
        assert result.solution.conflicts


# ---------------------------------------------------------------------------
# declassification and control-plane signals, under both algebras


DECLASSIFY_PRELUDE = """
header h_t {
    <bit<8>, low>  pub;
    <bit<8>, high> sec;
    <bool, high>   sec_flag;
    <bool, low>    pub_flag;
}
struct headers { h_t h; }
"""


def control(body: str, locals_: str = "") -> str:
    return (
        DECLASSIFY_PRELUDE
        + "control C(inout headers hdr) {\n"
        + locals_
        + "\n  apply {\n"
        + body
        + "\n  }\n}"
    )


class TestDeclassificationUnderBothAlgebras:
    def test_release_accepted_by_both(self, two_point):
        concrete, generation = assert_no_drift(
            control("hdr.h.pub = declassify(hdr.h.sec);"),
            two_point,
            allow_declassification=True,
        )
        assert concrete.ok and not generation.errors
        assert len(concrete.declassifications) == 1

    def test_forbidden_release_reported_by_both(self, two_point):
        concrete, generation = assert_no_drift(
            control("hdr.h.pub = declassify(hdr.h.sec);"),
            two_point,
            allow_declassification=False,
        )
        assert [d.kind for d in generation.errors] == [
            ViolationKind.DECLASSIFICATION
        ]
        # The concrete checker additionally keeps checking the unreleased
        # value, so the high-into-low assignment surfaces as a flow too.
        assert [d.kind for d in concrete.diagnostics] == [
            ViolationKind.DECLASSIFICATION,
            ViolationKind.EXPLICIT_FLOW,
        ]
        assert concrete.declassifications == []

    def test_release_under_high_guard_rejected_by_both(self, two_point):
        concrete, generation = assert_no_drift(
            control("if (hdr.h.sec_flag) { hdr.h.sec = declassify(hdr.h.sec); }"),
            two_point,
            allow_declassification=True,
        )
        assert not concrete.ok
        assert any(
            c.kind is ViolationKind.IMPLICIT_FLOW and c.rule == "T-Declassify"
            for c in generation.constraints
        )

    def test_high_writing_action_cannot_declassify(self, two_point):
        """The pc_fn ⊑ ⊥ obligation: a body writing only high has a high
        write bound, so an audited release inside it leaks the caller's
        guard.  The concrete algebra finds this on the re-walk under
        ``pc_fn``; the symbolic algebra through the recorded obligation."""
        locals_ = (
            "  action leak() {\n"
            "      hdr.h.sec = declassify(hdr.h.sec);\n"
            "      hdr.h.sec = hdr.h.sec + 1;\n"
            "  }"
        )
        concrete, generation = assert_no_drift(
            control("leak();", locals_), two_point, allow_declassification=True
        )
        assert any(
            d.kind is ViolationKind.IMPLICIT_FLOW and d.rule == "T-Declassify"
            for d in concrete.diagnostics
        )
        assert any(
            c.rule == "T-Declassify" and "pc_fn" in c.reason
            for c in generation.constraints
        )

    def test_low_writing_action_may_declassify(self, two_point):
        locals_ = "  action release() { hdr.h.pub = declassify(hdr.h.sec); }"
        concrete, generation = assert_no_drift(
            control("release();", locals_), two_point, allow_declassification=True
        )
        assert concrete.ok
        assert len(concrete.declassifications) == 1  # silent pass audits nothing

    def test_arity_error_reported_by_both(self, two_point):
        concrete, generation = assert_no_drift(
            control("hdr.h.pub = declassify(hdr.h.sec, hdr.h.pub);"),
            two_point,
            allow_declassification=True,
        )
        assert [d.kind for d in generation.errors] == [ViolationKind.TYPE_ERROR]


class TestControlSignalsUnderBothAlgebras:
    def test_exit_under_high_guard_rejected_by_both(self, two_point):
        concrete, generation = assert_no_drift(
            control("if (hdr.h.sec_flag) { exit; }"), two_point
        )
        assert [d.kind for d in concrete.diagnostics] == [
            ViolationKind.CONTROL_SIGNAL
        ]
        assert any(
            c.kind is ViolationKind.CONTROL_SIGNAL and c.rule == "T-Exit"
            for c in generation.constraints
        )

    def test_exit_under_low_guard_accepted_by_both(self, two_point):
        concrete, generation = assert_no_drift(
            control("if (hdr.h.pub_flag) { exit; }"), two_point
        )
        assert concrete.ok
        assert not any(
            c.kind is ViolationKind.CONTROL_SIGNAL for c in generation.constraints
        )

    def test_return_in_guarded_action_body(self, two_point):
        """``return`` under a secret guard inside an action: T-Return's
        pc ⊑ ⊥ fails in both readings, at the same site."""
        locals_ = (
            "  action maybe_stop() {\n"
            "      if (hdr.h.sec_flag) { return; }\n"
            "      hdr.h.pub = 1;\n"
            "  }"
        )
        concrete, generation = assert_no_drift(control("maybe_stop();", locals_), two_point)
        concrete_sites = {
            (d.span, d.rule)
            for d in concrete.diagnostics
            if d.kind is ViolationKind.CONTROL_SIGNAL
        }
        symbolic_sites = {
            (c.span, c.rule)
            for c in generation.constraints
            if c.kind is ViolationKind.CONTROL_SIGNAL
        }
        assert concrete_sites and concrete_sites == symbolic_sites

    def test_exit_forces_bottom_write_bound_in_both(self, two_point):
        locals_ = "  action stop() { exit; }"
        concrete, generation = assert_no_drift(control("stop();", locals_), two_point)
        assert two_point.equal(concrete.function_bounds["stop"], two_point.bottom)
        assert two_point.equal(
            evaluate(generation.function_bounds["stop"], two_point, {}),
            two_point.bottom,
        )
