"""Property tests: the pre-solve reduction is an exact optimisation.

``solve(..., presolve=True)`` folds constant labels through singleton
acyclic components before the Kleene iteration starts
(:func:`repro.analysis.presolve.presolve_graph`).  The contract is
*exactness*: the least solution, the conflict set, and every unsat core
are identical to the unreduced solve -- only the amount of live work
changes.  Tested on random constraint systems (with failing checks) and
on synthetic programs across every registered lattice.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.presolve import presolve_graph
from repro.frontend.parser import parse_program
from repro.inference import (
    Constraint,
    ConstTerm,
    VarSupply,
    VarTerm,
    generate_constraints,
    infer_labels,
    join_terms,
    solve,
)
from repro.inference.graph import PropagationGraph
from repro.lattice.registry import available_lattices, get_lattice
from repro.synth import (
    chain_pipeline_program,
    deep_dataflow_program,
    random_straightline_program,
    scc_cycle_program,
)

LATTICE_NAMES = sorted(set(available_lattices()) | {"chain-3", "chain-5"})


def _systems_with_checks(draw, lattice, n_vars):
    """Random propagation constraints plus failing-prone check constraints."""
    supply = VarSupply()
    variables = [supply.fresh(f"v{i}") for i in range(n_vars)]
    labels = list(lattice.labels())

    def atom():
        if draw(st.booleans()):
            return VarTerm(draw(st.sampled_from(variables)))
        return ConstTerm(draw(st.sampled_from(labels)))

    constraints = []
    for _ in range(draw(st.integers(min_value=0, max_value=12))):
        lhs_atoms = [atom() for _ in range(draw(st.integers(min_value=1, max_value=3)))]
        lhs = join_terms(lattice, lhs_atoms)
        target = draw(st.sampled_from(variables))
        constraints.append(Constraint(lhs, VarTerm(target)))
    # Checks: upper bounds that the least solution may or may not violate.
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        lhs_atoms = [atom() for _ in range(draw(st.integers(min_value=1, max_value=2)))]
        lhs = join_terms(lattice, lhs_atoms)
        bound = draw(st.sampled_from(labels))
        constraints.append(Constraint(lhs, ConstTerm(bound)))
    return variables, constraints


def _conflict_key(conflict):
    return (
        str(conflict.constraint),
        str(conflict.observed),
        str(conflict.required),
        tuple(str(c) for c in conflict.core),
    )


@settings(max_examples=60, deadline=None)
@given(data=st.data(), name=st.sampled_from(LATTICE_NAMES))
def test_presolve_preserves_solution_conflicts_and_cores(data, name):
    """solve(reduce(S)) == solve(S): assignment, conflicts, and cores."""
    lattice = get_lattice(name)
    variables, constraints = _systems_with_checks(data.draw, lattice, n_vars=5)
    plain = solve(lattice, constraints)
    reduced = solve(lattice, constraints, presolve=True)
    for var in variables:
        assert plain.value_of(var) == reduced.value_of(var)
    assert [_conflict_key(c) for c in plain.conflicts] == [
        _conflict_key(c) for c in reduced.conflicts
    ]


@settings(max_examples=40, deadline=None)
@given(data=st.data(), name=st.sampled_from(LATTICE_NAMES))
def test_presolve_reduction_is_sound_in_isolation(data, name):
    """Every value presolve resolves equals the final least solution's."""
    lattice = get_lattice(name)
    _, constraints = _systems_with_checks(data.draw, lattice, n_vars=5)
    graph = PropagationGraph(lattice, constraints)
    reduction = presolve_graph(graph)
    solution = graph.solve()
    for var, value in reduction.values.items():
        assert solution.value_of(var) == value


@pytest.mark.parametrize("seed", range(12))
def test_presolve_agrees_on_random_programs(seed):
    """End-to-end: identical verdicts and labels on synthetic programs."""
    lattice = get_lattice("two-point")
    source = random_straightline_program(seed, statements=10)
    program = parse_program(source)
    plain = infer_labels(program, lattice)
    reduced = infer_labels(program, lattice, presolve=True)
    assert plain.ok == reduced.ok
    assert [str(d) for d in plain.diagnostics] == [
        str(d) for d in reduced.diagnostics
    ]
    assert {
        (slot.hint, str(slot.label)) for slot in plain.inferred
    } == {(slot.hint, str(slot.label)) for slot in reduced.inferred}


@pytest.mark.parametrize(
    "source,lattice_name",
    [
        (deep_dataflow_program(40, chains=4), "two-point"),
        (deep_dataflow_program(30, chains=2, sink_level="low"), "two-point"),
        (chain_pipeline_program(["L0", "L1", "L2", "L3", "L4"], rounds=3), "chain-5"),
        (scc_cycle_program(6, 3), "two-point"),
    ],
    ids=["deep-chains", "deep-leaky", "chain-pipeline", "scc-rings"],
)
def test_presolve_agrees_on_structured_programs(source, lattice_name):
    lattice = get_lattice(lattice_name)
    program = parse_program(source)
    plain = infer_labels(program, lattice)
    reduced = infer_labels(program, lattice, presolve=True)
    assert plain.ok == reduced.ok
    assert [str(d) for d in plain.diagnostics] == [
        str(d) for d in reduced.diagnostics
    ]
    for slot_a, slot_b in zip(plain.inferred, reduced.inferred):
        assert slot_a.hint == slot_b.hint
        assert slot_a.label == slot_b.label


def test_presolve_reduces_live_work_on_deep_chains():
    """Acyclic def-use chains fold away entirely before iteration."""
    lattice = get_lattice("two-point")
    program = parse_program(deep_dataflow_program(50, chains=4))
    generation = generate_constraints(program, lattice)
    graph = PropagationGraph(lattice, generation.constraints)
    plain = graph.solve()
    reduced = graph.solve(presolve=True)
    assert reduced.stats.presolve_resolved_vars > 0
    assert reduced.stats.presolve_pruned_edges > 0
    assert reduced.stats.edges_visited < plain.stats.edges_visited
    for var, value in plain.assignment.items():
        assert reduced.value_of(var) == value


def test_presolve_skips_cyclic_components():
    """SCC rings cannot be folded; presolve must leave them to iteration."""
    lattice = get_lattice("two-point")
    program = parse_program(scc_cycle_program(4, 3))
    generation = generate_constraints(program, lattice)
    graph = PropagationGraph(lattice, generation.constraints)
    reduction = presolve_graph(graph)
    for comp_index in reduction.resolved_components:
        assert not graph._cyclic[comp_index]
    solution = graph.solve(presolve=True)
    assert solution.ok


def test_presolve_respects_overrides():
    """Pinned floors (the incremental solver's overrides) stay exact."""
    lattice = get_lattice("two-point")
    program = parse_program(deep_dataflow_program(10, chains=2))
    generation = generate_constraints(program, lattice)
    graph = PropagationGraph(lattice, generation.constraints)
    var = next(iter(graph.dependents)) if graph.dependents else None
    if var is None:
        pytest.skip("no propagation edges in this system")
    overrides = {var: lattice.top}
    plain = graph.solve(overrides)
    reduced = graph.solve(overrides, presolve=True)
    assert dict(plain.assignment) == dict(reduced.assignment)
