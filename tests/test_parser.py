"""Unit tests for the parser."""

import pytest

from repro.frontend.errors import ParserError
from repro.frontend.parser import parse_expression, parse_program
from repro.syntax import (
    Assign,
    BinaryOp,
    BitType,
    Block,
    BoolLiteral,
    Call,
    CallStmt,
    ControlDecl,
    Direction,
    Exit,
    FieldAccess,
    FunctionDecl,
    HeaderDecl,
    If,
    Index,
    IntLiteral,
    MatchKindDecl,
    RecordLiteral,
    Return,
    StackType,
    StructDecl,
    TableDecl,
    TypeName,
    TypedefDecl,
    UnaryOp,
    Var,
    VarDecl,
    VarDeclStmt,
)


class TestExpressions:
    def test_int_literal(self):
        expr = parse_expression("42")
        assert isinstance(expr, IntLiteral)
        assert expr.value == 42

    def test_width_literal(self):
        expr = parse_expression("8w200")
        assert isinstance(expr, IntLiteral)
        assert expr.width == 8

    def test_bool_literals(self):
        assert parse_expression("true") == BoolLiteral(True, span=parse_expression("true").span)
        assert isinstance(parse_expression("false"), BoolLiteral)

    def test_variable(self):
        expr = parse_expression("hdr")
        assert isinstance(expr, Var)
        assert expr.name == "hdr"

    def test_field_access_chain(self):
        expr = parse_expression("hdr.ipv4.ttl")
        assert isinstance(expr, FieldAccess)
        assert expr.field_name == "ttl"
        assert isinstance(expr.target, FieldAccess)
        assert expr.target.field_name == "ipv4"

    def test_index(self):
        expr = parse_expression("stack[3]")
        assert isinstance(expr, Index)
        assert isinstance(expr.index, IntLiteral)

    def test_call_with_arguments(self):
        expr = parse_expression("forward(x, 1)")
        assert isinstance(expr, Call)
        assert len(expr.arguments) == 2

    def test_apply_desugars_to_call(self):
        expr = parse_expression("my_table.apply()")
        assert isinstance(expr, Call)
        assert isinstance(expr.callee, Var)
        assert expr.callee.name == "my_table"
        assert expr.arguments == ()

    def test_record_literal(self):
        expr = parse_expression("{a = 1, b = x}")
        assert isinstance(expr, RecordLiteral)
        assert [name for name, _ in expr.fields] == ["a", "b"]

    def test_unary(self):
        expr = parse_expression("!flag")
        assert isinstance(expr, UnaryOp)
        assert expr.op == "!"

    def test_precedence_mul_over_add(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, BinaryOp)
        assert expr.op == "+"
        assert isinstance(expr.right, BinaryOp)
        assert expr.right.op == "*"

    def test_precedence_comparison_over_logic(self):
        expr = parse_expression("a < b && c == d")
        assert expr.op == "&&"
        assert expr.left.op == "<"
        assert expr.right.op == "=="

    def test_left_associativity(self):
        expr = parse_expression("a - b - c")
        assert expr.op == "-"
        assert isinstance(expr.left, BinaryOp)
        assert expr.left.op == "-"

    def test_parentheses(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"
        assert isinstance(expr.left, BinaryOp)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParserError):
            parse_expression("1 + 2 extra")

    def test_missing_operand(self):
        with pytest.raises(ParserError):
            parse_expression("1 +")


class TestTypeDeclarations:
    def test_header_with_annotations(self):
        program = parse_program(
            "header h_t { <bit<8>, high> secret; bit<16> plain; }"
        )
        (decl,) = program.declarations
        assert isinstance(decl, HeaderDecl)
        assert decl.fields[0].ty.label == "high"
        assert isinstance(decl.fields[0].ty.ty, BitType)
        assert decl.fields[0].ty.ty.width == 8
        assert decl.fields[1].ty.label is None

    def test_struct(self):
        program = parse_program("struct headers { h_t h; g_t g; }")
        (decl,) = program.declarations
        assert isinstance(decl, StructDecl)
        assert isinstance(decl.fields[0].ty.ty, TypeName)

    def test_typedef(self):
        program = parse_program("typedef bit<48> macAddr_t;")
        (decl,) = program.declarations
        assert isinstance(decl, TypedefDecl)
        assert decl.name == "macAddr_t"

    def test_match_kind(self):
        program = parse_program("match_kind { exact, lpm, ternary }")
        (decl,) = program.declarations
        assert isinstance(decl, MatchKindDecl)
        assert decl.members == ("exact", "lpm", "ternary")

    def test_stack_type_field(self):
        program = parse_program("header h_t { bit<8>[4] lanes; }")
        (decl,) = program.declarations
        field_type = decl.fields[0].ty.ty
        assert isinstance(field_type, StackType)
        assert field_type.size == 4

    def test_global_constant(self):
        program = parse_program("const bit<8> THRESHOLD = 3;")
        (decl,) = program.declarations
        assert isinstance(decl, VarDecl)
        assert decl.init is not None


class TestControls:
    SOURCE = """
    header h_t { <bit<8>, high> x; <bit<8>, low> y; }
    struct headers { h_t h; }

    @pc(A)
    control Main(inout headers hdr, in bit<8> port) {
        bit<8> counter = 0;
        action set_x(<bit<8>, high> v) { hdr.h.x = v; }
        action nop() { }
        table t {
            key = { hdr.h.y: exact; hdr.h.x: lpm; }
            actions = { set_x(1); nop; }
        }
        apply {
            if (hdr.h.y == 0) {
                t.apply();
            } else {
                nop();
            }
            exit;
        }
    }
    """

    def test_control_structure(self):
        program = parse_program(self.SOURCE)
        assert len(program.controls) == 1
        control = program.controls[0]
        assert isinstance(control, ControlDecl)
        assert control.name == "Main"
        assert control.pc_label == "A"
        assert [p.name for p in control.params] == ["hdr", "port"]
        assert control.params[0].direction is Direction.INOUT
        assert control.params[1].direction is Direction.IN

    def test_control_locals(self):
        control = parse_program(self.SOURCE).controls[0]
        kinds = [type(decl).__name__ for decl in control.local_declarations]
        assert kinds == ["VarDecl", "FunctionDecl", "FunctionDecl", "TableDecl"]

    def test_table_contents(self):
        control = parse_program(self.SOURCE).controls[0]
        table = control.local_declarations[-1]
        assert isinstance(table, TableDecl)
        assert [k.match_kind for k in table.keys] == ["exact", "lpm"]
        assert [a.name for a in table.actions] == ["set_x", "nop"]
        assert len(table.actions[0].arguments) == 1

    def test_apply_block(self):
        control = parse_program(self.SOURCE).controls[0]
        statements = control.apply_block.statements
        assert isinstance(statements[0], If)
        assert isinstance(statements[1], Exit)
        then_stmt = statements[0].then_branch.statements[0]
        assert isinstance(then_stmt, CallStmt)

    def test_action_params(self):
        control = parse_program(self.SOURCE).controls[0]
        action = control.local_declarations[1]
        assert isinstance(action, FunctionDecl)
        assert action.is_action
        assert action.params[0].ty.label == "high"

    def test_pc_annotation_only_on_controls(self):
        with pytest.raises(ParserError):
            parse_program("@pc(A) header h_t { bit<8> x; }")

    def test_unknown_annotation(self):
        with pytest.raises(ParserError):
            parse_program("@speed(9) control C() { apply { } }")

    def test_main_control_helper(self):
        program = parse_program(self.SOURCE)
        assert program.main_control().name == "Main"
        assert program.control_named("Main") is not None
        assert program.control_named("Other") is None


class TestStatements:
    def wrap(self, body: str):
        source = (
            "header h_t { bit<8> x; } struct headers { h_t h; }\n"
            "control C(inout headers hdr) { apply { " + body + " } }"
        )
        return parse_program(source).controls[0].apply_block.statements

    def test_assignment(self):
        (stmt,) = self.wrap("hdr.h.x = 3;")
        assert isinstance(stmt, Assign)

    def test_nested_blocks(self):
        (stmt,) = self.wrap("{ hdr.h.x = 1; hdr.h.x = 2; }")
        assert isinstance(stmt, Block)
        assert len(stmt.statements) == 2

    def test_if_without_else(self):
        (stmt,) = self.wrap("if (hdr.h.x == 1) { hdr.h.x = 2; }")
        assert isinstance(stmt, If)
        assert stmt.else_branch.is_empty()

    def test_else_if_chain(self):
        (stmt,) = self.wrap(
            "if (hdr.h.x == 1) { hdr.h.x = 2; } else if (hdr.h.x == 2) { hdr.h.x = 3; }"
        )
        assert isinstance(stmt.else_branch.statements[0], If)

    def test_return_with_value(self):
        (stmt,) = self.wrap("return hdr.h.x;")
        assert isinstance(stmt, Return)
        assert stmt.value is not None

    def test_bare_return(self):
        (stmt,) = self.wrap("return;")
        assert isinstance(stmt, Return)
        assert stmt.value is None

    def test_local_variable_declaration(self):
        (stmt,) = self.wrap("bit<8> tmp = hdr.h.x;")
        assert isinstance(stmt, VarDeclStmt)
        assert stmt.declaration.name == "tmp"

    def test_annotated_local_declaration(self):
        (stmt,) = self.wrap("<bit<8>, high> tmp;")
        assert isinstance(stmt, VarDeclStmt)
        assert stmt.declaration.ty.label == "high"

    def test_named_type_local_declaration(self):
        (stmt,) = self.wrap("h_t copy;")
        assert isinstance(stmt, VarDeclStmt)
        assert isinstance(stmt.declaration.ty.ty, TypeName)

    def test_expression_statement_must_be_call(self):
        with pytest.raises(ParserError):
            self.wrap("hdr.h.x + 1;")

    def test_missing_semicolon(self):
        with pytest.raises(ParserError):
            self.wrap("hdr.h.x = 1")


class TestParserErrors:
    def test_unclosed_control(self):
        with pytest.raises(ParserError):
            parse_program("control C(inout headers hdr) { apply { }")

    def test_bad_table_body(self):
        with pytest.raises(ParserError):
            parse_program(
                "control C() { table t { rows = { } } apply { } }"
            )

    def test_bad_top_level_token(self):
        with pytest.raises(ParserError):
            parse_program("== control")

    def test_error_carries_location(self):
        try:
            parse_program("header h_t { bit<8> }")
        except ParserError as exc:
            assert exc.span.start.line == 1
        else:  # pragma: no cover
            pytest.fail("expected a parse error")
