"""The policy lattice: structure, spellings, registry, and packed codec."""

import pytest

from repro.inference.packed import PolicyCodec, codec_for
from repro.lattice import get_lattice
from repro.lattice.base import LatticeError
from repro.lattice.policy import (
    PolicyLabel,
    PolicyLattice,
    mini_policy_lattice,
    policy_lattice,
)

MINI = mini_policy_lattice()


# ---------------------------------------------------------------------------
# structure


def test_mini_carrier_and_bounds():
    labels = list(MINI.labels())
    assert len(labels) == 2**4 * 3 == 48
    assert MINI.bottom == PolicyLabel(frozenset(), frozenset(), "t0")
    assert MINI.top == PolicyLabel(
        frozenset({"analytics", "ads"}), frozenset({"store", "partner"}), "t2"
    )
    assert MINI.principal_count == 4
    assert all(label in MINI for label in labels)


def test_leq_is_pointwise():
    low = MINI.label(["analytics"], ["store"], "t0")
    high = MINI.label(["analytics", "ads"], ["store"], "t1")
    assert MINI.leq(low, high)
    assert not MINI.leq(high, low)
    # Incomparable: more purposes vs longer retention.
    other = MINI.label(["ads"], ["store"], "t2")
    assert not MINI.leq(high, other) and not MINI.leq(other, high)


def test_height_bound_is_structural():
    assert MINI.height_bound() == 2 + 2 + 3
    big = policy_lattice(120, 96, 8)
    assert big.height_bound() == 120 + 96 + 8


def test_big_lattice_refuses_enumeration():
    big = policy_lattice(120, 96, 8)
    with pytest.raises(LatticeError, match="refusing to enumerate"):
        big.labels()
    # ...but every structural operation still works.
    label = big.label(["p0", "p7"], ["r3"], "t5")
    assert big.leq(label, big.top)
    assert big.join(label, big.bottom) == label


def test_name_validation():
    with pytest.raises(LatticeError, match="no underscores"):
        PolicyLattice(["a_b"], ["r"], ["t0"])
    with pytest.raises(LatticeError, match="distinct"):
        PolicyLattice(["a", "a"], ["r"], ["t0"])
    with pytest.raises(LatticeError, match="must not overlap"):
        PolicyLattice(["a"], ["a"], ["t0"])
    with pytest.raises(LatticeError, match="not a member"):
        MINI.label(["nonexistent"])


# ---------------------------------------------------------------------------
# spellings


def test_canonical_spelling_is_identifier_safe():
    for label in MINI.labels():
        text = str(label)
        assert text.isidentifier(), text
        assert MINI.parse_label(text) == label


def test_pretty_spelling_roundtrips():
    for label in MINI.labels():
        assert MINI.parse_label(MINI.format_label(label)) == label


def test_parse_aliases_and_whitespace():
    assert MINI.parse_label("bot") == MINI.bottom
    assert MINI.parse_label("low") == MINI.bottom
    assert MINI.parse_label("top") == MINI.top
    assert MINI.parse_label("high") == MINI.top
    spaced = MINI.parse_label("{analytics, ads} |{partner} | t1")
    assert spaced == MINI.label(["analytics", "ads"], ["partner"], "t1")


def test_parse_rejects_garbage():
    with pytest.raises(LatticeError):
        MINI.parse_label("nonsense")
    with pytest.raises(LatticeError):
        MINI.parse_label("{a}|{b}")  # two components, not three
    with pytest.raises(LatticeError):
        MINI.parse_label("{unknown}|{store}|t0")


# ---------------------------------------------------------------------------
# registry


def test_registered_and_parametric_names():
    assert get_lattice("policy-mini").name == "policy-mini"
    big = get_lattice("policy-120-96-8")
    assert isinstance(big, PolicyLattice)
    assert big.principal_count == 216
    with pytest.raises(LatticeError):
        get_lattice("policy-0-1-1")
    with pytest.raises(LatticeError):
        get_lattice("policy-1-2")


# ---------------------------------------------------------------------------
# packed codec


def test_codec_contract_exhaustive_on_mini():
    codec = codec_for(MINI)
    assert isinstance(codec, PolicyCodec)
    labels = list(MINI.labels())
    assert codec.encode(MINI.bottom) == 0
    for a in labels:
        ea = codec.encode(a)
        assert codec.decode(ea) == a
        for b in labels:
            eb = codec.encode(b)
            assert MINI.leq(a, b) == (ea | eb == eb)
            assert codec.encode(MINI.join(a, b)) == ea | eb
            assert codec.encode(MINI.meet(a, b)) == ea & eb


def test_codec_scales_without_enumeration():
    big = policy_lattice(120, 96, 8)
    codec = codec_for(big)
    assert isinstance(codec, PolicyCodec)
    assert codec.width == 120 + 96 + 7
    label = big.label(["p3", "p119"], ["r0"], "t7")
    assert codec.decode(codec.encode(label)) == label
    assert codec.encode(big.bottom) == 0
    assert codec.encode(big.top) == (1 << codec.width) - 1


def test_codec_rejects_foreign_labels_and_bits():
    codec = codec_for(MINI)
    with pytest.raises(LatticeError):
        codec.encode(PolicyLabel(frozenset({"zzz"}), frozenset(), "t0"))
    with pytest.raises(LatticeError):
        codec.decode(1 << codec.width)
