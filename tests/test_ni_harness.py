"""Tests for the non-interference harness: low-equivalence, generators, and
the differential check over case studies (the empirical face of Thm 4.3)."""

import random

import pytest

from repro.casestudies import get_case_study
from repro.frontend.parser import parse_program
from repro.ifc.security_types import SBit, SBool, SHeader, SecurityType
from repro.lattice import DiamondLattice, TwoPointLattice
from repro.lattice.two_point import HIGH, LOW
from repro.ni import (
    ValueGenerator,
    check_non_interference,
    control_security_types,
    first_difference,
    low_equivalent,
    low_equivalent_pair,
    low_project,
    run_pair,
)
from repro.semantics.values import BoolValue, HeaderValue, IntValue, RecordValue

L = TwoPointLattice()


def mixed_header_type():
    return SecurityType(
        SHeader(
            (
                ("pub", SecurityType(SBit(8), LOW)),
                ("sec", SecurityType(SBit(8), HIGH)),
            )
        ),
        LOW,
    )


def header_value(pub, sec):
    return HeaderValue((("pub", IntValue(pub, 8)), ("sec", IntValue(sec, 8))))


class TestLowEquivalence:
    def test_scalars(self):
        low_type = SecurityType(SBit(8), LOW)
        high_type = SecurityType(SBit(8), HIGH)
        assert low_equivalent(L, LOW, low_type, IntValue(1, 8), IntValue(1, 8))
        assert not low_equivalent(L, LOW, low_type, IntValue(1, 8), IntValue(2, 8))
        # high scalars may differ freely at observation level low
        assert low_equivalent(L, LOW, high_type, IntValue(1, 8), IntValue(2, 8))
        # ...but not at observation level high
        assert not low_equivalent(L, HIGH, high_type, IntValue(1, 8), IntValue(2, 8))

    def test_composites(self):
        ty = mixed_header_type()
        assert low_equivalent(L, LOW, ty, header_value(1, 5), header_value(1, 9))
        assert not low_equivalent(L, LOW, ty, header_value(1, 5), header_value(2, 5))

    def test_first_difference_names_the_component(self):
        ty = mixed_header_type()
        diff = first_difference(L, LOW, ty, header_value(1, 0), header_value(3, 0))
        assert diff is not None
        assert diff[0] == ".pub"

    def test_first_difference_none_when_equivalent(self):
        ty = mixed_header_type()
        assert first_difference(L, LOW, ty, header_value(1, 0), header_value(1, 9)) is None

    def test_low_project_masks_secrets(self):
        ty = mixed_header_type()
        projected = low_project(L, LOW, ty, header_value(4, 7))
        assert projected == {"pub": 4, "sec": "<secret>"}

    def test_low_project_bool(self):
        assert low_project(L, LOW, SecurityType(SBool(), LOW), BoolValue(True)) is True

    def test_diamond_observation_levels(self):
        lattice = DiamondLattice()
        alice_type = SecurityType(SBit(8), "A")
        # An observer at level B cannot see Alice's data...
        assert low_equivalent(lattice, "B", alice_type, IntValue(1, 8), IntValue(2, 8))
        # ...but an observer at top can.
        assert not low_equivalent(lattice, "top", alice_type, IntValue(1, 8), IntValue(2, 8))


class TestGenerators:
    def test_random_value_inhabits_type(self):
        generator = ValueGenerator(random.Random(1))
        value = generator.random_value(mixed_header_type())
        assert isinstance(value, HeaderValue)
        assert isinstance(value.get("pub"), IntValue)

    def test_generated_pairs_are_low_equivalent(self):
        generator = ValueGenerator(random.Random(2))
        types = {"hdr": mixed_header_type()}
        for _ in range(25):
            inputs_a, inputs_b = low_equivalent_pair(L, LOW, types, generator)
            assert low_equivalent(L, LOW, types["hdr"], inputs_a["hdr"], inputs_b["hdr"])

    def test_generated_pairs_eventually_differ_on_secrets(self):
        generator = ValueGenerator(random.Random(3))
        types = {"hdr": mixed_header_type()}
        differs = False
        for _ in range(25):
            inputs_a, inputs_b = low_equivalent_pair(L, LOW, types, generator)
            if inputs_a["hdr"].get("sec") != inputs_b["hdr"].get("sec"):
                differs = True
        assert differs

    def test_bit_width_respected(self):
        generator = ValueGenerator(random.Random(4), max_bits=4)
        value = generator.random_value(SecurityType(SBit(32), LOW))
        assert value.width == 32
        assert value.value < 16

    def test_seeded_generation_is_reproducible(self):
        a = ValueGenerator(random.Random(9)).random_value(mixed_header_type())
        b = ValueGenerator(random.Random(9)).random_value(mixed_header_type())
        assert a == b


class TestControlSecurityTypes:
    def test_parameters_labelled(self):
        case = get_case_study("cache")
        program = parse_program(case.insecure_source)
        types = control_security_types(program)
        hdr = dict(types["hdr"].body.fields)
        req = dict(hdr["req"].body.fields)
        assert req["query"].label == HIGH

    def test_unknown_control_name(self):
        program = parse_program(get_case_study("cache").secure_source)
        with pytest.raises(ValueError):
            control_security_types(program, "Ghost")


class TestDifferentialHarness:
    @pytest.mark.parametrize("name", ["cache", "app", "netchain", "topology", "d2r"])
    def test_secure_variants_satisfy_ni(self, name):
        case = get_case_study(name)
        result = check_non_interference(
            parse_program(case.secure_source),
            control_plane=case.control_plane(),
            trials=40,
            seed=5,
        )
        assert result.holds, str(result.counterexample)

    @pytest.mark.parametrize("name", ["cache", "app", "netchain"])
    def test_observable_insecure_variants_violate_ni(self, name):
        case = get_case_study(name)
        assert case.leak_observable_differentially
        result = check_non_interference(
            parse_program(case.insecure_source),
            control_plane=case.control_plane(),
            trials=200,
            seed=5,
        )
        assert not result.holds
        assert result.counterexample is not None

    def test_counterexample_is_informative(self):
        case = get_case_study("cache")
        result = check_non_interference(
            parse_program(case.insecure_source),
            control_plane=case.control_plane(),
            trials=200,
            seed=5,
        )
        ce = result.counterexample
        assert ce.parameter == "hdr"
        assert "hit" in ce.component
        assert "differs" in str(ce)

    def test_isolation_insecure_violates_for_bob_observer(self):
        case = get_case_study("lattice")
        lattice = DiamondLattice()
        result = check_non_interference(
            parse_program(case.insecure_source),
            lattice,
            level="B",
            control_name="Alice_Ingress",
            control_plane=case.control_plane(),
            trials=100,
            seed=3,
        )
        assert not result.holds

    def test_isolation_secure_holds_for_every_observer(self):
        case = get_case_study("lattice")
        lattice = DiamondLattice()
        for control_name in case.control_names:
            for level in ("bot", "A", "B"):
                result = check_non_interference(
                    parse_program(case.secure_source),
                    lattice,
                    level=level,
                    control_name=control_name,
                    control_plane=case.control_plane(),
                    trials=40,
                    seed=1,
                )
                assert result.holds, (control_name, level, str(result.counterexample))

    def test_d2r_leak_with_directed_inputs(self):
        """The D2R leak needs the BFS to have terminated; build such packets."""
        case = get_case_study("d2r")
        program = parse_program(case.insecure_source)

        def packet(num_hops):
            return RecordValue(
                (
                    (
                        "bfs",
                        HeaderValue(
                            (
                                ("curr", IntValue(3, 32)),
                                ("next_node", IntValue(3, 32)),
                                ("tried_links", IntValue(4, 32)),
                                ("num_hops", IntValue(num_hops, 32)),
                            )
                        ),
                    ),
                    (
                        "ipv4",
                        HeaderValue(
                            (
                                ("priority", IntValue(0, 3)),
                                ("ttl", IntValue(64, 8)),
                                ("dstAddr", IntValue(3, 32)),
                            )
                        ),
                    ),
                )
            )

        # Same public fields, different secret hop counts: 1 failure vs 4.
        outputs_a, outputs_b, _ = run_pair(
            program,
            {"hdr": packet(num_hops=3)},
            {"hdr": packet(num_hops=0)},
            control_plane=case.control_plane(),
        )
        priority_a = outputs_a["hdr"].get("ipv4").get("priority")
        priority_b = outputs_b["hdr"].get("ipv4").get("priority")
        assert priority_a != priority_b  # the secret is visible in a public field

    def test_d2r_secure_with_directed_inputs(self):
        case = get_case_study("d2r")
        program = parse_program(case.secure_source)
        types = control_security_types(program)
        result = check_non_interference(
            program, control_plane=case.control_plane(), trials=60, seed=9
        )
        assert result.holds
        assert "hdr" in types

    def test_signal_divergence_is_a_violation(self):
        source = """
        header h_t { <bit<8>, high> sec; <bit<8>, low> pub; }
        struct headers { h_t h; }
        control C(inout headers hdr) {
            apply {
                if (hdr.h.sec > 7) { exit; }
            }
        }
        """
        result = check_non_interference(parse_program(source), trials=100, seed=0)
        assert not result.holds
        assert result.counterexample.parameter == "<signal>"

    def test_result_reports_parameter_types(self):
        case = get_case_study("cache")
        result = check_non_interference(
            parse_program(case.secure_source),
            control_plane=case.control_plane(),
            trials=5,
            seed=0,
        )
        assert "hdr" in result.parameter_types
