"""Unit tests for l-value evaluation, reading, and writing (App. F/G)."""

import pytest

from repro.semantics.errors import EvaluationError
from repro.semantics.lvalues import (
    LField,
    LIndex,
    LVar,
    lval_base,
    read_lvalue,
    write_lvalue,
    zero_like,
)
from repro.semantics.store import Environment, Store
from repro.semantics.values import (
    BoolValue,
    HeaderValue,
    IntValue,
    RecordValue,
    StackValue,
)


def make_state():
    store = Store()
    env = Environment()
    inner = HeaderValue((("a", IntValue(1, 8)), ("b", IntValue(2, 8))))
    stack = StackValue((IntValue(10, 8), IntValue(20, 8), IntValue(30, 8)))
    outer = RecordValue((("h", inner), ("lanes", stack)))
    env.bind("hdr", store.fresh(outer))
    env.bind("x", store.fresh(IntValue(7, 8)))
    return store, env


class TestBaseAndZero:
    def test_lval_base(self):
        path = LIndex(LField(LVar("hdr"), "lanes"), 1)
        assert lval_base(path) == "hdr"
        assert lval_base(LVar("x")) == "x"

    def test_zero_like(self):
        assert zero_like(IntValue(9, 8)) == IntValue(0, 8)
        assert zero_like(BoolValue(True)) == BoolValue(False)
        zeroed = zero_like(RecordValue((("a", IntValue(3, 8)),)))
        assert zeroed.get("a").value == 0

    def test_zero_like_preserves_shape(self):
        stack = StackValue((IntValue(1, 8), IntValue(2, 8)))
        assert len(zero_like(stack).elements) == 2


class TestReading:
    def test_read_variable(self):
        store, env = make_state()
        assert read_lvalue(LVar("x"), env, store).value == 7

    def test_read_nested_field(self):
        store, env = make_state()
        path = LField(LField(LVar("hdr"), "h"), "b")
        assert read_lvalue(path, env, store).value == 2

    def test_read_stack_element(self):
        store, env = make_state()
        path = LIndex(LField(LVar("hdr"), "lanes"), 2)
        assert read_lvalue(path, env, store).value == 30

    def test_read_out_of_bounds_is_havoc_zero(self):
        store, env = make_state()
        path = LIndex(LField(LVar("hdr"), "lanes"), 99)
        assert read_lvalue(path, env, store).value == 0

    def test_read_missing_field(self):
        store, env = make_state()
        with pytest.raises(EvaluationError):
            read_lvalue(LField(LVar("hdr"), "ghost"), env, store)

    def test_read_field_of_scalar(self):
        store, env = make_state()
        with pytest.raises(EvaluationError):
            read_lvalue(LField(LVar("x"), "a"), env, store)


class TestWriting:
    def test_write_variable(self):
        store, env = make_state()
        write_lvalue(LVar("x"), IntValue(99, 8), env, store)
        assert read_lvalue(LVar("x"), env, store).value == 99

    def test_write_nested_field(self):
        store, env = make_state()
        path = LField(LField(LVar("hdr"), "h"), "a")
        write_lvalue(path, IntValue(42, 8), env, store)
        assert read_lvalue(path, env, store).value == 42
        # sibling untouched
        sibling = LField(LField(LVar("hdr"), "h"), "b")
        assert read_lvalue(sibling, env, store).value == 2

    def test_write_stack_element(self):
        store, env = make_state()
        path = LIndex(LField(LVar("hdr"), "lanes"), 0)
        write_lvalue(path, IntValue(77, 8), env, store)
        assert read_lvalue(path, env, store).value == 77

    def test_write_out_of_bounds_is_noop(self):
        store, env = make_state()
        path = LIndex(LField(LVar("hdr"), "lanes"), 99)
        write_lvalue(path, IntValue(77, 8), env, store)
        lanes = read_lvalue(LField(LVar("hdr"), "lanes"), env, store)
        assert [e.value for e in lanes.elements] == [10, 20, 30]

    def test_write_only_touches_base_variable(self):
        store, env = make_state()
        before_x = read_lvalue(LVar("x"), env, store)
        write_lvalue(LField(LField(LVar("hdr"), "h"), "a"), IntValue(5, 8), env, store)
        assert read_lvalue(LVar("x"), env, store) == before_x

    def test_write_missing_field(self):
        store, env = make_state()
        with pytest.raises(EvaluationError):
            write_lvalue(LField(LVar("hdr"), "ghost"), IntValue(1, 8), env, store)

    def test_write_unknown_variable(self):
        store, env = make_state()
        with pytest.raises(EvaluationError):
            write_lvalue(LVar("ghost"), IntValue(1, 8), env, store)
