"""IFC typing of statements (Figure 6): explicit flows, implicit flows,
control signals, and table application contexts."""

from repro.frontend.parser import parse_program
from repro.ifc import ViolationKind, check_ifc
from repro.lattice import DiamondLattice

PRELUDE = """
header h_t {
    <bit<8>, low>  pub;
    <bit<8>, low>  pub2;
    <bit<8>, high> sec;
    <bit<8>, high> sec2;
    <bool, low>    pub_flag;
    <bool, high>   sec_flag;
}
struct headers { h_t h; }
"""


def ifc(body: str, locals_: str = "", lattice=None):
    source = (
        PRELUDE
        + "control C(inout headers hdr) {\n"
        + locals_
        + "\n  apply {\n"
        + body
        + "\n  }\n}"
    )
    return check_ifc(parse_program(source), lattice)


def kinds(result):
    return [diag.kind for diag in result.diagnostics]


class TestAssign:
    def test_low_to_low(self):
        assert ifc("hdr.h.pub = hdr.h.pub2;").ok

    def test_low_to_high(self):
        assert ifc("hdr.h.sec = hdr.h.pub;").ok

    def test_high_to_high(self):
        assert ifc("hdr.h.sec = hdr.h.sec2;").ok

    def test_high_to_low_rejected(self):
        result = ifc("hdr.h.pub = hdr.h.sec;")
        assert kinds(result) == [ViolationKind.EXPLICIT_FLOW]

    def test_constant_to_low(self):
        assert ifc("hdr.h.pub = 3;").ok

    def test_binop_label_is_join(self):
        result = ifc("hdr.h.pub = hdr.h.pub2 + hdr.h.sec;")
        assert kinds(result) == [ViolationKind.EXPLICIT_FLOW]

    def test_binop_of_lows_is_low(self):
        assert ifc("hdr.h.pub = hdr.h.pub + hdr.h.pub2;").ok

    def test_high_binop_into_high(self):
        assert ifc("hdr.h.sec = hdr.h.sec + hdr.h.pub;").ok

    def test_unary_preserves_label(self):
        assert kinds(ifc("hdr.h.pub = ~hdr.h.sec;")) == [ViolationKind.EXPLICIT_FLOW]

    def test_each_leak_reported_separately(self):
        result = ifc("hdr.h.pub = hdr.h.sec; hdr.h.pub2 = hdr.h.sec2;")
        assert kinds(result) == [ViolationKind.EXPLICIT_FLOW] * 2


class TestConditionals:
    def test_low_guard_low_write(self):
        assert ifc("if (hdr.h.pub_flag) { hdr.h.pub = 1; }").ok

    def test_high_guard_high_write(self):
        assert ifc("if (hdr.h.sec_flag) { hdr.h.sec = 1; }").ok

    def test_high_guard_low_write_rejected(self):
        result = ifc("if (hdr.h.sec_flag) { hdr.h.pub = 1; }")
        assert kinds(result) == [ViolationKind.IMPLICIT_FLOW]

    def test_high_guard_low_write_in_else(self):
        result = ifc("if (hdr.h.sec_flag) { hdr.h.sec = 1; } else { hdr.h.pub = 1; }")
        assert kinds(result) == [ViolationKind.IMPLICIT_FLOW]

    def test_high_comparison_guard(self):
        result = ifc("if (hdr.h.sec == 3) { hdr.h.pub = 1; }")
        assert kinds(result) == [ViolationKind.IMPLICIT_FLOW]

    def test_nested_guards_join(self):
        body = """
        if (hdr.h.pub_flag) {
            if (hdr.h.sec_flag) {
                hdr.h.pub = 1;
            }
        }
        """
        assert kinds(ifc(body)) == [ViolationKind.IMPLICIT_FLOW]

    def test_high_guard_then_low_write_after_branch(self):
        # The pc is restored after the conditional: writes after it are fine.
        body = """
        if (hdr.h.sec_flag) { hdr.h.sec = 1; }
        hdr.h.pub = 2;
        """
        assert ifc(body).ok

    def test_both_branches_checked(self):
        body = "if (hdr.h.sec_flag) { hdr.h.pub = 1; } else { hdr.h.pub2 = 2; }"
        assert kinds(ifc(body)) == [ViolationKind.IMPLICIT_FLOW] * 2

    def test_local_variable_declared_in_high_branch(self):
        body = """
        if (hdr.h.sec_flag) {
            <bit<8>, high> tmp = hdr.h.sec;
            hdr.h.sec = tmp + 1;
        }
        """
        assert ifc(body).ok


class TestControlSignals:
    def test_exit_at_low_pc(self):
        assert ifc("exit;").ok

    def test_exit_under_high_guard_rejected(self):
        result = ifc("if (hdr.h.sec_flag) { exit; }")
        assert ViolationKind.CONTROL_SIGNAL in kinds(result)

    def test_exit_under_low_guard(self):
        assert ifc("if (hdr.h.pub_flag) { exit; }").ok

    def test_return_in_action_under_high_guard(self):
        locals_ = """
  action f() {
      if (hdr.h.sec_flag) { return; }
      hdr.h.sec = 1;
  }
"""
        result = ifc("f();", locals_)
        assert ViolationKind.CONTROL_SIGNAL in kinds(result)


class TestVarDeclStatements:
    def test_high_init_into_high_local(self):
        assert ifc("<bit<8>, high> t = hdr.h.sec; hdr.h.sec = t;").ok

    def test_high_init_into_low_local_rejected(self):
        result = ifc("<bit<8>, low> t = hdr.h.sec;")
        assert kinds(result) == [ViolationKind.EXPLICIT_FLOW]

    def test_low_local_flows_to_low(self):
        assert ifc("bit<8> t = hdr.h.pub; hdr.h.pub2 = t;").ok

    def test_high_local_cannot_reach_low_field(self):
        result = ifc("<bit<8>, high> t = hdr.h.sec; hdr.h.pub = t;")
        assert kinds(result) == [ViolationKind.EXPLICIT_FLOW]

    def test_unannotated_local_defaults_to_low(self):
        result = ifc("bit<8> t = hdr.h.sec;")
        assert kinds(result) == [ViolationKind.EXPLICIT_FLOW]


class TestTableApplication:
    LOCALS = """
  action set_pub() { hdr.h.pub = 1; }
  action set_sec() { hdr.h.sec = 1; }
  table low_writer { key = { hdr.h.pub2: exact; } actions = { set_pub; } }
  table high_writer { key = { hdr.h.sec2: exact; } actions = { set_sec; } }
"""

    def test_low_table_at_low_pc(self):
        assert ifc("low_writer.apply();", self.LOCALS).ok

    def test_low_table_under_high_guard_rejected(self):
        result = ifc("if (hdr.h.sec_flag) { low_writer.apply(); }", self.LOCALS)
        assert ViolationKind.IMPLICIT_FLOW in kinds(result)

    def test_high_table_under_high_guard(self):
        assert ifc("if (hdr.h.sec_flag) { high_writer.apply(); }", self.LOCALS).ok

    def test_action_call_under_high_guard_rejected(self):
        result = ifc("if (hdr.h.sec_flag) { set_pub(); }", self.LOCALS)
        assert ViolationKind.CALL_CONTEXT in kinds(result)

    def test_high_action_call_under_high_guard(self):
        assert ifc("if (hdr.h.sec_flag) { set_sec(); }", self.LOCALS).ok


class TestDiamondPc:
    SOURCE = """
    header d_t { <bit<8>, A> a; <bit<8>, B> b; <bit<8>, top> t; <bit<8>, bot> r; }
    struct headers { d_t d; }

    @pc(A)
    control Alice(inout headers hdr) {
        apply {
            BODY
        }
    }
    """

    def check(self, body):
        return check_ifc(
            parse_program(self.SOURCE.replace("BODY", body)), DiamondLattice()
        )

    def test_alice_writes_own_field(self):
        assert self.check("hdr.d.a = hdr.d.r;").ok

    def test_alice_writes_telemetry(self):
        assert self.check("hdr.d.t = hdr.d.t + 1;").ok

    def test_alice_cannot_write_bob(self):
        result = self.check("hdr.d.b = 1;")
        assert ViolationKind.IMPLICIT_FLOW in kinds(result)

    def test_alice_cannot_write_bottom(self):
        result = self.check("hdr.d.r = 1;")
        assert ViolationKind.IMPLICIT_FLOW in kinds(result)

    def test_alice_cannot_read_telemetry_into_own(self):
        result = self.check("hdr.d.a = hdr.d.t;")
        assert ViolationKind.EXPLICIT_FLOW in kinds(result)
