"""IFC typing of expressions (Figure 5): labels of literals, variables,
operators, projections, indexing, and calls."""

from repro.frontend.parser import parse_expression, parse_program
from repro.ifc import ViolationKind
from repro.ifc.checker import DIR_IN, DIR_INOUT, IfcChecker
from repro.ifc.context import SecurityContext, SecurityTypeDefs
from repro.ifc.convert import TypeLabeler
from repro.ifc.security_types import (
    SBit,
    SBool,
    SHeader,
    SInt,
    SRecord,
    SStack,
    SecurityType,
)
from repro.lattice.two_point import HIGH, LOW, TwoPointLattice


def make_env():
    """A checker, a typing context with a few bindings, and a labeler."""
    lattice = TwoPointLattice()
    checker = IfcChecker(lattice)
    labeler = TypeLabeler(lattice, SecurityTypeDefs())
    gamma = SecurityContext()
    gamma.bind("pub", SecurityType(SBit(8), LOW))
    gamma.bind("sec", SecurityType(SBit(8), HIGH))
    gamma.bind("flag", SecurityType(SBool(), HIGH))
    gamma.bind(
        "hdr",
        SecurityType(
            SHeader(
                (
                    ("pub_f", SecurityType(SBit(8), LOW)),
                    ("sec_f", SecurityType(SBit(8), HIGH)),
                )
            ),
            LOW,
        ),
    )
    gamma.bind(
        "rec",
        SecurityType(SRecord((("x", SecurityType(SBit(16), HIGH)),)), LOW),
    )
    gamma.bind(
        "low_stack", SecurityType(SStack(SecurityType(SBit(8), LOW), 4), LOW)
    )
    gamma.bind(
        "high_stack", SecurityType(SStack(SecurityType(SBit(8), HIGH), 4), LOW)
    )
    return checker, gamma, labeler


def type_of(source: str):
    checker, gamma, labeler = make_env()
    sec_type, direction = checker.check_expression(
        parse_expression(source), gamma, labeler, checker.lattice.bottom
    )
    return sec_type, direction, checker


class TestLiterals:
    def test_int_literal_is_bottom(self):
        sec, direction, _ = type_of("42")
        assert isinstance(sec.body, SInt)
        assert sec.label == LOW
        assert direction == DIR_IN

    def test_width_literal_is_bit(self):
        sec, _, _ = type_of("8w3")
        assert isinstance(sec.body, SBit)
        assert sec.body.width == 8

    def test_bool_literal(self):
        sec, _, _ = type_of("true")
        assert isinstance(sec.body, SBool)
        assert sec.label == LOW


class TestVariablesAndProjections:
    def test_variable_direction_is_inout(self):
        sec, direction, _ = type_of("sec")
        assert sec.label == HIGH
        assert direction == DIR_INOUT

    def test_header_field_keeps_field_label(self):
        sec, direction, _ = type_of("hdr.sec_f")
        assert sec.label == HIGH
        assert direction == DIR_INOUT

    def test_low_header_field(self):
        sec, _, _ = type_of("hdr.pub_f")
        assert sec.label == LOW

    def test_record_field(self):
        sec, _, _ = type_of("rec.x")
        assert sec.label == HIGH
        assert sec.body.width == 16


class TestOperators:
    def test_join_of_operand_labels(self):
        assert type_of("pub + sec")[0].label == HIGH
        assert type_of("pub + pub")[0].label == LOW
        assert type_of("sec + sec")[0].label == HIGH

    def test_comparison_result_is_bool(self):
        sec, _, _ = type_of("pub == sec")
        assert isinstance(sec.body, SBool)
        assert sec.label == HIGH

    def test_literal_operand_keeps_other_label(self):
        assert type_of("sec + 1")[0].label == HIGH
        assert type_of("pub + 1")[0].label == LOW

    def test_unary_keeps_label(self):
        assert type_of("!flag")[0].label == HIGH
        assert type_of("~pub")[0].label == LOW

    def test_direction_of_operations_is_in(self):
        assert type_of("pub + 1")[1] == DIR_IN


class TestRecordsAndStacks:
    def test_record_literal_field_labels(self):
        sec, direction, _ = type_of("{a = pub, b = sec}")
        fields = dict(sec.body.fields)
        assert fields["a"].label == LOW
        assert fields["b"].label == HIGH
        assert direction == DIR_IN

    def test_low_index_into_stack(self):
        sec, _, checker = type_of("low_stack[1]")
        assert sec.label == LOW
        assert not checker._diagnostics

    def test_high_index_into_low_stack_flagged(self):
        _, _, checker = type_of("low_stack[sec]")
        assert [d.kind for d in checker._diagnostics] == [ViolationKind.EXPLICIT_FLOW]

    def test_high_index_into_high_stack_ok(self):
        sec, _, checker = type_of("high_stack[sec]")
        assert sec.label == HIGH
        assert not checker._diagnostics

    def test_stack_direction_propagates(self):
        assert type_of("low_stack[0]")[1] == DIR_INOUT


class TestSubsumption:
    """T-SubType-In: in-direction expressions may raise their label,
    exercised through whole programs (argument passing and assignment)."""

    PRELUDE = """
    header h_t { <bit<8>, low> pub; <bit<8>, high> sec; }
    struct headers { h_t h; }
    """

    def check(self, locals_, body):
        from repro.ifc import check_ifc

        source = (
            self.PRELUDE
            + "control C(inout headers hdr) {\n"
            + locals_
            + "\n apply {\n"
            + body
            + "\n } }"
        )
        return check_ifc(parse_program(source))

    def test_low_value_accepted_at_high_position(self):
        assert self.check(
            "  action f(in <bit<8>, high> v) { hdr.h.sec = v; }", "f(hdr.h.pub);"
        ).ok

    def test_literal_accepted_anywhere(self):
        assert self.check(
            "  action f(in <bit<8>, high> v) { hdr.h.sec = v; }", "f(200);"
        ).ok

    def test_low_to_high_assignment_uses_subsumption(self):
        assert self.check("", "hdr.h.sec = hdr.h.pub;").ok
