"""Empirical soundness (Theorem 4.3): every program the IFC checker accepts
must pass the differential non-interference harness.

The programs come from the synthetic straight-line generator, which emits a
mix of leaky and leak-free programs over {low, high} (and over a 3-level
chain); the property is one-directional, exactly like the theorem: accepted
programs are non-interfering, while rejected programs may or may not be
(the type system is conservative).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend.parser import parse_program
from repro.ifc import check_ifc
from repro.lattice import ChainLattice, TwoPointLattice
from repro.ni import check_non_interference
from repro.synth import chain_pipeline_program, random_straightline_program, wide_table_program
from repro.typechecker import check_core_types


@given(st.integers(min_value=0, max_value=2_000))
@settings(max_examples=60, deadline=None)
def test_accepted_straightline_programs_are_noninterfering(seed):
    source = random_straightline_program(seed, statements=6)
    program = parse_program(source)
    assert check_core_types(program).ok
    if check_ifc(program).ok:
        result = check_non_interference(program, trials=25, seed=seed, max_bits=6)
        assert result.holds, (
            f"seed {seed}: the checker accepted a program that violates "
            f"non-interference: {result.counterexample}\n{source}"
        )


@given(st.integers(min_value=0, max_value=2_000))
@settings(max_examples=30, deadline=None)
def test_soundness_over_three_level_chain(seed):
    lattice = ChainLattice(["low", "mid", "high"])
    source = random_straightline_program(seed, statements=5, levels=lattice.levels)
    program = parse_program(source)
    if check_ifc(program, lattice).ok:
        for level in lattice.levels:
            result = check_non_interference(
                program, lattice, level=level, trials=15, seed=seed, max_bits=5
            )
            assert result.holds, (seed, level, str(result.counterexample))


@given(st.integers(min_value=0, max_value=2_000))
@settings(max_examples=40, deadline=None)
def test_rejected_programs_still_execute(seed):
    """Rejection is a static verdict; the interpreter still runs the program
    (the type system is not needed for memory safety of the fragment)."""
    source = random_straightline_program(seed, statements=5)
    program = parse_program(source)
    result = check_non_interference(program, trials=3, seed=seed)
    assert result.trials >= 1 or result.counterexample is not None


@given(st.integers(min_value=2, max_value=9))
@settings(max_examples=8, deadline=None)
def test_chain_pipeline_always_accepted_and_noninterfering(height):
    lattice = ChainLattice.of_height(height)
    source = chain_pipeline_program(lattice.levels, rounds=2)
    program = parse_program(source)
    assert check_ifc(program, lattice).ok
    result = check_non_interference(program, lattice, trials=10, seed=height)
    assert result.holds


@pytest.mark.parametrize("secure", [True, False])
def test_wide_table_program_verdicts(secure):
    source = wide_table_program(tables=3, actions_per_table=3, secure=secure)
    program = parse_program(source)
    assert check_core_types(program).ok
    assert check_ifc(program).ok is secure


def test_generator_produces_both_verdicts():
    verdicts = {check_ifc(parse_program(random_straightline_program(seed))).ok for seed in range(40)}
    assert verdicts == {True, False}


def test_two_point_acceptance_is_monotone_in_lattice_collapse():
    """If every label maps to the same point, nothing can leak: any program
    the two-point checker rejects must be accepted when labels collapse."""
    collapsed = ChainLattice(["low", "high"])  # same shape, sanity baseline
    for seed in range(20):
        source = random_straightline_program(seed)
        program = parse_program(source)
        two_point_verdict = check_ifc(program, TwoPointLattice()).ok
        same_shape_verdict = check_ifc(program, collapsed).ok
        assert two_point_verdict == same_shape_verdict
