"""Property-based tests for low-equivalence and the pair generators."""

import random

from hypothesis import given, settings, strategies as st

from repro.ifc.security_types import SBit, SBool, SHeader, SRecord, SecurityType
from repro.lattice import DiamondLattice, TwoPointLattice
from repro.lattice.two_point import HIGH, LOW
from repro.ni import ValueGenerator, low_equivalent, low_equivalent_pair, low_project

TWO_POINT = TwoPointLattice()
DIAMOND = DiamondLattice()


@st.composite
def labelled_type(draw, lattice):
    """A small random security type over the given lattice."""
    labels = list(lattice.labels())
    kind = draw(st.sampled_from(["bit", "bool", "header", "record"]))
    if kind == "bit":
        return SecurityType(SBit(draw(st.sampled_from([1, 8, 16, 32]))), draw(st.sampled_from(labels)))
    if kind == "bool":
        return SecurityType(SBool(), draw(st.sampled_from(labels)))
    field_count = draw(st.integers(min_value=1, max_value=4))
    fields = tuple(
        (
            f"f{i}",
            SecurityType(SBit(8), draw(st.sampled_from(labels))),
        )
        for i in range(field_count)
    )
    body = SHeader(fields) if kind == "header" else SRecord(fields)
    return SecurityType(body, lattice.bottom)


@st.composite
def type_and_seed(draw, lattice):
    return draw(labelled_type(lattice)), draw(st.integers(min_value=0, max_value=10_000))


@given(type_and_seed(TWO_POINT))
@settings(max_examples=150)
def test_low_equivalence_is_reflexive(data):
    sec_type, seed = data
    value = ValueGenerator(random.Random(seed)).random_value(sec_type)
    for level in (LOW, HIGH):
        assert low_equivalent(TWO_POINT, level, sec_type, value, value)


@given(type_and_seed(TWO_POINT))
@settings(max_examples=150)
def test_low_equivalence_is_symmetric(data):
    sec_type, seed = data
    rng = random.Random(seed)
    generator = ValueGenerator(rng)
    a = generator.random_value(sec_type)
    b = generator.random_value(sec_type)
    assert low_equivalent(TWO_POINT, LOW, sec_type, a, b) == low_equivalent(
        TWO_POINT, LOW, sec_type, b, a
    )


@given(type_and_seed(TWO_POINT))
@settings(max_examples=150)
def test_vary_secrets_preserves_low_equivalence(data):
    sec_type, seed = data
    generator = ValueGenerator(random.Random(seed))
    value = generator.random_value(sec_type)
    varied = generator.vary_secrets(TWO_POINT, LOW, sec_type, value)
    assert low_equivalent(TWO_POINT, LOW, sec_type, value, varied)


@given(type_and_seed(DIAMOND))
@settings(max_examples=100)
def test_vary_secrets_preserves_low_equivalence_on_diamond(data):
    sec_type, seed = data
    generator = ValueGenerator(random.Random(seed))
    value = generator.random_value(sec_type)
    for level in ("bot", "A", "B", "top"):
        varied = generator.vary_secrets(DIAMOND, level, sec_type, value)
        assert low_equivalent(DIAMOND, level, sec_type, value, varied)


@given(type_and_seed(TWO_POINT))
@settings(max_examples=150)
def test_projection_equality_iff_low_equivalent(data):
    sec_type, seed = data
    generator = ValueGenerator(random.Random(seed))
    a = generator.random_value(sec_type)
    b = generator.random_value(sec_type)
    same_projection = low_project(TWO_POINT, LOW, sec_type, a) == low_project(
        TWO_POINT, LOW, sec_type, b
    )
    assert same_projection == low_equivalent(TWO_POINT, LOW, sec_type, a, b)


@given(type_and_seed(TWO_POINT))
@settings(max_examples=100)
def test_equivalence_at_top_implies_equivalence_below(data):
    """Observation levels are monotone: agreeing at ⊤ (everything visible)
    implies agreeing at every lower level."""
    sec_type, seed = data
    generator = ValueGenerator(random.Random(seed))
    a = generator.random_value(sec_type)
    b = generator.random_value(sec_type)
    if low_equivalent(TWO_POINT, HIGH, sec_type, a, b):
        assert low_equivalent(TWO_POINT, LOW, sec_type, a, b)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=100)
def test_pair_generator_contract(seed):
    """Pairs agree on every level-visible part and the first component is a
    fresh random value (so secrets do vary across trials)."""
    sec_types = {
        "hdr": SecurityType(
            SHeader(
                (
                    ("pub", SecurityType(SBit(8), LOW)),
                    ("sec", SecurityType(SBit(8), HIGH)),
                    ("flag", SecurityType(SBool(), HIGH)),
                )
            ),
            LOW,
        )
    }
    generator = ValueGenerator(random.Random(seed))
    inputs_a, inputs_b = low_equivalent_pair(TWO_POINT, LOW, sec_types, generator)
    assert inputs_a.keys() == inputs_b.keys() == {"hdr"}
    assert low_equivalent(TWO_POINT, LOW, sec_types["hdr"], inputs_a["hdr"], inputs_b["hdr"])
