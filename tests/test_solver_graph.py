"""Unit tests for the propagation-graph subsystem and the incremental Solver.

Covers the tentpole pieces directly: edge deduplication with provenance,
Tarjan SCC condensation in topological order, cone-of-influence queries,
single-pass scheduling of acyclic regions, and ``Solver.resolve`` -- the
cone-restricted incremental re-solve whose results must be
indistinguishable from a from-scratch solve.
"""

from __future__ import annotations

import pytest

from repro.ifc.errors import ViolationKind
from repro.inference import (
    Constraint,
    ConstTerm,
    JoinTerm,
    PropagationGraph,
    Solver,
    VarSupply,
    VarTerm,
    solve,
)
from repro.lattice.registry import get_lattice


def _chain(lattice, supply, names):
    """Variables v0..vn with edges v0 → v1 → ... → vn."""
    variables = [supply.fresh(name) for name in names]
    constraints = [
        Constraint(VarTerm(a), VarTerm(b))
        for a, b in zip(variables, variables[1:])
    ]
    return variables, constraints


class TestGraphStructure:
    def test_edges_dedupe_by_shape_keep_provenance(self):
        lattice = get_lattice("two-point")
        supply = VarSupply()
        a, b = supply.fresh("a"), supply.fresh("b")
        first = Constraint(VarTerm(a), VarTerm(b), rule="T-Assign")
        # A repeated use site: same shape, different provenance.
        second = Constraint(VarTerm(a), VarTerm(b), rule="T-TblDecl")
        graph = PropagationGraph(lattice, [first, second])
        assert len(graph.edges) == 1
        assert graph.edges[0].constraints == (first, second)

    def test_dedupe_does_not_inflate_propagation_count(self):
        lattice = get_lattice("two-point")
        supply = VarSupply()
        a, b = supply.fresh("a"), supply.fresh("b")
        repeated = [
            Constraint(VarTerm(a), VarTerm(b), rule=f"use-{i}") for i in range(5)
        ]
        solution = solve(lattice, repeated)
        assert solution.propagation_count == 1

    def test_distinct_covers_stay_distinct_edges(self):
        lattice = get_lattice("diamond")
        supply = VarSupply()
        a, b = supply.fresh("a"), supply.fresh("b")
        low_cover = Constraint(
            VarTerm(a), JoinTerm((VarTerm(b), ConstTerm("A")))
        )
        high_cover = Constraint(
            VarTerm(a), JoinTerm((VarTerm(b), ConstTerm("B")))
        )
        graph = PropagationGraph(lattice, [low_cover, high_cover])
        assert len(graph.edges) == 2

    def test_components_in_topological_order(self):
        lattice = get_lattice("two-point")
        supply = VarSupply()
        variables, constraints = _chain(lattice, supply, ["a", "b", "c", "d"])
        graph = PropagationGraph(lattice, constraints)
        positions = [graph.component_of[var] for var in variables]
        assert positions == sorted(positions)
        assert len(graph.components) == len(variables)
        assert graph.cyclic_component_count == 0

    def test_cycle_collapses_into_one_component(self):
        lattice = get_lattice("two-point")
        supply = VarSupply()
        a, b, c, d = (supply.fresh(n) for n in "abcd")
        constraints = [
            Constraint(VarTerm(a), VarTerm(b)),
            Constraint(VarTerm(b), VarTerm(c)),
            Constraint(VarTerm(c), VarTerm(b)),  # b <-> c cycle
            Constraint(VarTerm(c), VarTerm(d)),
        ]
        graph = PropagationGraph(lattice, constraints)
        assert graph.component_of[b] == graph.component_of[c]
        assert graph.component_of[a] < graph.component_of[b]
        assert graph.component_of[c] < graph.component_of[d]
        assert graph.cyclic_component_count == 1
        assert graph.largest_component == 2

    def test_self_loop_marks_component_cyclic(self):
        lattice = get_lattice("two-point")
        supply = VarSupply()
        a, b = supply.fresh("a"), supply.fresh("b")
        constraints = [
            Constraint(JoinTerm((VarTerm(a), VarTerm(b))), VarTerm(b)),
        ]
        graph = PropagationGraph(lattice, constraints)
        assert graph.cyclic_component_count == 1

    def test_cone_of_influence_is_forward_closure(self):
        lattice = get_lattice("two-point")
        supply = VarSupply()
        variables, constraints = _chain(
            lattice, supply, ["a", "b", "c", "d", "e"]
        )
        a, b, c, d, e = variables
        other = supply.fresh("other")
        constraints.append(Constraint(VarTerm(other), VarTerm(e)))
        graph = PropagationGraph(lattice, constraints)
        assert graph.cone_of([c]) == {c, d, e}
        assert graph.cone_of([other]) == {other, e}
        assert graph.cone_of([e]) == {e}

    def test_cone_includes_whole_cycles(self):
        lattice = get_lattice("two-point")
        supply = VarSupply()
        a, b, c = (supply.fresh(n) for n in "abc")
        constraints = [
            Constraint(VarTerm(a), VarTerm(b)),
            Constraint(VarTerm(b), VarTerm(c)),
            Constraint(VarTerm(c), VarTerm(b)),
        ]
        graph = PropagationGraph(lattice, constraints)
        assert graph.cone_of([a]) == {a, b, c}

    def test_edges_visited_counts_distinct_edges_not_pops(self):
        lattice = get_lattice("two-point")
        supply = VarSupply()
        a, b, c = (supply.fresh(n) for n in "abc")
        constraints = [
            Constraint(ConstTerm("high"), VarTerm(a)),
            Constraint(VarTerm(a), VarTerm(b)),
            Constraint(VarTerm(b), VarTerm(c)),
            Constraint(VarTerm(c), VarTerm(b)),  # cycle forces a second pass
        ]
        solution = solve(lattice, constraints)
        assert solution.stats.edges_visited == len(constraints)
        assert solution.stats.worklist_pops > solution.stats.edges_visited

    def test_acyclic_solve_is_single_pass(self):
        lattice = get_lattice("two-point")
        supply = VarSupply()
        variables, constraints = _chain(
            lattice, supply, [f"v{i}" for i in range(20)]
        )
        constraints.insert(
            0, Constraint(ConstTerm("high"), VarTerm(variables[0]))
        )
        solution = solve(lattice, constraints)
        assert solution.stats.max_passes == 1
        assert solution.iterations == len(constraints)
        assert solution.value_of(variables[-1]) == "high"


class TestSolverResolve:
    def _chain_solver(self, lattice, length=8):
        supply = VarSupply()
        variables = [supply.fresh(f"v{i}") for i in range(length)]
        constraints = [
            Constraint(VarTerm(a), VarTerm(b))
            for a, b in zip(variables, variables[1:])
        ]
        return variables, constraints, Solver(lattice, constraints)

    def test_resolve_matches_scratch_solve(self):
        lattice = get_lattice("diamond")
        variables, constraints, solver = self._chain_solver(lattice)
        solver.solve()
        edited = variables[3]
        incremental = solver.resolve({edited: "A"})
        scratch = solve(
            lattice, constraints + [Constraint(ConstTerm("A"), VarTerm(edited))]
        )
        for var in variables:
            assert lattice.equal(
                incremental.value_of(var), scratch.value_of(var)
            )

    def test_resolve_visits_only_the_cone(self):
        lattice = get_lattice("two-point")
        variables, _constraints, solver = self._chain_solver(lattice, length=10)
        solver.solve()
        incremental = solver.resolve({variables[7]: "high"})
        # Cone of v7 = {v7, v8, v9}; one in-edge each for v7..v9.
        assert incremental.stats.edges_visited == 3
        assert incremental.value_of(variables[9]) == "high"
        assert incremental.value_of(variables[6]) == "low"

    def test_resolve_lowers_when_a_pin_is_removed(self):
        lattice = get_lattice("diamond")
        variables, _constraints, solver = self._chain_solver(lattice)
        solver.resolve({variables[0]: "B"})
        assert solver.solve().value_of(variables[-1]) == "B"
        lowered = solver.resolve({variables[0]: None})
        for var in variables:
            assert lattice.equal(lowered.value_of(var), lattice.bottom)

    def test_resolve_replacing_a_pin_recomputes_downstream(self):
        lattice = get_lattice("diamond")
        variables, _constraints, solver = self._chain_solver(lattice)
        solver.resolve({variables[2]: "A"})
        switched = solver.resolve({variables[2]: "B"})
        # Not joined with the old pin: the edit *replaces* it.
        assert switched.value_of(variables[-1]) == "B"

    def test_resolve_updates_conflicts_in_the_cone(self):
        lattice = get_lattice("two-point")
        supply = VarSupply()
        a, b = supply.fresh("a"), supply.fresh("b")
        constraints = [
            Constraint(VarTerm(a), VarTerm(b)),
            Constraint(
                VarTerm(b),
                ConstTerm("low"),
                rule="T-Assign",
                kind=ViolationKind.EXPLICIT_FLOW,
            ),
        ]
        solver = Solver(lattice, constraints)
        assert solver.solve().ok
        broken = solver.resolve({a: "high"})
        assert not broken.ok
        (conflict,) = broken.conflicts
        assert conflict.observed == "high"
        fixed = solver.resolve({a: None})
        assert fixed.ok

    def test_resolve_keeps_cached_conflicts_outside_the_cone(self):
        lattice = get_lattice("two-point")
        supply = VarSupply()
        a, b = supply.fresh("a"), supply.fresh("b")
        constraints = [
            # A standing conflict on `a`, untouched by edits to `b`.
            Constraint(ConstTerm("high"), VarTerm(a)),
            Constraint(VarTerm(a), ConstTerm("low")),
            Constraint(ConstTerm("low"), VarTerm(b)),
        ]
        solver = Solver(lattice, constraints)
        assert len(solver.solve().conflicts) == 1
        after = solver.resolve({b: "high"})
        assert len(after.conflicts) == 1
        assert after.conflicts[0].observed == "high"

    def test_resolve_in_a_cycle_converges_both_ways(self):
        lattice = get_lattice("two-point")
        supply = VarSupply()
        a, b, c = (supply.fresh(n) for n in "abc")
        constraints = [
            Constraint(VarTerm(a), VarTerm(b)),
            Constraint(VarTerm(b), VarTerm(c)),
            Constraint(VarTerm(c), VarTerm(a)),
        ]
        solver = Solver(lattice, constraints)
        raised = solver.resolve({b: "high"})
        assert all(raised.value_of(v) == "high" for v in (a, b, c))
        lowered = solver.resolve({b: None})
        assert all(lowered.value_of(v) == "low" for v in (a, b, c))

    def test_resolve_before_solve_is_a_full_solve(self):
        lattice = get_lattice("two-point")
        variables, _constraints, solver = self._chain_solver(lattice)
        solution = solver.resolve({variables[0]: "high"})
        assert solution.value_of(variables[-1]) == "high"

    def test_resolve_on_unconstrained_slot(self):
        lattice = get_lattice("two-point")
        supply = VarSupply()
        a, b = supply.fresh("a"), supply.fresh("b")
        lonely = supply.fresh("lonely")
        solver = Solver(lattice, [Constraint(VarTerm(a), VarTerm(b))])
        solver.solve()
        pinned = solver.resolve({lonely: "high"})
        assert pinned.value_of(lonely) == "high"
        cleared = solver.resolve({lonely: None})
        assert cleared.value_of(lonely) == lattice.bottom

    def test_pins_accessor_returns_a_copy(self):
        lattice = get_lattice("two-point")
        variables, _constraints, solver = self._chain_solver(lattice)
        solver.resolve({variables[0]: "high"})
        pins = solver.pins
        pins.clear()
        assert solver.pins == {variables[0]: "high"}


class TestSolverRebase:
    """`Solver.rebase`: swap the constraint system under a warm solver and
    re-solve only what the edit can influence."""

    def _chain(self, lattice, length=8):
        supply = VarSupply()
        variables = [supply.fresh(f"v{i}") for i in range(length)]
        constraints = [
            Constraint(VarTerm(a), VarTerm(b))
            for a, b in zip(variables, variables[1:])
        ]
        return variables, constraints

    def test_rebase_matches_scratch_solve(self):
        lattice = get_lattice("diamond")
        variables, constraints = self._chain(lattice)
        solver = Solver(lattice, constraints)
        solver.solve()
        # Edit: a new source feeding the middle of the chain.
        edited = constraints + [Constraint(ConstTerm("A"), VarTerm(variables[4]))]
        warm = solver.rebase(edited)
        scratch = solve(lattice, edited)
        for var in variables:
            assert lattice.equal(warm.value_of(var), scratch.value_of(var))

    def test_rebase_removing_constraints_lowers(self):
        lattice = get_lattice("two-point")
        variables, constraints = self._chain(lattice, length=5)
        seeded = [Constraint(ConstTerm("high"), VarTerm(variables[0]))] + constraints
        solver = Solver(lattice, seeded)
        assert solver.solve().value_of(variables[-1]) == "high"
        # Drop the source constraint: everything must fall back to bottom.
        lowered = solver.rebase(constraints)
        for var in variables:
            assert lowered.value_of(var) == "low"

    def test_rebase_reuses_untouched_regions(self):
        lattice = get_lattice("two-point")
        supply = VarSupply()
        left = [supply.fresh(f"l{i}") for i in range(6)]
        right = [supply.fresh(f"r{i}") for i in range(6)]
        chain = lambda vs: [
            Constraint(VarTerm(a), VarTerm(b)) for a, b in zip(vs, vs[1:])
        ]
        base = chain(left) + chain(right)
        solver = Solver(lattice, base)
        solver.solve()
        edited = base + [Constraint(ConstTerm("high"), VarTerm(right[0]))]
        warm = solver.rebase(edited)
        # Only the right chain is in the cone; the left chain's edges are
        # never revisited.
        assert warm.stats.edges_visited <= len(chain(right)) + 1
        assert warm.value_of(right[-1]) == "high"
        assert warm.value_of(left[-1]) == "low"

    def test_rebase_pin_addition_and_removal_are_symmetric(self):
        lattice = get_lattice("diamond")
        variables, constraints = self._chain(lattice)
        solver = Solver(lattice, constraints)
        baseline = solver.solve()
        pinned = solver.rebase(constraints, pins={variables[2]: "B"})
        assert pinned.value_of(variables[-1]) == "B"
        # Removing the pin through a rebase restores the least solution.
        unpinned = solver.rebase(constraints, pins={})
        for var in variables:
            assert lattice.equal(
                unpinned.value_of(var), baseline.value_of(var)
            )

    def test_rebase_migrates_pins_across_edits(self):
        lattice = get_lattice("two-point")
        variables, constraints = self._chain(lattice, length=6)
        solver = Solver(lattice, constraints)
        solver.rebase(constraints, pins={variables[0]: "high"})
        edited = constraints + [
            Constraint(VarTerm(variables[-1]), ConstTerm("low"), rule="T-Assign")
        ]
        warm = solver.rebase(edited, pins={variables[0]: "high"})
        scratch_solver = Solver(lattice, edited)
        scratch = scratch_solver.resolve({variables[0]: "high"})
        assert warm.ok == scratch.ok
        assert len(warm.conflicts) == len(scratch.conflicts) == 1

    def test_adopt_then_rebase_continues_warm(self):
        lattice = get_lattice("two-point")
        variables, constraints = self._chain(lattice, length=6)
        cold = solve(lattice, constraints)
        solver = Solver(lattice, constraints)
        solver.adopt(cold)
        edited = constraints + [Constraint(ConstTerm("high"), VarTerm(variables[3]))]
        warm = solver.rebase(edited)
        scratch = solve(lattice, edited)
        for var in variables:
            assert lattice.equal(warm.value_of(var), scratch.value_of(var))
        # The adopted prefix was reused: only v3's cone was revisited
        # (in-edges of v3..v5: const→v3, v2→v3, v3→v4, v4→v5), never the
        # whole system.
        assert warm.stats.edges_visited == 4
        assert warm.stats.edges_visited < warm.stats.edge_count

    def test_adopt_rejects_a_pinned_solver(self):
        lattice = get_lattice("two-point")
        variables, constraints = self._chain(lattice)
        cold = solve(lattice, constraints)
        solver = Solver(lattice, constraints)
        solver.resolve({variables[0]: "high"})
        with pytest.raises(ValueError):
            solver.adopt(cold)
