"""Structural-diff edge cases for the workspace's incremental engine.

These tests pin the unit-granularity diff (`repro.workspace.diff` over the
`repro.syntax.digest` helpers) on the edits that historically break
incremental checkers: declaration reorders, rename-only edits,
formatting-only edits, and deletions.  Each case asserts both the diff's
verdict (which units are dirty) and, through a `Workspace`, that the warm
result still matches a cold check of the edited source.
"""

from __future__ import annotations

from repro.frontend.parser import parse_program
from repro.syntax.digest import (
    declared_names,
    referenced_names,
    respan,
    unit_fingerprint,
)
from repro.tool.pipeline import check_source
from repro.workspace import Workspace, diff_program, program_units
from repro.workspace.diff import environment_signatures


BASE = """
header h_t { <bit<8>, low> a; <bit<8>, high> b; }
struct headers { h_t h; }
control Main(inout headers hdr) {
    apply {
        hdr.h.a = 1;
    }
}
"""


def _states_for(source: str):
    """Diff a cold parse against nothing, yielding fresh unit states."""
    program = parse_program(source)
    plans = diff_program([], program)
    return [plan.state for plan in plans], program


def _diff(source_before: str, source_after: str):
    states, _ = _states_for(source_before)
    return diff_program(states, parse_program(source_after)), states


def _regen_stats(workspace: Workspace) -> dict:
    workspace.check()
    return workspace.stats()["regen"]


class TestDigest:
    def test_fingerprint_ignores_formatting(self):
        compact = parse_program("header h_t { <bit<8>, low> a; }")
        spaced = parse_program(
            "// a comment\nheader   h_t {\n    <bit<8>, low>   a;\n}\n"
        )
        assert unit_fingerprint(compact.declarations[0]) == unit_fingerprint(
            spaced.declarations[0]
        )

    def test_fingerprint_sees_content(self):
        low = parse_program("header h_t { <bit<8>, low> a; }")
        high = parse_program("header h_t { <bit<8>, high> a; }")
        assert unit_fingerprint(low.declarations[0]) != unit_fingerprint(
            high.declarations[0]
        )

    def test_declared_and_referenced_names(self):
        program = parse_program(BASE)
        header, struct = program.declarations
        (control,) = program.controls
        assert declared_names(header) == ("h_t",)
        assert declared_names(struct) == ("headers",)
        assert declared_names(control) == ()
        assert "h_t" in referenced_names(struct)
        assert "headers" in referenced_names(control)

    def test_respan_rewrites_positions_in_place(self):
        old = parse_program("header h_t { <bit<8>, low> a; }").declarations[0]
        new = parse_program("\n\n\nheader h_t { <bit<8>, low> a; }").declarations[
            0
        ]
        span_map = respan(old, new)
        assert span_map
        assert old.span == new.span

    def test_respan_noop_on_identical_positions(self):
        old = parse_program(BASE).declarations[0]
        new = parse_program(BASE).declarations[0]
        assert respan(old, new) == {}


def _signatures(source: str):
    units = program_units(parse_program(source))
    fingerprints = [unit_fingerprint(u) for u in units]
    referenced = [referenced_names(u) for u in units]
    return environment_signatures(units, fingerprints, referenced)


class TestEnvironmentSignatures:
    def test_transitive_dirtiness_through_struct(self):
        """Editing a header must change the signature of a control that
        only references the *struct* embedding it."""
        before = _signatures(BASE)
        after = _signatures(BASE.replace("<bit<8>, high> b;", "<bit<8>, low> b;"))
        # The struct's own text did not change, but its signature did...
        assert before[1] != after[1]
        # ...and so did the control's, through the struct's deep hash.
        assert before[2] != after[2]

    def test_unrelated_units_keep_their_signature(self):
        extended = BASE + "\nheader other_t { <bit<8>, low> x; }\n"
        edited = extended.replace(
            "header other_t { <bit<8>, low> x; }",
            "header other_t { <bit<8>, high> x; }",
        )
        before = _signatures(extended)
        after = _signatures(edited)
        # Nothing references other_t, so every other signature is stable.
        assert before[0] == after[0]
        assert before[1] == after[1]


class TestDiffVerdicts:
    TWO_SHARDS = """
header a_t { <bit<8>, high> x; }
struct a_headers { a_t data; }
header b_t { <bit<8>, low> y; }
struct b_headers { b_t data; }
control A(inout a_headers hdr) { apply { hdr.data.x = 1; } }
control B(inout b_headers hdr) { apply { hdr.data.y = 2; } }
"""

    def test_reorder_of_independent_units_is_all_clean(self):
        # Swap the two independent shards wholesale: every unit still
        # resolves its references to byte-identical declarations.
        reordered = """
header b_t { <bit<8>, low> y; }
struct b_headers { b_t data; }
header a_t { <bit<8>, high> x; }
struct a_headers { a_t data; }
control B(inout b_headers hdr) { apply { hdr.data.y = 2; } }
control A(inout a_headers hdr) { apply { hdr.data.x = 1; } }
"""
        plans, states = _diff(self.TWO_SHARDS, reordered)
        assert not any(plan.dirty for plan in plans)
        # Matched plans reuse the cached state objects (identity matters:
        # they anchor the label variables).
        assert {id(plan.state) for plan in plans} == {id(s) for s in states}

    def test_resolution_changing_reorder_is_dirty(self):
        # Moving the struct above the header it references changes what
        # its type name resolves to -- that is a semantic edit, not a
        # formatting one, and the unit must be re-walked.
        reordered = """
struct headers { h_t h; }
header h_t { <bit<8>, low> a; <bit<8>, high> b; }
control Main(inout headers hdr) {
    apply {
        hdr.h.a = 1;
    }
}
"""
        plans, _ = _diff(BASE, reordered)
        dirty = {type(plan.state.node).__name__: plan.dirty for plan in plans}
        assert dirty["StructDecl"] is True

    def test_whitespace_and_comments_are_clean(self):
        noisy = BASE.replace(
            "header h_t", "// widened later\nheader    h_t"
        ).replace("hdr.h.a = 1;", "hdr.h.a   =   1;  // constant")
        plans, _ = _diff(BASE, noisy)
        assert not any(plan.dirty for plan in plans)

    def test_rename_dirties_declarer_and_referencers(self):
        renamed = BASE.replace("h_t", "pkt_t")
        plans, _ = _diff(BASE, renamed)
        # Header changed content (its name); struct references the renamed
        # type; the control's struct reference changed transitively.
        assert [plan.dirty for plan in plans] == [True, True, True]

    def test_body_edit_dirties_only_that_unit(self):
        edited = BASE.replace("hdr.h.a = 1;", "hdr.h.a = 2;")
        plans, _ = _diff(BASE, edited)
        assert [plan.dirty for plan in plans] == [False, False, True]

    def test_duplicate_units_match_fifo(self):
        # Two structurally identical controls share one fingerprint; the
        # diff must pair them positionally, not double-claim one state.
        twin = """
struct headers { }
control A(inout headers hdr) { apply { } }
control A(inout headers hdr) { apply { } }
"""
        plans, states = _diff(twin, twin)
        controls = [p for p in plans if p.state.is_control]
        assert len(controls) == 2
        assert controls[0].state is states[1]
        assert controls[1].state is states[2]


class TestWorkspaceEdits:
    """End-to-end: the regen statistics and the warm-vs-cold contract."""

    def _open(self, source: str, **options) -> Workspace:
        workspace = Workspace(**options)
        assert workspace.open(source, filename="<input>")
        return workspace

    def test_comment_only_edit_rewalks_nothing(self):
        workspace = self._open(BASE)
        cold = workspace.check(infer=True)
        assert workspace.edit("// touched\n" + BASE)
        warm = workspace.check(infer=True)
        stats = workspace.stats()["regen"]
        assert stats["units_rewalked"] == 0
        assert stats["units_reused"] == stats["units_total"] == 3
        assert str(warm.inference_result.solution.assignment) == str(
            cold.inference_result.solution.assignment
        )

    def test_reorder_edit_rewalks_nothing(self):
        workspace = self._open(TestDiffVerdicts.TWO_SHARDS)
        cold = workspace.check(infer=True)
        reordered = """
header b_t { <bit<8>, low> y; }
struct b_headers { b_t data; }
header a_t { <bit<8>, high> x; }
struct a_headers { a_t data; }
control B(inout b_headers hdr) { apply { hdr.data.y = 2; } }
control A(inout a_headers hdr) { apply { hdr.data.x = 1; } }
"""
        assert workspace.edit(reordered)
        warm = workspace.check(infer=True)
        stats = workspace.stats()["regen"]
        assert stats["units_rewalked"] == 0
        assert stats["units_reused"] == 6
        assert warm.ok == cold.ok

    def test_respan_keeps_diagnostics_at_new_positions(self):
        insecure = BASE.replace("hdr.h.a = 1;", "hdr.h.a = hdr.h.b;")
        workspace = self._open(insecure)
        workspace.check(infer=True)
        shifted = "\n\n" + insecure
        assert workspace.edit(shifted)
        warm = workspace.check(infer=True)
        stats = workspace.stats()["regen"]
        assert stats["units_rewalked"] == 0
        assert stats["units_respanned"] >= 1
        cold = check_source(shifted, infer=True, filename="<input>")
        assert [str(x) for x in warm.inference_result.diagnostics] == [
            str(x) for x in cold.inference_result.diagnostics
        ]

    def test_table_and_action_deletion(self):
        from repro.synth import wide_table_program

        source = wide_table_program(
            tables=2, actions_per_table=2, keys_per_table=1, seed=11
        )
        workspace = self._open(source)
        workspace.check(infer=True)
        # Delete the second table and its actions from the control body:
        # everything from "action act_1_0() {" through tbl_1's closing
        # brace (the first "}" after its actions list), plus its apply.
        lines = source.splitlines()
        start = next(i for i, l in enumerate(lines) if "action act_1_0" in l)
        actions_line = next(
            i for i, l in enumerate(lines) if "actions = { act_1_0" in l
        )
        closing = actions_line + next(
            i for i, l in enumerate(lines[actions_line:]) if l.strip() == "}"
        )
        pruned = lines[:start] + lines[closing + 1 :]
        pruned = [l for l in pruned if "tbl_1.apply" not in l]
        edited = "\n".join(pruned)
        assert workspace.edit(edited)
        warm = workspace.check(infer=True)
        cold = check_source(edited, infer=True, filename="<input>")
        assert warm.ok == cold.ok
        assert [str(x) for x in warm.inference_result.diagnostics] == [
            str(x) for x in cold.inference_result.diagnostics
        ]
        assert (
            warm.inference_result.assignment_by_hint()
            == cold.inference_result.assignment_by_hint()
        )

    def test_declaration_deletion_drops_cached_sites(self):
        from repro.synth import sharded_dataflow_program

        source = sharded_dataflow_program(3, depth=3)
        workspace = self._open(source)
        workspace.check(infer=True)
        sites_before = workspace.stats()["sites"]
        # Drop shard2 wholesale (header, struct, control).
        kept = [
            block
            for block in source.split("\n\n")
            if "shard2" not in block and "Shard2" not in block
        ]
        edited = "\n\n".join(kept)
        assert workspace.edit(edited)
        warm = workspace.check(infer=True)
        stats = workspace.stats()
        assert stats["units"] == 6
        assert stats["sites"] < sites_before
        cold = check_source(edited, infer=True, filename="<input>")
        assert (
            warm.inference_result.assignment_by_hint()
            == cold.inference_result.assignment_by_hint()
        )
