"""Constraint generation, elaboration, and the infer → recheck pipeline on
small programs (the unit-level counterpart of the case-study e2e tests)."""

from __future__ import annotations

import pytest

from repro.frontend.parser import parse_program
from repro.ifc.checker import check_ifc
from repro.ifc.convert import LabelResolutionError, TypeLabeler
from repro.ifc.context import SecurityTypeDefs
from repro.ifc.errors import ViolationKind
from repro.inference import infer_labels
from repro.lattice.diamond import DiamondLattice
from repro.lattice.two_point import HIGH, LOW, TwoPointLattice
from repro.syntax.printer import pretty_print
from repro.syntax.types import AnnotatedType, BitType, is_inference_marker
from repro.tool.pipeline import check_source

PARTIAL = """
header data_t {
    <bit<32>, high> secret;
    bit<32> token;
}
struct headers { data_t data; }
control Ingress(inout headers hdr) {
    bit<32> copy;
    bit<8> mark;
    apply {
        copy = hdr.data.secret;
        mark = 1;
    }
}
"""

LEAKY = """
header data_t {
    <bit<32>, high> secret;
    <bit<32>, low> open;
}
struct headers { data_t data; }
control Ingress(inout headers hdr) {
    bit<32> staging;
    apply {
        staging = hdr.data.secret;
        hdr.data.open = staging;
    }
}
"""


class TestInferMarkers:
    def test_question_mark_parses_as_annotation(self):
        program = parse_program("header h_t { <bit<8>, ?> x; }")
        decl = program.declarations[0]
        assert decl.fields[0].ty.wants_inference()

    def test_infer_keyword_parses_as_annotation(self):
        program = parse_program("header h_t { <bit<8>, infer> x; }")
        assert program.declarations[0].fields[0].ty.wants_inference()
        assert is_inference_marker("  Infer ")

    def test_lattice_level_named_infer_is_a_real_label(self):
        """A lattice is free to define a level spelled ``Infer``: the marker
        meaning only applies when the spelling is not a label of the active
        lattice."""
        from repro.lattice.chain import ChainLattice

        lattice = ChainLattice(["public", "Infer", "secret"])
        labeler = TypeLabeler(lattice, SecurityTypeDefs())
        sec = labeler.security_type(AnnotatedType(BitType(8), "Infer"))
        assert sec.label == "Infer"
        # Inference also keeps the concrete level rather than opening a var.
        source = """
        header h_t { <bit<8>, Infer> mid; bit<8> x; }
        struct headers { h_t h; }
        control Ingress(inout headers hdr) {
            apply { hdr.h.x = hdr.h.mid; }
        }
        """
        result = infer_labels(parse_program(source), lattice)
        assert result.ok
        assert result.assignment_by_hint()["field h_t.x"] == "Infer"
        printed = pretty_print(result.elaborated)
        assert "<bit<8>, Infer> mid" in printed
        assert check_ifc(parse_program(printed), lattice).ok

    def test_strict_labeler_rejects_markers(self):
        labeler = TypeLabeler(TwoPointLattice(), SecurityTypeDefs())
        with pytest.raises(LabelResolutionError, match="--infer"):
            labeler.security_type(AnnotatedType(BitType(8), "infer"))

    def test_strict_pipeline_rejects_markers(self):
        # A program using '?' without --infer is rejected with a label error.
        report = check_source(
            "header h_t { <bit<8>, ?> x; }\n"
            "struct headers { h_t h; }\n"
            "control Main(inout headers hdr) { apply { hdr.h.x = 1; } }\n"
        )
        assert not report.ok
        assert any(
            d.kind is ViolationKind.LABEL_ERROR for d in report.ifc_diagnostics
        )


class TestGenerationAndSolving:
    def test_secret_propagates_into_unannotated_variable(self):
        result = infer_labels(parse_program(PARTIAL))
        assert result.ok
        labels = result.assignment_by_hint()
        assert labels["variable copy in Ingress"] == HIGH
        assert labels["variable mark in Ingress"] == LOW
        assert labels["field data_t.token"] == LOW

    def test_declaration_site_sharing_through_typedef(self):
        source = """
        typedef bit<48> mac_t;
        header eth_t { <bit<48>, high> kid; mac_t src; mac_t dst; }
        struct headers { eth_t eth; }
        control Ingress(inout headers hdr) {
            apply {
                hdr.eth.src = hdr.eth.kid;
            }
        }
        """
        result = infer_labels(parse_program(source))
        assert result.ok
        labels = result.assignment_by_hint()
        # The typedef's single slot is the variable: both uses share it.
        assert labels["typedef mac_t"] == HIGH
        recheck = check_ifc(result.elaborated, result.lattice)
        assert recheck.ok, [str(d) for d in recheck.diagnostics]

    def test_conflict_points_at_sink_with_core(self):
        result = infer_labels(parse_program(LEAKY))
        assert not result.ok
        (diag,) = result.diagnostics
        assert diag.kind is ViolationKind.EXPLICIT_FLOW
        assert diag.rule == "T-Assign"
        # The conflict is at the low sink; the core names the high source.
        assert diag.span.start.line == 11
        assert "forced up at" in diag.message

    def test_guard_forces_written_variable_up(self):
        source = """
        header h_t { <bit<8>, high> secret; bit<8> flag; }
        struct headers { h_t h; }
        control Ingress(inout headers hdr) {
            apply {
                if (hdr.h.secret == 1) {
                    hdr.h.flag = 1;
                }
            }
        }
        """
        result = infer_labels(parse_program(source))
        assert result.ok
        assert result.assignment_by_hint()["field h_t.flag"] == HIGH
        assert check_ifc(result.elaborated, result.lattice).ok

    def test_table_key_forces_action_targets_up(self):
        source = """
        header h_t { <bit<16>, high> sel; bit<16> hits; }
        struct headers { h_t h; }
        control Ingress(inout headers hdr) {
            action set_out(bit<16> v) { hdr.h.hits = v; }
            table t {
                key = { hdr.h.sel: exact; }
                actions = { set_out; }
            }
            apply { t.apply(); }
        }
        """
        result = infer_labels(parse_program(source))
        assert result.ok
        assert result.assignment_by_hint()["field h_t.hits"] == HIGH
        assert check_ifc(result.elaborated, result.lattice).ok

    def test_read_only_assignment_emits_no_flow_constraints(self):
        """Assignment to a non-lvalue is the checker's TYPE_ERROR, not a
        flow: the generator must not propagate labels along it (regression:
        a bogus assignment dragged a header field high and produced a
        spurious conflict)."""
        source = """
        header h_t { <bit<8>, high> sec; bit<8> x; <bit<8>, low> pub; }
        struct headers { h_t h; }
        control Ingress(inout headers hdr) {
            apply {
                hdr.h.x + hdr.h.x = hdr.h.sec;
                hdr.h.pub = hdr.h.x;
            }
        }
        """
        result = infer_labels(parse_program(source))
        assert result.ok, [str(d) for d in result.diagnostics]
        assert result.assignment_by_hint()["field h_t.x"] == LOW

    def test_shape_mismatched_assignment_emits_no_pc_constraint(self):
        """A shape-mismatched assignment is the core checker's problem; the
        checker skips both its flow and pc checks there, and so must the
        generator (regression: the pc constraint was emitted anyway and
        tainted the target under a secret guard)."""
        source = """
        header s_t { <bit<8>, high> sec; }
        struct headers { s_t s; }
        control Ingress(inout headers hdr) {
            bit<8> x;
            apply {
                if (hdr.s.sec == 1) {
                    x = hdr.s;
                }
            }
        }
        """
        result = infer_labels(parse_program(source))
        assert result.ok
        assert result.assignment_by_hint()["variable x in Ingress"] == LOW

    def test_covered_flow_into_augmented_slot_stays_least(self):
        """``A ⊑ A ⊔ v`` is already satisfied by the constant part: the
        augmentation variable must stay ⊥ and elaboration must not write a
        redundant use-site annotation (regression: the flow was pushed into
        the variable unconditionally)."""
        source = """
        typedef <bit<8>, A> a_t;
        header h_t { <bit<8>, A> src; }
        struct headers { h_t h; }
        control Ingress(inout headers hdr) {
            a_t x;
            apply { x = hdr.h.src; }
        }
        """
        result = infer_labels(parse_program(source), DiamondLattice())
        assert result.ok
        (slot,) = [s_ for s_ in result.inferred if "variable x" in s_.hint]
        # Reported label is the *effective* one (floor ⊔ solved = A); the
        # augmentation variable itself stayed ⊥, so no annotation is written.
        assert slot.label == "A"
        assert "<a_t," not in pretty_print(result.elaborated)
        assert check_ifc(result.elaborated, result.lattice).ok

    def test_covered_flow_does_not_taint_shared_typedef_var(self):
        """``A ⊑ v_t ⊔ A`` must not raise the shared typedef variable even
        when the flow arrives through an intermediate variable: another use
        of the typedef feeding a ⊥ sink would otherwise spuriously conflict
        (regression: the cover check only ran at normalisation time for
        constant left sides)."""
        source = """
        typedef bit<8> t;
        header h_t { <bit<8>, A> a_src; <bit<8>, bot> sink; }
        struct headers { h_t h; }
        control Ingress(inout headers hdr) {
            <t, A> x;
            t y;
            apply {
                bit<8> w;
                w = hdr.h.a_src;
                x = w;
                hdr.h.sink = y;
            }
        }
        """
        result = infer_labels(parse_program(source), DiamondLattice())
        assert result.ok, [str(d) for d in result.diagnostics]
        assert result.assignment_by_hint()["typedef t"] == "bot"
        assert check_ifc(result.elaborated, result.lattice).ok

    def test_duplicate_control_names_keep_their_own_pcs(self):
        """``@pc(infer)`` variables are keyed by the control declaration,
        not its name: two same-named controls solve independently."""
        source = """
        header h_t { <bit<8>, low> pub; <bit<8>, high> sec; }
        struct headers { h_t h; }
        @pc(infer)
        control c(inout headers hdr) {
            apply { hdr.h.pub = 1; }
        }
        @pc(infer)
        control c(inout headers hdr) {
            apply { hdr.h.sec = 1; }
        }
        """
        result = infer_labels(parse_program(source))
        assert result.ok
        assert [ctrl.pc_label for ctrl in result.elaborated.controls] == [LOW, HIGH]
        assert check_ifc(result.elaborated, result.lattice).ok

    def test_diamond_lattice_joins_to_top(self):
        source = """
        header h_t { <bit<8>, A> alice; <bit<8>, B> bob; bit<8> mix; }
        struct headers { h_t h; }
        control Ingress(inout headers hdr) {
            apply {
                hdr.h.mix = hdr.h.alice + hdr.h.bob;
            }
        }
        """
        result = infer_labels(parse_program(source), DiamondLattice())
        assert result.ok
        assert result.assignment_by_hint()["field h_t.mix"] == "top"

    def test_use_site_label_over_inferred_typedef_is_satisfiable(self):
        """``<t, A> dst`` over an unannotated typedef yields ``B ⊑ x ⊔ A``;
        the solver must raise the typedef's variable rather than report a
        spurious conflict (regression: join-RHS constraints were demoted to
        checks)."""
        source = """
        typedef bit<8> t;
        header h_t { <bit<8>, B> src; }
        struct headers { h_t h; }
        control Ingress(inout headers hdr) {
            <t, A> dst;
            apply {
                dst = hdr.h.src;
            }
        }
        """
        result = infer_labels(parse_program(source), DiamondLattice())
        assert result.ok, [str(d) for d in result.diagnostics]
        assert result.assignment_by_hint()["typedef t"] == "B"
        recheck = check_ifc(result.elaborated, result.lattice)
        assert recheck.ok, [str(d) for d in recheck.diagnostics]

    def test_explicitly_public_typedef_pins_its_uses(self):
        """``typedef <bit<8>, low> public_t`` declares a public sink: an
        unannotated use must stay pinned at ⊥, so a secret flow into it is a
        conflict -- not silently relabelled upward (regression: explicit-⊥
        declarations were indistinguishable from unannotated ones)."""
        source = """
        typedef <bit<8>, low> public_t;
        header h_t { <bit<8>, high> sec; }
        struct headers { h_t h; }
        control Ingress(inout headers hdr) {
            public_t sink;
            apply { sink = hdr.h.sec; }
        }
        """
        result = infer_labels(parse_program(source))
        assert not result.ok
        (diag,) = result.diagnostics
        assert diag.kind is ViolationKind.EXPLICIT_FLOW

    def test_augmented_slot_reports_its_effective_label(self):
        """A use of an annotated typedef reports ``floor ⊔ solved``, not the
        bare augmentation variable's (usually ⊥) value."""
        source = """
        typedef <bit<8>, high> secret_t;
        header h_t { bit<8> pad; }
        struct headers { h_t h; }
        control Ingress(inout headers hdr) {
            secret_t s;
            apply { s = 1; }
        }
        """
        result = infer_labels(parse_program(source))
        assert result.ok
        assert result.assignment_by_hint()["variable s in Ingress"] == HIGH

    def test_use_site_over_annotated_typedef_can_raise(self):
        """An open slot over an *annotated* typedef still absorbs higher
        flows: the use site gets an augmentation variable (regression: the
        slot was pinned to the typedef's label and spuriously conflicted)."""
        source = """
        typedef <bit<8>, A> a_t;
        header h_t { <bit<8>, B> src; }
        struct headers { h_t h; }
        control Ingress(inout headers hdr) {
            a_t x;
            apply {
                x = hdr.h.src;
            }
        }
        """
        result = infer_labels(parse_program(source), DiamondLattice())
        assert result.ok, [str(d) for d in result.diagnostics]
        recheck = check_ifc(result.elaborated, result.lattice)
        assert recheck.ok, [str(d) for d in recheck.diagnostics]
        # The use-site annotation now spells the raised label.
        assert "<a_t, B> x" in pretty_print(result.elaborated)

    def test_same_named_locals_get_distinct_hints(self):
        source = """
        header h_t { <bit<8>, high> s; bit<8> p; }
        struct headers { h_t h; }
        control Ingress(inout headers hdr) {
            action one() { bit<8> tmp; tmp = hdr.h.s; }
            action two() { bit<8> tmp; tmp = 1; }
            apply { one(); two(); }
        }
        """
        result = infer_labels(parse_program(source))
        labels = result.assignment_by_hint()
        assert labels["variable tmp in one"] == HIGH
        assert labels["variable tmp in two"] == LOW

    def test_pc_marker_on_control_is_inferred(self):
        source = """
        header h_t { <bit<8>, low> x; }
        struct headers { h_t h; }
        @pc(infer)
        control Ingress(inout headers hdr) {
            apply { hdr.h.x = 1; }
        }
        """
        result = infer_labels(parse_program(source))
        assert result.ok
        assert result.elaborated.controls[0].pc_label == LOW

    def test_pc_marker_solves_to_the_greatest_admissible_pc(self):
        """A body writing only secret fields tolerates -- and gets -- a
        ``high`` pc, not the vacuous least solution ⊥."""
        source = """
        header h_t { <bit<8>, high> s; }
        struct headers { h_t h; }
        @pc(infer)
        control Ingress(inout headers hdr) {
            apply { hdr.h.s = 1; }
        }
        """
        result = infer_labels(parse_program(source))
        assert result.ok
        assert result.elaborated.controls[0].pc_label == HIGH
        assert check_ifc(result.elaborated, result.lattice).ok

    def test_pc_maximisation_keeps_user_system_solver_stats(self):
        """The internal pc-maximisation re-solve runs over an augmented
        system (freeze + pin constraints); the reported stats must still
        describe the *user's* constraint system."""
        from repro.inference import PropagationGraph

        source = """
        header h_t { <bit<8>, high> s; }
        struct headers { h_t h; }
        @pc(infer)
        control Ingress(inout headers hdr) {
            apply { hdr.h.s = 1; }
        }
        """
        result = infer_labels(parse_program(source))
        assert result.ok
        stats = result.solution.stats
        plain = PropagationGraph(result.lattice, result.generation.constraints)
        assert stats.edge_count == len(plain.edges)
        assert stats.check_count == len(plain.checks)
        assert stats.variable_count == len(plain.variables)

    def test_pc_marker_does_not_drag_inferred_slots_up(self):
        """The pc is maximised *against the least assignment*: a body
        writing only unconstrained inferred slots keeps those slots at ⊥
        (the least-label contract) and the pc stays at the level they
        permit, rather than both floating to ⊤."""
        source = """
        header h_t { bit<8> tmp; }
        struct headers { h_t h; }
        @pc(infer)
        control Ingress(inout headers hdr) {
            apply { hdr.h.tmp = 1; }
        }
        """
        result = infer_labels(parse_program(source))
        assert result.ok
        assert result.assignment_by_hint()["field h_t.tmp"] == LOW
        assert result.elaborated.controls[0].pc_label == LOW
        assert check_ifc(result.elaborated, result.lattice).ok

    def test_pc_marker_without_infer_points_at_the_flag(self):
        source = """
        header h_t { <bit<8>, low> x; }
        struct headers { h_t h; }
        @pc(infer)
        control Ingress(inout headers hdr) {
            apply { }
        }
        """
        report = check_source(source)
        assert not report.ok
        (diag,) = report.ifc_diagnostics
        assert diag.kind is ViolationKind.LABEL_ERROR
        assert "--infer" in diag.message

    def test_declassify_inside_writing_action_conflicts(self):
        """The checker demands ``pc_fn ⊑ ⊥`` at declassify sites; inference
        must impose the same obligation (regression: a high-writing action
        with declassify inferred ok but failed the re-check)."""
        source = """
        header h_t { <bit<8>, high> secret; <bit<8>, high> hi; }
        struct headers { h_t h; }
        control Ingress(inout headers hdr) {
            action leakish() {
                hdr.h.hi = declassify(hdr.h.secret);
            }
            apply { leakish(); }
        }
        """
        from repro.inference.engine import infer_labels as infer

        result = infer(
            parse_program(source), allow_declassification=True
        )
        assert not result.ok
        (diag,) = result.diagnostics
        assert diag.rule == "T-Declassify"
        assert diag.kind is ViolationKind.IMPLICIT_FLOW
        # Parity: the stock checker rejects the same program the same way.
        from repro.ifc.checker import IfcChecker

        checked = IfcChecker(allow_declassification=True).check_program(
            parse_program(source)
        )
        assert not checked.ok

    def test_declassify_in_public_action_still_accepted(self):
        source = """
        header h_t { <bit<8>, high> secret; <bit<8>, low> lo; }
        struct headers { h_t h; }
        control Ingress(inout headers hdr) {
            action release() {
                hdr.h.lo = declassify(hdr.h.secret);
            }
            apply { release(); }
        }
        """
        result = infer_labels(parse_program(source), allow_declassification=True)
        assert result.ok, [str(d) for d in result.diagnostics]
        from repro.ifc.checker import IfcChecker

        recheck = IfcChecker(allow_declassification=True).check_program(
            result.elaborated
        )
        assert recheck.ok, [str(d) for d in recheck.diagnostics]


class TestElaboration:
    def test_elaborated_program_is_fully_annotated(self):
        result = infer_labels(parse_program(PARTIAL))
        printed = pretty_print(result.elaborated)
        assert "<bit<32>, high> copy" in printed
        assert "<bit<8>, low> mark" in printed
        assert "<bit<32>, low> token" in printed
        # Explicit annotations survive untouched.
        assert "<bit<32>, high> secret" in printed

    def test_elaborated_program_reparses_and_rechecks(self):
        result = infer_labels(parse_program(PARTIAL))
        reparsed = parse_program(pretty_print(result.elaborated))
        assert check_ifc(reparsed, result.lattice).ok

    def test_marker_without_variable_is_dropped(self):
        source = """
        typedef <bit<8>, high> level_t;
        header h_t { <level_t, infer> x; }
        struct headers { h_t h; }
        control Ingress(inout headers hdr) {
            apply { }
        }
        """
        result = infer_labels(parse_program(source))
        assert result.ok
        printed = pretty_print(result.elaborated)
        assert "infer" not in printed
        assert check_ifc(parse_program(printed), result.lattice).ok

    def test_idempotent_on_fully_annotated_program(self):
        source = """
        header h_t { <bit<8>, high> x; <bit<8>, low> y; }
        struct headers { h_t h; }
        control Ingress(inout headers hdr) {
            apply { hdr.h.y = 1; }
        }
        """
        program = parse_program(source)
        result = infer_labels(program)
        assert result.ok
        assert result.variable_count == 0
        assert pretty_print(result.elaborated) == pretty_print(program)


class TestPipelineIntegration:
    def test_report_carries_inference_result_and_timing(self):
        report = check_source(PARTIAL, infer=True)
        assert report.ok
        assert report.inference_result is not None
        assert report.timing.infer_ms > 0
        assert report.timing.total_ms >= report.timing.infer_ms
        assert report.checked_program is report.inference_result.elaborated

    def test_conflicts_become_report_diagnostics(self):
        report = check_source(LEAKY, infer=True)
        assert not report.ok
        assert report.inference_diagnostics
        assert report.ifc_result is None  # the IFC phase is skipped on conflicts

    def test_without_infer_nothing_changes(self):
        report = check_source(PARTIAL)
        assert report.inference_result is None
        assert report.timing.infer_ms == 0.0

    def test_infer_without_ifc_is_an_error(self):
        with pytest.raises(ValueError, match="include_ifc"):
            check_source(PARTIAL, infer=True, include_ifc=False)

    def test_summary_survives_marker_programs(self):
        from repro.lattice.two_point import TwoPointLattice
        from repro.tool.summary import summarise_report

        marked = PARTIAL.replace("bit<32> token;", "<bit<32>, ?> token;")
        # Without --infer the program still carries '?' markers; the summary
        # degrades to None instead of crashing on them.
        report = check_source(marked)
        assert not report.ok
        assert summarise_report(report, TwoPointLattice()) is None
        # With --infer the summary describes the elaborated program.
        inferred = check_source(marked, infer=True)
        summary = summarise_report(inferred, TwoPointLattice())
        assert summary is not None
        paths = {leaf.path: leaf.label for c in summary.controls for leaf in c.fields}
        assert paths["hdr.data.secret"] == "high"
