"""Unit tests for the security lattices."""

import pytest

from repro.lattice import (
    ChainLattice,
    DiamondLattice,
    FiniteLattice,
    LatticeError,
    PowersetLattice,
    ProductLattice,
    TwoPointLattice,
    available_lattices,
    get_lattice,
    register_lattice,
)
from repro.lattice.two_point import HIGH, LOW
from repro.lattice.diamond import ALICE, BOB, BOT, TOP


class TestTwoPoint:
    def test_order(self, two_point):
        assert two_point.leq(LOW, HIGH)
        assert not two_point.leq(HIGH, LOW)
        assert two_point.leq(LOW, LOW)
        assert two_point.leq(HIGH, HIGH)

    def test_bounds(self, two_point):
        assert two_point.bottom == LOW
        assert two_point.top == HIGH

    def test_join_meet(self, two_point):
        assert two_point.join(LOW, HIGH) == HIGH
        assert two_point.join(LOW, LOW) == LOW
        assert two_point.meet(LOW, HIGH) == LOW
        assert two_point.meet(HIGH, HIGH) == HIGH

    def test_validate(self, two_point):
        two_point.validate()

    def test_membership(self, two_point):
        assert LOW in two_point
        assert HIGH in two_point
        assert "medium" not in two_point

    def test_parse_label_aliases(self, two_point):
        assert two_point.parse_label("public") == LOW
        assert two_point.parse_label("secret") == HIGH
        assert two_point.parse_label("HIGH") == HIGH
        assert two_point.parse_label("trusted") == LOW
        assert two_point.parse_label("untrusted") == HIGH

    def test_parse_label_unknown(self, two_point):
        with pytest.raises(LatticeError):
            two_point.parse_label("medium")

    def test_require_rejects_foreign_label(self, two_point):
        with pytest.raises(LatticeError):
            two_point.require("A")

    def test_join_all_empty_is_bottom(self, two_point):
        assert two_point.join_all([]) == LOW

    def test_meet_all_empty_is_top(self, two_point):
        assert two_point.meet_all([]) == HIGH


class TestDiamond:
    def test_validate(self, diamond):
        diamond.validate()

    def test_incomparable_tenants(self, diamond):
        assert not diamond.leq(ALICE, BOB)
        assert not diamond.leq(BOB, ALICE)
        assert not diamond.comparable(ALICE, BOB)

    def test_bounds(self, diamond):
        assert diamond.bottom == BOT
        assert diamond.top == TOP

    def test_join_of_tenants_is_top(self, diamond):
        assert diamond.join(ALICE, BOB) == TOP

    def test_meet_of_tenants_is_bottom(self, diamond):
        assert diamond.meet(ALICE, BOB) == BOT

    def test_everyone_below_top(self, diamond):
        for label in diamond.labels():
            assert diamond.leq(label, TOP)

    def test_parse_aliases(self, diamond):
        assert diamond.parse_label("alice") == ALICE
        assert diamond.parse_label("Bob") == BOB
        assert diamond.parse_label("bot") == BOT
        assert diamond.parse_label("top") == TOP


class TestChain:
    def test_of_height(self):
        chain = ChainLattice.of_height(5)
        chain.validate()
        assert len(list(chain.labels())) == 5
        assert chain.bottom == "L0"
        assert chain.top == "L4"

    def test_rank_and_order(self):
        chain = ChainLattice(["u", "c", "s", "ts"])
        assert chain.rank("u") == 0
        assert chain.rank("ts") == 3
        assert chain.leq("u", "ts")
        assert not chain.leq("s", "c")

    def test_join_is_max(self):
        chain = ChainLattice.of_height(4)
        assert chain.join("L1", "L3") == "L3"
        assert chain.meet("L1", "L3") == "L1"

    def test_needs_two_levels(self):
        with pytest.raises(LatticeError):
            ChainLattice(["only"])

    def test_duplicate_levels_rejected(self):
        with pytest.raises(LatticeError):
            ChainLattice(["a", "a"])


class TestProduct:
    def test_pointwise_order(self, two_point):
        product = ProductLattice(two_point, two_point)
        product.validate()
        assert product.leq((LOW, LOW), (HIGH, HIGH))
        assert not product.leq((HIGH, LOW), (LOW, HIGH))
        assert product.join((HIGH, LOW), (LOW, HIGH)) == (HIGH, HIGH)
        assert product.meet((HIGH, LOW), (LOW, HIGH)) == (LOW, LOW)

    def test_bounds(self, two_point, diamond):
        product = ProductLattice(two_point, diamond)
        assert product.bottom == (LOW, BOT)
        assert product.top == (HIGH, TOP)

    def test_parse_and_format(self, two_point):
        product = ProductLattice(two_point, two_point)
        assert product.parse_label("(low, high)") == (LOW, HIGH)
        assert product.format_label((LOW, HIGH)) == "(low, high)"


class TestPowerset:
    def test_inclusion_order(self):
        lattice = PowersetLattice(["a", "b", "c"])
        lattice.validate()
        assert lattice.leq(frozenset(), frozenset({"a"}))
        assert lattice.leq(frozenset({"a"}), frozenset({"a", "b"}))
        assert not lattice.leq(frozenset({"a"}), frozenset({"b"}))

    def test_join_is_union(self):
        lattice = PowersetLattice(["a", "b"])
        assert lattice.join(frozenset({"a"}), frozenset({"b"})) == frozenset({"a", "b"})
        assert lattice.meet(frozenset({"a"}), frozenset({"a", "b"})) == frozenset({"a"})

    def test_bounds(self):
        lattice = PowersetLattice(["a", "b"])
        assert lattice.bottom == frozenset()
        assert lattice.top == frozenset({"a", "b"})

    def test_parse_label(self):
        lattice = PowersetLattice(["carol", "dave"])
        assert lattice.parse_label("{carol}") == frozenset({"carol"})
        assert lattice.parse_label("{carol, dave}") == frozenset({"carol", "dave"})
        assert lattice.parse_label("bot") == frozenset()
        assert lattice.parse_label("top") == frozenset({"carol", "dave"})

    def test_parse_unknown_principal(self):
        lattice = PowersetLattice(["carol", "dave"])
        with pytest.raises(LatticeError):
            lattice.parse_label("{mallory}")

    def test_label_count(self):
        lattice = PowersetLattice(["a", "b", "c"])
        assert len(list(lattice.labels())) == 8

    def test_duplicate_principals_rejected(self):
        with pytest.raises(LatticeError):
            PowersetLattice(["a", "a"])


class TestFiniteLattice:
    def test_rejects_missing_bottom(self):
        with pytest.raises(LatticeError):
            FiniteLattice(["a", "b"], [], name="two-incomparable")

    def test_rejects_label_outside_carrier(self):
        with pytest.raises(LatticeError):
            FiniteLattice(["a"], [("a", "z")])

    def test_from_upsets(self):
        lattice = FiniteLattice.from_upsets({"lo": ["hi"], "hi": []}, name="mini")
        assert lattice.leq("lo", "hi")
        assert lattice.bottom == "lo"
        assert lattice.top == "hi"

    def test_transitive_closure(self):
        lattice = FiniteLattice(["a", "b", "c"], [("a", "b"), ("b", "c")])
        assert lattice.leq("a", "c")
        lattice.validate()


class TestRegistry:
    def test_builtin_lattices(self):
        assert "two-point" in available_lattices()
        assert "diamond" in available_lattices()
        assert isinstance(get_lattice("two-point"), TwoPointLattice)
        assert isinstance(get_lattice("diamond"), DiamondLattice)

    def test_chain_by_name(self):
        chain = get_lattice("chain-7")
        assert isinstance(chain, ChainLattice)
        assert len(list(chain.labels())) == 7

    def test_unknown_name(self):
        with pytest.raises(LatticeError):
            get_lattice("moebius")

    def test_register_custom(self):
        register_lattice("custom-for-test", lambda: ChainLattice.of_height(3))
        assert "custom-for-test" in available_lattices()
        assert isinstance(get_lattice("custom-for-test"), ChainLattice)
