"""Unit tests for runtime values, stores, and environments."""

import pytest

from repro.semantics.errors import EvaluationError
from repro.semantics.store import Environment, Store
from repro.semantics.values import (
    BoolValue,
    HeaderValue,
    IntValue,
    RecordValue,
    StackValue,
    UnitValue,
    init_value,
)
from repro.syntax.types import (
    AnnotatedType,
    BitType,
    BoolType,
    Field,
    HeaderType,
    IntType,
    RecordType,
    StackType,
    TypeName,
    UnitType,
)


class TestIntValue:
    def test_wraps_modulo_width(self):
        assert IntValue(256, 8).value == 0
        assert IntValue(257, 8).value == 1
        assert IntValue(-1, 8).value == 255

    def test_unbounded_int_does_not_wrap(self):
        assert IntValue(10**12, None).value == 10**12

    def test_describe(self):
        assert IntValue(5, 8).describe() == "8w5"
        assert IntValue(5, None).describe() == "5"


class TestCompositeValues:
    def test_record_get_set(self):
        record = RecordValue((("a", IntValue(1, 8)), ("b", IntValue(2, 8))))
        assert record.get("a").value == 1
        updated = record.set("b", IntValue(9, 8))
        assert updated.get("b").value == 9
        assert record.get("b").value == 2  # original untouched

    def test_record_missing_field(self):
        record = RecordValue((("a", IntValue(1, 8)),))
        assert record.get("zzz") is None

    def test_header_preserves_validity(self):
        header = HeaderValue((("x", IntValue(3, 8)),), valid=True)
        updated = header.set("x", IntValue(4, 8))
        assert updated.valid

    def test_stack_get_set(self):
        stack = StackValue((IntValue(1, 8), IntValue(2, 8)))
        assert stack.get(1).value == 2
        assert stack.get(5) is None
        assert stack.set(0, IntValue(9, 8)).get(0).value == 9


class TestInitValue:
    def lookup(self, name):
        return {"inner_t": BitType(16)}.get(name)

    def test_scalars(self):
        assert init_value(BoolType(), self.lookup) == BoolValue(False)
        assert init_value(BitType(8), self.lookup) == IntValue(0, 8)
        assert init_value(IntType(), self.lookup) == IntValue(0, None)
        assert isinstance(init_value(UnitType(), self.lookup), UnitValue)

    def test_record(self):
        record_type = RecordType((Field("x", AnnotatedType(BitType(8), None)),))
        value = init_value(record_type, self.lookup)
        assert isinstance(value, RecordValue)
        assert value.get("x") == IntValue(0, 8)

    def test_header_starts_valid(self):
        header_type = HeaderType((Field("x", AnnotatedType(BitType(8), None)),))
        value = init_value(header_type, self.lookup)
        assert isinstance(value, HeaderValue)
        assert value.valid

    def test_stack(self):
        stack_type = StackType(AnnotatedType(BitType(8), None), 3)
        value = init_value(stack_type, self.lookup)
        assert isinstance(value, StackValue)
        assert len(value.elements) == 3

    def test_named_type(self):
        value = init_value(TypeName("inner_t"), self.lookup)
        assert value == IntValue(0, 16)

    def test_unknown_named_type(self):
        with pytest.raises(ValueError):
            init_value(TypeName("ghost"), self.lookup)


class TestStoreAndEnvironment:
    def test_fresh_locations_are_distinct(self):
        store = Store()
        a = store.fresh(IntValue(1, 8))
        b = store.fresh(IntValue(2, 8))
        assert a != b
        assert store.read(a).value == 1
        assert store.read(b).value == 2

    def test_write_existing_location(self):
        store = Store()
        loc = store.fresh(IntValue(1, 8))
        store.write(loc, IntValue(9, 8))
        assert store.read(loc).value == 9

    def test_read_unallocated(self):
        with pytest.raises(EvaluationError):
            Store().read(42)

    def test_write_unallocated(self):
        with pytest.raises(EvaluationError):
            Store().write(42, IntValue(0, 8))

    def test_snapshot_is_copy(self):
        store = Store()
        loc = store.fresh(IntValue(1, 8))
        snap = store.snapshot()
        store.write(loc, IntValue(2, 8))
        assert snap[loc].value == 1

    def test_environment_scoping(self):
        parent = Environment()
        parent.bind("x", 0)
        child = parent.child()
        child.bind("y", 1)
        assert child.lookup("x") == 0
        assert child.lookup("y") == 1
        assert parent.lookup("y") is None

    def test_environment_shadowing(self):
        parent = Environment()
        parent.bind("x", 0)
        child = parent.child()
        child.bind("x", 7)
        assert child.lookup("x") == 7
        assert parent.lookup("x") == 0

    def test_environment_require(self):
        env = Environment()
        with pytest.raises(EvaluationError):
            env.require("ghost")

    def test_environment_names(self):
        parent = Environment()
        parent.bind("a", 0)
        child = parent.child()
        child.bind("b", 1)
        assert set(child.names()) == {"a", "b"}
