"""Cross-process determinism of conflicts, unsat cores, and witnesses.

Python randomises ``hash()`` per process (PYTHONHASHSEED), so any dict or
set iteration order that leaks into solver output shows up as run-to-run
diffs -- breaking SARIF baselines, golden tests, and CI annotations.  The
solver sorts every such tie-break by variable uid; this test pins that by
running the same leaky program under several hash seeds in subprocesses
and asserting byte-identical conflict, core, and witness output.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

SRC_DIR = Path(__file__).resolve().parent.parent / "src"

#: Several interleaved leaks through shared unannotated locals: enough
#: variables and edges that an unsorted frozenset iteration would surface.
PROGRAM = """\
header h_t {
    <bit<8>, high> s1;
    <bit<8>, high> s2;
    <bit<8>, low> p1;
    <bit<8>, low> p2;
    <bit<8>, low> p3;
}

control C(inout h_t hdr) {
    bit<8> a = hdr.s1;
    bit<8> b = hdr.s2;
    bit<8> c = a;
    bit<8> d = b;
    apply {
        hdr.p1 = c;
        hdr.p2 = d;
        hdr.p3 = a + b;
    }
}
"""

SCRIPT = """\
import sys

from repro.analysis import witnesses_for_solution
from repro.frontend.parser import parse_program
from repro.inference import infer_labels
from repro.lattice.registry import get_lattice

source = sys.stdin.read()
lattice = get_lattice("two-point")
result = infer_labels(parse_program(source), lattice)
for conflict in result.solution.conflicts:
    print("conflict:", conflict)
    for constraint in conflict.core:
        print("  core:", constraint.span, constraint.describe())
for witness in witnesses_for_solution(result.solution):
    print(witness.describe(lattice))
for diag in result.diagnostics:
    print("diag:", diag)
"""


def _run(seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = str(SRC_DIR)
    completed = subprocess.run(
        [sys.executable, "-c", SCRIPT],
        input=PROGRAM,
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return completed.stdout


def test_conflicts_cores_and_witnesses_are_hashseed_stable():
    outputs = {seed: _run(seed) for seed in ("0", "1", "42")}
    baseline = outputs["0"]
    assert "conflict:" in baseline and "core:" in baseline
    assert "leak path" in baseline
    for seed, output in outputs.items():
        assert output == baseline, f"PYTHONHASHSEED={seed} changed solver output"
