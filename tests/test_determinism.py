"""Cross-process determinism of conflicts, unsat cores, and witnesses.

Python randomises ``hash()`` per process (PYTHONHASHSEED), so any dict or
set iteration order that leaks into solver output shows up as run-to-run
diffs -- breaking SARIF baselines, golden tests, and CI annotations.  The
solver sorts every such tie-break by variable uid; this test pins that by
running the same leaky program under several hash seeds in subprocesses
and asserting byte-identical conflict, core, and witness output.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

SRC_DIR = Path(__file__).resolve().parent.parent / "src"

#: Several interleaved leaks through shared unannotated locals: enough
#: variables and edges that an unsorted frozenset iteration would surface.
PROGRAM = """\
header h_t {
    <bit<8>, high> s1;
    <bit<8>, high> s2;
    <bit<8>, low> p1;
    <bit<8>, low> p2;
    <bit<8>, low> p3;
}

control C(inout h_t hdr) {
    bit<8> a = hdr.s1;
    bit<8> b = hdr.s2;
    bit<8> c = a;
    bit<8> d = b;
    apply {
        hdr.p1 = c;
        hdr.p2 = d;
        hdr.p3 = a + b;
    }
}
"""

SCRIPT = """\
import sys

from repro.analysis import witnesses_for_solution
from repro.frontend.parser import parse_program
from repro.inference import infer_labels
from repro.lattice.registry import get_lattice

backend = sys.argv[1] if len(sys.argv) > 1 else "graph"
workers = int(sys.argv[2]) if len(sys.argv) > 2 else 1
source = sys.stdin.read()
lattice = get_lattice("two-point")
result = infer_labels(
    parse_program(source), lattice, backend=backend, solver_workers=workers
)
for conflict in result.solution.conflicts:
    print("conflict:", conflict)
    for constraint in conflict.core:
        print("  core:", constraint.span, constraint.describe())
for witness in witnesses_for_solution(result.solution):
    print(witness.describe(lattice))
for diag in result.diagnostics:
    print("diag:", diag)
"""


def _run(seed: str, backend: str = "graph", workers: int = 1) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = str(SRC_DIR)
    completed = subprocess.run(
        [sys.executable, "-c", SCRIPT, backend, str(workers)],
        input=PROGRAM,
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return completed.stdout


def test_conflicts_cores_and_witnesses_are_hashseed_stable():
    outputs = {seed: _run(seed) for seed in ("0", "1", "42")}
    baseline = outputs["0"]
    assert "conflict:" in baseline and "core:" in baseline
    assert "leak path" in baseline
    for seed, output in outputs.items():
        assert output == baseline, f"PYTHONHASHSEED={seed} changed solver output"


def test_packed_backend_is_hashseed_stable_and_matches_graph():
    """The packed backend's conflicts, cores, and witnesses are byte-identical
    across hash seeds *and* byte-identical to the graph backend's output (the
    bitset encoding is declaration-ordered, never hash-ordered)."""
    graph_baseline = _run("0", backend="graph")
    outputs = {seed: _run(seed, backend="packed") for seed in ("0", "1", "42")}
    baseline = outputs["0"]
    assert "conflict:" in baseline and "core:" in baseline
    assert "leak path" in baseline
    assert baseline == graph_baseline, "packed output diverged from graph"
    for seed, output in outputs.items():
        assert output == baseline, f"PYTHONHASHSEED={seed} changed packed output"


def test_packed_backend_is_worker_count_stable():
    """Byte-identical output whether clusters are solved serially or merged
    back from a pool of worker processes."""
    baseline = _run("0", backend="packed", workers=1)
    for workers in (2, 4):
        output = _run("0", backend="packed", workers=workers)
        assert output == baseline, f"workers={workers} changed packed output"


#: The compliance workload end to end: scenario generation, replay
#: decisions, one deny explained with witness chains.  Every line printed
#: is part of the byte-stability contract BENCH_policy.json's differential
#: guard relies on.
POLICY_SCRIPT = """\
import sys

from repro.lattice.registry import get_lattice
from repro.policy import PolicyEngine, replay
from repro.synth import policy_traffic, scenario_universe

backend = sys.argv[1] if len(sys.argv) > 1 else "packed"
workers = int(sys.argv[2]) if len(sys.argv) > 2 else 1
lattice = get_lattice("policy-12-8-4")
universe = scenario_universe(lattice, subjects=10, datasets=14, seed=7)
events = policy_traffic(universe, events=150, revoke_every=30, seed=7)
engine = PolicyEngine(universe, backend=backend)
report = replay(engine, events)
for line in report.decision_log():
    print(line)
denied = next(d for d in report.decisions if not d.permit)
explanation = engine.explain(denied.request)
print(explanation.describe(engine))
solution = engine.audit(
    [d.request for d in report.decisions[:40]], backend=backend, workers=workers
)
for conflict in solution.conflicts:
    print("conflict:", conflict.constraint.describe())
"""


def _run_policy(seed: str, backend: str = "packed", workers: int = 1) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = str(SRC_DIR)
    completed = subprocess.run(
        [sys.executable, "-c", POLICY_SCRIPT, backend, str(workers)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return completed.stdout


def test_policy_decisions_and_witnesses_are_hashseed_stable():
    """Policy decision logs, deny explanations, and audit conflicts are
    byte-identical across hash seeds, backends, and worker counts -- the
    powerset components of a policy label are frozensets, so any unsorted
    iteration would surface here."""
    baseline = _run_policy("0", backend="packed")
    assert " DENY " in baseline and " PERMIT " in baseline
    assert "leak path" in baseline
    for seed in ("1", "42"):
        output = _run_policy(seed, backend="packed")
        assert output == baseline, f"PYTHONHASHSEED={seed} changed policy output"
    assert _run_policy("0", backend="graph") == baseline, (
        "graph backend diverged from packed on the policy workload"
    )
    assert _run_policy("0", backend="packed", workers=2) == baseline, (
        "worker pool changed policy audit output"
    )
