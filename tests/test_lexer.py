"""Unit tests for the lexer."""

import pytest

from repro.frontend.errors import LexerError
from repro.frontend.lexer import Token, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source) if t.kind is not TokenKind.EOF]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind is not TokenKind.EOF]


class TestBasicTokens:
    def test_empty_input_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        (token,) = [t for t in tokenize("hdr_field1") if t.kind is not TokenKind.EOF]
        assert token.kind is TokenKind.IDENT
        assert token.text == "hdr_field1"

    def test_keyword(self):
        (token,) = [t for t in tokenize("control") if t.kind is not TokenKind.EOF]
        assert token.kind is TokenKind.KEYWORD

    def test_keywords_are_not_identifiers(self):
        for word in ("header", "table", "apply", "action", "if", "else", "exit"):
            (token,) = [t for t in tokenize(word) if t.kind is not TokenKind.EOF]
            assert token.kind is TokenKind.KEYWORD, word

    def test_punctuation_sequence(self):
        assert texts("{ } ( ) [ ] ; : , . @") == list("{}()[];:,.@")

    def test_multi_char_operators(self):
        assert texts("== != <= >= && || << >>") == [
            "==",
            "!=",
            "<=",
            ">=",
            "&&",
            "||",
            "<<",
            ">>",
        ]

    def test_maximal_munch(self):
        # "<<=" lexes as "<<" then "="
        assert texts("<<=") == ["<<", "="]

    def test_unexpected_character(self):
        with pytest.raises(LexerError):
            tokenize("$")


class TestNumbers:
    def test_decimal(self):
        (token,) = [t for t in tokenize("42") if t.kind is not TokenKind.EOF]
        assert token.kind is TokenKind.INT
        assert token.value == 42
        assert token.width is None

    def test_hexadecimal(self):
        (token,) = [t for t in tokenize("0xFF") if t.kind is not TokenKind.EOF]
        assert token.value == 255

    def test_width_annotated_literal(self):
        (token,) = [t for t in tokenize("8w255") if t.kind is not TokenKind.EOF]
        assert token.value == 255
        assert token.width == 8

    def test_underscore_separators(self):
        (token,) = [t for t in tokenize("1_000") if t.kind is not TokenKind.EOF]
        assert token.value == 1000

    def test_malformed_literal(self):
        with pytest.raises(LexerError):
            tokenize("8wxyz")


class TestTriviaAndPositions:
    def test_line_comment(self):
        assert texts("a // comment\n b") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* lots \n of text */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexerError):
            tokenize("/* never closed")

    def test_line_numbers(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].span.start.line == 1
        assert tokens[1].span.start.line == 2
        assert tokens[1].span.start.column == 3

    def test_filename_recorded(self):
        tokens = tokenize("x", filename="prog.p4")
        assert tokens[0].span.filename == "prog.p4"

    def test_is_punct_and_keyword_helpers(self):
        token = tokenize("{")[0]
        assert token.is_punct("{")
        assert not token.is_punct("}")
        kw = tokenize("apply")[0]
        assert kw.is_keyword("apply")
        assert not kw.is_keyword("table")


class TestRealisticSnippet:
    SNIPPET = """
    control Ingress(inout headers hdr) {
        action drop() { }
        table t { key = { hdr.x: exact; } actions = { drop; } }
        apply { t.apply(); }
    }
    """

    def test_lexes_completely(self):
        tokens = tokenize(self.SNIPPET)
        assert tokens[-1].kind is TokenKind.EOF
        assert all(isinstance(t, Token) for t in tokens)

    def test_annotated_type_tokens(self):
        assert texts("<bit<8>, high>") == ["<", "bit", "<", "8", ">", ",", "high", ">"]
