"""Integration tests for the big-step interpreter: whole control blocks,
copy-in/copy-out calls, table application, l-value writing, signals."""

import pytest

from repro.frontend.parser import parse_program
from repro.semantics import (
    ControlPlane,
    EvaluationError,
    SignalKind,
    run_control,
)
from repro.semantics.control_plane import ExactMatch, TableEntry, Wildcard
from repro.semantics.values import HeaderValue, IntValue, RecordValue

PRELUDE = """
header h_t { bit<8> a; bit<8> b; bit<32> big; bool flag; }
struct headers { h_t h; }
"""


def run(body: str, locals_: str = "", inputs=None, control_plane=None):
    source = (
        PRELUDE
        + "control C(inout headers hdr) {\n"
        + locals_
        + "\n apply {\n"
        + body
        + "\n } }"
    )
    return run_control(
        parse_program(source), inputs or {}, control_plane=control_plane
    )


def header_struct(a=0, b=0, big=0, flag=False):
    return RecordValue(
        (
            (
                "h",
                HeaderValue(
                    (
                        ("a", IntValue(a, 8)),
                        ("b", IntValue(b, 8)),
                        ("big", IntValue(big, 32)),
                        ("flag", __import__("repro.semantics.values", fromlist=["BoolValue"]).BoolValue(flag)),
                    )
                ),
            ),
        )
    )


def field(run_result, name):
    return run_result.parameters["hdr"].get("h").get(name)


class TestBasicExecution:
    def test_default_initialised_parameters(self):
        result = run("hdr.h.a = hdr.h.a + 1;")
        assert field(result, "a").value == 1

    def test_inputs_are_used(self):
        result = run("hdr.h.a = hdr.h.b;", inputs={"hdr": header_struct(b=9)})
        assert field(result, "a").value == 9

    def test_assignment_through_nested_lvalue(self):
        result = run("hdr.h.big = 70000;")
        assert field(result, "big").value == 70000

    def test_if_then_else(self):
        result = run(
            "if (hdr.h.a == 5) { hdr.h.b = 1; } else { hdr.h.b = 2; }",
            inputs={"hdr": header_struct(a=5)},
        )
        assert field(result, "b").value == 1

    def test_local_variable(self):
        result = run("bit<8> t = hdr.h.a + 3; hdr.h.b = t;", inputs={"hdr": header_struct(a=4)})
        assert field(result, "b").value == 7

    def test_exit_stops_execution(self):
        result = run("hdr.h.a = 1; exit; hdr.h.a = 2;")
        assert field(result, "a").value == 1
        assert result.signal.kind is SignalKind.EXIT

    def test_cont_signal_on_normal_completion(self):
        assert run("hdr.h.a = 1;").signal.kind is SignalKind.CONT

    def test_arithmetic_wraps_at_width(self):
        result = run("hdr.h.a = hdr.h.a + 200;", inputs={"hdr": header_struct(a=100)})
        assert field(result, "a").value == (300 % 256)


class TestCalls:
    def test_action_writes_through_closure(self):
        locals_ = "  action bump() { hdr.h.a = hdr.h.a + 1; }"
        result = run("bump(); bump();", locals_)
        assert field(result, "a").value == 2

    def test_in_parameter_is_copied(self):
        locals_ = """
  action set_b(in bit<8> v) { hdr.h.b = v; }
"""
        result = run("set_b(hdr.h.a + 1);", locals_, inputs={"hdr": header_struct(a=3)})
        assert field(result, "b").value == 4

    def test_inout_parameter_copies_back(self):
        locals_ = "  action bump(inout bit<8> v) { v = v + 1; }"
        result = run("bump(hdr.h.a);", locals_, inputs={"hdr": header_struct(a=10)})
        assert field(result, "a").value == 11

    def test_in_parameter_does_not_copy_back(self):
        locals_ = "  action try_write(in bit<8> v) { v = v + 1; }"
        result = run("try_write(hdr.h.a);", locals_, inputs={"hdr": header_struct(a=10)})
        assert field(result, "a").value == 10

    def test_function_return_value(self):
        locals_ = "  function bit<8> double(in bit<8> v) { return v + v; }"
        result = run("hdr.h.b = double(hdr.h.a);", locals_, inputs={"hdr": header_struct(a=6)})
        assert field(result, "b").value == 12

    def test_return_stops_action_body(self):
        locals_ = """
  action f() {
      hdr.h.a = 1;
      return;
      hdr.h.a = 2;
  }
"""
        result = run("f();", locals_)
        assert field(result, "a").value == 1

    def test_exit_propagates_out_of_action(self):
        locals_ = "  action f() { exit; }"
        result = run("f(); hdr.h.a = 5;", locals_)
        assert field(result, "a").value == 0
        assert result.signal.kind is SignalKind.EXIT

    def test_nested_calls(self):
        locals_ = """
  action inner(inout bit<8> v) { v = v + 1; }
  action outer() { inner(hdr.h.a); inner(hdr.h.a); }
"""
        result = run("outer();", locals_)
        assert field(result, "a").value == 2

    def test_unsupplied_directionless_param_defaults(self):
        locals_ = "  action set_b(bit<8> v) { hdr.h.b = v; }"
        result = run("set_b();", locals_, inputs={"hdr": header_struct(b=9)})
        assert field(result, "b").value == 0


class TestTables:
    LOCALS = """
  action set_b(bit<8> v) { hdr.h.b = v; }
  action nop() { }
  table t {
      key = { hdr.h.a: exact; }
      actions = { set_b; nop; }
  }
"""

    def plane(self):
        plane = ControlPlane()
        plane.add_exact_entry("t", [1], "set_b", {"v": IntValue(11, 8)})
        plane.add_exact_entry("t", [2], "set_b", {"v": IntValue(22, 8)})
        plane.set_default_action("t", "nop")
        return plane

    def test_match_invokes_action_with_control_args(self):
        result = run(
            "t.apply();", self.LOCALS, inputs={"hdr": header_struct(a=2)},
            control_plane=self.plane(),
        )
        assert field(result, "b").value == 22

    def test_miss_runs_default_action(self):
        result = run(
            "t.apply();", self.LOCALS, inputs={"hdr": header_struct(a=9, b=5)},
            control_plane=self.plane(),
        )
        assert field(result, "b").value == 5

    def test_miss_without_default_is_noop(self):
        result = run(
            "t.apply();", self.LOCALS, inputs={"hdr": header_struct(a=9, b=5)},
            control_plane=ControlPlane(),
        )
        assert field(result, "b").value == 5

    def test_declaration_time_arguments(self):
        locals_ = """
  bit<8> source = hdr.h.a;
  action copy(in bit<8> v) { hdr.h.b = v; }
  table t { key = { hdr.h.a: exact; } actions = { copy(source); } }
"""
        plane = ControlPlane()
        plane.add_entry("t", TableEntry((Wildcard(),), "copy"))
        result = run("t.apply();", locals_, inputs={"hdr": header_struct(a=7)}, control_plane=plane)
        assert field(result, "b").value == 7

    def test_control_plane_with_unknown_action_rejected(self):
        plane = ControlPlane()
        plane.add_entry("t", TableEntry((ExactMatch(0),), "ghost"))
        with pytest.raises(EvaluationError):
            run("t.apply();", self.LOCALS, control_plane=plane)


class TestErrors:
    def test_unknown_variable(self):
        with pytest.raises(EvaluationError):
            run("ghost = 1;")

    def test_calling_a_non_function(self):
        with pytest.raises(EvaluationError):
            run("hdr.h.a(); ")

    def test_bad_condition_type(self):
        with pytest.raises(EvaluationError):
            run("if (hdr.h.a) { hdr.h.b = 1; }")

    def test_unknown_control_name(self):
        program = parse_program(PRELUDE + "control C(inout headers hdr) { apply { } }")
        with pytest.raises(EvaluationError):
            run_control(program, control_name="Ghost")


class TestMultiControlPrograms:
    SOURCE = """
    header h_t { bit<8> x; }
    struct headers { h_t h; }
    control A(inout headers hdr) { apply { hdr.h.x = 1; } }
    control B(inout headers hdr) { apply { hdr.h.x = 2; } }
    """

    def test_run_named_control(self):
        program = parse_program(self.SOURCE)
        run_a = run_control(program, control_name="A")
        run_b = run_control(program, control_name="B")
        assert run_a.parameters["hdr"].get("h").get("x").value == 1
        assert run_b.parameters["hdr"].get("h").get("x").value == 2

    def test_main_control_requires_uniqueness(self):
        program = parse_program(self.SOURCE)
        with pytest.raises(ValueError):
            program.main_control()


class TestCaseStudyExecution:
    def test_topology_secure_runs(self):
        from repro.casestudies import get_case_study

        case = get_case_study("topology")
        program = parse_program(case.secure_source)
        result = run_control(program, control_plane=case.control_plane())
        assert result.signal.kind is SignalKind.CONT

    def test_d2r_runs_both_variants(self):
        from repro.casestudies import get_case_study

        case = get_case_study("d2r")
        for source in (case.secure_source, case.insecure_source):
            program = parse_program(source)
            result = run_control(program, control_plane=case.control_plane())
            assert result.signal.kind is SignalKind.CONT

    def test_isolation_runs_each_control(self):
        from repro.casestudies import get_case_study

        case = get_case_study("lattice")
        program = parse_program(case.secure_source)
        for control_name in case.control_names:
            result = run_control(
                program, control_name=control_name, control_plane=case.control_plane()
            )
            assert result.signal.kind is SignalKind.CONT
