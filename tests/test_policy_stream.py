"""The scenario generator and the replay harness: determinism + reports."""

import pytest

from repro.lattice import get_lattice
from repro.policy import PolicyEngine, replay
from repro.synth import TrafficEvent, policy_traffic, scenario_universe
from repro.telemetry import TraceRecorder, use_recorder

LATTICE = get_lattice("policy-mini")


def scenario(seed=0, subjects=8, datasets=10, events=200, revoke_every=40):
    universe = scenario_universe(
        LATTICE, subjects=subjects, datasets=datasets, seed=seed
    )
    stream = policy_traffic(
        universe, events=events, revoke_every=revoke_every, seed=seed
    )
    return universe, stream


# ---------------------------------------------------------------------------
# generator determinism


def event_fingerprint(event: TrafficEvent):
    if event.regrant is not None:
        subject, bound = event.regrant
        return (event.uid, "regrant", subject, str(bound))
    request = event.request
    return (
        event.uid,
        request.kind,
        request.dataset,
        request.purpose,
        request.recipient,
        request.retention,
    )


def test_same_seed_same_stream():
    _, first = scenario(seed=3)
    _, second = scenario(seed=3)
    assert list(map(event_fingerprint, first)) == list(
        map(event_fingerprint, second)
    )


def test_different_seeds_differ():
    _, first = scenario(seed=0)
    _, second = scenario(seed=1)
    assert list(map(event_fingerprint, first)) != list(
        map(event_fingerprint, second)
    )


def test_stream_shape():
    universe, stream = scenario(events=200, revoke_every=40)
    assert len(stream) == 200
    assert [event.uid for event in stream] == list(range(200))
    regrants = [event for event in stream if event.regrant is not None]
    # Never at uid 0, so (events - 1) // revoke_every of them.
    assert len(regrants) == (200 - 1) // 40
    kinds = {event.request.kind for event in stream if event.request is not None}
    # The scenario mix covers the three request families.
    assert kinds == {"access", "reuse", "expiry"}
    for event in stream:
        if event.request is not None:
            assert event.request.dataset in universe.datasets


def test_regrants_only_tighten():
    universe, stream = scenario(events=400, revoke_every=50)
    for event in stream:
        if event.regrant is None:
            continue
        subject, bound = event.regrant
        # The generator shrinks via meet, so the new bound sits at or
        # below whatever the subject held when the event was minted.
        assert LATTICE.leq(bound, universe.grant(subject))
        universe.set_grant(subject, bound)
        assert universe.grant(subject) == bound


# ---------------------------------------------------------------------------
# replay


def test_replay_counts_and_log_parity():
    logs = {}
    for backend in ("packed", "graph"):
        universe, stream = scenario(seed=5)
        engine = PolicyEngine(universe, backend=backend)
        report = replay(engine, stream)
        assert len(report.decisions) + report.revocations == len(stream)
        assert report.permits + report.denies == len(report.decisions)
        assert report.latency_us.count == len(report.decisions)
        assert report.duration_s > 0.0
        assert report.checks_per_sec > 0.0
        logs[backend] = report.decision_log()
    assert logs["packed"] == logs["graph"]


def test_replay_report_dict_fields():
    universe, stream = scenario(events=100, revoke_every=30)
    engine = PolicyEngine(universe)
    report = replay(engine, stream)
    payload = report.as_dict()
    assert payload["events"] == 100
    assert payload["decisions"] == len(report.decisions)
    assert payload["revocations"] == report.revocations
    assert payload["lattice"] == "policy-mini"
    assert payload["principals"] == 4
    assert set(payload["latency_us"]) == {"mean", "p50", "p95", "p99", "max"}
    assert payload["latency_us"]["p50"] is not None
    text = report.describe()
    assert "checks/sec" in text and "p99=" in text


def test_replay_is_paced_by_rate():
    universe, stream = scenario(events=40, revoke_every=1000)
    engine = PolicyEngine(universe)
    report = replay(engine, stream, rate=2000.0)
    # 40 events at 2000/sec admits the last one at t=19.5ms.
    assert report.duration_s >= 0.019
    with pytest.raises(ValueError):
        replay(engine, stream, rate=0.0)


def test_replay_emits_telemetry():
    universe, stream = scenario(events=60, revoke_every=20)
    recorder = TraceRecorder()
    with use_recorder(recorder):
        report = replay(PolicyEngine(universe), stream)
    assert recorder.counters["policy.replayed_events"] == 60
    assert recorder.counters["policy.decisions"] == len(report.decisions)
    (span,) = recorder.spans_named("policy.replay")
    assert span.attrs["events"] == 60
    # decide spans nest under the replay via the ambient recorder, and the
    # per-decision latency histogram is populated.
    assert "policy.decide_us" in recorder.histograms
