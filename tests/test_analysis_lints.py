"""Table-driven corpus for the lint rules, plus leak-path witness tests.

Every rule has a *firing* program and a *non-firing near miss* -- the
minimal edit that should silence the rule -- and the corpus runs across
every registered lattice (label names are templated on each lattice's
formatted top/bottom).  The witness tests pin the acceptance criterion:
every failing case study yields at least one leak-path witness whose hops
all carry source provenance.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    ALL_RULES,
    explain_flows,
    probe_declassifications,
    rule_by_code,
    rule_for_violation,
    rule_table,
    run_lints,
    witnesses_for_solution,
)
from repro.casestudies import all_case_studies
from repro.casestudies.base import strip_body_annotations, strip_security_annotations
from repro.frontend.parser import parse_program
from repro.ifc.errors import ViolationKind
from repro.inference import infer_labels
from repro.lattice.registry import available_lattices, get_lattice

LATTICE_NAMES = sorted(set(available_lattices()) | {"chain-3", "chain-5"})

CASE_NAMES = [case.name for case in all_case_studies()]


def _program_template(body: str) -> str:
    """A two-field header (one {top}, one {bot}) around ``body``."""
    return (
        "header h_t {{\n"
        "    <bit<8>, {top}> secret;\n"
        "    <bit<8>, {bot}> pub;\n"
        "}}\n\n"
        "control C(inout h_t hdr) {{\n" + body + "}}\n"
    )


#: rule code -> (firing program template, near-miss template, needs declassify)
CORPUS = {
    "P4B001": (
        # Annotation equal to what inference would derive anyway.
        _program_template(
            "    <bit<8>, {top}> copy = hdr.secret;\n"
            "    apply {{ hdr.secret = copy; }}\n"
        ),
        # The same slot annotated above its inflow is slack, not redundant.
        _program_template(
            "    <bit<8>, {top}> copy = hdr.pub;\n"
            "    apply {{ hdr.secret = copy; }}\n"
        ),
        False,
    ),
    "P4B002": (
        # Annotation strictly above the least label the flows require.
        _program_template(
            "    <bit<8>, {top}> copy = hdr.pub;\n"
            "    apply {{ hdr.secret = copy; }}\n"
        ),
        # Tight annotation: the inflow matches the declared label.
        _program_template(
            "    <bit<8>, {top}> copy = hdr.secret;\n"
            "    apply {{ hdr.secret = copy; }}\n"
        ),
        False,
    ),
    "P4B003": (
        # The declassified value only ever reaches a {top} sink, so the
        # release changes nothing an observer can see.
        _program_template(
            "    apply {{ hdr.secret = declassify(hdr.secret); }}\n"
        ),
        # Released into a {bot} sink: the declassify is load-bearing.
        _program_template(
            "    apply {{ hdr.pub = declassify(hdr.secret); }}\n"
        ),
        True,
    ),
    "P4B004": (
        # The stored label is never read downstream.
        _program_template(
            "    bit<8> scratch = hdr.secret;\n"
            "    apply {{ hdr.secret = hdr.secret; }}\n"
        ),
        # Reading the slot into a sink makes the store live.
        _program_template(
            "    bit<8> scratch = hdr.secret;\n"
            "    apply {{ hdr.secret = scratch; }}\n"
        ),
        False,
    ),
    "P4B005": (
        # Statements after exit can never execute.
        _program_template(
            "    apply {{\n"
            "        exit;\n"
            "        hdr.secret = hdr.secret;\n"
            "    }}\n"
        ),
        # The exit is the last statement: nothing is dead.
        _program_template(
            "    apply {{\n"
            "        hdr.secret = hdr.secret;\n"
            "        exit;\n"
            "    }}\n"
        ),
        False,
    ),
}


def _lint_codes(template: str, lattice_name: str, *, declassify: bool):
    lattice = get_lattice(lattice_name)
    source = template.format(
        top=lattice.format_label(lattice.top),
        bot=lattice.format_label(lattice.bottom),
    )
    program = parse_program(source)
    findings = run_lints(program, lattice, allow_declassification=declassify)
    return {finding.code for finding in findings}


class TestLintCorpus:
    @pytest.mark.parametrize("lattice_name", LATTICE_NAMES)
    @pytest.mark.parametrize("code", sorted(CORPUS))
    def test_rule_fires_on_its_program(self, code, lattice_name):
        firing, _, declassify = CORPUS[code]
        assert code in _lint_codes(firing, lattice_name, declassify=declassify)

    @pytest.mark.parametrize("lattice_name", LATTICE_NAMES)
    @pytest.mark.parametrize("code", sorted(CORPUS))
    def test_rule_stays_silent_on_the_near_miss(self, code, lattice_name):
        _, near_miss, declassify = CORPUS[code]
        assert code not in _lint_codes(
            near_miss, lattice_name, declassify=declassify
        )

    def test_interface_annotations_are_never_linted(self):
        """Header/parameter annotations are policy, not implementation."""
        lattice = get_lattice("two-point")
        source = _program_template("    apply {{ hdr.pub = hdr.pub; }}\n").format(
            top="high", bot="low"
        )
        findings = run_lints(parse_program(source), lattice)
        assert not {f.code for f in findings} & {"P4B001", "P4B002"}

    def test_findings_are_ordered_by_position(self):
        lattice = get_lattice("two-point")
        source = _program_template(
            "    bit<8> scratch = hdr.secret;\n"
            "    apply {{\n"
            "        exit;\n"
            "        hdr.secret = hdr.secret;\n"
            "    }}\n"
        ).format(top="high", bot="low")
        findings = run_lints(parse_program(source), lattice)
        positions = [(f.span.start.line, f.span.start.column) for f in findings]
        assert positions == sorted(positions)
        assert [f.code for f in findings] == ["P4B004", "P4B005"]


class TestRuleRegistry:
    def test_rule_codes_are_unique_and_sorted(self):
        codes = [rule.code for rule in ALL_RULES]
        assert codes == sorted(codes)
        assert len(codes) == len(set(codes))

    def test_every_violation_kind_has_a_rule(self):
        for kind in ViolationKind:
            rule = rule_for_violation(kind)
            assert rule.code.startswith("P4B1")
            assert rule is rule_by_code(rule.code)

    def test_rule_table_mentions_every_code(self):
        table = rule_table()
        for rule in ALL_RULES:
            assert rule.code in table


class TestDeclassifyProbes:
    def test_released_flows_found_for_effective_release(self):
        lattice = get_lattice("two-point")
        source = _program_template(
            "    apply {{ hdr.pub = declassify(hdr.secret); }}\n"
        ).format(top="high", bot="low")
        program = parse_program(source)
        sites, releases = probe_declassifications(program, lattice)
        assert len(sites) == 1
        assert releases[0], "the release must expose at least one flow"
        flows = explain_flows(program, lattice)
        assert flows and flows[0].witness.length >= 1

    def test_no_probe_work_without_declassify(self):
        lattice = get_lattice("two-point")
        source = _program_template("    apply {{ hdr.pub = hdr.pub; }}\n").format(
            top="high", bot="low"
        )
        sites, releases = probe_declassifications(parse_program(source), lattice)
        assert sites == [] and releases == {}


class TestLeakWitnesses:
    @pytest.mark.parametrize("case_name", CASE_NAMES)
    def test_every_failing_case_study_yields_a_witness(self, case_name):
        """Acceptance criterion: >=1 witness per conflict, hops with spans."""
        case = next(c for c in all_case_studies() if c.name == case_name)
        lattice = get_lattice(case.lattice_name)
        result = infer_labels(parse_program(case.insecure_source), lattice)
        assert not result.ok, "insecure variant must fail inference"
        witnesses = witnesses_for_solution(result.solution)
        assert len(witnesses) == len(result.solution.conflicts)
        for witness in witnesses:
            assert witness.hops, "every witness must have at least one hop"
            for hop in witness.hops:
                assert not hop.span.is_unknown(), (
                    f"hop without source provenance: {hop.describe(lattice)}"
                )

    @pytest.mark.parametrize("case_name", CASE_NAMES)
    def test_body_stripped_conflicts_carry_full_provenance(self, case_name):
        """When inference itself fails, the multi-hop chain is grounded."""
        case = next(c for c in all_case_studies() if c.name == case_name)
        lattice = get_lattice(case.lattice_name)
        partial = strip_body_annotations(case.insecure_source)
        result = infer_labels(parse_program(partial), lattice)
        if result.ok:
            pytest.skip("inference reconstructs a satisfying assignment")
        for witness in witnesses_for_solution(result.solution):
            assert witness.hops
            for hop in witness.hops:
                assert not hop.span.is_unknown()

    def test_witnesses_rank_shortest_first(self):
        lattice = get_lattice("two-point")
        source = (
            "header h_t {\n"
            "    <bit<8>, high> secret;\n"
            "    <bit<8>, low> near;\n"
            "    <bit<8>, low> far;\n"
            "}\n\n"
            "control C(inout h_t hdr) {\n"
            "    bit<8> a = hdr.secret;\n"
            "    bit<8> b = a;\n"
            "    bit<8> c = b;\n"
            "    apply {\n"
            "        hdr.near = hdr.secret;\n"
            "        hdr.far = c;\n"
            "    }\n"
            "}\n"
        )
        result = infer_labels(parse_program(source), get_lattice("two-point"))
        assert not result.ok
        witnesses = witnesses_for_solution(result.solution)
        assert len(witnesses) == 2
        lengths = [w.length for w in witnesses]
        assert lengths == sorted(lengths)
        assert lengths[0] < lengths[-1], "the multi-hop chain must rank later"
        long_witness = witnesses[-1]
        described = long_witness.describe(lattice)
        assert "leak path" in described
        for hop in long_witness.hops:
            assert not hop.span.is_unknown()

    def test_fully_annotated_conflicts_still_get_witnesses(self):
        """Const-vs-const checks yield the one-hop witness (the check)."""
        lattice = get_lattice("two-point")
        source = _program_template(
            "    apply {{ hdr.pub = hdr.secret; }}\n"
        ).format(top="high", bot="low")
        result = infer_labels(parse_program(source), lattice)
        assert not result.ok
        witnesses = witnesses_for_solution(result.solution)
        assert witnesses and all(w.length >= 1 for w in witnesses)


class TestLintsAcrossCaseStudies:
    @pytest.mark.parametrize("case_name", CASE_NAMES)
    def test_lints_run_clean_on_every_case_study(self, case_name):
        """run_lints never crashes on real programs, secure or leaky."""
        case = next(c for c in all_case_studies() if c.name == case_name)
        lattice = get_lattice(case.lattice_name)
        for source in (case.secure_source, case.insecure_source):
            findings = run_lints(parse_program(source), lattice)
            for finding in findings:
                assert finding.rule in ALL_RULES
                assert finding.describe()
