"""The session workspace: warm results must be indistinguishable from cold.

The central contract of `repro.workspace` is *differential transparency*:
after any sequence of edits, pins and save/load round-trips, a workspace's
answers (assignment, diagnostics, inferred labels, unsat cores, leak
witnesses, lints) are exactly what a cold one-shot check of the current
source would produce -- while re-walking only the changed units and
re-solving only the cone of influence.  These tests pin both halves: the
equality, and (via telemetry counters and solver statistics, never timing)
the incrementality.
"""

from __future__ import annotations

import random

import pytest

from repro.casestudies import get_case_study
from repro.lattice.registry import available_lattices, get_lattice
from repro.synth import sharded_dataflow_program
from repro.telemetry import TraceRecorder, use_recorder
from repro.tool.pipeline import check_source
from repro.workspace import Workspace, WorkspaceError


def _snapshot(workspace: Workspace) -> dict:
    """Everything observable about a workspace's current answers, rendered
    to plain comparable data."""
    report = workspace.check(infer=True, lint=True)
    inference = report.inference_result
    lattice = workspace.lattice
    return {
        "ok": report.ok,
        "diagnostics": [str(x) for x in report.diagnostics],
        "assignment": {
            hint: lattice.format_label(label)
            for hint, label in inference.assignment_by_hint().items()
        },
        "inferred": [x.describe(lattice) for x in inference.inferred],
        "conflicts": len(inference.solution.conflicts),
        "cores": workspace.unsat_cores(),
        "witnesses": [w.describe(lattice) for w in workspace.witnesses()],
        "lints": [
            (f.code, f.severity.value, f.message, str(f.span))
            for f in workspace.lint()
        ],
    }


def _cold_snapshot(source: str, *, lattice: str = "two-point", **options) -> dict:
    """The same snapshot taken by a fresh workspace that never saw any
    other revision -- the cold baseline."""
    workspace = Workspace(get_lattice(lattice), **options)
    assert workspace.open(source, filename="<input>")
    return _snapshot(workspace)


def _assert_matches_cold(workspace: Workspace, source: str, lattice: str) -> None:
    warm = _snapshot(workspace)
    cold = _cold_snapshot(source, lattice=lattice)
    assert warm == cold
    # And the one-shot pipeline facade agrees on the headline answers.
    report = check_source(source, infer=True, lattice=lattice, filename="<input>")
    assert warm["ok"] == report.ok
    assert warm["diagnostics"] == [str(x) for x in report.diagnostics]
    assert warm["assignment"] == {
        hint: workspace.lattice.format_label(label)
        for hint, label in report.inference_result.assignment_by_hint().items()
    }


class TestDifferentialCaseStudies:
    """Edit scripts over the paper's case studies: secure -> insecure ->
    secure, warm answers equal to cold at every step."""

    @pytest.mark.parametrize(
        "name", ["d2r", "app", "lattice", "topology", "cache", "netchain"]
    )
    def test_secure_insecure_roundtrip(self, name):
        case = get_case_study(name)
        workspace = Workspace(get_lattice(case.lattice_name))
        assert workspace.open(case.secure_source, filename="<input>")
        _assert_matches_cold(workspace, case.secure_source, case.lattice_name)
        if case.insecure_source:
            assert workspace.edit(case.insecure_source)
            _assert_matches_cold(
                workspace, case.insecure_source, case.lattice_name
            )
        assert workspace.edit(case.secure_source)
        _assert_matches_cold(workspace, case.secure_source, case.lattice_name)


def _mutate(source: str, rng: random.Random) -> str:
    """One random structural edit of a sharded program's source."""
    blocks = source.split("\n\n")
    headers = [i for i, b in enumerate(blocks) if b.startswith("header ")]
    choice = rng.randrange(4)
    if choice == 0:
        # Flip one shard's seed annotation between high and low.
        index = rng.choice(headers)
        block = blocks[index]
        flipped = (
            block.replace("high> seed", "low> seed")
            if "high> seed" in block
            else block.replace("low> seed", "high> seed")
        )
        blocks[index] = flipped
    elif choice == 1:
        # Formatting-only noise: a comment above a random block.
        index = rng.randrange(len(blocks))
        blocks[index] = "// revision note\n" + blocks[index]
    elif choice == 2:
        # Reorder: rotate the declaration blocks shard-wise (each shard's
        # header stays before its struct, so resolution is unchanged).
        decls = [b for b in blocks if not b.startswith("control ")]
        controls = [b for b in blocks if b.startswith("control ")]
        if len(decls) >= 4:
            decls = decls[2:] + decls[:2]
        blocks = decls + controls
    else:
        # Make one shard's sink explicitly low-annotated, which conflicts
        # with a high seed flowing into it.
        index = rng.choice(headers)
        block = blocks[index]
        lines = block.splitlines()
        for i, line in enumerate(lines):
            if line.strip().startswith("bit<") and line.strip().endswith(";"):
                width = line.strip().split(">")[0] + ">"
                name = line.strip().split()[-1].rstrip(";")
                lines[i] = f"    <{width}, low> {name};"
                break
        blocks[index] = "\n".join(lines)
    return "\n\n".join(blocks)


class TestDifferentialRandomEdits:
    """Randomised edit scripts over synthesized programs, across every
    registered lattice and both solver backends."""

    @pytest.mark.parametrize("lattice", sorted(available_lattices()))
    @pytest.mark.parametrize("backend", ["graph", "packed"])
    def test_edit_script_matches_cold(self, lattice, backend):
        rng = random.Random(f"{lattice}/{backend}")
        source = sharded_dataflow_program(4, depth=3)
        workspace = Workspace(get_lattice(lattice), backend=backend)
        assert workspace.open(source, filename="<input>")
        for _ in range(6):
            source = _mutate(source, rng)
            assert workspace.edit(source)
            warm = _snapshot(workspace)
            cold = _cold_snapshot(source, lattice=lattice, backend=backend)
            assert warm == cold

    def test_save_load_mid_script(self, tmp_path):
        rng = random.Random("persist")
        source = sharded_dataflow_program(3, depth=3)
        workspace = Workspace()
        assert workspace.open(source, filename="<input>")
        for _ in range(2):
            source = _mutate(source, rng)
            assert workspace.edit(source)
        before = _snapshot(workspace)
        path = tmp_path / "session.p4bidws"
        workspace.save(path)
        loaded = Workspace.load(path)
        # The loaded workspace answers identically without re-solving...
        assert _snapshot(loaded) == before
        # ...and further edits continue warm from the restored state.
        source = _mutate(source, rng)
        assert loaded.edit(source)
        assert _snapshot(loaded) == _cold_snapshot(source)
        stats = loaded.stats()["regen"]
        assert stats["units_reused"] > 0

    def test_parse_error_keeps_previous_program(self):
        source = sharded_dataflow_program(2, depth=2)
        workspace = Workspace()
        assert workspace.open(source, filename="<input>")
        good = _snapshot(workspace)
        assert not workspace.edit("header broken {{{")
        assert workspace.parse_error is not None
        broken = workspace.check(infer=True)
        assert not broken.ok
        assert broken.parse_error is not None
        # Recovering with the old source is warm: nothing is re-walked.
        assert workspace.edit(source)
        assert _snapshot(workspace) == good
        assert workspace.stats()["regen"]["units_rewalked"] == 0


class TestIncrementality:
    """A single-declaration edit re-walks only the changed units and
    re-solves only the cone of influence -- asserted through counters and
    solver statistics, never timing."""

    @pytest.mark.parametrize("backend", ["graph", "packed"])
    def test_single_shard_edit_is_localised(self, backend):
        shards, depth = 6, 4
        source = sharded_dataflow_program(shards, depth=depth)
        edited = source.replace(
            "header shard3_t {\n    <bit<8>, high> seed;",
            "header shard3_t {\n    <bit<8>, low> seed;",
        )
        assert edited != source
        workspace = Workspace(backend=backend)
        assert workspace.open(source, filename="<input>")
        workspace.check(infer=True)
        total_vars = workspace.check(infer=True).inference_result.variable_count

        recorder = TraceRecorder()
        with use_recorder(recorder):
            assert workspace.edit(edited)
            warm = workspace.check(infer=True)

        # Only shard3's header, struct and control were re-walked.
        assert recorder.counters["workspace.units_rewalked"] == 3
        assert recorder.counters["workspace.units_reused"] == 3 * shards - 3
        # The re-solve was seeded from the edit's cone, far smaller than
        # the whole system, and reused every out-of-cone variable.
        assert recorder.counters["solver.rebase.calls"] == 1
        cone = recorder.counters["solver.rebase.cone_vars"]
        reused = recorder.counters["solver.rebase.vars_reused"]
        assert 0 < cone < total_vars
        assert reused == total_vars - cone
        # The propagation itself visited only the cone's edges.
        stats = warm.inference_result.solution.stats
        assert stats is not None
        assert stats.edges_visited < warm.inference_result.constraint_count
        # And the answers still match a cold solve exactly.
        assert (
            warm.inference_result.assignment_by_hint()
            == check_source(
                edited, infer=True, backend=backend, filename="<input>"
            ).inference_result.assignment_by_hint()
        )

    def test_cold_check_records_no_workspace_counters(self):
        recorder = TraceRecorder()
        with use_recorder(recorder):
            check_source(sharded_dataflow_program(2, depth=2), infer=True)
        assert recorder.counters.get("solver.rebase.calls") is None
        assert recorder.counters["workspace.regenerations"] == 1
        assert recorder.counters["workspace.units_rewalked"] == 6


class TestPins:
    def test_pin_and_unpin_restore_least_solution(self):
        source = sharded_dataflow_program(2, depth=2)
        workspace = Workspace()
        assert workspace.open(source, filename="<input>")
        base = workspace.infer().assignment_by_hint()
        hint = next(iter(base))
        workspace.pin(hint, "high")
        pinned = workspace.infer().assignment_by_hint()
        assert workspace.lattice.format_label(pinned[hint]) == "high"
        assert workspace.pins == {hint: workspace.lattice.parse_label("high")}
        workspace.pin(hint, None)
        assert workspace.pins == {}
        assert workspace.infer().assignment_by_hint() == base

    def test_pin_survives_structural_edit(self):
        source = sharded_dataflow_program(3, depth=3)
        edited = source.replace("hdr.data.s1 = hdr.data.s0;", "hdr.data.s1 = 3;", 1)
        workspace = Workspace()
        assert workspace.open(source, filename="<input>")
        base = workspace.infer().assignment_by_hint()
        hint = sorted(base)[0]
        workspace.pin(hint, "high")
        assert workspace.edit(edited)
        warm = workspace.infer().assignment_by_hint()
        assert workspace.lattice.format_label(warm[hint]) == "high"
        # Unpinning after the edit lands exactly on the cold least solution.
        workspace.pin(hint, None)
        cold = check_source(
            edited, infer=True, filename="<input>"
        ).inference_result.assignment_by_hint()
        assert workspace.infer().assignment_by_hint() == cold

    def test_pin_unknown_hint_is_an_error(self):
        workspace = Workspace()
        assert workspace.open(sharded_dataflow_program(1), filename="<input>")
        with pytest.raises(WorkspaceError):
            workspace.pin("no-such-slot", "high")


class TestPersistenceFormat:
    def test_rejects_foreign_payloads(self, tmp_path):
        path = tmp_path / "bogus.p4bidws"
        path.write_bytes(b"not a workspace")
        with pytest.raises(WorkspaceError):
            Workspace.load(path)

    def test_stats_shape(self):
        workspace = Workspace(name="session-under-test")
        assert workspace.open(sharded_dataflow_program(2), filename="<input>")
        workspace.check(infer=True)
        stats = workspace.stats()
        assert stats["name"] == "session-under-test"
        assert stats["parsed"] is True
        assert stats["revision"] == 1
        assert stats["units"] == 6
        assert stats["solver"]["solved"] is True
