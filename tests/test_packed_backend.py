"""Differential harness: the packed backend vs the object backends.

The packed solver re-encodes the whole problem (labels as machine ints,
edges as flat arrays, Kleene iteration as batched sweeps, independent
clusters across worker processes), so its correctness argument is pinned
empirically here: on random constraint systems and random synthesised
programs, across every registered lattice, ``backend="packed"`` must
produce *identical* least solutions, conflicts, uid-ordered unsat cores,
and leak-path witnesses to ``backend="graph"`` and to the seed
:func:`~repro.inference.solve_worklist` -- including under
``presolve=True`` and for any worker count.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import witnesses_for_solution
from repro.frontend.parser import parse_program
from repro.inference import (
    Constraint,
    ConstTerm,
    JoinTerm,
    MeetTerm,
    VarSupply,
    VarTerm,
    generate_constraints,
    join_terms,
    solve,
    solve_worklist,
)
from repro.lattice.chain import ChainLattice
from repro.lattice.registry import available_lattices, get_lattice
from repro.synth import mega_constraint_system, random_straightline_program

LATTICE_NAMES = sorted(set(available_lattices()) | {"chain-3", "chain-5"})


# ---------------------------------------------------------------------------
# the differential assertion


def _conflict_key(lattice, conflict):
    return (
        conflict.constraint,
        lattice.format_label(conflict.observed),
        lattice.format_label(conflict.required),
        conflict.core,
    )


def _witness_lines(lattice, solution):
    return [w.describe(lattice) for w in witnesses_for_solution(solution)]


def _assert_backends_agree(lattice, constraints, *, presolve=False, workers=(1,)):
    """Packed (at every worker count) == graph == worklist, in full detail."""
    graph_solution = solve(lattice, constraints, presolve=presolve)
    packed_solutions = [
        solve(
            lattice,
            constraints,
            backend="packed",
            presolve=presolve,
            workers=n,
        )
        for n in workers
    ]
    references = [("graph", graph_solution)]
    if not presolve:  # the seed worklist has no presolve mode
        references.append(("worklist", solve_worklist(lattice, constraints)))

    for packed in packed_solutions:
        assert packed.stats.backend == "packed", packed.stats.fallback_reason
        for ref_name, reference in references:
            all_vars = set(packed.assignment) | set(reference.assignment)
            for var in all_vars:
                assert lattice.equal(
                    packed.value_of(var), reference.value_of(var)
                ), f"packed disagrees with {ref_name} on {var}"
            packed_conflicts = sorted(
                (_conflict_key(lattice, c) for c in packed.conflicts), key=repr
            )
            ref_conflicts = sorted(
                (_conflict_key(lattice, c) for c in reference.conflicts), key=repr
            )
            assert packed_conflicts == ref_conflicts, (
                f"packed conflicts/cores differ from {ref_name}"
            )
        # Witnesses need the propagation graph; compare against the graph
        # backend, which always carries one.
        assert _witness_lines(lattice, packed) == _witness_lines(
            lattice, graph_solution
        )
    return packed_solutions[0]


# ---------------------------------------------------------------------------
# random constraint systems, every lattice


def _constraint_systems(draw, lattice, n_vars):
    """A random system of propagation + check constraints over ``n_vars``."""
    supply = VarSupply()
    variables = [supply.fresh(f"v{i}") for i in range(n_vars)]
    labels = list(lattice.labels())

    def atom():
        if draw(st.booleans()):
            return VarTerm(draw(st.sampled_from(variables)))
        return ConstTerm(draw(st.sampled_from(labels)))

    constraints = []
    for _ in range(draw(st.integers(min_value=0, max_value=12))):
        lhs_atoms = [atom() for _ in range(draw(st.integers(min_value=1, max_value=3)))]
        lhs = join_terms(lattice, lhs_atoms)
        target = draw(st.sampled_from(variables))
        constraints.append(Constraint(lhs, VarTerm(target)))
    # Checks (possibly failing -> conflicts, cores, witnesses to compare).
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        constraints.append(
            Constraint(
                VarTerm(draw(st.sampled_from(variables))),
                ConstTerm(draw(st.sampled_from(labels))),
            )
        )
    # Meet right-hand sides decompose; meet left-hand sides hit the
    # expression-compiled edge path in the packed backend.
    if draw(st.booleans()) and n_vars >= 2:
        constraints.append(
            Constraint(
                MeetTerm((VarTerm(variables[0]), VarTerm(variables[1]))),
                VarTerm(draw(st.sampled_from(variables))),
            )
        )
    return variables, constraints


@settings(max_examples=60, deadline=None)
@given(data=st.data(), name=st.sampled_from(LATTICE_NAMES))
def test_packed_matches_object_backends_on_random_systems(data, name):
    lattice = get_lattice(name)
    _, constraints = _constraint_systems(data.draw, lattice, n_vars=4)
    _assert_backends_agree(lattice, constraints)


@settings(max_examples=40, deadline=None)
@given(data=st.data(), name=st.sampled_from(LATTICE_NAMES))
def test_packed_matches_graph_under_presolve(data, name):
    """presolve=True composes with the packed backend exactly as with graph."""
    lattice = get_lattice(name)
    _, constraints = _constraint_systems(data.draw, lattice, n_vars=4)
    _assert_backends_agree(lattice, constraints, presolve=True)


@settings(max_examples=25, deadline=None)
@given(data=st.data(), name=st.sampled_from(LATTICE_NAMES))
def test_packed_is_worker_count_invariant(data, name):
    """Identical output for 1, 2, and 4 worker processes."""
    lattice = get_lattice(name)
    _, constraints = _constraint_systems(data.draw, lattice, n_vars=5)
    _assert_backends_agree(lattice, constraints, workers=(1, 2, 4))


# ---------------------------------------------------------------------------
# random synthesised programs, every lattice


_PROGRAM_LEVELS = {
    "two-point": ["low", "high"],
    "diamond": ["bot", "A", "top"],
    # A maximal chain through the policy lattice (canonical spellings are
    # identifier-safe by construction).
    "policy-mini": [
        "P__R__t0",
        "Pads__R__t0",
        "Pads_analytics__R__t0",
        "Pads_analytics__Rpartner__t0",
        "Pads_analytics__Rpartner_store__t0",
        "Pads_analytics__Rpartner_store__t1",
        "Pads_analytics__Rpartner_store__t2",
    ],
}


def _program_levels(lattice):
    if lattice.name in _PROGRAM_LEVELS:
        return _PROGRAM_LEVELS[lattice.name]
    if isinstance(lattice, ChainLattice):
        return list(lattice.levels)
    raise AssertionError(f"no program levels defined for {lattice.name!r}")


def _unannotate_fields(source: str, levels, keep) -> str:
    for level in levels:
        if level not in keep:
            source = source.replace(
                f"<bit<8>, {level}> f_{level};", f"bit<8> f_{level};"
            )
    return source


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    name=st.sampled_from(LATTICE_NAMES),
    data=st.data(),
)
def test_packed_matches_object_backends_on_synth_programs(seed, name, data):
    """Partially annotated random programs: both satisfiable and leaking
    systems, solved identically by every backend."""
    lattice = get_lattice(name)
    levels = _program_levels(lattice)
    source = random_straightline_program(seed, statements=6, levels=levels)
    keep = {level for level in levels if data.draw(st.booleans(), label=level)}
    program = parse_program(_unannotate_fields(source, levels, keep))
    generation = generate_constraints(program, lattice)
    assert not generation.errors
    _assert_backends_agree(lattice, generation.constraints, presolve=False)
    _assert_backends_agree(lattice, generation.constraints, presolve=True)


# ---------------------------------------------------------------------------
# mega-scale generator systems (structure the parallel scheduler exploits)


@pytest.mark.parametrize("name", ["two-point", "diamond", "chain-5"])
def test_packed_matches_graph_on_mega_systems(name):
    lattice = get_lattice(name)
    constraints, tails = mega_constraint_system(
        3_000, lattice, seed=7, chains=16, cycle_every=41
    )
    packed = _assert_backends_agree(
        lattice, constraints, workers=(1, 2)
    )
    assert packed.stats.clusters >= 16
    assert any(
        not lattice.equal(packed.value_of(tail), lattice.bottom) for tail in tails
    )


def test_packed_mega_system_with_presolve():
    lattice = get_lattice("diamond")
    constraints, _ = mega_constraint_system(2_000, lattice, seed=3, chains=8)
    _assert_backends_agree(lattice, constraints, presolve=True, workers=(1, 2))


# ---------------------------------------------------------------------------
# edge cases


def test_empty_system():
    lattice = get_lattice("two-point")
    solution = solve(lattice, [], backend="packed")
    assert solution.ok
    assert solution.stats.backend == "packed"
    assert solution.assignment == {}


def test_unknown_backend_rejected():
    lattice = get_lattice("two-point")
    with pytest.raises(ValueError, match="backend"):
        solve(lattice, [], backend="simd")


def test_cyclic_system_converges_identically():
    lattice = get_lattice("diamond")
    supply = VarSupply()
    a, b, c = (supply.fresh(h) for h in "abc")
    constraints = [
        Constraint(ConstTerm("A"), VarTerm(a)),
        Constraint(VarTerm(a), VarTerm(b)),
        Constraint(VarTerm(b), VarTerm(c)),
        Constraint(VarTerm(c), VarTerm(a)),  # genuine SCC
        Constraint(ConstTerm("B"), VarTerm(b)),
    ]
    packed = _assert_backends_agree(lattice, constraints, workers=(1, 2))
    assert packed.value_of(a) == "top"


def test_join_lhs_with_cover_matches():
    """JoinTerm left sides and checks-with-conflicts through the packed path."""
    lattice = get_lattice("diamond")
    supply = VarSupply()
    a, b = supply.fresh("a"), supply.fresh("b")
    constraints = [
        Constraint(ConstTerm("A"), VarTerm(a)),
        Constraint(JoinTerm((VarTerm(a), ConstTerm("B"))), VarTerm(b)),
        Constraint(VarTerm(b), ConstTerm("A")),  # fails: top ⋢ A
    ]
    packed = _assert_backends_agree(lattice, constraints)
    assert not packed.ok
    assert len(packed.conflicts) == 1
