"""Unit tests for the control-plane oracle and its match kinds."""

import pytest

from repro.semantics.control_plane import (
    ControlPlane,
    ExactMatch,
    LpmMatch,
    TableEntry,
    TernaryMatch,
    Wildcard,
)
from repro.semantics.errors import EvaluationError
from repro.semantics.values import BoolValue, IntValue, RecordValue


class TestMatchPatterns:
    def test_exact(self):
        assert ExactMatch(5).matches(IntValue(5, 8))
        assert not ExactMatch(5).matches(IntValue(6, 8))

    def test_exact_on_bool(self):
        assert ExactMatch(1).matches(BoolValue(True))
        assert ExactMatch(0).matches(BoolValue(False))

    def test_wildcard(self):
        assert Wildcard().matches(IntValue(123456, 32))

    def test_lpm(self):
        pattern = LpmMatch(0x0A000000, 8, width=32)  # 10.0.0.0/8
        assert pattern.matches(IntValue(0x0A010203, 32))
        assert not pattern.matches(IntValue(0x0B010203, 32))

    def test_lpm_zero_prefix_matches_everything(self):
        assert LpmMatch(0, 0).matches(IntValue(0xFFFFFFFF, 32))

    def test_ternary(self):
        pattern = TernaryMatch(0b10, 0b11)
        assert pattern.matches(IntValue(0b0110, 8) if False else IntValue(0b10, 8))
        assert pattern.matches(IntValue(0b1110, 8))
        assert not pattern.matches(IntValue(0b01, 8))

    def test_specificity_ordering(self):
        assert ExactMatch(1).specificity() > LpmMatch(0, 24).specificity()
        assert LpmMatch(0, 24).specificity() > LpmMatch(0, 8).specificity()
        assert Wildcard().specificity() == 0

    def test_non_scalar_key_rejected(self):
        with pytest.raises(EvaluationError):
            ExactMatch(1).matches(RecordValue((("x", IntValue(1, 8)),)))


class TestResolution:
    def plane(self):
        plane = ControlPlane()
        plane.add_exact_entry("t", [1], "a1", {"v": IntValue(10, 8)})
        plane.add_exact_entry("t", [2], "a2")
        plane.set_default_action("t", "miss")
        return plane

    def test_exact_hit(self):
        resolved = self.plane().resolve("t", [IntValue(1, 8)], ["a1", "a2", "miss"])
        assert resolved.action == "a1"
        assert resolved.control_args["v"].value == 10

    def test_miss_falls_back_to_default(self):
        resolved = self.plane().resolve("t", [IntValue(9, 8)], ["a1", "a2", "miss"])
        assert resolved.action == "miss"

    def test_no_default_returns_none(self):
        plane = ControlPlane()
        plane.add_exact_entry("t", [1], "a1")
        assert plane.resolve("t", [IntValue(9, 8)], ["a1"]) is None

    def test_unknown_table_returns_none(self):
        assert ControlPlane().resolve("ghost", [IntValue(1, 8)], ["a"]) is None

    def test_lpm_longest_prefix_wins(self):
        plane = ControlPlane()
        plane.add_entry("t", TableEntry((LpmMatch(0x0A000000, 8),), "wide"))
        plane.add_entry("t", TableEntry((LpmMatch(0x0A0A0000, 16),), "narrow"))
        resolved = plane.resolve("t", [IntValue(0x0A0A0101, 32)], ["wide", "narrow"])
        assert resolved.action == "narrow"

    def test_priority_breaks_ties(self):
        plane = ControlPlane()
        plane.add_entry("t", TableEntry((Wildcard(),), "lowprio", priority=0))
        plane.add_entry("t", TableEntry((Wildcard(),), "highprio", priority=5))
        resolved = plane.resolve("t", [IntValue(1, 8)], ["lowprio", "highprio"])
        assert resolved.action == "highprio"

    def test_multi_key_entries(self):
        plane = ControlPlane()
        plane.add_exact_entry("t", [1, 2], "both")
        assert plane.resolve("t", [IntValue(1, 8), IntValue(2, 8)], ["both"]).action == "both"
        assert plane.resolve("t", [IntValue(1, 8), IntValue(3, 8)], ["both"]) is None

    def test_arity_mismatch_never_matches(self):
        plane = ControlPlane()
        plane.add_exact_entry("t", [1], "a")
        assert plane.resolve("t", [IntValue(1, 8), IntValue(1, 8)], ["a"]) is None

    def test_entry_for_undeclared_action_rejected(self):
        plane = ControlPlane()
        plane.add_exact_entry("t", [1], "ghost")
        with pytest.raises(EvaluationError):
            plane.resolve("t", [IntValue(1, 8)], ["real"])

    def test_default_for_undeclared_action_rejected(self):
        plane = ControlPlane()
        plane.set_default_action("t", "ghost")
        with pytest.raises(EvaluationError):
            plane.resolve("t", [IntValue(1, 8)], ["real"])

    def test_entries_for_listing(self):
        plane = self.plane()
        assert len(plane.entries_for("t")) == 2
        assert plane.entries_for("other") == []
