"""The ``p4bid policy`` verbs: exit codes, JSON shapes, determinism."""

import json

import pytest

import repro.policy.cli as policy_cli
from repro.policy.cli import policy_main
from repro.tool.cli import main

SMALL = [
    "--subjects", "6",
    "--datasets", "8",
    "--events", "80",
    "--revoke-every", "25",
    "--seed", "0",
]


class TestCheck:
    def test_exit_zero_and_summary(self, capsys):
        assert policy_main(["check", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "checks/sec" in out and "policy-mini" in out

    def test_json_payload(self, capsys):
        assert policy_main(["check", "--json", "--log", *SMALL]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["lattice"] == "policy-mini"
        assert payload["events"] == 80
        assert payload["decisions"] == len(payload["log"])
        assert set(payload["latency_us"]) == {"mean", "p50", "p95", "p99", "max"}

    def test_log_is_deterministic_across_backends(self, capsys):
        logs = {}
        for backend in ("packed", "graph"):
            assert (
                policy_main(["check", "--json", "--log", "--backend", backend, *SMALL])
                == 0
            )
            payload = json.loads(capsys.readouterr().out)
            assert payload["backend"] == backend
            logs[backend] = payload["log"]
        assert logs["packed"] == logs["graph"]

    def test_fallback_notice_when_codec_unavailable(self, capsys, monkeypatch):
        import repro.policy.engine as engine_module

        monkeypatch.setattr(engine_module, "codec_for", lambda lattice: None)
        assert policy_main(["check", "--backend", "packed", *SMALL]) == 0
        err = capsys.readouterr().err
        assert "packed decisions unavailable" in err

    def test_dispatched_from_p4bid_main(self, capsys):
        assert main(["policy", "check", *SMALL]) == 0
        assert "checks/sec" in capsys.readouterr().out


class TestBench:
    def test_compares_backends(self, capsys):
        assert policy_main(["bench", "--json", *SMALL]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["decisions_identical"] is True
        assert payload["packed"]["backend"] == "packed"
        assert payload["graph"]["backend"] == "graph"
        assert payload["speedup"] > 0.0

    def test_without_codec_is_usage_error(self, capsys, monkeypatch):
        import repro.policy.engine as engine_module

        monkeypatch.setattr(engine_module, "codec_for", lambda lattice: None)
        assert policy_main(["bench", *SMALL]) == 2
        assert "packed-codec lattice" in capsys.readouterr().err


class TestExplain:
    def deny_uid(self, capsys):
        """A uid of the stream that is denied (the scenario mix has some)."""
        assert policy_main(["check", "--json", "--log", *SMALL]) == 0
        payload = json.loads(capsys.readouterr().out)
        for line in payload["log"]:
            uid, _, rest = line.partition(" ")
            if " DENY " in f" {rest} " or " DENY " in line:
                return int(uid)
        pytest.fail("scenario stream produced no denies")

    def test_denied_request_prints_witness_chain(self, capsys):
        uid = self.deny_uid(capsys)
        assert policy_main(["explain", "--request", str(uid), *SMALL]) == 0
        out = capsys.readouterr().out
        assert "DENY" in out and "leak path" in out

    def test_deny_exit_flag(self, capsys):
        uid = self.deny_uid(capsys)
        assert (
            policy_main(["explain", "--request", str(uid), "--deny-exit", *SMALL])
            == 1
        )

    def test_json_shape(self, capsys):
        uid = self.deny_uid(capsys)
        assert policy_main(["explain", "--json", "--request", str(uid), *SMALL]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["decision"]["permit"] is False
        assert payload["violated_subjects"]
        assert payload["witnesses"]

    def test_unknown_uid_is_usage_error(self, capsys):
        assert policy_main(["explain", "--request", "99999", *SMALL]) == 2
        assert "not a request" in capsys.readouterr().err


class TestUsageErrors:
    def test_non_policy_lattice(self, capsys):
        assert policy_main(["check", "--lattice", "two-point", *SMALL[2:]]) == 2
        assert "not a policy lattice" in capsys.readouterr().err

    def test_bad_sizes(self):
        with pytest.raises(SystemExit):
            policy_main(["check", "--subjects", "0"])
        with pytest.raises(SystemExit):
            policy_main(["check", "--revoke-every", "-1"])

    def test_verb_required(self):
        with pytest.raises(SystemExit):
            policy_main([])
