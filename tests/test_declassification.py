"""Tests for the audited declassify/endorse extension."""

import pytest

from repro.frontend.parser import parse_program
from repro.ifc import ViolationKind, check_ifc
from repro.lattice.two_point import HIGH, LOW
from repro.ni import check_non_interference
from repro.semantics.evaluator import run_control
from repro.semantics.values import HeaderValue, IntValue, RecordValue
from repro.tool.pipeline import check_source

PRELUDE = """
header h_t {
    <bit<8>, low>  pub;
    <bit<8>, high> sec;
    <bool, high>   sec_flag;
}
struct headers { h_t h; }
"""


def program(body: str, locals_: str = "") -> str:
    return (
        PRELUDE
        + "control C(inout headers hdr) {\n"
        + locals_
        + "\n  apply {\n"
        + body
        + "\n  }\n}"
    )


def ifc(body: str, locals_: str = "", allow=True):
    return check_ifc(
        parse_program(program(body, locals_)), allow_declassification=allow
    )


class TestStaticChecking:
    def test_disabled_by_default(self):
        report = check_source(program("hdr.h.pub = declassify(hdr.h.sec);"))
        assert not report.ok
        assert any(
            d.kind is ViolationKind.DECLASSIFICATION for d in report.ifc_diagnostics
        )

    def test_enabled_accepts_release(self):
        result = ifc("hdr.h.pub = declassify(hdr.h.sec);")
        assert result.ok

    def test_endorse_is_an_alias(self):
        result = ifc("hdr.h.pub = endorse(hdr.h.sec);")
        assert result.ok
        assert result.declassifications[0].primitive == "endorse"

    def test_audit_trail_records_labels(self):
        result = ifc("hdr.h.pub = declassify(hdr.h.sec + 1);")
        (event,) = result.declassifications
        assert event.from_label == HIGH
        assert event.to_label == LOW
        assert "hdr.h.sec" in event.expression
        assert event.span.start.line > 0

    def test_no_audit_entries_without_uses(self):
        result = ifc("hdr.h.pub = hdr.h.pub + 1;")
        assert result.declassifications == []

    def test_release_does_not_whitelist_other_flows(self):
        result = ifc(
            "hdr.h.pub = declassify(hdr.h.sec);\nhdr.h.pub = hdr.h.sec;"
        )
        assert [d.kind for d in result.diagnostics] == [ViolationKind.EXPLICIT_FLOW]
        assert len(result.declassifications) == 1

    def test_release_in_high_context_rejected(self):
        result = ifc("if (hdr.h.sec_flag) { hdr.h.sec = declassify(hdr.h.sec); }")
        assert any(
            d.kind is ViolationKind.IMPLICIT_FLOW and "declassify" in d.message
            for d in result.diagnostics
        )

    def test_wrong_arity_reported(self):
        result = ifc("hdr.h.pub = declassify(hdr.h.sec, hdr.h.pub);")
        assert any(d.kind is ViolationKind.TYPE_ERROR for d in result.diagnostics)

    def test_user_action_named_declassify_shadows_builtin(self):
        locals_ = "  action declassify(in <bit<8>, high> v) { hdr.h.sec = v; }"
        result = ifc("declassify(hdr.h.sec);", locals_)
        assert result.ok
        assert result.declassifications == []

    def test_core_checker_types_it_as_identity(self):
        report = check_source(
            program("hdr.h.pub = declassify(hdr.h.sec);"), include_ifc=False
        )
        assert report.ok

    def test_core_checker_rejects_width_mismatch_through_release(self):
        source = (
            "header h_t { <bit<32>, high> wide; <bit<8>, low> narrow; }\n"
            "struct headers { h_t h; }\n"
            "control C(inout headers hdr) { apply { hdr.h.narrow = declassify(hdr.h.wide); } }"
        )
        report = check_source(source, include_ifc=False)
        assert not report.ok


class TestDynamics:
    def packet(self, sec):
        return RecordValue(
            (
                (
                    "h",
                    HeaderValue(
                        (
                            ("pub", IntValue(0, 8)),
                            ("sec", IntValue(sec, 8)),
                            (
                                "sec_flag",
                                __import__(
                                    "repro.semantics.values", fromlist=["BoolValue"]
                                ).BoolValue(False),
                            ),
                        )
                    ),
                ),
            )
        )

    def test_identity_at_runtime(self):
        prog = parse_program(program("hdr.h.pub = declassify(hdr.h.sec);"))
        run = run_control(prog, {"hdr": self.packet(77)})
        assert run.parameters["hdr"].get("h").get("pub").value == 77

    def test_released_program_really_interferes(self):
        """Declassification intentionally gives up non-interference: the
        harness should find a counterexample, documenting what was released."""
        prog = parse_program(program("hdr.h.pub = declassify(hdr.h.sec);"))
        assert check_ifc(prog, allow_declassification=True).ok
        result = check_non_interference(prog, trials=50, seed=1)
        assert not result.holds


class TestToolingIntegration:
    def test_pipeline_flag(self):
        report = check_source(
            program("hdr.h.pub = declassify(hdr.h.sec);"),
            allow_declassification=True,
        )
        assert report.ok
        assert len(report.ifc_result.declassifications) == 1

    def test_report_mentions_releases(self):
        from repro.tool.report import format_report

        report = check_source(
            program("hdr.h.pub = declassify(hdr.h.sec);"),
            allow_declassification=True,
        )
        assert "audited release" in format_report(report)

    def test_json_report_lists_releases(self):
        import json

        from repro.tool.report import report_to_json

        report = check_source(
            program("hdr.h.pub = declassify(hdr.h.sec);"),
            allow_declassification=True,
        )
        payload = json.loads(report_to_json(report))
        assert payload["declassifications"][0]["from"] == "high"

    def test_cli_flag(self, tmp_path, capsys):
        from repro.tool.cli import main

        path = tmp_path / "release.p4"
        path.write_text(program("hdr.h.pub = declassify(hdr.h.sec);"), encoding="utf-8")
        assert main([str(path)]) == 1
        assert main(["--allow-declassify", str(path)]) == 0
