"""Tests for the synthetic program generators."""

import pytest

from repro.frontend.parser import parse_program
from repro.ifc import check_ifc
from repro.inference import generate_constraints, infer_labels, solve
from repro.lattice import ChainLattice
from repro.lattice.two_point import TwoPointLattice
from repro.synth import (
    chain_pipeline_program,
    deep_dataflow_program,
    random_straightline_program,
    scc_cycle_program,
    wide_table_program,
)
from repro.syntax.visitor import walk
from repro.typechecker import check_core_types


class TestStraightline:
    def test_deterministic_for_a_seed(self):
        assert random_straightline_program(5) == random_straightline_program(5)

    def test_distinct_across_seeds(self):
        assert random_straightline_program(1) != random_straightline_program(2)

    def test_always_parses_and_core_typechecks(self):
        for seed in range(40):
            program = parse_program(random_straightline_program(seed))
            assert check_core_types(program).ok

    def test_statement_count_scales_size(self):
        small = random_straightline_program(0, statements=2)
        large = random_straightline_program(0, statements=30)
        assert len(large) > len(small)
        small_nodes = sum(1 for _ in walk(parse_program(small)))
        large_nodes = sum(1 for _ in walk(parse_program(large)))
        assert large_nodes > small_nodes

    def test_custom_levels(self):
        source = random_straightline_program(3, levels=("low", "mid", "high"))
        assert "f_mid" in source
        lattice = ChainLattice(["low", "mid", "high"])
        check_ifc(parse_program(source), lattice)


class TestChainPipeline:
    def test_accepted_for_matching_chain(self):
        lattice = ChainLattice.of_height(4)
        program = parse_program(chain_pipeline_program(lattice.levels))
        assert check_ifc(program, lattice).ok

    def test_rejected_when_levels_reversed(self):
        lattice = ChainLattice.of_height(4)
        program = parse_program(chain_pipeline_program(tuple(reversed(lattice.levels))))
        assert not check_ifc(program, lattice).ok

    def test_rounds_scale_size(self):
        levels = ChainLattice.of_height(3).levels
        assert len(chain_pipeline_program(levels, rounds=5)) > len(
            chain_pipeline_program(levels, rounds=1)
        )


class TestDeepDataflow:
    def test_parses_and_core_typechecks(self):
        program = parse_program(deep_dataflow_program(12, chains=2))
        assert check_core_types(program).ok

    def test_constraint_count_scales_with_depth(self):
        lattice = TwoPointLattice()

        def count(depth):
            generation = generate_constraints(
                parse_program(deep_dataflow_program(depth)), lattice
            )
            return len(generation.constraints)

        assert count(40) == 40  # one edge per assignment
        assert count(80) == 80

    def test_inference_propagates_source_to_tail(self):
        result = infer_labels(parse_program(deep_dataflow_program(10)))
        assert result.ok
        labels = result.assignment_by_hint()
        tail = next(label for hint, label in labels.items() if "c0_s9" in hint)
        assert tail == "high"

    def test_graph_is_one_acyclic_path_per_chain(self):
        lattice = TwoPointLattice()
        generation = generate_constraints(
            parse_program(deep_dataflow_program(15, chains=3)), lattice
        )
        solution = solve(lattice, generation.constraints)
        assert solution.stats.cyclic_scc_count == 0
        assert solution.stats.max_passes == 1

    def test_sink_level_produces_a_conflict(self):
        result = infer_labels(
            parse_program(deep_dataflow_program(6, sink_level="low"))
        )
        assert not result.ok

    def test_rejects_degenerate_sizes(self):
        with pytest.raises(ValueError):
            deep_dataflow_program(0)
        with pytest.raises(ValueError):
            deep_dataflow_program(3, chains=0)


class TestSccCycles:
    def test_parses_and_core_typechecks(self):
        program = parse_program(scc_cycle_program(4, 3))
        assert check_core_types(program).ok

    def test_every_ring_is_one_cyclic_component(self):
        lattice = TwoPointLattice()
        generation = generate_constraints(
            parse_program(scc_cycle_program(5, 4)), lattice
        )
        solution = solve(lattice, generation.constraints)
        assert solution.ok
        assert solution.stats.cyclic_scc_count == 5
        assert solution.stats.largest_scc == 4

    def test_source_reaches_every_ring(self):
        result = infer_labels(parse_program(scc_cycle_program(3, 3)))
        assert result.ok
        labels = result.assignment_by_hint()
        ring_labels = [v for k, v in labels.items() if "c2_n" in k]
        assert ring_labels and all(label == "high" for label in ring_labels)

    def test_rejects_degenerate_sizes(self):
        with pytest.raises(ValueError):
            scc_cycle_program(0)
        with pytest.raises(ValueError):
            scc_cycle_program(2, 1)


class TestWideTables:
    def test_table_and_action_counts(self):
        source = wide_table_program(tables=5, actions_per_table=3)
        assert source.count("table tbl_") == 5
        assert source.count("action act_") == 15

    def test_secure_accepted_insecure_rejected(self):
        assert check_ifc(parse_program(wide_table_program(secure=True))).ok
        insecure = check_ifc(parse_program(wide_table_program(secure=False)))
        assert not insecure.ok

    def test_violation_count_matches_key_action_pairs(self):
        result = check_ifc(
            parse_program(
                wide_table_program(tables=2, actions_per_table=3, keys_per_table=2, secure=False)
            )
        )
        # every (key, action) pair of every table is reported once
        assert len(result.diagnostics) == 2 * 3 * 2

    def test_seed_changes_constants_only(self):
        a = wide_table_program(seed=1)
        b = wide_table_program(seed=2)
        assert a != b
        assert a.count("table") == b.count("table")
