"""Tests for AST utilities: source spans, traversal, and describe() output."""

from repro.frontend.parser import parse_expression, parse_program
from repro.syntax import (
    Assign,
    BinaryOp,
    Call,
    FieldAccess,
    FunctionDecl,
    If,
    IntLiteral,
    TableDecl,
    Var,
)
from repro.syntax.source import Position, SourceSpan
from repro.syntax.types import AnnotatedType, BitType, annotated
from repro.syntax.visitor import AstVisitor, children, walk


class TestSourceSpans:
    def test_point_and_str(self):
        span = SourceSpan.point(3, 7, "f.p4")
        assert str(span) == "f.p4:3:7"

    def test_unknown(self):
        span = SourceSpan.unknown()
        assert span.is_unknown()
        assert str(span) == "<unknown>"

    def test_merge_covers_both(self):
        early = SourceSpan(Position(1, 2), Position(1, 9), "f.p4")
        late = SourceSpan(Position(4, 1), Position(4, 5), "f.p4")
        merged = early.merge(late)
        assert merged.start == Position(1, 2)
        assert merged.end == Position(4, 5)

    def test_merge_with_unknown_keeps_known(self):
        known = SourceSpan(Position(2, 1), Position(2, 5), "f.p4")
        assert known.merge(SourceSpan.unknown()) == known
        assert SourceSpan.unknown().merge(known) == known

    def test_parser_spans_point_at_source(self):
        program = parse_program("header h_t { bit<8> x; }\nheader g_t { bit<8> y; }")
        first, second = program.declarations
        assert first.span.start.line == 1
        assert second.span.start.line == 2

    def test_expression_span_covers_operands(self):
        expr = parse_expression("alpha + omega")
        assert expr.span.start.column == 1
        assert expr.span.end.column >= len("alpha + omega")


class TestTraversal:
    SOURCE = """
    header h_t { bit<8> a; }
    struct headers { h_t h; }
    control C(inout headers hdr) {
        action set_a(bit<8> v) { hdr.h.a = v; }
        table t { key = { hdr.h.a: exact; } actions = { set_a; } }
        apply {
            if (hdr.h.a == 1) { t.apply(); } else { set_a(2); }
        }
    }
    """

    def test_walk_reaches_every_construct(self):
        program = parse_program(self.SOURCE)
        kinds = {type(node).__name__ for node in walk(program)}
        assert {"Program", "ControlDecl", "FunctionDecl", "TableDecl", "If",
                "Assign", "Call", "FieldAccess", "Var", "IntLiteral"} <= kinds

    def test_children_of_if(self):
        program = parse_program(self.SOURCE)
        if_stmt = next(node for node in walk(program) if isinstance(node, If))
        assert len(children(if_stmt)) == 3

    def test_children_of_leaf_is_empty(self):
        assert children(IntLiteral(3)) == []
        assert children(Var("x")) == []

    def test_visitor_dispatch(self):
        program = parse_program(self.SOURCE)

        class Counter(AstVisitor):
            def __init__(self):
                self.vars = 0
                self.calls = 0

            def visit_Var(self, node):
                self.vars += 1

            def visit_Call(self, node):
                self.calls += 1
                self.generic_visit(node)

        counter = Counter()
        counter.visit(program)
        assert counter.calls == 2  # t.apply() and set_a(2)
        assert counter.vars >= 1

    def test_visitor_generic_visit_returns_none(self):
        assert AstVisitor().visit(parse_expression("1 + 2")) is None


class TestDescribe:
    def test_expression_descriptions(self):
        assert parse_expression("hdr.h.a").describe() == "hdr.h.a"
        assert parse_expression("a + b").describe() == "(a + b)"
        assert parse_expression("f(1, x)").describe() == "f(1, x)"
        assert parse_expression("s[3]").describe() == "s[3]"
        assert parse_expression("8w9").describe() == "8w9"
        assert parse_expression("{a = 1}").describe() == "{a = 1}"

    def test_statement_descriptions(self):
        program = parse_program(
            "header h_t { bit<8> a; } struct headers { h_t h; }\n"
            "control C(inout headers hdr) { apply { hdr.h.a = 1; exit; return; } }"
        )
        statements = program.controls[0].apply_block.statements
        assert statements[0].describe() == "hdr.h.a = 1;"
        assert statements[1].describe() == "exit;"
        assert statements[2].describe() == "return;"

    def test_declaration_descriptions(self):
        program = parse_program(TestTraversal.SOURCE)
        control = program.controls[0]
        action = control.local_declarations[0]
        table = control.local_declarations[1]
        assert isinstance(action, FunctionDecl) and "set_a" in action.describe()
        assert isinstance(table, TableDecl) and "table t" in table.describe()

    def test_annotated_type_descriptions(self):
        assert annotated(BitType(8)).describe() == "bit<8>"
        assert AnnotatedType(BitType(8), "high").describe() == "<bit<8>, high>"

    def test_describe_used_in_diagnostics(self):
        from repro.tool.pipeline import check_source

        report = check_source(
            "header h_t { <bit<8>, high> s; <bit<8>, low> p; }\n"
            "struct headers { h_t h; }\n"
            "control C(inout headers hdr) { apply { hdr.h.p = hdr.h.s; } }"
        )
        (diag,) = report.ifc_diagnostics
        assert "hdr.h.p" in diag.message and "hdr.h.s" in diag.message
