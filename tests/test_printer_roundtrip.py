"""Pretty-printer tests: printing a parsed program must re-parse to an
equivalent program (same structure, same diagnostics)."""

import pytest

from repro.casestudies import all_case_studies
from repro.frontend.parser import parse_program
from repro.syntax.printer import pretty_print
from repro.syntax.visitor import walk
from repro.syntax import expressions as e
from repro.syntax import statements as s
from repro.syntax import declarations as d
from repro.tool.pipeline import check_source


def shape(program):
    """A structural fingerprint of a program: node class names in pre-order,
    ignoring spans and literal widths (which the printer preserves anyway)."""
    names = []
    for node in walk(program):
        label = type(node).__name__
        if isinstance(node, e.Var):
            label += f":{node.name}"
        elif isinstance(node, e.IntLiteral):
            label += f":{node.value}"
        elif isinstance(node, e.FieldAccess):
            label += f":{node.field_name}"
        elif isinstance(node, e.BinaryOp):
            label += f":{node.op}"
        elif isinstance(node, (d.FunctionDecl, d.TableDecl, d.VarDecl, d.ControlDecl)):
            label += f":{node.name}"
        names.append(label)
    return names


@pytest.mark.parametrize(
    "case_name",
    ["d2r", "app", "lattice", "topology", "cache", "netchain"],
)
@pytest.mark.parametrize("variant", ["secure", "insecure"])
def test_case_study_roundtrip(case_name, variant):
    from repro.casestudies import get_case_study

    case = get_case_study(case_name)
    source = case.secure_source if variant == "secure" else case.insecure_source
    original = parse_program(source)
    printed = pretty_print(original)
    reparsed = parse_program(printed)
    assert shape(original) == shape(reparsed)


@pytest.mark.parametrize("case_name", ["topology", "cache", "lattice"])
def test_roundtrip_preserves_diagnostics(case_name):
    """Printing must not change what the checkers accept or reject."""
    from repro.casestudies import get_case_study

    case = get_case_study(case_name)
    for source in (case.secure_source, case.insecure_source):
        direct = check_source(source, case.lattice_name)
        printed = pretty_print(parse_program(source))
        reprinted = check_source(printed, case.lattice_name)
        assert direct.ok == reprinted.ok
        assert len(direct.ifc_diagnostics) == len(reprinted.ifc_diagnostics)
        assert sorted(diag.kind.value for diag in direct.ifc_diagnostics) == sorted(
            diag.kind.value for diag in reprinted.ifc_diagnostics
        )


def test_roundtrip_all_case_studies_parse():
    for case in all_case_studies():
        printed = pretty_print(parse_program(case.secure_source))
        assert parse_program(printed).controls


def test_expression_printing():
    program = parse_program(
        "header h_t { bit<8> a; } struct headers { h_t h; }\n"
        "control C(inout headers hdr) { apply { hdr.h.a = (hdr.h.a + 3) * 2; } }"
    )
    text = pretty_print(program)
    assert "hdr.h.a = ((hdr.h.a + 3) * 2);" in text


def test_annotation_printing():
    program = parse_program("header h_t { <bit<8>, high> secret; }")
    text = pretty_print(program)
    assert "<bit<8>, high> secret;" in text


def test_pc_annotation_printing():
    program = parse_program(
        "header h_t { <bit<8>, A> x; } struct headers { h_t h; }\n"
        "@pc(A) control C(inout headers hdr) { apply { } }"
    )
    text = pretty_print(program)
    assert "@pc(A)" in text


def test_table_apply_printing():
    program = parse_program(
        "header h_t { bit<8> a; } struct headers { h_t h; }\n"
        "control C(inout headers hdr) {\n"
        "  action nop() { }\n"
        "  table t { key = { hdr.h.a: exact; } actions = { nop; } }\n"
        "  apply { t.apply(); } }"
    )
    text = pretty_print(program)
    assert "t.apply();" in text


# ---------------------------------------------------------------------------
# span integrity (SARIF regions need real start *and* end positions)


def _spans(program):
    for node in walk(program):
        span = getattr(node, "span", None)
        if span is not None and not span.is_unknown():
            yield node, span


@pytest.mark.parametrize(
    "case_name",
    ["d2r", "app", "lattice", "topology", "cache", "netchain"],
)
def test_spans_are_well_formed(case_name):
    """Every parsed span is non-empty and runs forward (end >= start)."""
    from repro.casestudies import get_case_study

    case = get_case_study(case_name)
    for source in (case.secure_source, case.insecure_source):
        for node, span in _spans(parse_program(source)):
            assert (span.end.line, span.end.column) >= (
                span.start.line,
                span.start.column,
            ), f"{type(node).__name__} span runs backwards: {span}"


def test_unannotated_type_spans_cover_the_whole_type():
    """``bit<8>`` spans all seven characters, not just the ``bit`` token.

    SARIF regions are built from these spans; a region that stops after
    the first token underlines ``bit`` instead of ``bit<8>``.
    """
    source = (
        "header h_t { bit<8> a; }\n"
        "control C(inout h_t hdr) {\n"
        "    bit<8> x = hdr.a;\n"
        "    apply { hdr.a = x; }\n"
        "}\n"
    )
    lines = source.splitlines()
    program = parse_program(source)
    types = [
        node.ty
        for node in walk(program)
        if isinstance(node, d.VarDecl) or type(node).__name__ == "Param"
    ]
    unannotated = [ty for ty in types if ty.label is None]
    assert len(unannotated) >= 2
    covered = []
    for ty in unannotated:
        span = ty.span
        assert span.start.line == span.end.line
        covered.append(
            lines[span.start.line - 1][span.start.column - 1 : span.end.column - 1]
        )
    assert sorted(covered) == ["bit<8>", "h_t"], f"type spans cover {covered!r}"


def test_printed_spans_are_round_trip_stable():
    """print -> parse -> print is a fixpoint, so spans stabilise too."""
    from repro.casestudies import get_case_study

    case = get_case_study("d2r")
    printed = pretty_print(parse_program(case.secure_source))
    once = parse_program(printed)
    reprinted = pretty_print(once)
    assert reprinted == printed
    twice = parse_program(reprinted)
    spans_once = [str(span) for _, span in _spans(once)]
    spans_twice = [str(span) for _, span in _spans(twice)]
    assert spans_once == spans_twice
