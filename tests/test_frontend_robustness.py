"""Robustness of the front end: malformed input must fail cleanly (with a
located FrontendError), never crash or hang, and valid programs produced by
the printer or the synthesiser must always be re-accepted."""

import string

from hypothesis import given, settings, strategies as st

from repro.frontend.errors import FrontendError
from repro.frontend.lexer import tokenize
from repro.frontend.parser import parse_expression, parse_program
from repro.synth import random_straightline_program
from repro.syntax.printer import pretty_print

printable_soup = st.text(
    alphabet=string.ascii_letters + string.digits + "{}()[]<>,;:.=+-*/%&|^~!@ \n\t",
    max_size=200,
)


@given(printable_soup)
@settings(max_examples=300, deadline=None)
def test_parser_never_crashes_on_token_soup(source):
    try:
        parse_program(source)
    except FrontendError as exc:
        assert exc.span is not None
        assert exc.message


@given(printable_soup)
@settings(max_examples=300, deadline=None)
def test_lexer_never_crashes(source):
    try:
        tokens = tokenize(source)
    except FrontendError:
        return
    assert tokens[-1].kind.name == "EOF"


@given(st.text(max_size=120))
@settings(max_examples=200, deadline=None)
def test_arbitrary_unicode_is_rejected_cleanly(source):
    try:
        parse_program(source)
    except FrontendError:
        pass


@given(st.integers(min_value=0, max_value=5_000))
@settings(max_examples=50, deadline=None)
def test_synthesised_programs_roundtrip_through_the_printer(seed):
    source = random_straightline_program(seed, statements=4)
    program = parse_program(source)
    printed = pretty_print(program)
    reparsed = parse_program(printed)
    assert pretty_print(reparsed) == printed  # printing is a fixed point


@given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
@settings(max_examples=100)
def test_expression_parser_handles_generated_arithmetic(a, b):
    expr = parse_expression(f"(({a} + hdr.x) * {b}) - (hdr.y & {a})")
    assert expr.describe()


def test_deeply_nested_expressions_parse():
    # ~10 recursive precedence levels per parenthesis pair; 60 pairs stays
    # comfortably inside CPython's default recursion limit.
    depth = 60
    source = "(" * depth + "x" + ")" * depth
    expr = parse_expression(source)
    assert expr.describe() == "x"


def test_long_field_chains():
    chain = "hdr" + ".f" * 300
    expr = parse_expression(chain)
    assert expr.describe() == chain


def test_very_long_statement_sequences_parse():
    body = "\n".join(f"        hdr.h.a = {i};" for i in range(2_000))
    source = (
        "header h_t { bit<32> a; } struct headers { h_t h; }\n"
        "control C(inout headers hdr) { apply {\n" + body + "\n} }"
    )
    program = parse_program(source)
    assert len(program.controls[0].apply_block.statements) == 2_000
