"""Unit tests for resolving annotated syntactic types into security types."""

import pytest

from repro.frontend.parser import parse_program
from repro.ifc.context import SecurityTypeDefs
from repro.ifc.convert import LabelResolutionError, TypeLabeler
from repro.ifc.security_types import SBit, SBool, SHeader, SRecord, SStack
from repro.lattice.diamond import ALICE, DiamondLattice, TOP
from repro.lattice.two_point import HIGH, LOW, TwoPointLattice
from repro.syntax.types import (
    AnnotatedType,
    BitType,
    BoolType,
    Field,
    HeaderType,
    RecordType,
    StackType,
    TypeName,
)


@pytest.fixture
def labeler():
    return TypeLabeler(TwoPointLattice(), SecurityTypeDefs())


class TestScalars:
    def test_unannotated_defaults_to_bottom(self, labeler):
        sec = labeler.security_type(AnnotatedType(BitType(8), None))
        assert isinstance(sec.body, SBit)
        assert sec.label == LOW

    def test_annotated_scalar(self, labeler):
        sec = labeler.security_type(AnnotatedType(BitType(8), "high"))
        assert sec.label == HIGH

    def test_bool(self, labeler):
        sec = labeler.security_type(AnnotatedType(BoolType(), "high"))
        assert isinstance(sec.body, SBool)
        assert sec.label == HIGH

    def test_unknown_label_raises(self, labeler):
        with pytest.raises(LabelResolutionError):
            labeler.security_type(AnnotatedType(BitType(8), "medium"))

    def test_alias_labels(self, labeler):
        sec = labeler.security_type(AnnotatedType(BitType(8), "secret"))
        assert sec.label == HIGH


class TestComposites:
    def test_record_fields_carry_their_own_labels(self, labeler):
        record = RecordType(
            (
                Field("pub", AnnotatedType(BitType(8), "low")),
                Field("sec", AnnotatedType(BitType(8), "high")),
            )
        )
        sec = labeler.security_type(AnnotatedType(record, None))
        assert isinstance(sec.body, SRecord)
        assert sec.label == LOW
        fields = dict(sec.body.fields)
        assert fields["pub"].label == LOW
        assert fields["sec"].label == HIGH

    def test_header(self, labeler):
        header = HeaderType((Field("x", AnnotatedType(BitType(8), "high")),))
        sec = labeler.security_type(AnnotatedType(header, None))
        assert isinstance(sec.body, SHeader)

    def test_stack(self, labeler):
        stack = StackType(AnnotatedType(BitType(8), "high"), 4)
        sec = labeler.security_type(AnnotatedType(stack, None))
        assert isinstance(sec.body, SStack)
        assert sec.body.size == 4
        assert sec.body.element.label == HIGH

    def test_use_site_label_pushes_into_fields(self):
        lattice = DiamondLattice()
        definitions = SecurityTypeDefs()
        labeler = TypeLabeler(lattice, definitions)
        record = RecordType(
            (
                Field("a", AnnotatedType(BitType(8), None)),
                Field("b", AnnotatedType(BitType(8), "B")),
            )
        )
        definitions.define("payload_t", AnnotatedType(record, None))
        sec = labeler.security_type(AnnotatedType(TypeName("payload_t"), "A"))
        fields = dict(sec.body.fields)
        assert fields["a"].label == ALICE
        assert fields["b"].label == TOP  # join(B, A)
        assert sec.label == lattice.bottom


class TestNamedTypes:
    def test_typedef_unfolding(self, labeler):
        labeler.definitions.define("mac_t", AnnotatedType(BitType(48), "high"))
        sec = labeler.security_type(AnnotatedType(TypeName("mac_t"), None))
        assert isinstance(sec.body, SBit)
        assert sec.body.width == 48
        assert sec.label == HIGH

    def test_unknown_type_name(self, labeler):
        with pytest.raises(LabelResolutionError):
            labeler.security_type(AnnotatedType(TypeName("ghost_t"), None))

    def test_cyclic_typedef(self, labeler):
        labeler.definitions.define("a_t", AnnotatedType(TypeName("b_t"), None))
        labeler.definitions.define("b_t", AnnotatedType(TypeName("a_t"), None))
        with pytest.raises(LabelResolutionError):
            labeler.security_type(AnnotatedType(TypeName("a_t"), None))

    def test_nested_named_types(self, labeler):
        labeler.definitions.define("inner_t", AnnotatedType(BitType(8), "high"))
        record = RecordType((Field("x", AnnotatedType(TypeName("inner_t"), None)),))
        labeler.definitions.define("outer_t", AnnotatedType(record, None))
        sec = labeler.security_type(AnnotatedType(TypeName("outer_t"), None))
        assert dict(sec.body.fields)["x"].label == HIGH


class TestFromParsedPrograms:
    def test_program_labels(self):
        from repro.ni.labeling import control_security_types

        program = parse_program(
            """
            header h_t { <bit<8>, high> secret; <bit<8>, low> public; }
            struct headers { h_t h; }
            control C(inout headers hdr) { apply { } }
            """
        )
        sec_types = control_security_types(program)
        hdr = sec_types["hdr"]
        h_field = dict(hdr.body.fields)["h"]
        fields = dict(h_field.body.fields)
        assert fields["secret"].label == HIGH
        assert fields["public"].label == LOW
