"""Tests for ``repro.telemetry``: spans, exporters, and pipeline wiring.

Covers the observability contract end to end:

* span-tree well-formedness (strict nesting, children inside parent
  intervals, no orphans);
* the Chrome ``trace_event`` and JSON-lines exporters against their
  schemas;
* the no-op guard -- a full pipeline run under a disabled recorder must
  never call ``count``/``observe`` and opens only a bounded handful of
  spans;
* the pipeline e2e: every phase appears exactly once in the trace and
  :class:`~repro.tool.pipeline.PhaseTiming` is a projection of it that
  never double-counts the ``solve`` sub-phase.
"""

from __future__ import annotations

import json

import pytest

from repro.casestudies import get_case_study
from repro.casestudies.base import strip_security_annotations
from repro.lattice import TwoPointLattice
from repro.lattice.registry import get_lattice
from repro.telemetry import (
    NULL_RECORDER,
    CountingLattice,
    Histogram,
    Recorder,
    TelemetryError,
    TraceRecorder,
    current_recorder,
    format_trace_summary,
    metrics_dict,
    to_chrome_trace,
    to_events,
    to_jsonl,
    use_recorder,
    write_chrome_trace,
)
from repro.tool.cli import main as cli_main
from repro.tool.pipeline import PhaseTiming, check_source
from repro.tool.summary import format_summary, summarise_report


@pytest.fixture
def stripped_case():
    """A case study stripped of annotations: a real inference workload."""
    case = get_case_study("cache")
    return strip_security_annotations(case.secure_source), case.lattice_name


def traced_check(source, lattice_name, **kwargs):
    recorder = TraceRecorder()
    with use_recorder(recorder):
        report = check_source(source, lattice_name, **kwargs)
    return report, recorder


# ---------------------------------------------------------------------------
# recorder


class TestRecorder:
    def test_span_records_parent_and_interval(self):
        rec = TraceRecorder()
        with rec.span("outer") as outer:
            with rec.span("inner", size=3) as inner:
                pass
        assert outer.parent is None
        assert inner.parent == outer.sid
        assert inner.attrs == {"size": 3}
        assert outer.closed and inner.closed
        assert outer.start_us <= inner.start_us
        assert inner.end_us <= outer.end_us

    def test_strict_nesting_enforced(self):
        rec = TraceRecorder()
        a = rec._open("a", {})
        rec._open("b", {})
        with pytest.raises(TelemetryError):
            rec._close(a)  # b is still open

    def test_counters_accumulate(self):
        rec = TraceRecorder()
        rec.count("x")
        rec.count("x", 4)
        rec.count("y", 2)
        assert rec.counters == {"x": 5, "y": 2}

    def test_histogram_statistics_and_buckets(self):
        hist = Histogram()
        for value in (1, 3, 7, 100):
            hist.record(value)
        assert hist.count == 4
        assert hist.total == 111
        assert hist.minimum == 1
        assert hist.maximum == 100
        # Power-of-two upper bounds: 1, 4, 8, 128.
        assert hist.buckets == {1: 1, 4: 1, 8: 1, 128: 1}
        payload = hist.as_dict()
        assert payload["mean"] == pytest.approx(111 / 4)
        assert payload["buckets"] == {"1": 1, "4": 1, "8": 1, "128": 1}

    def test_observe_builds_histograms(self):
        rec = TraceRecorder()
        rec.observe("pops", 2)
        rec.observe("pops", 6)
        assert rec.histograms["pops"].count == 2

    def test_percentile_on_empty_histogram_is_none(self):
        hist = Histogram()
        assert hist.percentile(50.0) is None
        assert hist.percentiles() == {"p50": None, "p95": None, "p99": None}

    def test_percentile_rejects_out_of_range(self):
        hist = Histogram()
        hist.record(1)
        with pytest.raises(ValueError):
            hist.percentile(-1.0)
        with pytest.raises(ValueError):
            hist.percentile(100.5)

    def test_percentile_single_bucket_clamps_to_envelope(self):
        hist = Histogram()
        hist.record(5)
        # One observation: every percentile is that observation.
        assert hist.percentile(1.0) == 5
        assert hist.percentile(50.0) == 5
        assert hist.percentile(99.0) == 5

    def test_percentiles_are_monotone_and_bounded(self):
        hist = Histogram()
        for value in range(1, 201):
            hist.record(value)
        quantiles = [hist.percentile(q) for q in (10, 25, 50, 75, 90, 95, 99)]
        assert quantiles == sorted(quantiles)
        for quantile in quantiles:
            assert hist.minimum <= quantile <= hist.maximum
        # The bucket interpolation tracks the true quantile to within the
        # resolution of a power-of-two bucket (a factor of two).
        assert hist.percentile(50.0) == pytest.approx(100, rel=1.0)

    def test_percentile_interpolates_within_a_bucket(self):
        hist = Histogram()
        for _ in range(100):
            hist.record(100)  # all in the (64, 128] bucket
        # Uniform-within-bucket assumption, then clamped to [min, max].
        assert hist.percentile(50.0) == 100
        assert hist.percentile(99.0) == 100

    def test_percentiles_surface_in_as_dict(self):
        hist = Histogram()
        for value in (1, 3, 7, 100):
            hist.record(value)
        payload = hist.as_dict()
        assert set(payload) >= {"p50", "p95", "p99"}
        assert payload["p50"] is not None
        assert payload["p50"] <= payload["p95"] <= payload["p99"]
        assert payload["p99"] <= hist.maximum

    def test_add_span_is_anchored_under_parent(self):
        rec = TraceRecorder()
        with rec.span("phase.infer") as parent:
            pass
        child = rec.add_span("solver.solve", 1.5, parent=parent, projected=True)
        assert child.parent == parent.sid
        assert child.start_us == parent.start_us
        assert child.duration_ms == pytest.approx(1.5)
        assert child.attrs["projected"] is True

    def test_ambient_recorder_defaults_to_noop(self):
        assert current_recorder() is NULL_RECORDER
        assert not current_recorder().enabled

    def test_use_recorder_installs_and_restores(self):
        rec = TraceRecorder()
        with use_recorder(rec):
            assert current_recorder() is rec
        assert current_recorder() is NULL_RECORDER

    def test_null_recorder_is_free_of_side_effects(self):
        null = Recorder()
        with null.span("anything", attr=1) as span:
            assert span is None
        null.count("x")
        null.observe("y", 3)  # nothing to assert beyond "does not raise"

    def test_queries(self):
        rec = TraceRecorder()
        with rec.span("a") as a:
            with rec.span("b"):
                pass
            with rec.span("b"):
                pass
        assert [s.name for s in rec.roots()] == ["a"]
        assert len(rec.spans_named("b")) == 2
        assert [s.name for s in rec.children_of(a)] == ["b", "b"]
        assert rec.total_ms("b") == pytest.approx(
            sum(s.duration_ms for s in rec.spans_named("b"))
        )


# ---------------------------------------------------------------------------
# exporters


def make_recorder_with_data():
    rec = TraceRecorder()
    with rec.span("pipeline.check", program="p"):
        with rec.span("phase.core"):
            pass
    rec.count("solver.worklist_pops", 7)
    rec.observe("solver.pops_per_component", 3)
    return rec


class TestExporters:
    def test_events_schema(self):
        rec = make_recorder_with_data()
        events = to_events(rec)
        assert events[0]["type"] == "meta"
        spans = [e for e in events if e["type"] == "span"]
        assert [s["name"] for s in spans] == ["pipeline.check", "phase.core"]
        assert spans[1]["parent"] == spans[0]["sid"]
        assert all(s["dur_us"] >= 0 for s in spans)
        counters = [e for e in events if e["type"] == "counter"]
        assert counters == [
            {"type": "counter", "name": "solver.worklist_pops", "value": 7}
        ]
        hists = [e for e in events if e["type"] == "histogram"]
        assert hists[0]["name"] == "solver.pops_per_component"
        assert hists[0]["count"] == 1

    def test_jsonl_round_trips(self):
        rec = make_recorder_with_data()
        lines = to_jsonl(rec).splitlines()
        parsed = [json.loads(line) for line in lines]
        assert parsed == to_events(rec)

    def test_export_rejects_open_spans(self):
        rec = TraceRecorder()
        rec._open("dangling", {})
        with pytest.raises(TelemetryError, match="dangling"):
            to_events(rec)
        with pytest.raises(TelemetryError):
            to_chrome_trace(rec)
        with pytest.raises(TelemetryError):
            metrics_dict(rec)

    def test_chrome_trace_schema(self):
        rec = make_recorder_with_data()
        trace = to_chrome_trace(rec)
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert events[0]["ph"] == "M"  # process_name metadata first
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"pipeline.check", "phase.core"}
        for event in complete:
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert event["dur"] >= 0
            assert event["pid"] == 1 and event["tid"] == 1
            assert event["cat"] in {"pipeline", "phase"}
        counters = [e for e in events if e["ph"] == "C"]
        assert counters[0]["name"] == "solver.worklist_pops"
        assert counters[0]["args"] == {"value": 7}
        # Every event phase is one the format defines.
        assert {e["ph"] for e in events} <= {"M", "X", "C"}
        json.dumps(trace)  # must be serialisable as-is

    def test_write_chrome_trace(self, tmp_path):
        rec = make_recorder_with_data()
        path = tmp_path / "trace.json"
        write_chrome_trace(rec, str(path))
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(to_chrome_trace(rec)))

    def test_metrics_dict_aggregates(self):
        rec = make_recorder_with_data()
        metrics = metrics_dict(rec)
        assert metrics["counters"] == {"solver.worklist_pops": 7}
        assert metrics["histograms"]["solver.pops_per_component"]["count"] == 1
        assert metrics["spans"]["phase.core"]["count"] == 1
        assert metrics["spans"]["pipeline.check"]["total_ms"] >= 0

    def test_summary_renders_tree_and_counters(self):
        rec = make_recorder_with_data()
        text = format_trace_summary(rec)
        assert "== telemetry summary ==" in text
        assert "pipeline.check" in text
        assert "  phase.core" in text  # indented under the root
        assert "solver.worklist_pops" in text

    def test_summary_and_metrics_surface_percentiles(self):
        rec = TraceRecorder()
        for value in (1, 3, 7, 100):
            rec.observe("solver.pops_per_component", value)
        text = format_trace_summary(rec)
        assert "p50=" in text and "p95=" in text and "p99=" in text
        payload = metrics_dict(rec)["histograms"]["solver.pops_per_component"]
        assert payload["p50"] is not None
        assert payload["p50"] <= payload["p95"] <= payload["p99"]

    def test_summary_aggregates_large_sibling_groups(self):
        rec = TraceRecorder()
        with rec.span("solver.propagate"):
            for _ in range(20):
                with rec.span("solver.component"):
                    pass
        text = format_trace_summary(rec)
        assert "solver.component ×20" in text
        # Not one line per component.
        assert text.count("solver.component") == 1


# ---------------------------------------------------------------------------
# CountingLattice


class TestCountingLattice:
    def test_counts_and_flushes(self):
        rec = TraceRecorder()
        lattice = CountingLattice(TwoPointLattice(), rec, scope="propagate")
        low, high = lattice.bottom, lattice.top
        lattice.join(low, high)
        lattice.leq(low, high)
        lattice.leq(high, low)
        lattice.meet(low, high)
        assert (lattice.leq_calls, lattice.join_calls, lattice.meet_calls) == (2, 1, 1)
        lattice.flush()
        assert rec.counters == {
            "lattice.leq[two-point].propagate": 2,
            "lattice.join[two-point].propagate": 1,
            "lattice.meet[two-point].propagate": 1,
        }
        # Flushing resets; a second flush adds nothing.
        lattice.flush()
        assert rec.counters["lattice.leq[two-point].propagate"] == 2

    def test_delegates_pure_operations(self):
        inner = TwoPointLattice()
        lattice = CountingLattice(inner, TraceRecorder())
        assert lattice.name == inner.name
        assert list(lattice.labels()) == list(inner.labels())
        assert lattice.height_bound() == inner.height_bound()
        assert lattice.parse_label("high") == inner.parse_label("high")
        assert lattice.format_label(inner.top) == inner.format_label(inner.top)


# ---------------------------------------------------------------------------
# pipeline e2e


class TestPipelineTracing:
    def test_every_phase_appears_exactly_once(self, stripped_case):
        source, lattice_name = stripped_case
        report, rec = traced_check(source, lattice_name, infer=True)
        assert report.ok
        assert report.trace is rec
        assert len(rec.spans_named("pipeline.check")) == 1
        for phase in ("phase.parse", "phase.core", "phase.infer", "phase.ifc"):
            assert len(rec.spans_named(phase)) == 1, phase
        # Solver fine-grained spans landed in the same tree...
        assert rec.spans_named("solver.solve")
        assert rec.spans_named("solver.build")
        assert rec.spans_named("infer.generate")
        # ...and none of them are the projected fallback.
        assert not any(
            s.attrs.get("projected") for s in rec.spans_named("solver.solve")
        )

    def test_span_tree_is_well_formed(self, stripped_case):
        source, lattice_name = stripped_case
        _, rec = traced_check(source, lattice_name, infer=True)
        assert rec.open_spans == []
        by_sid = {span.sid: span for span in rec.spans}
        roots = rec.roots()
        assert [span.name for span in roots] == ["pipeline.check"]
        for span in rec.spans:
            assert span.closed, span.name
            assert span.end_us >= span.start_us
            if span.parent is not None:
                parent = by_sid[span.parent]  # no orphans
                assert parent.start_us <= span.start_us
                assert span.end_us <= parent.end_us + 1e-6, (
                    f"{span.name} escapes {parent.name}"
                )

    def test_solver_spans_nest_under_infer(self, stripped_case):
        source, lattice_name = stripped_case
        _, rec = traced_check(source, lattice_name, infer=True)
        by_sid = {span.sid: span for span in rec.spans}

        def ancestors(span):
            while span.parent is not None:
                span = by_sid[span.parent]
                yield span.name

        for name in ("solver.solve", "solver.build", "infer.generate"):
            for span in rec.spans_named(name):
                assert "phase.infer" in list(ancestors(span)), name

    def test_counters_report_rule_site_traffic(self, stripped_case):
        source, lattice_name = stripped_case
        report, rec = traced_check(source, lattice_name, infer=True)
        assert any(name.startswith("flow.site.") for name in rec.counters)
        assert any(name.startswith("constraints.emitted.") for name in rec.counters)
        assert rec.counters["infer.runs"] == 1
        constraint_count = report.inference_result.constraint_count
        emitted = sum(
            value
            for name, value in rec.counters.items()
            if name.startswith("constraints.emitted.")
        )
        assert emitted == constraint_count
        assert rec.counters["infer.constraints_generated"] == constraint_count
        # The propagate loop counted lattice traffic through CountingLattice.
        if rec.counters.get("solver.worklist_pops"):
            assert any(name.startswith("lattice.") for name in rec.counters)
            assert rec.histograms["solver.pops_per_component"].count >= 1

    def test_private_recorder_when_tracing_is_off(self, stripped_case):
        source, lattice_name = stripped_case
        report = check_source(source, lattice_name, infer=True)
        rec = report.trace
        assert isinstance(rec, TraceRecorder)
        # Coarse phase spans only: the solver internals saw the no-op
        # ambient recorder, so solve_ms arrives as a projected span.
        projected = rec.spans_named("solver.solve")
        assert len(projected) == 1
        assert projected[0].attrs.get("projected") is True
        assert not rec.spans_named("solver.build")
        assert not rec.counters

    def test_timing_is_a_projection_of_the_trace(self, stripped_case):
        source, lattice_name = stripped_case
        report, rec = traced_check(source, lattice_name, infer=True)
        timing = report.timing
        assert timing.parse_ms == pytest.approx(rec.total_ms("phase.parse"))
        assert timing.infer_ms == pytest.approx(rec.total_ms("phase.infer"))
        solver_total = rec.total_ms("solver.solve") + rec.total_ms("solver.resolve")
        assert timing.solve_ms == pytest.approx(solver_total)
        assert 0.0 < timing.solve_ms <= timing.infer_ms


# ---------------------------------------------------------------------------
# PhaseTiming semantics


class TestPhaseTiming:
    def test_total_never_double_counts_sub_phases(self):
        timing = PhaseTiming(
            parse_ms=1.0, core_ms=2.0, infer_ms=10.0, ifc_ms=3.0, solve_ms=7.0
        )
        # solve is inside infer: the total is the top-level partition only.
        assert timing.total_ms == pytest.approx(16.0)
        for sub in PhaseTiming.SUB_PHASES:
            assert sub not in PhaseTiming.TOP_LEVEL

    def test_as_dict_nests_sub_phases(self):
        timing = PhaseTiming(infer_ms=10.0, solve_ms=7.0)
        tree = timing.as_dict()
        assert tree["infer"]["ms"] == 10.0
        assert tree["infer"]["sub_phases"]["solve"]["ms"] == 7.0
        assert "solve" not in tree  # not a top-level key
        assert tree["total_ms"] == pytest.approx(10.0)

    def test_from_spans_projects_and_sums(self):
        rec = TraceRecorder()
        with rec.span("phase.parse"):
            pass
        with rec.span("phase.infer") as infer_span:
            with rec.span("solver.solve"):
                pass
            with rec.span("solver.resolve"):
                pass
        rec._open("phase.core", {})  # left open: must be skipped
        timing = PhaseTiming.from_spans(rec.spans)
        assert timing.parse_ms > 0
        assert timing.infer_ms == pytest.approx(infer_span.duration_ms)
        solve = rec.total_ms("solver.solve") + rec.total_ms("solver.resolve")
        assert timing.solve_ms == pytest.approx(solve)
        assert timing.core_ms == 0.0
        assert timing.total_ms == pytest.approx(timing.parse_ms + timing.infer_ms)

    def test_report_json_keeps_flat_keys_and_adds_phases(self, stripped_case):
        from repro.tool.report import report_to_dict

        source, lattice_name = stripped_case
        report = check_source(source, lattice_name, infer=True)
        payload = report_to_dict(report)["timing_ms"]
        for key in ("parse", "core", "infer", "solve", "ifc", "total"):
            assert key in payload
        phases = payload["phases"]
        assert phases["infer"]["sub_phases"]["solve"]["ms"] == payload["solve"]
        assert payload["total"] == pytest.approx(
            sum(payload[k] for k in ("parse", "core", "infer", "ifc"))
        )


# ---------------------------------------------------------------------------
# no-op guard


class ExplodingRecorder(Recorder):
    """Disabled recorder whose metric hooks raise: proves hot paths branch
    on ``enabled`` before calling them."""

    __slots__ = ("span_calls",)

    def __init__(self):
        self.span_calls = 0

    def span(self, name, **attrs):
        self.span_calls += 1
        return super().span(name, **attrs)

    def count(self, name, amount=1):
        raise AssertionError(f"count({name!r}) called on a disabled recorder")

    def observe(self, name, value):
        raise AssertionError(f"observe({name!r}) called on a disabled recorder")


class TestNoOpGuard:
    def test_disabled_recorder_never_receives_metrics(self, stripped_case):
        source, lattice_name = stripped_case
        exploding = ExplodingRecorder()
        with use_recorder(exploding):
            report = check_source(source, lattice_name, infer=True)
        assert report.ok  # and nothing raised

    def test_disabled_span_calls_are_bounded(self, stripped_case):
        source, lattice_name = stripped_case
        exploding = ExplodingRecorder()
        with use_recorder(exploding):
            check_source(source, lattice_name, infer=True)
        # The disabled path pays only the coarse solver spans -- never one
        # per component, edge, or rule site.
        assert 0 < exploding.span_calls <= 12


# ---------------------------------------------------------------------------
# CLI and summary surfacing


@pytest.fixture
def program_file(tmp_path, stripped_case):
    source, lattice_name = stripped_case
    path = tmp_path / "program.p4"
    path.write_text(source)
    return str(path), lattice_name


class TestCliTelemetry:
    def test_trace_writes_chrome_trace(self, tmp_path, program_file, capsys):
        path, lattice_name = program_file
        out = tmp_path / "trace.json"
        code = cli_main(
            [path, "--lattice", lattice_name, "--infer", "--trace", str(out)]
        )
        assert code == 0
        trace = json.loads(out.read_text())
        names = {e["name"] for e in trace["traceEvents"]}
        assert "pipeline.check" in names
        assert "phase.infer" in names
        assert "solver.solve" in names

    def test_trace_jsonl_suffix_switches_format(self, tmp_path, program_file):
        path, lattice_name = program_file
        out = tmp_path / "events.jsonl"
        code = cli_main(
            [path, "--lattice", lattice_name, "--infer", "--trace", str(out)]
        )
        assert code == 0
        events = [json.loads(line) for line in out.read_text().splitlines()]
        assert events[0]["type"] == "meta"
        assert any(e["type"] == "span" for e in events)

    def test_metrics_file(self, tmp_path, program_file):
        path, lattice_name = program_file
        out = tmp_path / "metrics.json"
        code = cli_main(
            [path, "--lattice", lattice_name, "--infer", "--metrics", str(out)]
        )
        assert code == 0
        metrics = json.loads(out.read_text())
        assert metrics["counters"]["infer.runs"] == 1
        assert "pipeline.check" in metrics["spans"]

    def test_trace_summary_prints_tree(self, program_file, capsys):
        path, lattice_name = program_file
        code = cli_main([path, "--lattice", lattice_name, "--infer", "--trace-summary"])
        assert code == 0
        output = capsys.readouterr().out
        assert "== telemetry summary ==" in output
        assert "pipeline.check" in output

    def test_unwritable_trace_path_is_a_usage_error(self, program_file, capsys):
        path, lattice_name = program_file
        code = cli_main(
            [path, "--lattice", lattice_name, "--trace", "/nonexistent/dir/t.json"]
        )
        assert code == 2

    def test_without_flags_no_recorder_is_installed(self, program_file, capsys):
        path, lattice_name = program_file
        code = cli_main([path, "--lattice", lattice_name, "--infer"])
        assert code == 0
        assert "telemetry summary" not in capsys.readouterr().out


class TestSummaryMetrics:
    def test_summary_surfaces_counters_when_traced(self, stripped_case):
        source, lattice_name = stripped_case
        report, _ = traced_check(source, lattice_name, infer=True)
        summary = summarise_report(report, get_lattice(lattice_name))
        assert summary.metrics is not None
        assert any(name.startswith("flow.site.") for name in summary.metrics)
        assert summary.as_dict()["metrics"] == summary.metrics
        text = format_summary(summary)
        assert "telemetry counters:" in text
        assert "solver:" in text  # full Solution.stats line

    def test_summary_metrics_absent_without_tracing(self, stripped_case):
        source, lattice_name = stripped_case
        report = check_source(source, lattice_name, infer=True)
        summary = summarise_report(report, get_lattice(lattice_name))
        assert summary.metrics is None
        assert summary.solver is not None  # stats still surface
