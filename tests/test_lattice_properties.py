"""Property-based tests of the lattice laws (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.lattice import (
    ChainLattice,
    DiamondLattice,
    PowersetLattice,
    ProductLattice,
    TwoPointLattice,
    mini_policy_lattice,
)

LATTICES = [
    TwoPointLattice(),
    DiamondLattice(),
    ChainLattice.of_height(5),
    PowersetLattice(["a", "b", "c"]),
    ProductLattice(TwoPointLattice(), DiamondLattice()),
    mini_policy_lattice(),
]


def lattice_and_labels(count: int):
    """Strategy: a lattice plus ``count`` labels drawn from it."""

    @st.composite
    def build(draw):
        lattice = draw(st.sampled_from(LATTICES))
        labels = [draw(st.sampled_from(list(lattice.labels()))) for _ in range(count)]
        return (lattice, *labels)

    return build()


@given(lattice_and_labels(2))
@settings(max_examples=200)
def test_join_commutative(data):
    lattice, a, b = data
    assert lattice.join(a, b) == lattice.join(b, a)


@given(lattice_and_labels(2))
@settings(max_examples=200)
def test_meet_commutative(data):
    lattice, a, b = data
    assert lattice.meet(a, b) == lattice.meet(b, a)


@given(lattice_and_labels(3))
@settings(max_examples=200)
def test_join_associative(data):
    lattice, a, b, c = data
    assert lattice.join(a, lattice.join(b, c)) == lattice.join(lattice.join(a, b), c)


@given(lattice_and_labels(3))
@settings(max_examples=200)
def test_meet_associative(data):
    lattice, a, b, c = data
    assert lattice.meet(a, lattice.meet(b, c)) == lattice.meet(lattice.meet(a, b), c)


@given(lattice_and_labels(1))
@settings(max_examples=100)
def test_join_meet_idempotent(data):
    lattice, a = data
    assert lattice.join(a, a) == a
    assert lattice.meet(a, a) == a


@given(lattice_and_labels(2))
@settings(max_examples=200)
def test_absorption(data):
    lattice, a, b = data
    assert lattice.join(a, lattice.meet(a, b)) == a
    assert lattice.meet(a, lattice.join(a, b)) == a


@given(lattice_and_labels(2))
@settings(max_examples=200)
def test_join_is_upper_bound(data):
    lattice, a, b = data
    joined = lattice.join(a, b)
    assert lattice.leq(a, joined)
    assert lattice.leq(b, joined)


@given(lattice_and_labels(2))
@settings(max_examples=200)
def test_meet_is_lower_bound(data):
    lattice, a, b = data
    met = lattice.meet(a, b)
    assert lattice.leq(met, a)
    assert lattice.leq(met, b)


@given(lattice_and_labels(2))
@settings(max_examples=200)
def test_order_consistent_with_join(data):
    lattice, a, b = data
    assert lattice.leq(a, b) == (lattice.join(a, b) == b)


@given(lattice_and_labels(2))
@settings(max_examples=200)
def test_order_consistent_with_meet(data):
    lattice, a, b = data
    assert lattice.leq(a, b) == (lattice.meet(a, b) == a)


@given(lattice_and_labels(3))
@settings(max_examples=200)
def test_join_monotone(data):
    lattice, a, b, c = data
    if lattice.leq(a, b):
        assert lattice.leq(lattice.join(a, c), lattice.join(b, c))


@given(lattice_and_labels(1))
@settings(max_examples=100)
def test_bounds(data):
    lattice, a = data
    assert lattice.leq(lattice.bottom, a)
    assert lattice.leq(a, lattice.top)


@given(lattice_and_labels(1))
@settings(max_examples=100)
def test_parse_format_roundtrip(data):
    lattice, a = data
    assert lattice.parse_label(lattice.format_label(a)) == a
