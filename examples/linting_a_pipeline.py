"""Linting a pipeline: lint rules, leak-path witnesses, declassify audit.

A tour of ``repro.analysis`` on one small program that exhibits all of it:

* a redundant local annotation (``P4B001``) and a slack one (``P4B002``),
* a value stored but never read (``P4B004``),
* dead statements after ``exit`` (``P4B005``),
* a declassify that releases nothing (``P4B003``) next to one that does,
* an inference conflict explained by its shortest leak-path witness,
* the whole verdict serialised as a SARIF 2.1.0 log.

Run with ``python examples/linting_a_pipeline.py``.
"""

from __future__ import annotations

import json

from repro.analysis import explain_flows, run_lints, sarif_document
from repro.frontend.parser import parse_program
from repro.inference import infer_labels
from repro.lattice.registry import get_lattice

LINTY = """\
header flow_t {
    <bit<32>, high> session_key;
    <bit<32>, low> counter;
}

control Export(inout flow_t hdr) {
    // P4B001: inference derives exactly `high` for this slot anyway.
    <bit<32>, high> key_copy = hdr.session_key;
    // P4B002: nothing high flows in; `low` would do.
    <bit<32>, high> padded = hdr.counter;
    // P4B004: written, never read.
    bit<32> scratch = hdr.session_key;
    apply {
        hdr.counter = hdr.counter + 1;
        exit;
        // P4B005: can never execute.
        hdr.counter = 0;
    }
}
"""

RELEASES = """\
header flow_t {
    <bit<8>, high> secret;
    <bit<8>, high> vault;
    <bit<8>, low> export;
}

control Audit(inout flow_t hdr) {
    apply {
        // Load-bearing: the released value reaches the low sink.
        hdr.export = declassify(hdr.secret);
        // P4B003: released into a high sink -- the declassify is a no-op.
        hdr.vault = declassify(hdr.secret);
    }
}
"""

LEAKY = """\
header flow_t {
    <bit<8>, high> secret;
    <bit<8>, low> export;
}

control Leak(inout flow_t hdr) {
    bit<8> staged = hdr.secret;
    bit<8> relayed = staged;
    apply {
        hdr.export = relayed;
    }
}
"""


def main() -> None:
    lattice = get_lattice("two-point")

    print("== lint findings ==")
    program = parse_program(LINTY)
    for finding in run_lints(program, lattice):
        print(f"  {finding.describe()}")

    print("\n== declassify audit (--explain-flows) ==")
    audited = parse_program(RELEASES)
    for finding in run_lints(audited, lattice, allow_declassification=True):
        print(f"  {finding.describe()}")
    for flow in explain_flows(audited, lattice):
        print(f"  released by {flow.site.describe()}:")
        for line in flow.witness.describe(lattice).splitlines():
            print(f"    {line}")

    print("\n== leak-path witness for an inference conflict ==")
    from repro.analysis import witnesses_for_solution

    result = infer_labels(parse_program(LEAKY), lattice)
    assert not result.ok
    for witness in witnesses_for_solution(result.solution):
        print(f"  {witness.conflict.constraint.span}: ", end="")
        print(witness.describe(lattice).replace("\n", "\n  "))

    print("\n== the same verdict as SARIF 2.1.0 ==")
    findings = run_lints(program, lattice)
    doc = sarif_document([("linty.p4", findings)])
    run = doc["runs"][0]
    print(f"  version {doc['version']}, "
          f"{len(run['tool']['driver']['rules'])} rules, "
          f"{len(run['results'])} results")
    first = run["results"][0]
    print("  first result:", json.dumps(first["ruleId"]), "at",
          json.dumps(first["locations"][0]["physicalLocation"]["region"]))


if __name__ == "__main__":
    main()
