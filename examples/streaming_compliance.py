"""Streaming compliance: policy lattices decided at traffic rate.

Run with::

    python examples/streaming_compliance.py

The IFC label machinery generalises past ``high``/``low``: a *policy
lattice* tracks data-governance facts -- which **purposes** a use serves,
which **recipients** see the result, and how long it is retained -- as one
product of powersets plus a retention chain.  ``⊑`` then literally *is*
compliance: a request is permitted iff the label it demands flows to the
meet of every contributing data subject's consent grant.

This example builds a deterministic scenario (subjects with varied
grants, datasets with derivation lineage), replays a generated traffic
stream through a :class:`~repro.policy.PolicyEngine` on the bit-packed
backend, revokes one subject's consent mid-stream, and asks the witness
machinery *why* a denied request is denied -- the shortest chain from the
request through the derivation lineage to the consent bound it breaks.
"""

from repro.lattice import get_lattice
from repro.policy import PolicyEngine, Request, replay
from repro.synth import policy_traffic, scenario_universe


def main() -> None:
    # A policy lattice: 6 purposes, 4 recipients, 3 retention classes.
    # (`policy-mini` or any `policy-P-R-T` name works; the packed codec
    # scales to hundreds of principals -- see `p4bid policy bench`.)
    lattice = get_lattice("policy-6-4-3")
    print(f"lattice {lattice.name}: {lattice.principal_count} principals")

    # A deterministic universe: consent grants + dataset lineage.
    universe = scenario_universe(lattice, subjects=12, datasets=16, seed=11)
    widest = max(
        universe.datasets, key=lambda d: len(universe.contributing_subjects(d))
    )
    print(
        f"{len(universe.subjects)} subjects, {len(universe.datasets)} "
        f"datasets; {widest!r} draws on "
        f"{len(universe.contributing_subjects(widest))} subjects\n"
    )

    # Replay a generated traffic stream (access / reuse / expiry requests
    # with mid-stream revocations) through the packed decision engine.
    engine = PolicyEngine(universe, backend="auto")
    events = policy_traffic(universe, events=2000, revoke_every=400, seed=11)
    report = replay(engine, events)
    print(report.describe())
    for line in report.decision_log()[:5]:
        print(f"  {line}")
    print("  ...\n")

    # Consent revocation: shrink one subject's grant and watch a request
    # that was permitted flip to denied.  Pick a dataset whose (post-
    # replay) bound still permits *something*, and probe inside it.
    dataset = max(
        (
            d
            for d in universe.datasets
            if universe.effective_bound(d).purposes
            and universe.effective_bound(d).recipients
        ),
        key=lambda d: len(universe.contributing_subjects(d)),
    )
    subject = universe.contributing_subjects(dataset)[0]
    bound = universe.effective_bound(dataset)
    probe = Request(
        10_000,
        dataset,
        sorted(bound.purposes)[0],
        sorted(bound.recipients)[0],
        universe.lattice.retention_classes[0],
    )
    before = engine.decide(probe)
    affected = engine.set_grant(subject, universe.lattice.bottom)
    after = engine.decide(probe)
    print(
        f"revoking {subject!r} recompiled {len(affected)} dataset bound(s): "
        f"{'PERMIT' if before.permit else 'DENY'} -> "
        f"{'PERMIT' if after.permit else 'DENY'}\n"
    )

    # And *why*: the witness machinery explains the denial as the shortest
    # chain from the request through the lineage to the violated consent.
    explanation = engine.explain(probe)
    print(explanation.describe(engine))


if __name__ == "__main__":
    main()
