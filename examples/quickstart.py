"""Quickstart: catch the topology leak from the paper's running example.

Run with::

    python examples/quickstart.py

The script checks the insecure program of Listing 1 (which copies the local
network's TTL into the public ipv4 header), prints the violation P4BID
reports, then checks the corrected program of Listing 2 and shows that it
is accepted.
"""

from repro import check_source
from repro.tool.report import format_report

INSECURE = """
header local_hdr_t {
    <bit<32>, high> phys_dstAddr;
    <bit<8>, high>  phys_ttl;
}

header ipv4_t {
    <bit<8>, low>  ttl;
    <bit<32>, low> dstAddr;
}

struct headers {
    ipv4_t ipv4;
    local_hdr_t local_hdr;
}

control Obfuscate_Ingress(inout headers hdr) {
    action update_to_phys(<bit<32>, high> phys_dstAddr, <bit<8>, high> phys_ttl) {
        hdr.local_hdr.phys_dstAddr = phys_dstAddr;
        hdr.ipv4.ttl = phys_ttl;            // BUG: low <- high
    }
    table virtual2phys_topology {
        key = { hdr.ipv4.dstAddr: exact; }
        actions = { update_to_phys; }
    }
    apply {
        virtual2phys_topology.apply();
    }
}
"""

SECURE = INSECURE.replace(
    "hdr.ipv4.ttl = phys_ttl;            // BUG: low <- high",
    "hdr.local_hdr.phys_ttl = phys_ttl;  // FIX: high <- high",
)


def main() -> None:
    print("Checking the insecure program (Listing 1)...\n")
    insecure_report = check_source(INSECURE, name="listing-1")
    print(format_report(insecure_report))
    assert not insecure_report.ok, "the insecure program should be rejected"

    print("\nChecking the corrected program (Listing 2)...\n")
    secure_report = check_source(SECURE, name="listing-2")
    print(format_report(secure_report, verbose=True))
    assert secure_report.ok, "the corrected program should be accepted"

    print("\nDone: the leak was flagged and the fix certified.")


if __name__ == "__main__":
    main()
