"""Integrity: preventing priority manipulation (Section 5.3).

Reading the two-point lattice as integrity -- ``high`` means untrusted,
``low`` means trusted -- non-interference guarantees that untrusted inputs
cannot influence trusted outputs.  The gateway program that keys its
priority table on the client-controlled ``appID`` violates this; keying on
the destination address does not.

Run with::

    python examples/resource_allocation_integrity.py
"""

from repro.casestudies import get_case_study
from repro.frontend.parser import parse_program
from repro.ni import check_non_interference
from repro.tool.pipeline import check_source


def main() -> None:
    case = get_case_study("app")

    print("=== manipulable allocation (keys on untrusted appID) ===")
    insecure = check_source(case.insecure_source, name="app-insecure")
    for diag in insecure.ifc_diagnostics:
        print(" ", diag)
    assert not insecure.ok

    print("\n=== integrity-respecting allocation (keys on dstAddr) ===")
    secure = check_source(case.secure_source, name="app-secure")
    assert secure.ok
    print("  accepted: the priority now only depends on trusted data")

    print("\n=== dynamic confirmation ===")
    print("Two packets that differ only in the (untrusted) appID:")
    for variant, source in (("insecure", case.insecure_source), ("secure", case.secure_source)):
        result = check_non_interference(
            parse_program(source),
            control_plane=case.control_plane(),
            trials=100,
            seed=11,
        )
        if result.holds:
            print(f"  {variant:9s}: the trusted priority is unaffected (integrity holds)")
        else:
            ce = result.counterexample
            print(
                f"  {variant:9s}: a forged appID changed "
                f"{ce.parameter}{ce.component} ({ce.detail})"
            )


if __name__ == "__main__":
    main()
