"""Tenant isolation with the diamond lattice (Section 5.4).

Alice and Bob share a private network.  Their header fields are labelled
``A`` and ``B``, in-band telemetry is labelled ``top`` (write-only for the
tenants), and pre-configured routing data is labelled ``bot``.  Each
tenant's control block is type checked under its own program counter
(``@pc(A)`` / ``@pc(B)``), so a tenant can only write its own fields and
telemetry.

Run with::

    python examples/network_isolation.py
"""

from repro.casestudies import get_case_study
from repro.lattice import DiamondLattice
from repro.tool.pipeline import check_source


def main() -> None:
    lattice = DiamondLattice()
    lattice.validate()
    print("Diamond lattice (Figure 8b):")
    for label in lattice.labels():
        above = [str(x) for x in lattice.labels() if lattice.lt(label, x)]
        print(f"  {label:>3} ⊑ {', '.join(above) if above else '(top)'}")

    case = get_case_study("lattice")

    print("\n=== insecure tenant programs (Listing 6) ===")
    report = check_source(case.insecure_source, "diamond", name="isolation-insecure")
    for diag in report.ifc_diagnostics:
        print(" ", diag)
    assert not report.ok, "Alice's misbehaving switch must be rejected"
    print(
        f"  -> rejected with {len(report.ifc_diagnostics)} violation(s): Alice wrote "
        "Bob's field and keyed a table on telemetry"
    )

    print("\n=== isolation-respecting tenant programs (Listing 7) ===")
    report = check_source(case.secure_source, "diamond", name="isolation-secure")
    assert report.ok, "the compliant programs must be accepted"
    print("  -> accepted: Alice only touches A-labelled fields, Bob only B/top")

    print("\nInferred table write bounds:")
    assert report.ifc_result is not None
    for table, bound in sorted(report.ifc_result.table_bounds.items()):
        print(f"  {table}: pc_tbl = {bound}")


if __name__ == "__main__":
    main()
