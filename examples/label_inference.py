"""Label inference: annotate the secrets, let the solver do the rest.

Run with::

    python examples/label_inference.py

The program below only pins down the policy on the packet format -- the
query is secret, the response priority is public.  Every other label (the
scratch variable, the action parameter, the ``?``-marked flag) is solved by
``repro.inference`` to its least value, and the elaborated program is
re-verified by the stock Figure 5–7 checker.  A second, leaky variant shows
how an unsatisfiable constraint system is reported: the conflict points at
the sink, and its unsatisfiable core names the spans that forced the label
too high.
"""

from repro import check_source
from repro.tool.report import format_report

PARTIAL = """
header req_t {
    <bit<32>, high> query;
    <bit<3>, low>   priority;
    bit<32>         token;
    <bit<8>, ?>     hops;
}

struct headers {
    req_t req;
}

control Ingress(inout headers hdr) {
    bit<32> scratch;

    action bump(in bit<8> step) {
        hdr.req.hops = hdr.req.hops + step;
    }

    apply {
        scratch = hdr.req.query;
        bump(1);
    }
}
"""

#: Same program, but the priority is computed from the secret query.
LEAKY = PARTIAL.replace("bump(1);", "bump(1);\n        hdr.req.priority = 1;").replace(
    "scratch = hdr.req.query;",
    "scratch = hdr.req.query;\n        if (scratch > 7) {\n            hdr.req.priority = 7;\n        }",
)


def main() -> None:
    report = check_source(PARTIAL, infer=True, name="partial")
    print(format_report(report))
    print()
    leaky_report = check_source(LEAKY, infer=True, name="leaky")
    print(format_report(leaky_report))


if __name__ == "__main__":
    main()
