"""In-network cache timing channel (Section 5.2), statically and dynamically.

The example does three things:

1. runs P4BID over the insecure cache program and shows the table-key
   violation it reports,
2. *demonstrates* the leak by executing the program twice on inputs that
   differ only in the secret query, under the same control plane, and
   printing the publicly observable hit flag of each run,
3. runs the randomised non-interference harness on both variants and shows
   that only the insecure one yields a counterexample.

Run with::

    python examples/cache_timing_channel.py
"""

from repro.casestudies import get_case_study
from repro.frontend.parser import parse_program
from repro.ni import check_non_interference, run_pair
from repro.semantics.values import HeaderValue, IntValue, RecordValue
from repro.tool.pipeline import check_source


def _request(query: int) -> RecordValue:
    """Build a ``headers`` struct value carrying the given query."""
    return RecordValue(
        (
            ("req", HeaderValue((("query", IntValue(query, 8)),))),
            (
                "resp",
                HeaderValue((("hit", IntValue(0, 1)), ("value", IntValue(0, 32)))),
            ),
            (
                "eth",
                HeaderValue(
                    (("srcAddr", IntValue(1, 48)), ("dstAddr", IntValue(2, 48)))
                ),
            ),
        )
    )


def main() -> None:
    case = get_case_study("cache")

    print("=== 1. static check of the insecure cache ===")
    report = check_source(case.insecure_source, case.lattice_name, name="cache-insecure")
    for diag in report.ifc_diagnostics:
        print(" ", diag)
    assert not report.ok

    print("\n=== 2. demonstrating the leak dynamically ===")
    program = parse_program(case.insecure_source)
    # Two requests that agree on everything public and differ only in the
    # secret query: 4 is cached (even), 5 is not (odd).
    outputs_a, outputs_b, _ = run_pair(
        program,
        {"hdr": _request(4)},
        {"hdr": _request(5)},
        control_plane=case.control_plane(),
    )
    hit_a = outputs_a["hdr"].get("resp").get("hit")
    hit_b = outputs_b["hdr"].get("resp").get("hit")
    print(f"  query=4 -> hit={hit_a.describe()}   query=5 -> hit={hit_b.describe()}")
    print("  the public hit flag reveals one bit of the secret query")

    print("\n=== 3. randomised non-interference harness ===")
    for variant, source in (("insecure", case.insecure_source), ("secure", case.secure_source)):
        result = check_non_interference(
            parse_program(source),
            control_plane=case.control_plane(),
            trials=100,
            seed=42,
        )
        status = "holds" if result.holds else f"violated ({result.counterexample})"
        print(f"  {variant:9s}: non-interference {status}")


if __name__ == "__main__":
    main()
