"""Tracing a solve: spans, counters, and exporters over one ``--infer`` run.

Run with::

    python examples/tracing_a_solve.py

Install a :class:`~repro.telemetry.TraceRecorder` as the ambient recorder
and every layer of the pipeline records into one span tree: the pipeline
phases, the inference engine's stages, and the solver's internals down to
one span per strongly connected component.  The same recorder accumulates
counters (rule-site traffic, constraints emitted per rule, lattice
operations, worklist pops) and histograms (pops per component).

The script then shows the three export surfaces -- the human text tree,
the aggregate metrics dict, and the Chrome ``trace_event`` form you would
load into Perfetto -- plus how the persistent :class:`~repro.inference.Solver`
reports incremental-resolve savings through the same counters.
"""

from repro import check_source
from repro.frontend.parser import parse_program
from repro.inference import Solver, generate_constraints
from repro.lattice.two_point import TwoPointLattice
from repro.telemetry import (
    TraceRecorder,
    format_trace_summary,
    metrics_dict,
    to_chrome_trace,
    use_recorder,
)

SOURCE = """
header req_t {
    <bit<32>, high> query;
    <bit<3>, low>   priority;
    bit<32>         token;
    <bit<8>, ?>     hops;
}

struct headers {
    req_t req;
}

control Ingress(inout headers hdr) {
    bit<32> scratch;

    action bump(in bit<8> step) {
        hdr.req.hops = hdr.req.hops + step;
    }

    apply {
        scratch = hdr.req.query;
        bump(1);
    }
}
"""


def main() -> None:
    # -- one traced pipeline run ------------------------------------------
    recorder = TraceRecorder()
    with use_recorder(recorder):
        report = check_source(SOURCE, infer=True, name="traced")
    assert report.ok

    print(format_trace_summary(recorder))

    # -- querying the span tree directly ----------------------------------
    (root,) = recorder.roots()
    phases = [span.name for span in recorder.children_of(root)]
    print(f"\nphases under {root.name}: {', '.join(phases)}")
    (solve_span,) = recorder.spans_named("solver.solve")
    print(
        f"solver.solve: {solve_span.duration_ms:.2f} ms over "
        f"{solve_span.attrs['edges']} edge(s)"
    )
    print(
        "timing projection agrees: "
        f"PhaseTiming.solve_ms = {report.timing.solve_ms:.2f} ms"
    )

    # -- aggregate metrics and the Chrome trace ---------------------------
    metrics = recorder.counters
    site_total = sum(
        value for name, value in metrics.items() if name.startswith("flow.site.")
    )
    print(f"\nrule sites visited: {site_total}")
    print(f"constraints emitted: {metrics.get('infer.constraints_generated', 0)}")
    print(f"worklist pops: {metrics.get('solver.worklist_pops', 0)}")

    trace = to_chrome_trace(recorder)
    print(
        f"Chrome trace: {len(trace['traceEvents'])} event(s) "
        "(write with p4bid --trace run.json, open in ui.perfetto.dev)"
    )
    span_totals = metrics_dict(recorder)["spans"]
    print(f"distinct span names: {len(span_totals)}")

    # -- incremental re-solves share the same counters ---------------------
    lattice = TwoPointLattice()
    generation = generate_constraints(parse_program(SOURCE), lattice)
    incremental = TraceRecorder()
    with use_recorder(incremental):
        solver = Solver(lattice, generation.constraints)
        solver.solve()
        # Edit a slot that actually appears in the constraint system, so
        # the resolve has a non-empty cone of influence.
        slot = next(iter(next(iter(generation.constraints)).variables()))
        solver.resolve({slot: "high"})
    print(
        "\nincremental resolve: "
        f"{incremental.counters.get('solver.resolve.cone_vars', 0)} cone var(s), "
        f"{incremental.counters.get('solver.resolve.vars_reused', 0)} reused, "
        f"{incremental.counters.get('solver.resolve.edges_skipped', 0)} "
        "edge(s) skipped"
    )


if __name__ == "__main__":
    main()
