"""Audited declassification (an extension beyond the paper).

Strict non-interference sometimes forbids behaviour the operator actually
wants: a NetChain-style tail switch *must* reveal one bit derived from its
secret role -- whether it is the node that answers the client.  Instead of
weakening the labels globally, the ``declassify`` primitive releases exactly
that bit, the checker records the release in an audit trail, and every
other flow from the role stays forbidden.

Run with::

    python examples/audited_declassification.py
"""

from repro.tool.pipeline import check_source
from repro.tool.report import format_report

PROGRAM = """
header chain_t {
    <bit<8>, high> role;          // secret topology information
    <bit<16>, low> seq;
}
header kv_t {
    <bit<32>, low> query_key;
    <bool, low>    will_reply;    // the one bit the operator agrees to reveal
}

struct headers { chain_t chain; kv_t kv; }

control NetChain_Ingress(inout headers hdr) {
    apply {
        // Audited release: exactly one bit of the role escapes.
        hdr.kv.will_reply = declassify(hdr.chain.role == 2);
        hdr.chain.seq = hdr.chain.seq + 1;
    }
}
"""

LEAKY_PROGRAM = PROGRAM.replace(
    "hdr.kv.will_reply = declassify(hdr.chain.role == 2);",
    "hdr.kv.will_reply = declassify(hdr.chain.role == 2);\n"
    "        hdr.kv.query_key = hdr.chain.role;   // NOT released: still rejected",
)


def main() -> None:
    print("=== without --allow-declassify: strict non-interference ===")
    strict = check_source(PROGRAM, name="netchain-release")
    for diag in strict.ifc_diagnostics:
        print(" ", diag)
    assert not strict.ok, "releases are violations unless explicitly enabled"

    print("\n=== with declassification enabled: the release is audited ===")
    audited = check_source(PROGRAM, allow_declassification=True, name="netchain-release")
    assert audited.ok
    print(format_report(audited))
    for event in audited.ifc_result.declassifications:
        print("  audit:", event)

    print("\n=== other flows from the secret are still rejected ===")
    leaky = check_source(LEAKY_PROGRAM, allow_declassification=True, name="netchain-leaky")
    for diag in leaky.ifc_diagnostics:
        print(" ", diag)
    assert not leaky.ok, "declassify only releases what it wraps"


if __name__ == "__main__":
    main()
