"""Serving a workspace: the ``p4bid serve`` JSON-RPC session front end.

Run with::

    python examples/serving_a_workspace.py

``p4bid serve`` keeps one long-lived :class:`~repro.workspace.Workspace`
behind a newline-delimited JSON-RPC 2.0 protocol (stdio by default,
``--tcp HOST:PORT`` for sockets).  The session stays *warm*: an ``edit``
re-walks only the top-level declarations the change can affect and
re-solves only the edit's cone of influence, so per-edit cost follows the
edit, not the program.

This script drives the exact server class the CLI runs -- request by
request, the way an editor plugin or CI harness would -- through an
edit-introduce-a-leak-and-fix-it session, then shows ``save``/``load``
persistence of the solved state.
"""

import json

from repro.workspace.rpc import WorkspaceServer

SECURE = """
header req_t {
    <bit<32>, high> secret;
    <bit<32>, low>  cleartext;
    bit<32>         scratch;
}

struct headers { req_t req; }

control Ingress(inout headers hdr) {
    apply {
        hdr.req.scratch = hdr.req.secret;
        hdr.req.cleartext = 1;
    }
}
"""

# The edit a reviewer would flag: routing the secret-tainted scratch
# register into the cleartext field.
LEAKY = SECURE.replace("hdr.req.cleartext = 1;", "hdr.req.cleartext = hdr.req.scratch;")


def rpc(server: WorkspaceServer, request_id: int, method: str, **params):
    """One request/response exchange, printed the way the wire sees it."""
    request = {"jsonrpc": "2.0", "id": request_id, "method": method}
    if params:
        request["params"] = params
    response = json.loads(server.handle_line(json.dumps(request)))
    return response.get("result", response.get("error"))


def main() -> None:
    server = WorkspaceServer()  # the object behind `p4bid serve`

    print("== open: revision 1, secure ==")
    opened = rpc(server, 1, "open", source=SECURE, filename="demo.p4")
    print(f"parsed={opened['parsed']} revision={opened['revision']}")
    verdict = rpc(server, 2, "infer")
    print(f"ok={verdict['ok']} constraints={verdict['constraints']}")

    print("\n== edit: revision 2 introduces an explicit flow ==")
    rpc(server, 3, "edit", source=LEAKY)
    verdict = rpc(server, 4, "infer")
    print(f"ok={verdict['ok']}")
    for diagnostic in verdict["diagnostics"]:
        print(f"  {diagnostic}")

    print("\n== why: the unsatisfiable core and a leak witness ==")
    for core in rpc(server, 5, "unsat_core")["cores"]:
        for entry in core["core"]:
            print(f"  core: {entry['span']} [{entry['rule']}]")
    for witness in rpc(server, 6, "witnesses")["witnesses"]:
        print("  " + witness.replace("\n", "\n  "))

    print("\n== the edit was served warm ==")
    regen = rpc(server, 7, "stats")["regen"]
    print(
        f"units re-walked: {regen['units_rewalked']} of {regen['units_total']}"
        f" (reused {regen['units_reused']})"
    )

    print("\n== edit: revision 3 reverts the leak ==")
    rpc(server, 8, "edit", source=SECURE)
    print(f"ok={rpc(server, 9, 'infer')['ok']}")

    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as scratch:
        path = str(Path(scratch) / "session.p4bidws")
        print("\n== save / load: the solved state round-trips ==")
        rpc(server, 10, "save", path=path)
        fresh = WorkspaceServer()
        loaded = rpc(fresh, 11, "load", path=path)
        print(f"loaded revision={loaded['revision']} lattice={loaded['lattice']}")
        print(f"ok={rpc(fresh, 12, 'infer')['ok']} (no re-solve needed)")

    rpc(server, 13, "shutdown")
    print("\nsession closed")


if __name__ == "__main__":
    main()
