"""Going beyond the paper's lattices: multi-level clearances and principals.

The type system is parametric in the security lattice.  This example checks
the same telemetry-aggregation program against

* a four-level clearance chain ``unclassified ⊑ confidential ⊑ secret ⊑ topsecret``,
* a powerset lattice over three tenants (the generalisation of Figure 8b
  the paper sketches at the end of Section 5.4).

Run with::

    python examples/custom_lattice_clearances.py
"""

from repro.lattice import ChainLattice, PowersetLattice
from repro.tool.pipeline import check_source

CLEARANCE_PROGRAM = """
header report_t {
    <bit<32>, unclassified> packet_count;
    <bit<32>, confidential> flow_count;
    <bit<32>, secret>       incident_count;
    <bit<32>, topsecret>    source_id;
}

struct headers { report_t report; }

control Aggregate(inout headers hdr) {
    apply {
        // Allowed: information only flows upwards in the clearance chain.
        hdr.report.flow_count = hdr.report.flow_count + hdr.report.packet_count;
        hdr.report.incident_count = hdr.report.incident_count + hdr.report.flow_count;
        // BUG (flagged): a secret count must not reach the unclassified field.
        hdr.report.packet_count = hdr.report.incident_count;
    }
}
"""

TENANT_PROGRAM = """
header tenants_t {
    <bit<32>, {carol}>        carol_data;
    <bit<32>, {dave}>         dave_data;
    <bit<32>, {carol, dave}>  shared_billing;
    <bit<32>, bot>            route;
}

struct headers { tenants_t t; }

control Billing(inout headers hdr) {
    apply {
        // Carol's usage may flow into the shared billing aggregate...
        hdr.t.shared_billing = hdr.t.shared_billing + hdr.t.carol_data;
        // ...but not into Dave's private field.
        hdr.t.dave_data = hdr.t.carol_data;
    }
}
"""


def main() -> None:
    clearances = ChainLattice(
        ["unclassified", "confidential", "secret", "topsecret"], name="clearances"
    )
    clearances.validate()
    print("=== four-level clearance chain ===")
    report = check_source(CLEARANCE_PROGRAM, clearances, name="clearance-report")
    for diag in report.ifc_diagnostics:
        print(" ", diag)
    assert len(report.ifc_diagnostics) == 1, "exactly the downgrade should be flagged"

    print("\n=== three-principal powerset lattice ===")
    tenants = PowersetLattice(["carol", "dave", "erin"], name="tenants")
    report = check_source(TENANT_PROGRAM, tenants, name="tenant-billing")
    for diag in report.ifc_diagnostics:
        print(" ", diag)
    assert len(report.ifc_diagnostics) == 1, "exactly the cross-tenant write should be flagged"
    print("\nBoth policies were enforced by the same type system, only the lattice changed.")


if __name__ == "__main__":
    main()
