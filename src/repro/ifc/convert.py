"""Resolving annotated syntactic types into security types.

The :class:`TypeLabeler` turns an :class:`~repro.syntax.types.AnnotatedType`
into a :class:`~repro.ifc.security_types.SecurityType` under a given
lattice and type-definition context:

* scalar types get the annotated label, defaulting to ``⊥`` when the
  programmer wrote no annotation (the paper: "unannotated types default to
  low");
* named types are unfolded through Δ (``Δ ⊢ τ ⇝ τ'``), keeping the per-field
  annotations written at the declaration site;
* a label written on a composite *use* site (``<alice_t, A> x``) is joined
  into every field, so the outer label of a composite stays ⊥ as in
  Figure 4.

Label resolution is routed through the overridable hooks
:meth:`TypeLabeler.resolve_label` and :meth:`TypeLabeler.attach_label` so
the :mod:`repro.inference` subsystem can subclass the labeler and produce
*label variables* (terms to be solved) instead of raising
:class:`LabelResolutionError` where an annotation is missing or explicitly
marked ``infer``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ifc.context import SecurityTypeDefs
from repro.ifc.security_types import (
    SBit,
    SBool,
    SHeader,
    SInt,
    SMatchKind,
    SRecord,
    SStack,
    SUnit,
    SecurityType,
    join_into,
)
from repro.lattice.base import Label, Lattice, LatticeError
from repro.syntax.types import (
    AnnotatedType,
    BitType,
    BoolType,
    Field,
    HeaderType,
    IntType,
    MatchKindType,
    RecordType,
    StackType,
    Type,
    TypeName,
    UnitType,
    inference_marker_guidance,
    is_inference_marker,
)


class LabelResolutionError(Exception):
    """An annotation names an unknown label or an unknown type."""


class TypeLabeler:
    """Converts annotated syntactic types into security types."""

    def __init__(self, lattice: Lattice, definitions: SecurityTypeDefs) -> None:
        self._lattice = lattice
        self._definitions = definitions

    @property
    def lattice(self) -> Lattice:
        return self._lattice

    @property
    def definitions(self) -> SecurityTypeDefs:
        return self._definitions

    # ------------------------------------------------------------------ labels

    def resolve_label(self, text: Optional[str]) -> Label:
        """Resolve an annotation's raw text; ``None`` defaults to ⊥.

        A spelling that names an actual lattice level always means that
        level -- a lattice is free to define a level called ``Infer``.
        Otherwise ``infer`` / ``?`` markers are rejected here: only the
        inference labeler (which overrides this hook) can give them a
        meaning.
        """
        if text is None:
            return self._lattice.bottom
        try:
            return self._lattice.parse_label(text)
        except LatticeError as exc:
            if is_inference_marker(text):
                raise LabelResolutionError(inference_marker_guidance(text)) from exc
            raise LabelResolutionError(str(exc)) from exc

    # ------------------------------------------------------------------ types

    def security_type(self, annotated: AnnotatedType, *, seen: frozenset = frozenset()) -> SecurityType:
        """The security type denoted by ``annotated`` under Δ and the lattice."""
        base = self._body_of(annotated.ty, seen)
        return self.attach_label(annotated, base)

    def attach_label(self, annotated: AnnotatedType, base: SecurityType) -> SecurityType:
        """Combine the resolved ``base`` type with the slot's annotation.

        Overridden by the inference labeler, which introduces a label
        variable here when the annotation is missing or marked ``infer``.
        """
        label = self.resolve_label(annotated.label)
        if isinstance(base.body, (SRecord, SHeader, SStack)):
            if annotated.label is not None:
                return join_into(self._lattice, base, label)
            return base
        return SecurityType(base.body, self._lattice.join(base.label, label))

    def security_type_of_fields(self, fields: Sequence[Field], *, header: bool) -> SecurityType:
        """Security type of a header/struct declaration's field list."""
        converted = tuple(
            (field.name, self.security_type(field.ty)) for field in fields
        )
        body = SHeader(converted) if header else SRecord(converted)
        return SecurityType(body, self._lattice.bottom)

    def _body_of(self, ty: Type, seen: frozenset) -> SecurityType:
        bottom = self._lattice.bottom
        if isinstance(ty, BoolType):
            return SecurityType(SBool(), bottom)
        if isinstance(ty, IntType):
            return SecurityType(SInt(), bottom)
        if isinstance(ty, BitType):
            return SecurityType(SBit(ty.width), bottom)
        if isinstance(ty, UnitType):
            return SecurityType(SUnit(), bottom)
        if isinstance(ty, MatchKindType):
            return SecurityType(SMatchKind(), bottom)
        if isinstance(ty, RecordType):
            fields = tuple((f.name, self.security_type(f.ty, seen=seen)) for f in ty.fields)
            return SecurityType(SRecord(fields), bottom)
        if isinstance(ty, HeaderType):
            fields = tuple((f.name, self.security_type(f.ty, seen=seen)) for f in ty.fields)
            return SecurityType(SHeader(fields), bottom)
        if isinstance(ty, StackType):
            element = self.security_type(ty.element, seen=seen)
            return SecurityType(SStack(element, ty.size), bottom)
        if isinstance(ty, TypeName):
            if ty.name in seen:
                raise LabelResolutionError(
                    f"cyclic type definition involving {ty.name!r}"
                )
            definition = self._definitions.lookup(ty.name)
            if definition is None:
                raise LabelResolutionError(f"unknown type name {ty.name!r}")
            return self.security_type(definition, seen=seen | {ty.name})
        raise LabelResolutionError(f"type {ty.describe()} has no security interpretation")
