"""Diagnostics for the IFC type system.

Every violation carries a :class:`ViolationKind` so tools and tests can
distinguish, e.g., explicit flows (``low := high``) from implicit flows
(writing a low variable under a high guard or a high table key).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.syntax.source import SourceSpan


class ViolationKind(enum.Enum):
    """Classification of an information-flow (or labelling) error."""

    EXPLICIT_FLOW = "explicit-flow"
    IMPLICIT_FLOW = "implicit-flow"
    TABLE_KEY_FLOW = "table-key-flow"
    CALL_CONTEXT = "call-in-high-context"
    ARGUMENT_FLOW = "argument-flow"
    CONTROL_SIGNAL = "control-signal"
    LABEL_ERROR = "label-error"
    TYPE_ERROR = "type-error"
    DECLASSIFICATION = "declassification"


@dataclass(frozen=True, slots=True)
class IfcDiagnostic:
    """One IFC violation: kind, human message, rule, and location."""

    kind: ViolationKind
    message: str
    span: SourceSpan = field(default_factory=SourceSpan.unknown)
    rule: str = ""

    def __str__(self) -> str:
        rule = f" [{self.rule}]" if self.rule else ""
        return f"{self.span}: {self.kind.value}{rule}: {self.message}"


class IfcError(Exception):
    """Raised by ``assert``-style entry points when IFC checking fails."""

    def __init__(self, diagnostics: list[IfcDiagnostic]) -> None:
        self.diagnostics = list(diagnostics)
        summary = "; ".join(str(d) for d in diagnostics) or "information-flow violation"
        super().__init__(summary)
