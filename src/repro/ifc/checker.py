"""The IFC type checker: Figures 5 (expressions), 6 (statements), 7 (declarations).

The checker walks the same AST as the ordinary type checker but tracks a
security type ``⟨τ, χ⟩`` for every expression and a program-counter label
``pc`` for every statement.  Violations are collected as
:class:`~repro.ifc.errors.IfcDiagnostic` values rather than raised, so a
single run reports every leak in a program (the behaviour of the P4BID
tool built on p4c).

Write-effect inference
----------------------

The typing rules take the function bound ``pc_fn`` and the table bound
``pc_tbl`` as given (they appear in the types).  An implementation must
*infer* them: ``pc_fn`` is the greatest lower bound of the labels the
function body writes (assignment targets, bounds of callees, ⊥ for
``exit``/``return`` which only type under a ⊥ pc), and ``pc_tbl`` is the
meet of the bounds of the table's actions.  T-TblDecl's side conditions
``χ_k ⊑ pc_fn_j`` then become checkable constraints between the inferred
bounds and the labels of the table keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ifc.context import SecurityContext, SecurityTypeDefs
from repro.ifc.convert import LabelResolutionError, TypeLabeler
from repro.ifc.declassify import DECLASSIFY_FUNCTIONS, DeclassificationEvent
from repro.ifc.errors import IfcDiagnostic, IfcError, ViolationKind
from repro.ifc.security_types import (
    SBit,
    SBool,
    SFunction,
    SHeader,
    SInt,
    SMatchKind,
    SParam,
    SRecord,
    SStack,
    STable,
    SUnit,
    SecurityBody,
    SecurityType,
    bodies_compatible,
    flow_allowed,
    labels_equal,
    read_label,
)
from repro.lattice.base import Label, Lattice
from repro.lattice.two_point import TwoPointLattice
from repro.syntax import declarations as d
from repro.syntax import expressions as e
from repro.syntax import statements as s
from repro.syntax.declarations import Direction
from repro.syntax.program import Program
from repro.syntax.source import SourceSpan
from repro.syntax.types import (
    AnnotatedType,
    HeaderType,
    RecordType,
    inference_marker_guidance,
    is_inference_marker,
)
from repro.typechecker.checker import DEFAULT_MATCH_KINDS

#: Expression directionality, as in the ordinary system.
DIR_IN = "in"
DIR_INOUT = "inout"


def write_label(lattice: Lattice, sec_type: SecurityType) -> Label:
    """The meet of every label in ``sec_type``.

    ``pc ⊑ write_label(t)`` holds exactly when ``pc`` is below the label of
    every component of ``t``, which is the side condition T-Assign imposes
    on writes to composite l-values.
    """
    body = sec_type.body
    if isinstance(body, (SRecord, SHeader)):
        return lattice.meet_all(
            [write_label(lattice, field) for _, field in body.fields] or [sec_type.label]
        )
    if isinstance(body, SStack):
        return write_label(lattice, body.element)
    return sec_type.label


@dataclass
class IfcCheckResult:
    """Outcome of IFC-checking a program."""

    program: Program
    lattice: Lattice
    diagnostics: List[IfcDiagnostic] = field(default_factory=list)
    #: Inferred write bounds: action name -> pc_fn.
    function_bounds: Dict[str, Label] = field(default_factory=dict)
    #: Inferred table bounds: table name -> pc_tbl.
    table_bounds: Dict[str, Label] = field(default_factory=dict)
    #: Audit trail of every honoured ``declassify``/``endorse`` use.
    declassifications: List[DeclassificationEvent] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def violations(self, kind: ViolationKind) -> List[IfcDiagnostic]:
        return [diag for diag in self.diagnostics if diag.kind == kind]

    def raise_on_error(self) -> "IfcCheckResult":
        if self.diagnostics:
            raise IfcError(self.diagnostics)
        return self


class IfcChecker:
    """Checks a program against the security type system of Section 4."""

    def __init__(
        self,
        lattice: Optional[Lattice] = None,
        *,
        allow_declassification: bool = False,
    ) -> None:
        self._lattice = lattice or TwoPointLattice()
        self._allow_declassification = allow_declassification
        self._diagnostics: List[IfcDiagnostic] = []
        self._silent_depth = 0
        self._write_bounds: List[List[Label]] = []
        self._function_bounds: Dict[str, Label] = {}
        self._table_bounds: Dict[str, Label] = {}
        self._declassifications: List[DeclassificationEvent] = []

    @property
    def lattice(self) -> Lattice:
        return self._lattice

    # ------------------------------------------------------------------ diagnostics

    def _emit(
        self, kind: ViolationKind, message: str, span: SourceSpan, rule: str
    ) -> None:
        if self._silent_depth == 0:
            self._diagnostics.append(IfcDiagnostic(kind, message, span, rule))

    def _record_write(self, label: Label) -> None:
        if self._write_bounds:
            self._write_bounds[-1].append(label)

    def _fmt(self, label: Label) -> str:
        return self._lattice.format_label(label)

    # ------------------------------------------------------------------ entry points

    def check_program(self, program: Program) -> IfcCheckResult:
        self._diagnostics = []
        self._function_bounds = {}
        self._table_bounds = {}
        self._declassifications = []
        delta = SecurityTypeDefs()
        labeler = TypeLabeler(self._lattice, delta)
        gamma = SecurityContext()
        self._install_default_match_kinds(gamma)
        for decl in program.declarations:
            gamma = self.check_declaration(decl, gamma, labeler, self._lattice.bottom)
        for control in program.controls:
            self.check_control(control, gamma, labeler)
        return IfcCheckResult(
            program,
            self._lattice,
            list(self._diagnostics),
            dict(self._function_bounds),
            dict(self._table_bounds),
            list(self._declassifications),
        )

    def check_control(
        self,
        control: d.ControlDecl,
        gamma: SecurityContext,
        labeler: TypeLabeler,
    ) -> None:
        pc = self._resolve_control_pc(control)
        scope = gamma.child()
        for param in control.params:
            sec_type = self._security_type(param.ty, labeler, param.span)
            if sec_type is not None:
                scope.bind(param.name, sec_type)
        for decl in control.local_declarations:
            scope = self.check_declaration(decl, scope, labeler, pc)
        self.check_statement(control.apply_block, scope, labeler, pc)

    def _resolve_control_pc(self, control: d.ControlDecl) -> Label:
        if control.pc_label is None:
            return self._lattice.bottom
        try:
            return self._lattice.parse_label(control.pc_label)
        except Exception:
            if is_inference_marker(control.pc_label):
                message = inference_marker_guidance(
                    control.pc_label, construct="@pc annotation"
                )
            else:
                message = (
                    f"unknown pc label {control.pc_label!r} on control "
                    f"{control.name!r}"
                )
            self._emit(ViolationKind.LABEL_ERROR, message, control.span, rule="@pc")
            return self._lattice.bottom

    def _install_default_match_kinds(self, gamma: SecurityContext) -> None:
        kind = SecurityType(SMatchKind(), self._lattice.bottom)
        for member in DEFAULT_MATCH_KINDS:
            gamma.bind(member, kind)

    def _security_type(
        self, annotated: AnnotatedType, labeler: TypeLabeler, span: SourceSpan
    ) -> Optional[SecurityType]:
        try:
            return labeler.security_type(annotated)
        except LabelResolutionError as exc:
            self._emit(ViolationKind.LABEL_ERROR, str(exc), span, rule="labels")
            return None

    # ------------------------------------------------------------------ declarations (Figure 7)

    def check_declaration(
        self,
        decl: d.Declaration,
        gamma: SecurityContext,
        labeler: TypeLabeler,
        pc: Label,
    ) -> SecurityContext:
        if isinstance(decl, d.VarDecl):
            return self._check_var_decl(decl, gamma, labeler, pc)
        if isinstance(decl, d.TypedefDecl):
            labeler.definitions.define(decl.name, decl.ty)
            return gamma
        if isinstance(decl, d.HeaderDecl):
            labeler.definitions.define(
                decl.name, AnnotatedType(HeaderType(decl.fields), None, decl.span)
            )
            return gamma
        if isinstance(decl, d.StructDecl):
            labeler.definitions.define(
                decl.name, AnnotatedType(RecordType(decl.fields), None, decl.span)
            )
            return gamma
        if isinstance(decl, d.MatchKindDecl):
            kind = SecurityType(SMatchKind(), self._lattice.bottom)
            for member in decl.members:
                gamma.bind(member, kind)
            return gamma
        if isinstance(decl, d.FunctionDecl):
            return self._check_function_decl(decl, gamma, labeler, pc)
        if isinstance(decl, d.TableDecl):
            return self._check_table_decl(decl, gamma, labeler, pc)
        self._emit(
            ViolationKind.TYPE_ERROR,
            f"unsupported declaration {decl.describe()}",
            decl.span,
            rule="decl",
        )
        return gamma

    # -- T-VarDecl / T-VarInit ------------------------------------------------

    def _check_var_decl(
        self,
        decl: d.VarDecl,
        gamma: SecurityContext,
        labeler: TypeLabeler,
        pc: Label,
    ) -> SecurityContext:
        declared = self._security_type(decl.ty, labeler, decl.span)
        if declared is None:
            return gamma
        if decl.init is not None:
            init_type, _ = self.check_expression(decl.init, gamma, labeler, pc)
            if init_type is not None and bodies_compatible(declared.body, init_type.body):
                if not flow_allowed(self._lattice, init_type, declared):
                    self._emit(
                        ViolationKind.EXPLICIT_FLOW,
                        f"initialiser of {decl.name!r} has label "
                        f"{self._fmt(read_label(self._lattice, init_type))}, which may not "
                        f"flow into a variable labelled {self._fmt(declared.label)}",
                        decl.span,
                        rule="T-VarInit",
                    )
        gamma.bind(decl.name, declared)
        return gamma

    # -- T-FuncDecl -------------------------------------------------------------

    def _check_function_decl(
        self,
        decl: d.FunctionDecl,
        gamma: SecurityContext,
        labeler: TypeLabeler,
        pc: Label,
    ) -> SecurityContext:
        parameters: List[SParam] = []
        body_scope = gamma.child()
        for param in decl.params:
            sec_type = self._security_type(param.ty, labeler, param.span)
            if sec_type is None:
                sec_type = SecurityType(SUnit(), self._lattice.bottom)
            body_scope.bind(param.name, sec_type)
            parameters.append(
                SParam(
                    param.direction.effective().value,
                    sec_type,
                    param.name,
                    control_plane=param.direction is Direction.NONE,
                )
            )
        if decl.return_type is None:
            return_type = SecurityType(SUnit(), self._lattice.bottom)
        else:
            resolved = self._security_type(decl.return_type, labeler, decl.span)
            return_type = resolved or SecurityType(SUnit(), self._lattice.bottom)
        body_scope.bind(SecurityContext.RETURN_KEY, return_type)

        pc_fn = self._infer_write_bound(decl.body, body_scope, labeler)
        # T-FuncDecl: the body must be well-typed under the inferred pc_fn.
        self.check_statement(decl.body, body_scope, labeler, pc_fn)

        fn_type = SecurityType(
            SFunction(tuple(parameters), pc_fn, return_type), self._lattice.bottom
        )
        gamma.bind(decl.name, fn_type)
        self._function_bounds[decl.name] = pc_fn
        return gamma

    def _infer_write_bound(
        self, body: s.Block, scope: SecurityContext, labeler: TypeLabeler
    ) -> Label:
        """Infer ``pc_fn``: the meet of the labels the body may write at."""
        self._silent_depth += 1
        self._write_bounds.append([])
        try:
            self.check_statement(body, scope, labeler, self._lattice.bottom)
        finally:
            bounds = self._write_bounds.pop()
            self._silent_depth -= 1
        return self._lattice.meet_all(bounds)

    # -- T-TblDecl ----------------------------------------------------------------

    def _check_table_decl(
        self,
        decl: d.TableDecl,
        gamma: SecurityContext,
        labeler: TypeLabeler,
        pc: Label,
    ) -> SecurityContext:
        key_labels: List[Tuple[d.TableKey, Label]] = []
        for key in decl.keys:
            key_type, _ = self.check_expression(key.expression, gamma, labeler, pc)
            if key_type is None:
                continue
            key_labels.append((key, read_label(self._lattice, key_type)))

        action_bounds: List[Label] = []
        for action_ref in decl.actions:
            bound = self._check_table_action_ref(action_ref, gamma, labeler, key_labels, pc)
            if bound is not None:
                action_bounds.append(bound)

        pc_tbl = self._lattice.meet_all(action_bounds)
        # T-TblDecl also requires χ_k ⊑ pc_tbl; with pc_tbl the meet of the
        # action bounds this is implied by the per-action checks above, but a
        # table with no actions still gets the constraint against ⊤ trivially.
        self._table_bounds[decl.name] = pc_tbl
        gamma.bind(decl.name, SecurityType(STable(pc_tbl), self._lattice.bottom))
        return gamma

    def _check_table_action_ref(
        self,
        ref: d.ActionRef,
        gamma: SecurityContext,
        labeler: TypeLabeler,
        key_labels: List[Tuple[d.TableKey, Label]],
        pc: Label,
    ) -> Optional[Label]:
        target = gamma.lookup(ref.name)
        if target is None or not isinstance(target.body, SFunction):
            # The ordinary checker reports the missing/ill-typed action.
            return None
        fn = target.body
        # Keys act like the guard of a conditional: every key label must be
        # below the write bound of every action the table may invoke.
        for key, key_label in key_labels:
            if not self._lattice.leq(key_label, fn.pc_fn):
                self._emit(
                    ViolationKind.TABLE_KEY_FLOW,
                    f"table key {key.expression.describe()!r} has label "
                    f"{self._fmt(key_label)}, but action {ref.name!r} writes at level "
                    f"{self._fmt(fn.pc_fn)}; matching on the key would leak it",
                    key.span,
                    rule="T-TblDecl",
                )
        # Declaration-time arguments bind to the action's leading parameters.
        for argument, parameter in zip(ref.arguments, fn.parameters):
            arg_type, arg_dir = self.check_expression(argument, gamma, labeler, pc)
            if arg_type is None:
                continue
            self._check_argument_flow(argument, arg_type, arg_dir, parameter, ref.name)
        return fn.pc_fn

    # ------------------------------------------------------------------ statements (Figure 6)

    def check_statement(
        self,
        stmt: s.Statement,
        gamma: SecurityContext,
        labeler: TypeLabeler,
        pc: Label,
    ) -> SecurityContext:
        if isinstance(stmt, s.Block):
            scope = gamma.child()
            for inner in stmt.statements:
                scope = self.check_statement(inner, scope, labeler, pc)
            return gamma
        if isinstance(stmt, s.Assign):
            self._check_assign(stmt, gamma, labeler, pc)
            return gamma
        if isinstance(stmt, s.If):
            self._check_if(stmt, gamma, labeler, pc)
            return gamma
        if isinstance(stmt, s.CallStmt):
            self._check_call_statement(stmt, gamma, labeler, pc)
            return gamma
        if isinstance(stmt, s.Exit):
            self._check_control_signal(stmt.span, "exit", pc, rule="T-Exit")
            return gamma
        if isinstance(stmt, s.Return):
            self._check_return(stmt, gamma, labeler, pc)
            return gamma
        if isinstance(stmt, s.VarDeclStmt):
            return self._check_var_decl(stmt.declaration, gamma, labeler, pc)
        self._emit(
            ViolationKind.TYPE_ERROR,
            f"unsupported statement {stmt.describe()}",
            stmt.span,
            rule="stmt",
        )
        return gamma

    # -- T-Assign ---------------------------------------------------------------

    def _check_assign(
        self, stmt: s.Assign, gamma: SecurityContext, labeler: TypeLabeler, pc: Label
    ) -> None:
        target_type, target_dir = self.check_expression(stmt.target, gamma, labeler, pc)
        value_type, _ = self.check_expression(stmt.value, gamma, labeler, pc)
        if target_type is None or value_type is None:
            return
        target_bound = write_label(self._lattice, target_type)
        self._record_write(target_bound)
        if target_dir != DIR_INOUT:
            self._emit(
                ViolationKind.TYPE_ERROR,
                f"cannot assign to read-only expression {stmt.target.describe()!r}",
                stmt.target.span,
                rule="T-Assign",
            )
            return
        if not bodies_compatible(target_type.body, value_type.body):
            # The ordinary checker reports the shape mismatch; nothing to add.
            return
        if not flow_allowed(self._lattice, value_type, target_type):
            self._emit(
                ViolationKind.EXPLICIT_FLOW,
                f"cannot assign {stmt.value.describe()!r} (label "
                f"{self._fmt(read_label(self._lattice, value_type))}) to "
                f"{stmt.target.describe()!r} (label "
                f"{self._fmt(target_type.label)}): {self._fmt(target_type.label)} <- "
                f"{self._fmt(read_label(self._lattice, value_type))} is not allowed",
                stmt.span,
                rule="T-Assign",
            )
        if not self._lattice.leq(pc, target_bound):
            self._emit(
                ViolationKind.IMPLICIT_FLOW,
                f"assignment to {stmt.target.describe()!r} (label "
                f"{self._fmt(target_bound)}) occurs in a context of level "
                f"{self._fmt(pc)}; the branch or table key would leak implicitly",
                stmt.span,
                rule="T-Assign",
            )

    # -- T-Cond ------------------------------------------------------------------

    def _check_if(
        self, stmt: s.If, gamma: SecurityContext, labeler: TypeLabeler, pc: Label
    ) -> None:
        guard_type, _ = self.check_expression(stmt.condition, gamma, labeler, pc)
        guard_label = (
            read_label(self._lattice, guard_type)
            if guard_type is not None
            else self._lattice.bottom
        )
        branch_pc = self._lattice.join(pc, guard_label)
        self.check_statement(stmt.then_branch, gamma, labeler, branch_pc)
        self.check_statement(stmt.else_branch, gamma, labeler, branch_pc)

    # -- T-FnCallStmt / T-TblCall ---------------------------------------------------

    def _check_call_statement(
        self, stmt: s.CallStmt, gamma: SecurityContext, labeler: TypeLabeler, pc: Label
    ) -> None:
        call = stmt.call
        callee_type, _ = self.check_expression(call.callee, gamma, labeler, pc)
        if callee_type is None:
            return
        if isinstance(callee_type.body, STable):
            pc_tbl = callee_type.body.pc_tbl
            self._record_write(pc_tbl)
            if not self._lattice.leq(pc, pc_tbl):
                self._emit(
                    ViolationKind.IMPLICIT_FLOW,
                    f"table {call.callee.describe()!r} writes at level "
                    f"{self._fmt(pc_tbl)} but is applied in a context of level "
                    f"{self._fmt(pc)}",
                    stmt.span,
                    rule="T-TblCall",
                )
            return
        # Ordinary action / function call used as a statement.
        self.check_expression(call, gamma, labeler, pc)

    # -- T-Exit / T-Return -------------------------------------------------------------

    def _check_control_signal(
        self, span: SourceSpan, keyword: str, pc: Label, rule: str
    ) -> None:
        self._record_write(self._lattice.bottom)
        if not self._lattice.leq(pc, self._lattice.bottom):
            self._emit(
                ViolationKind.CONTROL_SIGNAL,
                f"{keyword!r} statements only type check under a {self._fmt(self._lattice.bottom)} "
                f"program counter, but the context has level {self._fmt(pc)}; the control "
                "signal would leak the guard",
                span,
                rule=rule,
            )

    def _check_return(
        self, stmt: s.Return, gamma: SecurityContext, labeler: TypeLabeler, pc: Label
    ) -> None:
        self._check_control_signal(stmt.span, "return", pc, rule="T-Return")
        expected = gamma.lookup(SecurityContext.RETURN_KEY)
        if stmt.value is None or expected is None:
            return
        value_type, _ = self.check_expression(stmt.value, gamma, labeler, pc)
        if value_type is None:
            return
        if bodies_compatible(expected.body, value_type.body) and not flow_allowed(
            self._lattice, value_type, expected
        ):
            self._emit(
                ViolationKind.EXPLICIT_FLOW,
                f"return value has label "
                f"{self._fmt(read_label(self._lattice, value_type))}, but the function's "
                f"return type is labelled {self._fmt(expected.label)}",
                stmt.span,
                rule="T-Return",
            )

    # ------------------------------------------------------------------ expressions (Figure 5)

    def check_expression(
        self,
        expr: e.Expression,
        gamma: SecurityContext,
        labeler: TypeLabeler,
        pc: Label,
    ) -> Tuple[Optional[SecurityType], str]:
        """Type an expression; returns ``(security type, direction)``."""
        bottom = self._lattice.bottom
        if isinstance(expr, e.BoolLiteral):
            return SecurityType(SBool(), bottom), DIR_IN
        if isinstance(expr, e.IntLiteral):
            body: SecurityBody = SInt() if expr.width is None else SBit(expr.width)
            return SecurityType(body, bottom), DIR_IN
        if isinstance(expr, e.Var):
            sec_type = gamma.lookup(expr.name)
            if sec_type is None:
                # Unknown variables are the ordinary checker's problem.
                return None, DIR_IN
            return sec_type, DIR_INOUT
        if isinstance(expr, e.BinaryOp):
            return self._check_binary(expr, gamma, labeler, pc)
        if isinstance(expr, e.UnaryOp):
            operand_type, _ = self.check_expression(expr.operand, gamma, labeler, pc)
            if operand_type is None:
                return None, DIR_IN
            return operand_type.with_label(read_label(self._lattice, operand_type)), DIR_IN
        if isinstance(expr, e.RecordLiteral):
            fields = []
            for name, value in expr.fields:
                value_type, _ = self.check_expression(value, gamma, labeler, pc)
                if value_type is None:
                    return None, DIR_IN
                fields.append((name, value_type))
            return SecurityType(SRecord(tuple(fields)), bottom), DIR_IN
        if isinstance(expr, e.FieldAccess):
            return self._check_field_access(expr, gamma, labeler, pc)
        if isinstance(expr, e.Index):
            return self._check_index(expr, gamma, labeler, pc)
        if isinstance(expr, e.Call):
            if (
                isinstance(expr.callee, e.Var)
                and expr.callee.name in DECLASSIFY_FUNCTIONS
                and gamma.lookup(expr.callee.name) is None
            ):
                return self._check_declassify(expr, gamma, labeler, pc)
            return self._check_call(expr, gamma, labeler, pc)
        return None, DIR_IN

    # -- declassify / endorse (extension; off unless explicitly enabled) -------------------

    def _lower_to_bottom(self, sec_type: SecurityType) -> SecurityType:
        """The same type with every label replaced by ⊥ (a full release)."""
        bottom = self._lattice.bottom
        body = sec_type.body
        if isinstance(body, (SRecord, SHeader)):
            fields = tuple(
                (name, self._lower_to_bottom(field)) for name, field in body.fields
            )
            lowered: SecurityBody = (
                SRecord(fields) if isinstance(body, SRecord) else SHeader(fields)
            )
            return SecurityType(lowered, bottom)
        if isinstance(body, SStack):
            return SecurityType(
                SStack(self._lower_to_bottom(body.element), body.size), bottom
            )
        return SecurityType(body, bottom)

    def _check_declassify(
        self, expr: e.Call, gamma: SecurityContext, labeler: TypeLabeler, pc: Label
    ) -> Tuple[Optional[SecurityType], str]:
        primitive = expr.callee.name  # type: ignore[union-attr]
        if len(expr.arguments) != 1:
            self._emit(
                ViolationKind.TYPE_ERROR,
                f"{primitive} takes exactly one argument",
                expr.span,
                rule="T-Declassify",
            )
            return None, DIR_IN
        argument = expr.arguments[0]
        arg_type, _ = self.check_expression(argument, gamma, labeler, pc)
        if arg_type is None:
            return None, DIR_IN
        if not self._allow_declassification:
            self._emit(
                ViolationKind.DECLASSIFICATION,
                f"{primitive}({argument.describe()}) is not permitted: run the checker "
                "with declassification enabled (p4bid --allow-declassify) to accept "
                "audited releases",
                expr.span,
                rule="T-Declassify",
            )
            return arg_type, DIR_IN
        # Releases are only honoured in a public context: otherwise the fact
        # that the release happened would itself leak the guard.
        if not self._lattice.leq(pc, self._lattice.bottom):
            self._emit(
                ViolationKind.IMPLICIT_FLOW,
                f"{primitive} may not be used in a context of level {self._fmt(pc)}",
                expr.span,
                rule="T-Declassify",
            )
        if self._silent_depth == 0:
            self._declassifications.append(
                DeclassificationEvent(
                    primitive,
                    argument.describe(),
                    read_label(self._lattice, arg_type),
                    self._lattice.bottom,
                    expr.span,
                )
            )
        return self._lower_to_bottom(arg_type), DIR_IN

    # -- T-BinOp ----------------------------------------------------------------------

    def _check_binary(
        self, expr: e.BinaryOp, gamma: SecurityContext, labeler: TypeLabeler, pc: Label
    ) -> Tuple[Optional[SecurityType], str]:
        left_type, _ = self.check_expression(expr.left, gamma, labeler, pc)
        right_type, _ = self.check_expression(expr.right, gamma, labeler, pc)
        if left_type is None or right_type is None:
            return None, DIR_IN
        label = self._lattice.join(
            read_label(self._lattice, left_type), read_label(self._lattice, right_type)
        )
        result_body = self._binary_result_body(expr.op, left_type.body, right_type.body)
        return SecurityType(result_body, label), DIR_IN

    @staticmethod
    def _binary_result_body(
        op: str, left: SecurityBody, right: SecurityBody
    ) -> SecurityBody:
        if op in {"==", "!=", "<", ">", "<=", ">=", "&&", "||"}:
            return SBool()
        if isinstance(left, SBit):
            return left
        if isinstance(right, SBit):
            return right
        if isinstance(left, SInt) or isinstance(right, SInt):
            return SInt()
        return left

    # -- T-MemRec / T-MemHdr -------------------------------------------------------------

    def _check_field_access(
        self, expr: e.FieldAccess, gamma: SecurityContext, labeler: TypeLabeler, pc: Label
    ) -> Tuple[Optional[SecurityType], str]:
        target_type, direction = self.check_expression(expr.target, gamma, labeler, pc)
        if target_type is None:
            return None, DIR_IN
        body = target_type.body
        if not isinstance(body, (SRecord, SHeader)):
            return None, DIR_IN
        field_type = body.field_named(expr.field_name)
        if field_type is None:
            return None, DIR_IN
        return field_type, direction

    # -- T-Index ------------------------------------------------------------------------

    def _check_index(
        self, expr: e.Index, gamma: SecurityContext, labeler: TypeLabeler, pc: Label
    ) -> Tuple[Optional[SecurityType], str]:
        array_type, direction = self.check_expression(expr.array, gamma, labeler, pc)
        index_type, _ = self.check_expression(expr.index, gamma, labeler, pc)
        if array_type is None or not isinstance(array_type.body, SStack):
            return None, DIR_IN
        element = array_type.body.element
        if index_type is not None:
            index_label = read_label(self._lattice, index_type)
            if not self._lattice.leq(index_label, element.label):
                self._emit(
                    ViolationKind.EXPLICIT_FLOW,
                    f"index {expr.index.describe()!r} has label "
                    f"{self._fmt(index_label)}, which is not below the element label "
                    f"{self._fmt(element.label)}; the index would leak through the "
                    "selected element",
                    expr.span,
                    rule="T-Index",
                )
        return element, direction

    # -- T-Call --------------------------------------------------------------------------

    def _check_call(
        self, expr: e.Call, gamma: SecurityContext, labeler: TypeLabeler, pc: Label
    ) -> Tuple[Optional[SecurityType], str]:
        callee_type, _ = self.check_expression(expr.callee, gamma, labeler, pc)
        if callee_type is None:
            return None, DIR_IN
        if isinstance(callee_type.body, STable):
            # Table application in expression position; the ordinary checker
            # flags the position, here we just return unit.
            return SecurityType(SUnit(), self._lattice.bottom), DIR_IN
        if not isinstance(callee_type.body, SFunction):
            return None, DIR_IN
        fn = callee_type.body
        self._record_write(fn.pc_fn)
        if not self._lattice.leq(pc, fn.pc_fn):
            self._emit(
                ViolationKind.CALL_CONTEXT,
                f"{expr.callee.describe()!r} writes at level {self._fmt(fn.pc_fn)} but is "
                f"called in a context of level {self._fmt(pc)}; the call would leak the "
                "guard into the callee's writes",
                expr.span,
                rule="T-FnCall",
            )
        for argument, parameter in zip(expr.arguments, fn.parameters):
            arg_type, arg_dir = self.check_expression(argument, gamma, labeler, pc)
            if arg_type is None:
                continue
            self._check_argument_flow(
                argument, arg_type, arg_dir, parameter, expr.callee.describe()
            )
        return fn.return_type, DIR_IN

    def _check_argument_flow(
        self,
        argument: e.Expression,
        arg_type: SecurityType,
        arg_dir: str,
        parameter: SParam,
        callee: str,
    ) -> None:
        if not bodies_compatible(parameter.sec_type.body, arg_type.body):
            # Shape mismatch: the ordinary checker reports it.
            return
        if parameter.direction in (DIR_INOUT, "out"):
            self._record_write(write_label(self._lattice, arg_type))
            if arg_dir != DIR_INOUT:
                self._emit(
                    ViolationKind.TYPE_ERROR,
                    f"argument {argument.describe()!r} for {parameter.direction} parameter "
                    f"{parameter.name!r} of {callee!r} must be an l-value",
                    argument.span,
                    rule="T-Call",
                )
                return
            # T-SubType-In only applies to in-direction expressions: inout
            # arguments must carry exactly the parameter's labels.
            if not labels_equal(self._lattice, arg_type, parameter.sec_type):
                self._emit(
                    ViolationKind.ARGUMENT_FLOW,
                    f"inout argument {argument.describe()!r} (label "
                    f"{self._fmt(read_label(self._lattice, arg_type))}) does not match the "
                    f"label of parameter {parameter.name!r} "
                    f"({self._fmt(read_label(self._lattice, parameter.sec_type))}); "
                    "relabelling writable arguments is unsound",
                    argument.span,
                    rule="T-SubType-In",
                )
            return
        # in-direction parameter: subsumption allows raising the label.
        if not flow_allowed(self._lattice, arg_type, parameter.sec_type):
            self._emit(
                ViolationKind.ARGUMENT_FLOW,
                f"argument {argument.describe()!r} has label "
                f"{self._fmt(read_label(self._lattice, arg_type))}, which may not flow into "
                f"parameter {parameter.name!r} of {callee!r} (label "
                f"{self._fmt(read_label(self._lattice, parameter.sec_type))})",
                argument.span,
                rule="T-Call",
            )


def check_ifc(
    program: Program,
    lattice: Optional[Lattice] = None,
    *,
    allow_declassification: bool = False,
) -> IfcCheckResult:
    """Run the IFC checker over ``program`` under ``lattice`` (default two-point)."""
    return IfcChecker(
        lattice, allow_declassification=allow_declassification
    ).check_program(program)
