"""The IFC type checker: Figures 5 (expressions), 6 (statements), 7 (declarations).

The checker walks the same AST as the ordinary type checker but tracks a
security type ``⟨τ, χ⟩`` for every expression and a program-counter label
``pc`` for every statement.  Violations are collected as
:class:`~repro.ifc.errors.IfcDiagnostic` values rather than raised, so a
single run reports every leak in a program (the behaviour of the P4BID
tool built on p4c).

Since the ``repro.flow`` refactor the Figure 5–7 rule walk itself lives in
:class:`~repro.flow.analysis.FlowAnalysis`; :class:`IfcChecker` is a thin
façade that runs the shared traversal with the
:class:`~repro.flow.concrete.ConcreteAlgebra` (carrier: concrete lattice
labels, ``⊑`` evaluated immediately).  The constraint generator of
:mod:`repro.inference` runs the *same* traversal with a symbolic algebra,
so the two interpretations cannot drift.

Write-effect inference
----------------------

The typing rules take the function bound ``pc_fn`` and the table bound
``pc_tbl`` as given (they appear in the types).  An implementation must
*infer* them: ``pc_fn`` is the greatest lower bound of the labels the
function body writes (assignment targets, bounds of callees, ⊥ for
``exit``/``return`` which only type under a ⊥ pc), and ``pc_tbl`` is the
meet of the bounds of the table's actions.  T-TblDecl's side conditions
``χ_k ⊑ pc_fn_j`` then become checkable constraints between the inferred
bounds and the labels of the table keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ifc.context import SecurityContext
from repro.ifc.convert import TypeLabeler
from repro.ifc.declassify import DeclassificationEvent
from repro.ifc.errors import IfcDiagnostic, IfcError, ViolationKind
# DIR_IN / DIR_INOUT / write_label live with the other security-type
# helpers; re-exported here because they have always been importable from
# the checker module.
from repro.ifc.security_types import (  # noqa: F401  (re-exports)
    DIR_IN,
    DIR_INOUT,
    SecurityType,
    write_label,
)
from repro.lattice.base import Label, Lattice
from repro.lattice.two_point import TwoPointLattice
from repro.syntax import declarations as d
from repro.syntax import expressions as e
from repro.syntax import statements as s
from repro.syntax.program import Program


@dataclass
class IfcCheckResult:
    """Outcome of IFC-checking a program."""

    program: Program
    lattice: Lattice
    diagnostics: List[IfcDiagnostic] = field(default_factory=list)
    #: Inferred write bounds: action name -> pc_fn.
    function_bounds: Dict[str, Label] = field(default_factory=dict)
    #: Inferred table bounds: table name -> pc_tbl.
    table_bounds: Dict[str, Label] = field(default_factory=dict)
    #: Audit trail of every honoured ``declassify``/``endorse`` use.
    declassifications: List[DeclassificationEvent] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def violations(self, kind: ViolationKind) -> List[IfcDiagnostic]:
        return [diag for diag in self.diagnostics if diag.kind == kind]

    def raise_on_error(self) -> "IfcCheckResult":
        if self.diagnostics:
            raise IfcError(self.diagnostics)
        return self


class IfcChecker:
    """Checks a program against the security type system of Section 4.

    A façade over the shared Figure 5–7 traversal
    (:class:`repro.flow.analysis.FlowAnalysis`) instantiated with the
    concrete label algebra.  The ``check_*`` methods mirror the typing
    judgements and remain callable individually (e.g. for typing a single
    expression in tests); ``check_program`` starts from a fresh algebra so
    a checker instance can be reused.
    """

    def __init__(
        self,
        lattice: Optional[Lattice] = None,
        *,
        allow_declassification: bool = False,
    ) -> None:
        self._lattice = lattice or TwoPointLattice()
        self._allow_declassification = allow_declassification
        self._fresh()

    def _fresh(self) -> None:
        from repro.flow.analysis import FlowAnalysis
        from repro.flow.concrete import ConcreteAlgebra

        self._algebra = ConcreteAlgebra(
            self._lattice, allow_declassification=self._allow_declassification
        )
        self._analysis = FlowAnalysis(self._algebra)

    @property
    def lattice(self) -> Lattice:
        return self._lattice

    @property
    def _diagnostics(self) -> List[IfcDiagnostic]:
        """The diagnostics collected so far (shared with the algebra)."""
        return self._algebra.diagnostics

    # ------------------------------------------------------------------ entry points

    def check_program(self, program: Program) -> IfcCheckResult:
        self._fresh()
        self._analysis.run(program)
        return IfcCheckResult(
            program,
            self._lattice,
            list(self._algebra.diagnostics),
            dict(self._analysis.function_bounds),
            dict(self._analysis.table_bounds),
            list(self._algebra.declassifications),
        )

    def check_control(
        self,
        control: d.ControlDecl,
        gamma: SecurityContext,
        labeler: TypeLabeler,
    ) -> None:
        self._analysis.check_control(control, gamma, labeler)

    def check_declaration(
        self,
        decl: d.Declaration,
        gamma: SecurityContext,
        labeler: TypeLabeler,
        pc: Label,
    ) -> SecurityContext:
        return self._analysis.check_declaration(decl, gamma, labeler, pc)

    def check_statement(
        self,
        stmt: s.Statement,
        gamma: SecurityContext,
        labeler: TypeLabeler,
        pc: Label,
    ) -> SecurityContext:
        return self._analysis.check_statement(stmt, gamma, labeler, pc)

    def check_expression(
        self,
        expr: e.Expression,
        gamma: SecurityContext,
        labeler: TypeLabeler,
        pc: Label,
    ) -> Tuple[Optional[SecurityType], str]:
        """Type an expression; returns ``(security type, direction)``."""
        return self._analysis.check_expression(expr, gamma, labeler, pc)


def check_ifc(
    program: Program,
    lattice: Optional[Lattice] = None,
    *,
    allow_declassification: bool = False,
) -> IfcCheckResult:
    """Run the IFC checker over ``program`` under ``lattice`` (default two-point)."""
    return IfcChecker(
        lattice, allow_declassification=allow_declassification
    ).check_program(program)
