"""Typing contexts for the security type system.

``SecurityContext`` is Γ mapping variables to security types (with the
special ``return`` binding of T-FuncDecl / T-Return), and
``SecurityTypeDefs`` is Δ mapping declared type names to their *syntactic*
annotated types; :class:`repro.ifc.convert.TypeLabeler` resolves those into
security types on demand, which implements the unfolding judgement
``Δ ⊢ τ ⇝ τ'`` for the security system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from repro.ifc.security_types import SecurityType
from repro.syntax.types import AnnotatedType


@dataclass
class SecurityTypeDefs:
    """The security type-definition context Δ."""

    _definitions: Dict[str, AnnotatedType] = field(default_factory=dict)
    _parent: Optional["SecurityTypeDefs"] = None

    def define(self, name: str, ty: AnnotatedType) -> None:
        self._definitions[name] = ty

    def lookup(self, name: str) -> Optional[AnnotatedType]:
        if name in self._definitions:
            return self._definitions[name]
        if self._parent is not None:
            return self._parent.lookup(name)
        return None

    def __contains__(self, name: str) -> bool:
        return self.lookup(name) is not None

    def child(self) -> "SecurityTypeDefs":
        return SecurityTypeDefs(_parent=self)

    def names(self) -> Iterator[str]:
        yield from self._definitions
        if self._parent is not None:
            yield from self._parent.names()


@dataclass
class SecurityContext:
    """The security typing context Γ (variables to security types)."""

    _bindings: Dict[str, SecurityType] = field(default_factory=dict)
    _parent: Optional["SecurityContext"] = None

    RETURN_KEY = "return"

    def bind(self, name: str, sec_type: SecurityType) -> None:
        self._bindings[name] = sec_type

    def lookup(self, name: str) -> Optional[SecurityType]:
        if name in self._bindings:
            return self._bindings[name]
        if self._parent is not None:
            return self._parent.lookup(name)
        return None

    def __contains__(self, name: str) -> bool:
        return self.lookup(name) is not None

    def child(self) -> "SecurityContext":
        return SecurityContext(_parent=self)

    def names(self) -> Iterator[str]:
        seen = set()
        scope: Optional[SecurityContext] = self
        while scope is not None:
            for name in scope._bindings:
                if name not in seen:
                    seen.add(name)
                    yield name
            scope = scope._parent
