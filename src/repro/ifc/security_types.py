"""Security types ``⟨τ, χ⟩`` (Figure 4).

A :class:`SecurityType` pairs a *security type body* with an outer label.
Following the paper, composite types (records, headers, stacks, tables,
functions) keep their outer label at ``⊥`` and carry labels on their
components: the fields of a record/header each have their own security
type, a function type records the ``pc_fn`` write bound on its arrow, and
a table type records ``pc_tbl``.

Bodies are immutable dataclasses so security types can be compared
structurally, hashed, and shared freely between the checker and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.lattice.base import Label, Lattice


@dataclass(frozen=True)
class SecurityBody:
    """Base class for the type component ``τ`` of a security type."""

    def describe(self) -> str:
        return type(self).__name__

    def is_base(self) -> bool:
        return True


@dataclass(frozen=True)
class SBool(SecurityBody):
    def describe(self) -> str:
        return "bool"


@dataclass(frozen=True)
class SInt(SecurityBody):
    def describe(self) -> str:
        return "int"


@dataclass(frozen=True)
class SBit(SecurityBody):
    width: int = 32

    def describe(self) -> str:
        return f"bit<{self.width}>"


@dataclass(frozen=True)
class SUnit(SecurityBody):
    def describe(self) -> str:
        return "unit"


@dataclass(frozen=True)
class SMatchKind(SecurityBody):
    def describe(self) -> str:
        return "match_kind"


@dataclass(frozen=True)
class SRecord(SecurityBody):
    """Record types ``{ f : ⟨τ, χ⟩ }`` with per-field security types."""

    fields: Tuple[Tuple[str, "SecurityType"], ...]

    def field_named(self, name: str) -> Optional["SecurityType"]:
        for field_name, sec_type in self.fields:
            if field_name == name:
                return sec_type
        return None

    def field_map(self) -> Dict[str, "SecurityType"]:
        return dict(self.fields)

    def describe(self) -> str:
        inner = ", ".join(f"{name}: {st.describe()}" for name, st in self.fields)
        return "struct {" + inner + "}"


@dataclass(frozen=True)
class SHeader(SecurityBody):
    """Header types ``header { f : ⟨τ, χ⟩ }``."""

    fields: Tuple[Tuple[str, "SecurityType"], ...]

    def field_named(self, name: str) -> Optional["SecurityType"]:
        for field_name, sec_type in self.fields:
            if field_name == name:
                return sec_type
        return None

    def field_map(self) -> Dict[str, "SecurityType"]:
        return dict(self.fields)

    def describe(self) -> str:
        inner = ", ".join(f"{name}: {st.describe()}" for name, st in self.fields)
        return "header {" + inner + "}"


@dataclass(frozen=True)
class SStack(SecurityBody):
    """Header stacks ``⟨τ, χ⟩[n]``."""

    element: "SecurityType"
    size: int

    def describe(self) -> str:
        return f"{self.element.describe()}[{self.size}]"


@dataclass(frozen=True)
class STable(SecurityBody):
    """Table types ``table(pc_tbl)``: the write bound of the table."""

    pc_tbl: Label

    def is_base(self) -> bool:
        return False

    def describe(self) -> str:
        return f"table({self.pc_tbl})"


@dataclass(frozen=True)
class SParam:
    """A function parameter ``d ⟨τ, χ⟩`` with its name for diagnostics."""

    direction: str
    sec_type: "SecurityType"
    name: str = ""
    control_plane: bool = False

    def describe(self) -> str:
        prefix = f"{self.direction} " if self.direction else ""
        return f"{prefix}{self.sec_type.describe()}"


@dataclass(frozen=True)
class SFunction(SecurityBody):
    """Function (action) types ``d ⟨τ, χ⟩ --pc_fn--> ⟨τ_ret, χ_ret⟩``."""

    parameters: Tuple[SParam, ...]
    pc_fn: Label
    return_type: "SecurityType"

    def is_base(self) -> bool:
        return False

    def directional_parameters(self) -> Tuple[SParam, ...]:
        return tuple(p for p in self.parameters if not p.control_plane)

    def control_plane_parameters(self) -> Tuple[SParam, ...]:
        return tuple(p for p in self.parameters if p.control_plane)

    def describe(self) -> str:
        params = ", ".join(p.describe() for p in self.parameters)
        return f"({params}) --{self.pc_fn}--> {self.return_type.describe()}"


@dataclass(frozen=True)
class SecurityType:
    """A security type ``⟨τ, χ⟩``: a body plus its outer label."""

    body: SecurityBody
    label: Label

    def with_label(self, label: Label) -> "SecurityType":
        return SecurityType(self.body, label)

    def describe(self) -> str:
        return f"<{self.body.describe()}, {self.label}>"

    def is_base(self) -> bool:
        return self.body.is_base()


# ---------------------------------------------------------------------------
# structural helpers used by the checker

#: Expression directionality, as in the ordinary system.
DIR_IN = "in"
DIR_INOUT = "inout"


def bodies_compatible(expected: SecurityBody, actual: SecurityBody) -> bool:
    """Structural compatibility of type bodies, ignoring labels.

    Mirrors the ordinary compatibility relation: ``int`` literals fit any
    ``bit<n>``, records/headers match field-by-field, stacks match on size
    and element.
    """
    if isinstance(expected, SBool) and isinstance(actual, SBool):
        return True
    if isinstance(expected, SUnit) and isinstance(actual, SUnit):
        return True
    if isinstance(expected, SMatchKind) and isinstance(actual, SMatchKind):
        return True
    if isinstance(expected, SInt) and isinstance(actual, SInt):
        return True
    if isinstance(expected, SBit):
        if isinstance(actual, SBit):
            return expected.width == actual.width
        return isinstance(actual, SInt)
    if isinstance(expected, SInt) and isinstance(actual, SBit):
        return True
    if isinstance(expected, (SRecord, SHeader)) and type(expected) is type(actual):
        if len(expected.fields) != len(actual.fields):
            return False
        actual_map = actual.field_map()
        for name, exp_field in expected.fields:
            act_field = actual_map.get(name)
            if act_field is None:
                return False
            if not bodies_compatible(exp_field.body, act_field.body):
                return False
        return True
    if isinstance(expected, SStack) and isinstance(actual, SStack):
        return expected.size == actual.size and bodies_compatible(
            expected.element.body, actual.element.body
        )
    return False


def flow_allowed(
    lattice: Lattice, source: SecurityType, destination: SecurityType
) -> bool:
    """Whether a value of ``source`` may flow into ``destination``.

    Scalars require ``χ_src ⊑ χ_dst``; composites require the flow
    field-wise (and element-wise for stacks).  This is the relation used by
    T-Assign and for ``in``-direction argument passing (where subsumption
    T-SubType-In permits raising the label).
    """
    src_body, dst_body = source.body, destination.body
    if isinstance(dst_body, (SRecord, SHeader)) and type(src_body) is type(dst_body):
        src_map = src_body.field_map()
        for name, dst_field in dst_body.fields:
            src_field = src_map.get(name)
            if src_field is None:
                return False
            if not flow_allowed(lattice, src_field, dst_field):
                return False
        return True
    if isinstance(dst_body, SStack) and isinstance(src_body, SStack):
        if dst_body.size != src_body.size:
            return False
        return flow_allowed(lattice, src_body.element, dst_body.element)
    return lattice.leq(source.label, destination.label)


def labels_equal(
    lattice: Lattice, left: SecurityType, right: SecurityType
) -> bool:
    """Label equality (both directions of ⊑), recursively for composites.

    Used for ``inout`` argument passing, where T-SubType-In forbids
    relabelling.
    """
    return flow_allowed(lattice, left, right) and flow_allowed(lattice, right, left)


def join_into(lattice: Lattice, sec_type: SecurityType, label: Label) -> SecurityType:
    """Raise every label inside ``sec_type`` by joining with ``label``.

    Used when a composite type is annotated at a use site (e.g.
    ``<alice_t, A> alice_data``): the annotation distributes over the
    fields, keeping the outer label at ⊥ as required by Figure 4.
    """
    body = sec_type.body
    if isinstance(body, (SRecord, SHeader)):
        fields = tuple(
            (name, join_into(lattice, field, label)) for name, field in body.fields
        )
        new_body: SecurityBody = (
            SRecord(fields) if isinstance(body, SRecord) else SHeader(fields)
        )
        return SecurityType(new_body, sec_type.label)
    if isinstance(body, SStack):
        return SecurityType(
            SStack(join_into(lattice, body.element, label), body.size), sec_type.label
        )
    return SecurityType(body, lattice.join(sec_type.label, label))


def write_label(lattice: Lattice, sec_type: SecurityType) -> Label:
    """The meet of every label in ``sec_type``.

    ``pc ⊑ write_label(t)`` holds exactly when ``pc`` is below the label of
    every component of ``t``, which is the side condition T-Assign imposes
    on writes to composite l-values.
    """
    body = sec_type.body
    if isinstance(body, (SRecord, SHeader)):
        return lattice.meet_all(
            [write_label(lattice, field) for _, field in body.fields] or [sec_type.label]
        )
    if isinstance(body, SStack):
        return write_label(lattice, body.element)
    return sec_type.label


def lower_labels(sec_type: SecurityType, bottom: Label) -> SecurityType:
    """``sec_type`` with every label replaced by ``bottom``.

    Purely structural (no lattice needed), so it serves both readings of a
    full declassification release: the concrete checker passes the
    lattice's ⊥, the symbolic generator the constant-⊥ term.
    """
    body = sec_type.body
    if isinstance(body, (SRecord, SHeader)):
        fields = tuple(
            (name, lower_labels(field, bottom)) for name, field in body.fields
        )
        lowered: SecurityBody = (
            SRecord(fields) if isinstance(body, SRecord) else SHeader(fields)
        )
        return SecurityType(lowered, bottom)
    if isinstance(body, SStack):
        return SecurityType(
            SStack(lower_labels(body.element, bottom), body.size), bottom
        )
    return SecurityType(body, bottom)


def read_label(lattice: Lattice, sec_type: SecurityType) -> Label:
    """The join of every label occurring in ``sec_type``.

    This is the label an adversary learns by observing a whole value of
    this type; used when a composite expression appears where a scalar
    label is needed (e.g. a whole header used as a table key).
    """
    body = sec_type.body
    if isinstance(body, (SRecord, SHeader)):
        return lattice.join_all(
            [sec_type.label] + [read_label(lattice, field) for _, field in body.fields]
        )
    if isinstance(body, SStack):
        return lattice.join(sec_type.label, read_label(lattice, body.element))
    return sec_type.label
