"""The P4BID information-flow control type system (Section 4).

This package is the paper's core contribution: security types ``⟨τ, χ⟩``
over a lattice of labels, pc-indexed typing judgements for expressions,
statements, and declarations (Figures 5-7), and a checker that reports
explicit and implicit information-flow violations with source locations.
"""

from repro.ifc.errors import IfcDiagnostic, IfcError, ViolationKind
from repro.ifc.security_types import (
    SecurityType,
    SBool,
    SInt,
    SBit,
    SUnit,
    SRecord,
    SHeader,
    SStack,
    SMatchKind,
    STable,
    SFunction,
    SParam,
)
from repro.ifc.context import SecurityContext, SecurityTypeDefs
from repro.ifc.convert import TypeLabeler, LabelResolutionError
from repro.ifc.declassify import DECLASSIFY_FUNCTIONS, DeclassificationEvent
from repro.ifc.checker import IfcChecker, IfcCheckResult, check_ifc

__all__ = [
    "IfcDiagnostic",
    "IfcError",
    "ViolationKind",
    "SecurityType",
    "SBool",
    "SInt",
    "SBit",
    "SUnit",
    "SRecord",
    "SHeader",
    "SStack",
    "SMatchKind",
    "STable",
    "SFunction",
    "SParam",
    "SecurityContext",
    "SecurityTypeDefs",
    "TypeLabeler",
    "LabelResolutionError",
    "DECLASSIFY_FUNCTIONS",
    "DeclassificationEvent",
    "IfcChecker",
    "IfcCheckResult",
    "check_ifc",
]
