"""Declassification and endorsement (an extension beyond the paper).

Pure non-interference is sometimes too strict: real policies occasionally
need to *release* a specific piece of secret data (e.g. the one bit "was
this request served from the cache?") or to *endorse* an untrusted value
after validating it.  The standard escape hatch in the IFC literature is a
pair of explicit primitives:

* ``declassify(e)`` -- the value of ``e`` relabelled to ⊥ (confidentiality
  release),
* ``endorse(e)`` -- the same operation read under the integrity
  interpretation of labels.

Both are identity functions at run time; statically they are the *only*
places where a label may move down the lattice, and every use is recorded
in the check result so a reviewer can audit exactly what a program
releases.  The checker only honours them when explicitly enabled
(``IfcChecker(allow_declassification=True)`` or ``p4bid --allow-declassify``);
otherwise they are reported as violations, preserving the paper's strict
non-interference by default.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lattice.base import Label
from repro.syntax.source import SourceSpan

#: The callee names the checker and interpreter treat as release points.
DECLASSIFY_FUNCTIONS = frozenset({"declassify", "endorse"})


@dataclass(frozen=True, slots=True)
class DeclassificationEvent:
    """One audited use of ``declassify``/``endorse``."""

    #: Which primitive was used (``declassify`` or ``endorse``).
    primitive: str
    #: Source rendering of the released expression.
    expression: str
    #: The label the expression had before the release.
    from_label: Label
    #: The label it has afterwards (the lattice bottom).
    to_label: Label
    #: Where the release happens.
    span: SourceSpan

    def __str__(self) -> str:
        return (
            f"{self.span}: {self.primitive}({self.expression}): "
            f"{self.from_label} -> {self.to_label}"
        )
