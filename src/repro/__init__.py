"""P4BID reproduction: information-flow control for Core P4.

This package reproduces the system described in "P4BID: Information Flow
Control in P4" (PLDI 2022).  It provides:

* ``repro.lattice`` -- security lattices (two-point, diamond, product, ...).
* ``repro.syntax`` -- the Core P4 abstract syntax (Figure 1 / Figure 3).
* ``repro.frontend`` -- a lexer and parser for an annotated P4 dialect.
* ``repro.typechecker`` -- the ordinary Core P4 type system.
* ``repro.ifc`` -- the security (IFC) type system, the paper's contribution.
* ``repro.inference`` -- constraint-based security-label inference for
  partially annotated programs (missing / ``infer``-marked annotations are
  solved to their least labels, then re-verified by ``repro.ifc``).
* ``repro.semantics`` -- a big-step interpreter for the Core P4 fragment.
* ``repro.ni`` -- an empirical non-interference harness (Definition 4.2).
* ``repro.tool`` -- the P4BID command-line checker pipeline.
* ``repro.casestudies`` -- the five evaluation programs from Section 5.

Quickstart::

    from repro import check_source
    report = check_source(program_text)
    if report.ok:
        print("program is non-interfering (well-typed)")
    else:
        for diag in report.diagnostics:
            print(diag)

Partially annotated programs are checked the same way with ``infer=True``
(or ``p4bid --infer`` on the command line)::

    report = check_source(program_text, infer=True)
    for slot in report.inference_result.inferred:
        print(slot.describe(report.inference_result.lattice))
"""

from repro.version import __version__
from repro.inference.engine import InferenceResult, infer_labels
from repro.tool.pipeline import CheckReport, check_program, check_source

__all__ = [
    "__version__",
    "CheckReport",
    "InferenceResult",
    "check_program",
    "check_source",
    "infer_labels",
]
