"""The P4BID checking pipeline.

Mirrors how the paper's tool is built on p4c: a program is parsed, checked
against the ordinary Core P4 type system (what plain p4c does), and then --
when security checking is requested -- against the IFC type system of
Section 4.  With ``infer=True`` a label-inference phase
(:mod:`repro.inference`) runs between the two: missing annotations are
solved for, and the IFC phase re-verifies the *elaborated* program, so the
security verdict still rests on the unmodified Figure 5–7 checker.

Every phase runs inside a :mod:`repro.telemetry` span (``phase.parse``,
``phase.core``, ``phase.infer``, ``phase.ifc``).  When the ambient
recorder is a :class:`~repro.telemetry.TraceRecorder` (``p4bid --trace``,
or :func:`~repro.telemetry.use_recorder` around the call) the pipeline
records into it, and the solver's own fine-grained spans nest underneath;
otherwise a *private* recorder captures just the coarse phase spans, so
the disabled default pays a handful of span objects per program and
nothing per edge or rule site.  Either way :class:`PhaseTiming` -- what
the Table 1 benchmark and the reports consume -- is a **projection of the
span tree**, not a parallel bookkeeping path.

Since the session workspace landed, :func:`check_program` and
:func:`check_source` are thin facades over a one-shot
:class:`~repro.workspace.Workspace`: every phase above actually runs
inside the workspace's regeneration/solve machinery, which a one-shot
check simply never re-enters.  Long-lived callers (``p4bid serve``,
editor integrations) hold the workspace open instead and pay only each
edit's cone on re-checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.ifc.checker import IfcCheckResult, check_ifc
from repro.ifc.errors import IfcDiagnostic
from repro.inference.engine import InferenceResult
from repro.lattice.base import Lattice
from repro.lattice.registry import get_lattice
from repro.lattice.two_point import TwoPointLattice
from repro.syntax.program import Program
from repro.telemetry.recorder import (
    Recorder,
    Span,
    TraceRecorder,
    current_recorder,
)
from repro.typechecker.checker import CoreCheckResult
from repro.typechecker.errors import TypeDiagnostic
from repro.workspace.session import Workspace

if False:  # pragma: no cover - typing-only imports (cycle-free at runtime)
    from repro.analysis.lints import ReleasedFlow
    from repro.analysis.rules import Finding

#: Span names of the solver intervals that constitute the "solve" sub-phase.
_SOLVE_SPANS = ("solver.solve", "solver.resolve", "solver.rebase")


@dataclass
class PhaseTiming:
    """Wall-clock duration of each pipeline phase, in milliseconds.

    Derived from the pipeline's span tree (:meth:`from_spans`).  The
    top-level phases -- :data:`TOP_LEVEL` -- partition the pipeline;
    :data:`SUB_PHASES` records containment *explicitly*: ``solve`` is a
    sub-phase of ``infer`` (the constraint-solving interval inside label
    inference), so :attr:`total_ms` sums only the top-level phases and can
    never double-count a nested interval.
    """

    #: The phases that partition a pipeline run end to end.
    TOP_LEVEL: ClassVar[Tuple[str, ...]] = ("parse", "core", "infer", "ifc", "analysis")
    #: Explicit sub-phase nesting: sub-phase -> the phase containing it.
    SUB_PHASES: ClassVar[Mapping[str, str]] = {"solve": "infer"}

    parse_ms: float = 0.0
    core_ms: float = 0.0
    infer_ms: float = 0.0
    ifc_ms: float = 0.0
    #: The static-analysis phase (``--lint`` / ``--explain-flows``); zero
    #: unless analysis was requested.
    analysis_ms: float = 0.0
    #: The constraint-solving sub-phase of ``infer`` (see
    #: :data:`SUB_PHASES`); excluded from :attr:`total_ms` by construction.
    solve_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        """End-to-end duration: the sum of the top-level phases only."""
        return sum(self.phase_ms(phase) for phase in self.TOP_LEVEL)

    def phase_ms(self, phase: str) -> float:
        """Duration of one named (top-level or sub-) phase."""
        return getattr(self, f"{phase}_ms")

    @classmethod
    def from_spans(cls, spans: Iterable[Span]) -> "PhaseTiming":
        """Project a span sequence onto the phase fields.

        ``phase.<name>`` spans accumulate into their phase; the solver
        spans (:data:`_SOLVE_SPANS`) accumulate into the ``solve``
        sub-phase.  Multiple spans of one phase (re-runs) sum.
        """
        timing = cls()
        for span in spans:
            if not span.closed:
                continue
            if span.name.startswith("phase."):
                phase = span.name[len("phase.") :]
                if phase in cls.TOP_LEVEL:
                    setattr(timing, f"{phase}_ms", timing.phase_ms(phase) + span.duration_ms)
            elif span.name in _SOLVE_SPANS:
                timing.solve_ms += span.duration_ms
        return timing

    def as_dict(self) -> Dict[str, Any]:
        """Nested projection: each top-level phase with its sub-phases."""
        tree: Dict[str, Any] = {}
        for phase in self.TOP_LEVEL:
            tree[phase] = {"ms": self.phase_ms(phase)}
        for sub, parent in self.SUB_PHASES.items():
            tree[parent].setdefault("sub_phases", {})[sub] = {"ms": self.phase_ms(sub)}
        tree["total_ms"] = self.total_ms
        return tree


@dataclass
class AnalysisOutcome:
    """What the static-analysis phase produced for one program.

    ``findings`` are the lint results (:mod:`repro.analysis.lints`);
    ``released_flows`` are the ``--explain-flows`` audit paths, one per
    declassify-crossing source→sink flow.
    """

    findings: List["Finding"] = field(default_factory=list)
    released_flows: List["ReleasedFlow"] = field(default_factory=list)

    @property
    def worst_severity(self) -> Optional[str]:
        order = {"note": 0, "warning": 1, "error": 2}
        worst = None
        for finding in self.findings:
            level = finding.severity.value
            if worst is None or order[level] > order[worst]:
                worst = level
        return worst


@dataclass
class CheckReport:
    """The outcome of running the P4BID pipeline over one program."""

    name: str
    program: Optional[Program] = None
    parse_error: Optional[str] = None
    core_result: Optional[CoreCheckResult] = None
    inference_result: Optional[InferenceResult] = None
    ifc_result: Optional[IfcCheckResult] = None
    #: Populated when the pipeline ran with ``lint=True`` or
    #: ``explain_released_flows=True``.
    analysis: Optional[AnalysisOutcome] = None
    timing: PhaseTiming = field(default_factory=PhaseTiming)
    lattice_name: str = "two-point"
    #: The recorder the pipeline's phase spans went to: the ambient
    #: :class:`~repro.telemetry.TraceRecorder` when one was installed, or
    #: the pipeline's private phase-level recorder otherwise.  ``timing``
    #: is a projection of its spans.
    trace: Optional[TraceRecorder] = None

    @property
    def core_diagnostics(self) -> List[TypeDiagnostic]:
        return list(self.core_result.diagnostics) if self.core_result else []

    @property
    def inference_diagnostics(self) -> List[IfcDiagnostic]:
        return list(self.inference_result.diagnostics) if self.inference_result else []

    @property
    def ifc_diagnostics(self) -> List[IfcDiagnostic]:
        return list(self.ifc_result.diagnostics) if self.ifc_result else []

    @property
    def diagnostics(self) -> List[Union[TypeDiagnostic, IfcDiagnostic]]:
        return [
            *self.core_diagnostics,
            *self.inference_diagnostics,
            *self.ifc_diagnostics,
        ]

    @property
    def parsed(self) -> bool:
        return self.parse_error is None and self.program is not None

    @property
    def checked_program(self) -> Optional[Program]:
        """The program the IFC verdict is about (elaborated when inferred)."""
        if self.inference_result is not None and self.inference_result.ok:
            return self.inference_result.elaborated
        return self.program

    @property
    def core_ok(self) -> bool:
        return self.parsed and not self.core_diagnostics

    @property
    def ok(self) -> bool:
        """Whether the program parsed and passed every requested check."""
        return self.parsed and not self.diagnostics


def _resolve_lattice(lattice: Union[Lattice, str, None]) -> Lattice:
    if lattice is None:
        return TwoPointLattice()
    if isinstance(lattice, str):
        return get_lattice(lattice)
    return lattice


def _pipeline_recorder(recorder: Optional[Recorder]) -> TraceRecorder:
    """The recorder the pipeline's phase spans go to.

    An explicitly passed or ambient :class:`TraceRecorder` is used as-is
    (fine-grained solver spans from the layers below then share the same
    tree).  Anything else -- the no-op default, or a custom metrics-only
    recorder -- gets a fresh *private* recorder: phase timing still derives
    from spans, but the hot paths below continue to see the ambient
    recorder and stay no-op.
    """
    ambient = recorder if recorder is not None else current_recorder()
    if isinstance(ambient, TraceRecorder):
        return ambient
    return TraceRecorder()


def _run_phases(
    report: CheckReport,
    workspace: Workspace,
    recorder: TraceRecorder,
    *,
    include_ifc: bool,
    infer: bool,
    lint: bool = False,
    explain_released_flows: bool = False,
) -> None:
    """The core → (infer) → ifc → (analysis) phases over a parsed workspace."""
    lattice = workspace.lattice
    with recorder.span("phase.core"):
        report.core_result = workspace.core()

    if not include_ifc:
        return
    target: Optional[Program] = workspace.program
    if infer:
        with recorder.span("phase.infer") as infer_span:
            report.inference_result = workspace.infer()
        stats = report.inference_result.solution.stats
        solver_spans_recorded = any(
            span.name in _SOLVE_SPANS and span.sid > infer_span.sid
            for span in recorder.spans
        )
        if stats is not None and not solver_spans_recorded:
            # The fine-grained recorder was not installed; project the
            # solver's own measurement into the tree so ``solve`` is still
            # an explicit child of ``infer`` in every trace.
            recorder.add_span(
                "solver.solve", stats.solve_ms, parent=infer_span, projected=True
            )
        target = (
            report.inference_result.elaborated
            if report.inference_result.ok
            else None
        )
    if target is not None:
        with recorder.span("phase.ifc", recheck=infer):
            report.ifc_result = check_ifc(
                target,
                lattice,
                allow_declassification=workspace.allow_declassification,
            )
    if lint or explain_released_flows:
        # Analyses run over the *original* program: annotation lints reason
        # about what the user wrote, not what elaboration filled in.
        from repro.analysis import explain_flows as explain_released

        outcome = AnalysisOutcome()
        with recorder.span("phase.analysis", lint=lint):
            if lint:
                outcome.findings = workspace.lint()
            if explain_released_flows and workspace.allow_declassification:
                outcome.released_flows = explain_released(workspace.program, lattice)
        report.analysis = outcome


def check_workspace(
    workspace: Workspace,
    *,
    include_ifc: bool = True,
    infer: bool = False,
    lint: bool = False,
    explain_released_flows: bool = False,
    name: Optional[str] = None,
    recorder: Optional[Recorder] = None,
) -> CheckReport:
    """Run the pipeline phases over an (already opened) workspace.

    This is the report engine shared by :func:`check_source` /
    :func:`check_program` (which build a throwaway workspace) and the
    JSON-RPC server (which keeps one warm): the phases read the
    workspace's cached state, so over a warm workspace only what the
    last edit invalidated is recomputed.
    """
    if infer and not include_ifc:
        raise ValueError(
            "infer=True requires the security pass; inference without the "
            "IFC re-check has no verdict to report (drop include_ifc=False)"
        )
    report = CheckReport(
        name or workspace.display_name, lattice_name=workspace.lattice.name
    )
    rec = _pipeline_recorder(recorder)
    first_span = len(rec.spans)
    with rec.span("pipeline.check", program=report.name, lattice=workspace.lattice.name):
        report.parse_error = workspace.parse_error
        if workspace.program is not None:
            report.program = workspace.program
            _run_phases(
                report,
                workspace,
                rec,
                include_ifc=include_ifc,
                infer=infer,
                lint=lint,
                explain_released_flows=explain_released_flows,
            )
            # Re-generation assembles the revision from cached declaration
            # nodes; the report must describe that assembled program.
            report.program = workspace.program
    report.timing = PhaseTiming.from_spans(rec.spans[first_span:])
    report.trace = rec
    return report


def check_program(
    program: Program,
    lattice: Union[Lattice, str, None] = None,
    *,
    include_ifc: bool = True,
    infer: bool = False,
    allow_declassification: bool = False,
    presolve: bool = False,
    backend: str = "graph",
    solver_workers: int = 1,
    lint: bool = False,
    explain_released_flows: bool = False,
    name: Optional[str] = None,
    recorder: Optional[Recorder] = None,
) -> CheckReport:
    """Run the (core + optional infer + optional IFC) checks over a program.

    ``infer=True`` inserts the label-inference phase ahead of the IFC check:
    the solved, fully annotated program is what the IFC phase verifies.
    When the constraint system is unsatisfiable the conflicts are reported
    as the report's diagnostics and the IFC phase is skipped (re-checking a
    partially solved program would only restate the same conflicts).
    ``presolve=True`` runs the constant-label reduction before Kleene
    iteration (same verdicts, smaller live graph).  ``backend`` selects the
    solving engine (``"graph"``, ``"packed"``, ``"worklist"`` -- see
    :func:`repro.inference.solve.solve`) and ``solver_workers`` the packed
    backend's process count.  ``lint=True`` and
    ``explain_released_flows=True`` add the static-analysis phase
    (:mod:`repro.analysis`) and populate :attr:`CheckReport.analysis`.
    """
    if infer and not include_ifc:
        raise ValueError(
            "infer=True requires the security pass; inference without the "
            "IFC re-check has no verdict to report (drop include_ifc=False)"
        )
    resolved = _resolve_lattice(lattice)
    workspace = Workspace(
        resolved,
        allow_declassification=allow_declassification,
        presolve=presolve,
        backend=backend,
        solver_workers=solver_workers,
        name=name,
    )
    workspace.open_program(program)
    return check_workspace(
        workspace,
        include_ifc=include_ifc,
        infer=infer,
        lint=lint,
        explain_released_flows=explain_released_flows,
        name=name or program.name,
        recorder=recorder,
    )


def check_source(
    source: str,
    lattice: Union[Lattice, str, None] = None,
    *,
    include_ifc: bool = True,
    infer: bool = False,
    allow_declassification: bool = False,
    presolve: bool = False,
    backend: str = "graph",
    solver_workers: int = 1,
    lint: bool = False,
    explain_released_flows: bool = False,
    filename: str = "<input>",
    name: Optional[str] = None,
    recorder: Optional[Recorder] = None,
) -> CheckReport:
    """Parse and check a program given as source text.

    ``include_ifc=False`` reproduces the unannotated baseline of Table 1
    (plain type checking only); the default runs the full P4BID pipeline.
    ``infer=True`` additionally solves for missing / ``infer``-marked
    security annotations before the IFC check (``p4bid --infer``).
    ``allow_declassification`` opts in to the audited ``declassify`` /
    ``endorse`` primitives (an extension; off by default to preserve the
    paper's strict non-interference).
    """
    if infer and not include_ifc:
        raise ValueError(
            "infer=True requires the security pass; inference without the "
            "IFC re-check has no verdict to report (drop include_ifc=False)"
        )
    resolved = _resolve_lattice(lattice)
    workspace = Workspace(
        resolved,
        allow_declassification=allow_declassification,
        presolve=presolve,
        backend=backend,
        solver_workers=solver_workers,
        name=name,
    )
    report = CheckReport(name or filename, lattice_name=resolved.name)
    rec = _pipeline_recorder(recorder)
    first_span = len(rec.spans)
    with rec.span("pipeline.check", program=report.name, lattice=resolved.name):
        with rec.span("phase.parse"):
            workspace.open(source, filename=filename)
        report.parse_error = workspace.parse_error
        if workspace.program is not None:
            report.program = workspace.program
            _run_phases(
                report,
                workspace,
                rec,
                include_ifc=include_ifc,
                infer=infer,
                lint=lint,
                explain_released_flows=explain_released_flows,
            )
            report.program = workspace.program
    report.timing = PhaseTiming.from_spans(rec.spans[first_span:])
    report.trace = rec
    return report
