"""The P4BID checking pipeline.

Mirrors how the paper's tool is built on p4c: a program is parsed, checked
against the ordinary Core P4 type system (what plain p4c does), and then --
when security checking is requested -- against the IFC type system of
Section 4.  With ``infer=True`` a label-inference phase
(:mod:`repro.inference`) runs between the two: missing annotations are
solved for, and the IFC phase re-verifies the *elaborated* program, so the
security verdict still rests on the unmodified Figure 5–7 checker.  Timing
of each phase is recorded so the Table 1 benchmark can report the overhead
of the security pass over the baseline (and of inference over checking).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.frontend.errors import FrontendError
from repro.frontend.parser import parse_program
from repro.ifc.checker import IfcCheckResult, check_ifc
from repro.ifc.errors import IfcDiagnostic
from repro.inference.engine import InferenceResult, infer_labels
from repro.lattice.base import Lattice
from repro.lattice.registry import get_lattice
from repro.lattice.two_point import TwoPointLattice
from repro.syntax.program import Program
from repro.typechecker.checker import CoreCheckResult, check_core_types
from repro.typechecker.errors import TypeDiagnostic


@dataclass
class PhaseTiming:
    """Wall-clock duration of each pipeline phase, in milliseconds."""

    parse_ms: float = 0.0
    core_ms: float = 0.0
    infer_ms: float = 0.0
    ifc_ms: float = 0.0
    #: The constraint-solving portion of the infer phase (already included
    #: in ``infer_ms``), as reported by the solver's own statistics.
    solve_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        return self.parse_ms + self.core_ms + self.infer_ms + self.ifc_ms


@dataclass
class CheckReport:
    """The outcome of running the P4BID pipeline over one program."""

    name: str
    program: Optional[Program] = None
    parse_error: Optional[str] = None
    core_result: Optional[CoreCheckResult] = None
    inference_result: Optional[InferenceResult] = None
    ifc_result: Optional[IfcCheckResult] = None
    timing: PhaseTiming = field(default_factory=PhaseTiming)
    lattice_name: str = "two-point"

    @property
    def core_diagnostics(self) -> List[TypeDiagnostic]:
        return list(self.core_result.diagnostics) if self.core_result else []

    @property
    def inference_diagnostics(self) -> List[IfcDiagnostic]:
        return list(self.inference_result.diagnostics) if self.inference_result else []

    @property
    def ifc_diagnostics(self) -> List[IfcDiagnostic]:
        return list(self.ifc_result.diagnostics) if self.ifc_result else []

    @property
    def diagnostics(self) -> List[Union[TypeDiagnostic, IfcDiagnostic]]:
        return [
            *self.core_diagnostics,
            *self.inference_diagnostics,
            *self.ifc_diagnostics,
        ]

    @property
    def parsed(self) -> bool:
        return self.parse_error is None and self.program is not None

    @property
    def checked_program(self) -> Optional[Program]:
        """The program the IFC verdict is about (elaborated when inferred)."""
        if self.inference_result is not None and self.inference_result.ok:
            return self.inference_result.elaborated
        return self.program

    @property
    def core_ok(self) -> bool:
        return self.parsed and not self.core_diagnostics

    @property
    def ok(self) -> bool:
        """Whether the program parsed and passed every requested check."""
        return self.parsed and not self.diagnostics


def _resolve_lattice(lattice: Union[Lattice, str, None]) -> Lattice:
    if lattice is None:
        return TwoPointLattice()
    if isinstance(lattice, str):
        return get_lattice(lattice)
    return lattice


def check_program(
    program: Program,
    lattice: Union[Lattice, str, None] = None,
    *,
    include_ifc: bool = True,
    infer: bool = False,
    allow_declassification: bool = False,
    name: Optional[str] = None,
) -> CheckReport:
    """Run the (core + optional infer + optional IFC) checks over a program.

    ``infer=True`` inserts the label-inference phase ahead of the IFC check:
    the solved, fully annotated program is what the IFC phase verifies.
    When the constraint system is unsatisfiable the conflicts are reported
    as the report's diagnostics and the IFC phase is skipped (re-checking a
    partially solved program would only restate the same conflicts).
    """
    if infer and not include_ifc:
        raise ValueError(
            "infer=True requires the security pass; inference without the "
            "IFC re-check has no verdict to report (drop include_ifc=False)"
        )
    resolved = _resolve_lattice(lattice)
    report = CheckReport(name or program.name, program=program, lattice_name=resolved.name)

    start = time.perf_counter()
    report.core_result = check_core_types(program)
    report.timing.core_ms = (time.perf_counter() - start) * 1000.0

    if include_ifc:
        target: Optional[Program] = program
        if infer:
            start = time.perf_counter()
            report.inference_result = infer_labels(
                program, resolved, allow_declassification=allow_declassification
            )
            report.timing.infer_ms = (time.perf_counter() - start) * 1000.0
            stats = report.inference_result.solution.stats
            if stats is not None:
                report.timing.solve_ms = stats.solve_ms
            target = (
                report.inference_result.elaborated
                if report.inference_result.ok
                else None
            )
        if target is not None:
            start = time.perf_counter()
            report.ifc_result = check_ifc(
                target, resolved, allow_declassification=allow_declassification
            )
            report.timing.ifc_ms = (time.perf_counter() - start) * 1000.0
    return report


def check_source(
    source: str,
    lattice: Union[Lattice, str, None] = None,
    *,
    include_ifc: bool = True,
    infer: bool = False,
    allow_declassification: bool = False,
    filename: str = "<input>",
    name: Optional[str] = None,
) -> CheckReport:
    """Parse and check a program given as source text.

    ``include_ifc=False`` reproduces the unannotated baseline of Table 1
    (plain type checking only); the default runs the full P4BID pipeline.
    ``infer=True`` additionally solves for missing / ``infer``-marked
    security annotations before the IFC check (``p4bid --infer``).
    ``allow_declassification`` opts in to the audited ``declassify`` /
    ``endorse`` primitives (an extension; off by default to preserve the
    paper's strict non-interference).
    """
    resolved = _resolve_lattice(lattice)
    report = CheckReport(name or filename, lattice_name=resolved.name)
    start = time.perf_counter()
    try:
        program = parse_program(source, filename, name=name)
    except FrontendError as exc:
        report.parse_error = str(exc)
        report.timing.parse_ms = (time.perf_counter() - start) * 1000.0
        return report
    report.timing.parse_ms = (time.perf_counter() - start) * 1000.0
    full = check_program(
        program,
        resolved,
        include_ifc=include_ifc,
        infer=infer,
        allow_declassification=allow_declassification,
        name=report.name,
    )
    full.timing.parse_ms = report.timing.parse_ms
    return full
