"""Security-interface summaries of checked programs.

``summarise_program`` produces a machine-readable description of what a
program exposes to the network and to the controller:

* every control block, its pc label, and the security type of each of its
  parameters broken down to leaf fields,
* the inferred write bound ``pc_fn`` of every action and ``pc_tbl`` of
  every table,
* aggregate counts (how many observable vs secret leaf fields, how many
  releases were audited).

This is the artefact a network operator would attach to a review: it says,
without reading the code, which packet fields the program may influence at
which level.  Exposed through the CLI as ``p4bid --summary``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ifc.checker import IfcCheckResult
from repro.ifc.convert import LabelResolutionError
from repro.ifc.security_types import SHeader, SRecord, SStack, SecurityType
from repro.lattice.base import Label, Lattice, LatticeError
from repro.ni.labeling import program_labeler
from repro.syntax.program import Program
from repro.tool.pipeline import CheckReport


@dataclass(frozen=True)
class FieldSummary:
    """One leaf field of a control parameter and its label."""

    path: str
    type_name: str
    label: Label

    def as_dict(self) -> Dict[str, str]:
        return {"path": self.path, "type": self.type_name, "label": str(self.label)}


@dataclass
class ControlSummary:
    """The security interface of one control block."""

    name: str
    pc_label: Label
    fields: List[FieldSummary] = field(default_factory=list)

    def observable_fields(self, lattice: Lattice, level: Label) -> List[FieldSummary]:
        """Leaf fields an observer at ``level`` can see."""
        return [f for f in self.fields if lattice.leq(f.label, level)]


@dataclass
class ProgramSummary:
    """Whole-program security interface."""

    name: str
    lattice_name: str
    controls: List[ControlSummary] = field(default_factory=list)
    action_bounds: Dict[str, Label] = field(default_factory=dict)
    table_bounds: Dict[str, Label] = field(default_factory=dict)
    declassification_count: int = 0
    violation_count: int = 0
    #: When the report ran label inference: the solver's statistics
    #: (variables, edges, SCCs, worklist pops), so the reviewed artefact
    #: also records how the labels were derived.
    solver: Optional[Dict[str, object]] = None
    #: When the check ran under a :class:`~repro.telemetry.TraceRecorder`:
    #: the recorder's counters (rule-site traffic, constraints emitted per
    #: rule, lattice-operation counts), keyed by counter name.
    metrics: Optional[Dict[str, int]] = None
    #: When the pipeline ran the static-analysis phase (``--lint``): the
    #: lint findings counted per rule code (``{"P4B002": 1, ...}``).
    lints: Optional[Dict[str, int]] = None

    def as_dict(self) -> Dict:
        return {
            "name": self.name,
            "lattice": self.lattice_name,
            "violations": self.violation_count,
            "declassifications": self.declassification_count,
            "solver": self.solver,
            "metrics": self.metrics,
            "lints": self.lints,
            "controls": [
                {
                    "name": control.name,
                    "pc": str(control.pc_label),
                    "fields": [f.as_dict() for f in control.fields],
                }
                for control in self.controls
            ],
            "action_bounds": {k: str(v) for k, v in self.action_bounds.items()},
            "table_bounds": {k: str(v) for k, v in self.table_bounds.items()},
        }


def _leaf_fields(prefix: str, sec_type: SecurityType) -> List[Tuple[str, SecurityType]]:
    body = sec_type.body
    if isinstance(body, (SRecord, SHeader)):
        leaves: List[Tuple[str, SecurityType]] = []
        for name, field_type in body.fields:
            leaves.extend(_leaf_fields(f"{prefix}.{name}", field_type))
        return leaves
    if isinstance(body, SStack):
        return [
            leaf
            for index in range(body.size)
            for leaf in _leaf_fields(f"{prefix}[{index}]", body.element)
        ]
    return [(prefix, sec_type)]


def summarise_program(
    program: Program,
    lattice: Lattice,
    ifc_result: Optional[IfcCheckResult] = None,
    *,
    name: str = "<program>",
) -> ProgramSummary:
    """Build a :class:`ProgramSummary` for ``program`` under ``lattice``."""
    labeler = program_labeler(program, lattice)
    summary = ProgramSummary(name=name, lattice_name=lattice.name)
    for control in program.controls:
        pc_label = (
            lattice.parse_label(control.pc_label)
            if control.pc_label is not None
            else lattice.bottom
        )
        control_summary = ControlSummary(control.name, pc_label)
        for param in control.params:
            sec_type = labeler.security_type(param.ty)
            for path, leaf in _leaf_fields(param.name, sec_type):
                control_summary.fields.append(
                    FieldSummary(path, leaf.body.describe(), leaf.label)
                )
        summary.controls.append(control_summary)
    if ifc_result is not None:
        summary.action_bounds = dict(ifc_result.function_bounds)
        summary.table_bounds = dict(ifc_result.table_bounds)
        summary.declassification_count = len(ifc_result.declassifications)
        summary.violation_count = len(ifc_result.diagnostics)
    return summary


def summarise_report(report: CheckReport, lattice: Lattice) -> Optional[ProgramSummary]:
    """Summary for a pipeline report (None when the program failed to parse).

    When the pipeline ran label inference, the summary describes the
    *elaborated* program -- the security interface a reviewer would sign off
    on is the one with the solved labels written in.  When that elaboration
    does not exist (inference conflicts, or ``infer``-marked annotations
    without ``--infer``), the raw program has no resolvable labels to
    summarise and ``None`` is returned rather than crashing on the markers.
    """
    program = report.checked_program
    if program is None:
        return None
    try:
        summary = summarise_program(
            program, lattice, report.ifc_result, name=report.name
        )
    except (LabelResolutionError, LatticeError):
        return None
    inference = report.inference_result
    if inference is not None and inference.solution.stats is not None:
        summary.solver = inference.solution.stats.as_dict()
    if report.trace is not None and report.trace.counters:
        summary.metrics = dict(sorted(report.trace.counters.items()))
    if report.analysis is not None:
        counts: Dict[str, int] = {}
        for finding in report.analysis.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        summary.lints = dict(sorted(counts.items()))
    return summary


def format_summary(summary: ProgramSummary) -> str:
    """Human readable rendering of a :class:`ProgramSummary`."""
    lines = [
        f"== security interface of {summary.name} (lattice: {summary.lattice_name}) ==",
        f"violations: {summary.violation_count}, audited releases: "
        f"{summary.declassification_count}",
    ]
    for control in summary.controls:
        lines.append(f"control {control.name} (pc = {control.pc_label}):")
        for leaf in control.fields:
            lines.append(f"    {leaf.path:<40} {leaf.type_name:<12} {leaf.label}")
    if summary.action_bounds:
        lines.append("action write bounds (pc_fn):")
        for action, bound in sorted(summary.action_bounds.items()):
            lines.append(f"    {action:<40} {bound}")
    if summary.table_bounds:
        lines.append("table bounds (pc_tbl):")
        for table, bound in sorted(summary.table_bounds.items()):
            lines.append(f"    {table:<40} {bound}")
    if summary.solver is not None:
        lines.append(
            "labels derived by inference: "
            f"{summary.solver.get('variables', 0)} variable(s), "
            f"{summary.solver.get('edges', 0)} edge(s), "
            f"{summary.solver.get('sccs', 0)} SCC(s)"
        )
        lines.append(
            "    solver: "
            f"{summary.solver.get('edges_visited', 0)} edge visit(s), "
            f"{summary.solver.get('worklist_pops', 0)} worklist pop(s), "
            f"{summary.solver.get('checks', 0)} check(s), "
            f"{summary.solver.get('solve_ms', 0.0):.2f} ms"
        )
    if summary.metrics:
        lines.append("telemetry counters:")
        for counter, value in summary.metrics.items():
            lines.append(f"    {counter:<40} {value}")
    if summary.lints:
        lines.append("lint findings by rule:")
        for code, count in summary.lints.items():
            lines.append(f"    {code:<40} {count}")
    return "\n".join(lines)
