"""Command line interface: ``p4bid [options] program.p4``.

Exit status is 0 when every checked program is accepted, 1 when any program
is rejected (type error or information-flow violation), and 2 on usage or
I/O errors -- the conventions a build system expects from a checker.

Observability: ``--trace FILE`` writes a Chrome ``trace_event`` file
(open it in ``chrome://tracing`` or https://ui.perfetto.dev; a ``.jsonl``
suffix switches to the JSON-lines event log), ``--metrics FILE`` writes
aggregated counters/histograms/span totals, and ``--trace-summary``
prints the span tree as text.  Any of the three installs a
:class:`~repro.telemetry.TraceRecorder` around the whole run, so the
solver's fine-grained spans are captured alongside the pipeline phases.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lattice.registry import available_lattices, get_lattice
from repro.telemetry import (
    TraceRecorder,
    format_trace_summary,
    metrics_dict,
    to_chrome_trace,
    to_jsonl,
    use_recorder,
)
from repro.tool.pipeline import check_source
from repro.tool.report import format_report, report_to_json
from repro.tool.summary import format_summary, summarise_report
from repro.version import __version__


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="p4bid",
        description=(
            "P4BID: an information-flow control type checker for the Core P4 "
            "fragment (reproduction of PLDI 2022)."
        ),
    )
    parser.add_argument("files", nargs="+", help="annotated P4 source files to check")
    parser.add_argument(
        "--lattice",
        default="two-point",
        help=(
            "security lattice to check against "
            f"(available: {', '.join(available_lattices())}, or chain-N)"
        ),
    )
    parser.add_argument(
        "--core-only",
        action="store_true",
        help="run only the ordinary type checker (the unannotated p4c baseline)",
    )
    parser.add_argument(
        "--infer",
        action="store_true",
        help=(
            "solve for missing or <type, infer>-marked security annotations "
            "before the IFC check, and report the inferred labels"
        ),
    )
    parser.add_argument(
        "--allow-declassify",
        action="store_true",
        help=(
            "honour the audited declassify()/endorse() primitives instead of "
            "reporting them as violations"
        ),
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help=(
            "run the static-analysis lint rules (P4B0xx: redundant or slack "
            "annotations, ineffective declassify, dead slots, unreachable "
            "code) and report the findings"
        ),
    )
    parser.add_argument(
        "--explain-flows",
        action="store_true",
        help=(
            "audit mode: enumerate every declassify-crossing source→sink "
            "flow with its shortest leak-path witness (implies "
            "--allow-declassify)"
        ),
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        help=(
            "write every diagnostic and lint finding as a SARIF 2.1.0 log "
            "(rule metadata plus physical locations with start/end regions)"
        ),
    )
    parser.add_argument(
        "--presolve",
        action="store_true",
        help=(
            "with --infer, fold trivially fixed label variables before "
            "Kleene iteration (same verdicts; smaller live graph, see "
            "--solver-stats)"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=("graph", "packed", "worklist"),
        default="graph",
        help=(
            "with --infer, select the constraint-solver backend: 'graph' "
            "(SCC-scheduled object solver, default), 'packed' (bit-packed "
            "int arrays with batched sweeps; falls back to 'graph' for "
            "lattices without an int encoding), or 'worklist' (the "
            "reference solver)"
        ),
    )
    parser.add_argument(
        "--solver-workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "with --backend packed, dispatch independent constraint "
            "clusters across N worker processes (default 1: in-process)"
        ),
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON report instead of text"
    )
    parser.add_argument(
        "--summary",
        action="store_true",
        help="also print the program's security interface (per-field labels, bounds)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also print inferred action and table write bounds",
    )
    parser.add_argument(
        "--solver-stats",
        action="store_true",
        help=(
            "with --infer, also print constraint-solver statistics (SCC "
            "condensation, worklist pops, passes per component, solve time)"
        ),
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help=(
            "record a trace of the whole run and write it as a Chrome "
            "trace_event file (load in chrome://tracing or Perfetto); a "
            ".jsonl suffix writes the JSON-lines event log instead"
        ),
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        help=(
            "write aggregated telemetry (counters, histograms, per-span "
            "totals) as a JSON document"
        ),
    )
    parser.add_argument(
        "--trace-summary",
        action="store_true",
        help="print a human-readable span tree and counter summary",
    )
    parser.add_argument(
        "--version", action="version", version=f"p4bid {__version__}"
    )
    return parser


def _collect_findings(report, path: Path) -> list:
    """Every diagnostic and lint finding of one report, as SARIF findings."""
    from repro.analysis.sarif import (
        finding_from_parse_error,
        findings_from_core,
        findings_from_diagnostics,
    )

    findings: list = []
    if report.parse_error is not None:
        findings.append(finding_from_parse_error(report.parse_error, str(path)))
        return findings
    findings.extend(findings_from_core(report.core_diagnostics))
    findings.extend(findings_from_diagnostics(report.inference_diagnostics))
    findings.extend(findings_from_diagnostics(report.ifc_diagnostics))
    if report.analysis is not None:
        findings.extend(report.analysis.findings)
    return findings


def _export_telemetry(
    recorder: TraceRecorder, args: argparse.Namespace, outputs: List[str]
) -> int:
    """Write/append the requested telemetry outputs; 2 on I/O failure."""
    try:
        if args.trace:
            if args.trace.endswith(".jsonl"):
                Path(args.trace).write_text(to_jsonl(recorder), encoding="utf-8")
            else:
                Path(args.trace).write_text(
                    json.dumps(to_chrome_trace(recorder), indent=2) + "\n",
                    encoding="utf-8",
                )
        if args.metrics:
            Path(args.metrics).write_text(
                json.dumps(metrics_dict(recorder), indent=2) + "\n",
                encoding="utf-8",
            )
    except OSError as exc:
        print(f"p4bid: cannot write telemetry output: {exc}", file=sys.stderr)
        return 2
    if args.trace_summary:
        outputs.append(format_trace_summary(recorder))
    return 0


def build_serve_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="p4bid serve",
        description=(
            "Serve a warm P4BID workspace over newline-delimited JSON-RPC "
            "2.0 (stdin/stdout by default): open a program once, then "
            "re-check edits incrementally without restarting the pipeline."
        ),
    )
    parser.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        help=(
            "listen on a TCP socket instead of stdin/stdout (one workspace "
            "per connection)"
        ),
    )
    parser.add_argument(
        "--lattice",
        default="two-point",
        help=(
            "security lattice the workspace checks against "
            f"(available: {', '.join(available_lattices())}, or chain-N)"
        ),
    )
    parser.add_argument(
        "--allow-declassify",
        action="store_true",
        help="honour the audited declassify()/endorse() primitives",
    )
    parser.add_argument(
        "--presolve",
        action="store_true",
        help="fold trivially fixed label variables before Kleene iteration",
    )
    parser.add_argument(
        "--backend",
        choices=("graph", "packed", "worklist"),
        default="graph",
        help="constraint-solver backend for the workspace (default: graph)",
    )
    parser.add_argument(
        "--solver-workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the packed backend (default 1)",
    )
    return parser


def serve_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``p4bid serve``."""
    from repro.workspace.rpc import serve_stdio, serve_tcp

    parser = build_serve_arg_parser()
    args = parser.parse_args(argv)
    if args.solver_workers < 1:
        parser.error("--solver-workers must be at least 1")
    if args.solver_workers > 1 and args.backend != "packed":
        parser.error("--solver-workers needs --backend packed")
    options = {
        "lattice": args.lattice,
        "allow_declassification": args.allow_declassify,
        "presolve": args.presolve,
        "backend": args.backend,
        "solver_workers": args.solver_workers,
    }
    if args.tcp:
        host, _, port_text = args.tcp.rpartition(":")
        if not host or not port_text.isdigit():
            parser.error("--tcp expects HOST:PORT")
        return serve_tcp(host, int(port_text), **options)
    return serve_stdio(**options)


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "serve":
        return serve_main(arguments[1:])
    if arguments and arguments[0] == "policy":
        from repro.policy.cli import policy_main

        return policy_main(arguments[1:])
    parser = build_arg_parser()
    args = parser.parse_args(arguments)
    if args.infer and args.core_only:
        parser.error("--infer requires the security pass; drop --core-only")
    if args.solver_stats and not args.infer:
        parser.error("--solver-stats reports on the inference solver; add --infer")
    if args.presolve and not args.infer:
        parser.error("--presolve tunes the inference solver; add --infer")
    if args.backend != "graph" and not args.infer:
        parser.error("--backend selects the inference solver; add --infer")
    if args.solver_workers < 1:
        parser.error("--solver-workers must be at least 1")
    if args.solver_workers > 1 and args.backend != "packed":
        parser.error("--solver-workers needs --backend packed")
    if args.backend == "worklist" and args.presolve:
        parser.error("the worklist reference backend does not support --presolve")
    if (args.lint or args.explain_flows) and args.core_only:
        parser.error("static analysis needs the security pass; drop --core-only")
    if args.explain_flows:
        args.allow_declassify = True
    tracing = bool(args.trace or args.metrics or args.trace_summary)
    recorder = TraceRecorder() if tracing else None
    exit_code = 0
    outputs: List[str] = []
    sarif_artifacts: List[tuple] = []
    for file_name in args.files:
        path = Path(file_name)
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            print(f"p4bid: cannot read {file_name}: {exc}", file=sys.stderr)
            return 2
        run_lint = args.lint or bool(args.sarif)
        if recorder is not None:
            with use_recorder(recorder):
                report = check_source(
                    source,
                    args.lattice,
                    include_ifc=not args.core_only,
                    infer=args.infer,
                    allow_declassification=args.allow_declassify,
                    presolve=args.presolve,
                    backend=args.backend,
                    solver_workers=args.solver_workers,
                    lint=run_lint,
                    explain_released_flows=args.explain_flows,
                    filename=str(path),
                    name=path.stem,
                )
        else:
            report = check_source(
                source,
                args.lattice,
                include_ifc=not args.core_only,
                infer=args.infer,
                allow_declassification=args.allow_declassify,
                presolve=args.presolve,
                backend=args.backend,
                solver_workers=args.solver_workers,
                lint=run_lint,
                explain_released_flows=args.explain_flows,
                filename=str(path),
                name=path.stem,
            )
        if args.backend == "packed":
            stats = (
                report.inference_result.solution.stats
                if report.inference_result is not None
                else None
            )
            if stats is not None and stats.backend != "packed" and stats.fallback_reason:
                # Silent fallback would let a benchmark read graph numbers
                # as packed numbers; always say so, once, on stderr.
                print(
                    f"p4bid: note: {file_name}: packed backend fell back to "
                    f"{stats.backend} -- {stats.fallback_reason}",
                    file=sys.stderr,
                )
        if args.sarif:
            sarif_artifacts.append((str(path), _collect_findings(report, path)))
        if args.json:
            payload = json.loads(report_to_json(report))
            if args.summary:
                summary = summarise_report(report, get_lattice(args.lattice))
                payload["summary"] = summary.as_dict() if summary else None
            outputs.append(json.dumps(payload, indent=2))
        else:
            text = format_report(
                report, verbose=args.verbose, solver_stats=args.solver_stats
            )
            if args.summary:
                summary = summarise_report(report, get_lattice(args.lattice))
                if summary is not None:
                    text += "\n" + format_summary(summary)
            outputs.append(text)
        if not report.ok:
            exit_code = 1
    if args.sarif:
        from repro.analysis.sarif import sarif_json

        try:
            Path(args.sarif).write_text(
                sarif_json(sarif_artifacts) + "\n", encoding="utf-8"
            )
        except OSError as exc:
            print(f"p4bid: cannot write SARIF output: {exc}", file=sys.stderr)
            return 2
    if recorder is not None:
        telemetry_code = _export_telemetry(recorder, args, outputs)
        if telemetry_code:
            return telemetry_code
    print("\n\n".join(outputs))
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
