"""Human-readable and machine-readable rendering of check reports.

Inference conflicts are explained by *leak-path witnesses* by default --
the shortest propagation chain from a source annotation to the failing
obligation, ranked shortest-first (:mod:`repro.analysis.witness`); the
flat unsat-core dump is still available under ``verbose``.  Lint findings
and released-flow audits (``--lint`` / ``--explain-flows``) render as
their own report sections and appear under the ``"analysis"`` key of the
JSON report.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.witness import witnesses_for_solution
from repro.inference.engine import InferenceResult
from repro.lattice.registry import get_lattice
from repro.tool.pipeline import CheckReport


def _conflict_lines(inference: InferenceResult, *, verbose: bool) -> List[str]:
    """Conflicts as ranked witness chains (cores only under ``verbose``)."""
    lattice = inference.lattice
    lines = [str(diag) for diag in inference.generation.errors]
    for witness in witnesses_for_solution(inference.solution):
        conflict = witness.conflict
        constraint = conflict.constraint
        lines.append(
            f"{constraint.span}: "
            f"{constraint.reason or 'label constraint violated'}: inferred "
            f"label {lattice.format_label(conflict.observed)} may not flow "
            f"below {lattice.format_label(conflict.required)}"
        )
        for index, hop in enumerate(witness.hops):
            lines.append(f"    {index + 1}. {hop.describe(lattice)}")
        if verbose and conflict.core:
            lines.append(
                "    core: "
                + "; ".join(str(c.span) for c in conflict.core)
            )
    return lines


def format_report(
    report: CheckReport, *, verbose: bool = False, solver_stats: bool = False
) -> str:
    """A plain-text summary of a :class:`CheckReport` for the terminal.

    ``solver_stats`` additionally prints what the constraint solver's
    SCC-condensed scheduler did (``p4bid --solver-stats``).
    """
    lines = [f"== P4BID report for {report.name} (lattice: {report.lattice_name}) =="]
    if report.parse_error is not None:
        lines.append(f"parse error: {report.parse_error}")
        return "\n".join(lines)
    if report.core_diagnostics:
        lines.append(f"-- {len(report.core_diagnostics)} type error(s) --")
        lines.extend(str(diag) for diag in report.core_diagnostics)
    if report.inference_diagnostics:
        lines.append(
            f"-- {len(report.inference_diagnostics)} label-inference conflict(s) --"
        )
        lines.extend(
            _conflict_lines(report.inference_result, verbose=verbose)
        )
    if report.ifc_diagnostics:
        lines.append(f"-- {len(report.ifc_diagnostics)} information-flow violation(s) --")
        lines.extend(str(diag) for diag in report.ifc_diagnostics)
    if report.ok:
        lines.append("OK: program is well-typed and satisfies non-interference")
    else:
        lines.append(f"REJECTED: {len(report.diagnostics)} problem(s) found")
    inference = report.inference_result
    if inference is not None:
        qualifier = (
            ""
            if inference.ok
            else " -- least labels only; no satisfying assignment exists"
        )
        lines.append(
            f"-- inferred security labels ({len(inference.inferred)} slot(s), "
            f"{inference.constraint_count} constraint(s)){qualifier} --"
        )
        for slot in inference.inferred:
            lines.append(f"  {slot.describe(inference.lattice)}")
        for control, var in inference.generation.control_pc_vars:
            label = inference.solution.value_of(var)
            lines.append(
                f"  pc of control {control.name}: "
                f"{inference.lattice.format_label(label)}"
            )
    if solver_stats and inference is not None:
        stats = inference.solution.stats
        lines.append("-- solver statistics --")
        if stats is None:
            lines.append("  (not recorded by this solver)")
        else:
            backend_line = f"  backend: {stats.backend}"
            if stats.backend == "packed":
                backend_line += (
                    f" (encode {stats.encode_ms:.2f} ms, {stats.sweeps} "
                    f"sweep(s), {stats.clusters} cluster(s) over "
                    f"{stats.waves} wave(s), {stats.workers} worker(s))"
                )
            if stats.fallback_reason:
                backend_line += f" -- fallback: {stats.fallback_reason}"
            lines.append(backend_line)
            lines.append(
                f"  propagation edges: {stats.edge_count} "
                f"({stats.edges_visited} visited), checks: {stats.check_count}"
            )
            lines.append(
                f"  SCCs: {stats.scc_count} ({stats.cyclic_scc_count} cyclic, "
                f"largest {stats.largest_scc}), worklist pops: "
                f"{stats.worklist_pops}, max passes per component: "
                f"{stats.max_passes}"
            )
            lines.append(f"  solve time: {stats.solve_ms:.2f} ms")
    if report.ifc_result is not None and report.ifc_result.declassifications:
        lines.append(
            f"-- {len(report.ifc_result.declassifications)} audited release(s) --"
        )
        lines.extend(f"  {event}" for event in report.ifc_result.declassifications)
    if report.analysis is not None:
        findings = report.analysis.findings
        lines.append(f"-- {len(findings)} lint finding(s) --")
        lines.extend(f"  {finding.describe()}" for finding in findings)
        if report.analysis.released_flows:
            lattice = get_lattice(report.lattice_name)
            lines.append(
                f"-- {len(report.analysis.released_flows)} released flow(s) "
                "(declassify audit) --"
            )
            for flow in report.analysis.released_flows:
                lines.append(f"  released by {flow.site.describe()}:")
                lines.extend(
                    "    " + text
                    for text in flow.witness.describe(lattice).splitlines()
                )
    if verbose and report.ifc_result is not None:
        if report.ifc_result.function_bounds:
            lines.append("-- inferred action write bounds (pc_fn) --")
            for fn_name, bound in sorted(report.ifc_result.function_bounds.items()):
                lines.append(f"  {fn_name}: {report.ifc_result.lattice.format_label(bound)}")
        if report.ifc_result.table_bounds:
            lines.append("-- inferred table bounds (pc_tbl) --")
            for table_name, bound in sorted(report.ifc_result.table_bounds.items()):
                lines.append(
                    f"  {table_name}: {report.ifc_result.lattice.format_label(bound)}"
                )
    timing = "timing: parse {:.2f} ms, core {:.2f} ms".format(
        report.timing.parse_ms, report.timing.core_ms
    )
    if report.inference_result is not None:
        # solve is a sub-phase of infer (PhaseTiming.SUB_PHASES): shown
        # nested, never added to the total.
        timing += (
            f", infer {report.timing.infer_ms:.2f} ms"
            f" (solve {report.timing.solve_ms:.2f} ms)"
        )
    timing += f", ifc {report.timing.ifc_ms:.2f} ms"
    timing += f", total {report.timing.total_ms:.2f} ms"
    lines.append(timing)
    return "\n".join(lines)


def report_to_dict(report: CheckReport) -> Dict[str, Any]:
    """A JSON-serialisable view of a report (used by ``p4bid --json``)."""
    inference = report.inference_result
    return {
        "name": report.name,
        "lattice": report.lattice_name,
        "ok": report.ok,
        "parse_error": report.parse_error,
        "core_diagnostics": [str(diag) for diag in report.core_diagnostics],
        "inference": (
            None
            if inference is None
            else {
                "ok": inference.ok,
                "variables": inference.variable_count,
                "constraints": inference.constraint_count,
                "solver": (
                    inference.solution.stats.as_dict()
                    if inference.solution.stats is not None
                    else None
                ),
                "labels": [
                    {
                        "slot": slot.hint,
                        "label": inference.lattice.format_label(slot.label),
                        "location": str(slot.span),
                    }
                    for slot in inference.inferred
                ],
                "control_pcs": [
                    {
                        "control": control.name,
                        "label": inference.lattice.format_label(
                            inference.solution.value_of(var)
                        ),
                    }
                    for control, var in inference.generation.control_pc_vars
                ],
                "conflicts": [
                    {
                        "kind": diag.kind.value,
                        "rule": diag.rule,
                        "message": diag.message,
                        "location": str(diag.span),
                    }
                    for diag in inference.diagnostics
                ],
                "witnesses": [
                    {
                        "length": witness.length,
                        "location": str(witness.conflict.constraint.span),
                        "hops": [
                            {
                                "location": str(hop.span),
                                "description": hop.describe(inference.lattice),
                            }
                            for hop in witness.hops
                        ],
                    }
                    for witness in witnesses_for_solution(inference.solution)
                ],
            }
        ),
        "analysis": (
            None
            if report.analysis is None
            else {
                "findings": [
                    finding.as_dict() for finding in report.analysis.findings
                ],
                "released_flows": [
                    {
                        "site": flow.site.describe(),
                        "location": str(flow.site.span),
                        "witness": {
                            "length": flow.witness.length,
                            "hops": [
                                str(hop.span) for hop in flow.witness.hops
                            ],
                        },
                    }
                    for flow in report.analysis.released_flows
                ],
            }
        ),
        "ifc_diagnostics": [
            {
                "kind": diag.kind.value,
                "rule": diag.rule,
                "message": diag.message,
                "location": str(diag.span),
            }
            for diag in report.ifc_diagnostics
        ],
        "declassifications": [
            {
                "primitive": event.primitive,
                "expression": event.expression,
                "from": str(event.from_label),
                "to": str(event.to_label),
                "location": str(event.span),
            }
            for event in (
                report.ifc_result.declassifications if report.ifc_result else []
            )
        ],
        # Flat keys kept for compatibility; "phases" is the explicit
        # nesting (sub-phases under their parents, projected from the
        # pipeline's span tree -- total never double-counts "solve").
        "timing_ms": {
            "parse": report.timing.parse_ms,
            "core": report.timing.core_ms,
            "infer": report.timing.infer_ms,
            "solve": report.timing.solve_ms,
            "ifc": report.timing.ifc_ms,
            "total": report.timing.total_ms,
            "phases": report.timing.as_dict(),
        },
    }


def report_to_json(report: CheckReport, *, indent: int = 2) -> str:
    """Render a report as a JSON document."""
    return json.dumps(report_to_dict(report), indent=indent)
