"""The P4BID tool: pipeline, report formatting, and command line interface."""

from repro.tool.pipeline import CheckReport, check_program, check_source
from repro.tool.report import format_report
from repro.tool.summary import (
    ProgramSummary,
    format_summary,
    summarise_program,
    summarise_report,
)

__all__ = [
    "CheckReport",
    "check_program",
    "check_source",
    "format_report",
    "ProgramSummary",
    "format_summary",
    "summarise_program",
    "summarise_report",
]
