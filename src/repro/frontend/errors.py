"""Front-end error types, all carrying a source span."""

from __future__ import annotations

from repro.syntax.source import SourceSpan


class FrontendError(Exception):
    """Base class for lexing and parsing failures."""

    def __init__(self, message: str, span: SourceSpan | None = None) -> None:
        self.span = span or SourceSpan.unknown()
        super().__init__(f"{self.span}: {message}")
        self.message = message


class LexerError(FrontendError):
    """An unrecognised character or malformed literal."""


class ParserError(FrontendError):
    """The token stream does not form a well-formed program."""
