"""Front end for the annotated P4 dialect.

The dialect is the concrete syntax for the Core P4 fragment of Figure 1,
extended with security annotations ``<type, label>`` on any type position
and an optional ``@pc(label)`` annotation on control blocks (used by the
isolation case study of Section 5.4).
"""

from repro.frontend.errors import FrontendError, LexerError, ParserError
from repro.frontend.lexer import Lexer, Token, TokenKind, tokenize
from repro.frontend.parser import Parser, parse_program, parse_expression

__all__ = [
    "FrontendError",
    "LexerError",
    "ParserError",
    "Lexer",
    "Token",
    "TokenKind",
    "tokenize",
    "Parser",
    "parse_program",
    "parse_expression",
]
