"""Lexer for the annotated P4 dialect.

Produces a flat list of :class:`Token` objects with source spans.  The
lexer is deliberately simple (single pass, no backtracking); all
context-sensitive decisions -- e.g. whether ``<`` opens a security
annotation or is a comparison -- are made by the parser.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.frontend.errors import LexerError
from repro.syntax.source import Position, SourceSpan

#: Keywords of the dialect.  Identifiers are never allowed to shadow them.
KEYWORDS = frozenset(
    {
        "header",
        "struct",
        "typedef",
        "match_kind",
        "control",
        "action",
        "function",
        "table",
        "key",
        "actions",
        "apply",
        "if",
        "else",
        "exit",
        "return",
        "true",
        "false",
        "bit",
        "int",
        "bool",
        "void",
        "in",
        "out",
        "inout",
        "const",
    }
)

#: Multi-character operators, longest first so maximal munch works.
_MULTI_CHAR_OPERATORS = (
    "<<",
    ">>",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
)

#: ``?`` only ever appears as the short spelling of an ``infer`` security
#: annotation (``<bit<8>, ?>``); the parser rejects it anywhere else.
_SINGLE_CHAR_TOKENS = frozenset("{}()[]<>,;:.=+-*/%&|^~!@?")


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    IDENT = "identifier"
    KEYWORD = "keyword"
    INT = "integer"
    PUNCT = "punctuation"
    EOF = "end-of-file"


@dataclass(frozen=True, slots=True)
class Token:
    """A single token: its kind, source text, value, and span."""

    kind: TokenKind
    text: str
    span: SourceSpan
    value: int | None = None
    width: int | None = None

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text

    def __str__(self) -> str:
        return f"{self.kind.value} {self.text!r}"


class Lexer:
    """Single-pass lexer over a source string."""

    def __init__(self, source: str, filename: str = "<input>") -> None:
        self._source = source
        self._filename = filename
        self._offset = 0
        self._line = 1
        self._column = 1

    # -- public API ----------------------------------------------------------

    def tokenize(self) -> List[Token]:
        """Lex the whole input, appending a trailing EOF token."""
        tokens: List[Token] = []
        while True:
            self._skip_trivia()
            if self._at_end():
                tokens.append(
                    Token(TokenKind.EOF, "", self._point_span(), None)
                )
                return tokens
            tokens.append(self._next_token())

    # -- character helpers ----------------------------------------------------

    def _at_end(self) -> bool:
        return self._offset >= len(self._source)

    def _peek(self, ahead: int = 0) -> str:
        index = self._offset + ahead
        if index >= len(self._source):
            return "\0"
        return self._source[index]

    def _advance(self) -> str:
        char = self._source[self._offset]
        self._offset += 1
        if char == "\n":
            self._line += 1
            self._column = 1
        else:
            self._column += 1
        return char

    def _position(self) -> Position:
        return Position(self._line, self._column)

    def _point_span(self) -> SourceSpan:
        pos = self._position()
        return SourceSpan(pos, pos, self._filename)

    def _span_from(self, start: Position) -> SourceSpan:
        return SourceSpan(start, self._position(), self._filename)

    # -- trivia -----------------------------------------------------------------

    def _skip_trivia(self) -> None:
        while not self._at_end():
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while not self._at_end() and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._skip_block_comment()
            else:
                return

    def _skip_block_comment(self) -> None:
        start = self._position()
        self._advance()
        self._advance()
        while True:
            if self._at_end():
                raise LexerError(
                    "unterminated block comment", SourceSpan(start, self._position(), self._filename)
                )
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance()
                self._advance()
                return
            self._advance()

    # -- token scanning -----------------------------------------------------------

    def _next_token(self) -> Token:
        start = self._position()
        char = self._peek()
        if char.isalpha() or char == "_":
            return self._lex_word(start)
        if char.isdigit():
            return self._lex_number(start)
        return self._lex_punct(start)

    def _lex_word(self, start: Position) -> Token:
        chars: List[str] = []
        while not self._at_end() and (self._peek().isalnum() or self._peek() == "_"):
            chars.append(self._advance())
        text = "".join(chars)
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, self._span_from(start))

    def _lex_number(self, start: Position) -> Token:
        chars: List[str] = []
        while not self._at_end() and (self._peek().isalnum() or self._peek() == "_"):
            chars.append(self._advance())
        text = "".join(chars)
        span = self._span_from(start)
        value, width = self._parse_number(text, span)
        return Token(TokenKind.INT, text, span, value=value, width=width)

    @staticmethod
    def _parse_number(text: str, span: SourceSpan) -> tuple[int, int | None]:
        cleaned = text.replace("_", "")
        # width-annotated literals such as 8w255 or 32w0xFF
        if "w" in cleaned and not cleaned.lower().startswith("0x"):
            width_text, _, value_text = cleaned.partition("w")
            if width_text.isdigit() and value_text:
                try:
                    return int(value_text, 0), int(width_text)
                except ValueError as exc:
                    raise LexerError(f"malformed literal {text!r}", span) from exc
        try:
            return int(cleaned, 0), None
        except ValueError as exc:
            raise LexerError(f"malformed literal {text!r}", span) from exc

    def _lex_punct(self, start: Position) -> Token:
        for op in _MULTI_CHAR_OPERATORS:
            if self._source.startswith(op, self._offset):
                for _ in op:
                    self._advance()
                return Token(TokenKind.PUNCT, op, self._span_from(start))
        char = self._peek()
        if char in _SINGLE_CHAR_TOKENS:
            self._advance()
            return Token(TokenKind.PUNCT, char, self._span_from(start))
        raise LexerError(f"unexpected character {char!r}", self._point_span())


def tokenize(source: str, filename: str = "<input>") -> List[Token]:
    """Lex ``source`` into a token list (convenience wrapper)."""
    return Lexer(source, filename).tokenize()
