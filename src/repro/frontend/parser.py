"""Recursive-descent parser for the annotated P4 dialect.

The grammar is a concrete syntax for the Core P4 fragment of Figure 1:

* ``header`` / ``struct`` / ``typedef`` / ``match_kind`` type declarations,
* ``control`` blocks with local ``action`` / ``function`` / ``table`` /
  variable declarations and an ``apply`` block,
* the statements and expressions of Figures 1a/1b.

Security annotations are written ``<type, label>`` wherever a type may
appear, e.g. ``<bit<8>, high> ttl;`` inside a header.  A control block may
be prefixed by ``@pc(label)`` to request type checking under a non-bottom
program counter (isolation case study, Section 5.4).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.frontend.errors import ParserError
from repro.frontend.lexer import Token, TokenKind, tokenize
from repro.syntax.declarations import (
    ActionRef,
    ControlDecl,
    Declaration,
    Direction,
    FunctionDecl,
    HeaderDecl,
    MatchKindDecl,
    Param,
    StructDecl,
    TableDecl,
    TableKey,
    TypedefDecl,
    VarDecl,
)
from repro.syntax.expressions import (
    BinaryOp,
    BoolLiteral,
    Call,
    Expression,
    FieldAccess,
    Index,
    IntLiteral,
    RecordLiteral,
    UnaryOp,
    Var,
)
from repro.syntax.program import Program
from repro.syntax.source import SourceSpan
from repro.syntax.statements import (
    Assign,
    Block,
    CallStmt,
    Exit,
    If,
    Return,
    Statement,
    VarDeclStmt,
)
from repro.syntax.types import (
    AnnotatedType,
    BitType,
    BoolType,
    Field,
    IntType,
    StackType,
    Type,
    TypeName,
    UnitType,
)

#: Binary operator precedence levels, lowest binding first.  Each level is a
#: tuple of operators parsed left-associatively.
_BINARY_PRECEDENCE: Tuple[Tuple[str, ...], ...] = (
    ("||",),
    ("&&",),
    ("==", "!="),
    ("<", ">", "<=", ">="),
    ("|",),
    ("^",),
    ("&",),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
)

_TYPE_KEYWORDS = frozenset({"bit", "bool", "int", "void"})


class Parser:
    """Parses a token stream into the Core P4 AST."""

    def __init__(self, tokens: List[Token], filename: str = "<input>") -> None:
        self._tokens = tokens
        self._filename = filename
        self._index = 0

    # ------------------------------------------------------------------ utils

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _at_end(self) -> bool:
        return self._peek().kind is TokenKind.EOF

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _check_punct(self, text: str, ahead: int = 0) -> bool:
        return self._peek(ahead).is_punct(text)

    def _check_keyword(self, text: str, ahead: int = 0) -> bool:
        return self._peek(ahead).is_keyword(text)

    def _match_punct(self, text: str) -> Optional[Token]:
        if self._check_punct(text):
            return self._advance()
        return None

    def _expect_punct(self, text: str, context: str) -> Token:
        token = self._peek()
        if not token.is_punct(text):
            raise ParserError(
                f"expected {text!r} {context}, found {token}", token.span
            )
        return self._advance()

    def _expect_keyword(self, text: str, context: str) -> Token:
        token = self._peek()
        if not token.is_keyword(text):
            raise ParserError(
                f"expected keyword {text!r} {context}, found {token}", token.span
            )
        return self._advance()

    def _expect_ident(self, context: str) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.IDENT:
            raise ParserError(
                f"expected an identifier {context}, found {token}", token.span
            )
        return self._advance()

    # ------------------------------------------------------------------ program

    def parse_program(self, name: str = "<program>") -> Program:
        declarations: List[Declaration] = []
        controls: List[ControlDecl] = []
        start_span = self._peek().span
        while not self._at_end():
            pc_label = self._parse_optional_pc_annotation()
            token = self._peek()
            if token.is_keyword("control"):
                controls.append(self._parse_control(pc_label))
                continue
            if pc_label is not None:
                raise ParserError(
                    "@pc(...) annotations may only precede a control block",
                    token.span,
                )
            if token.is_keyword("header"):
                declarations.append(self._parse_header_or_struct(header=True))
            elif token.is_keyword("struct"):
                declarations.append(self._parse_header_or_struct(header=False))
            elif token.is_keyword("typedef"):
                declarations.append(self._parse_typedef())
            elif token.is_keyword("match_kind"):
                declarations.append(self._parse_match_kind())
            elif token.is_keyword("const") or self._looks_like_type_start():
                declarations.append(self._parse_var_decl(allow_const=True))
            else:
                raise ParserError(
                    f"unexpected token {token} at top level", token.span
                )
        span = start_span.merge(self._peek().span)
        return Program(tuple(declarations), tuple(controls), span=span, name=name)

    def _parse_optional_pc_annotation(self) -> Optional[str]:
        if not self._check_punct("@"):
            return None
        at_token = self._advance()
        name = self._expect_ident("after '@'")
        if name.text != "pc":
            raise ParserError(
                f"unknown annotation @{name.text}; only @pc(label) is supported",
                at_token.span,
            )
        self._expect_punct("(", "after '@pc'")
        label = self._parse_label_text(")")
        self._expect_punct(")", "to close '@pc('")
        return label

    # ------------------------------------------------------------------ type declarations

    def _parse_header_or_struct(self, *, header: bool) -> Declaration:
        keyword = self._advance()
        name = self._expect_ident("after 'header'/'struct'")
        self._expect_punct("{", f"to open {keyword.text} {name.text}")
        fields: List[Field] = []
        while not self._check_punct("}"):
            field_type = self._parse_annotated_type()
            field_name = self._expect_ident("as a field name")
            self._expect_punct(";", "after a field declaration")
            fields.append(Field(field_name.text, field_type))
        close = self._expect_punct("}", f"to close {keyword.text} {name.text}")
        self._match_punct(";")
        span = keyword.span.merge(close.span)
        if header:
            return HeaderDecl(name.text, tuple(fields), span=span)
        return StructDecl(name.text, tuple(fields), span=span)

    def _parse_typedef(self) -> TypedefDecl:
        keyword = self._advance()
        ty = self._parse_annotated_type()
        name = self._expect_ident("as the typedef name")
        semi = self._expect_punct(";", "after a typedef")
        return TypedefDecl(ty, name.text, span=keyword.span.merge(semi.span))

    def _parse_match_kind(self) -> MatchKindDecl:
        keyword = self._advance()
        self._expect_punct("{", "after 'match_kind'")
        members: List[str] = []
        while not self._check_punct("}"):
            member = self._expect_ident("as a match_kind member")
            members.append(member.text)
            if not self._match_punct(","):
                break
        close = self._expect_punct("}", "to close match_kind")
        self._match_punct(";")
        return MatchKindDecl(tuple(members), span=keyword.span.merge(close.span))

    # ------------------------------------------------------------------ controls

    def _parse_control(self, pc_label: Optional[str]) -> ControlDecl:
        keyword = self._expect_keyword("control", "to start a control block")
        name = self._expect_ident("as the control name")
        self._expect_punct("(", "after the control name")
        params = self._parse_param_list()
        self._expect_punct(")", "to close the control parameter list")
        self._expect_punct("{", "to open the control body")
        locals_: List[Declaration] = []
        apply_block: Optional[Block] = None
        while not self._check_punct("}"):
            token = self._peek()
            if token.is_keyword("apply"):
                self._advance()
                apply_block = self._parse_block()
            elif token.is_keyword("action"):
                locals_.append(self._parse_action())
            elif token.is_keyword("function"):
                locals_.append(self._parse_function())
            elif token.is_keyword("table"):
                locals_.append(self._parse_table())
            elif self._looks_like_type_start() or token.is_keyword("const"):
                locals_.append(self._parse_var_decl(allow_const=True))
            else:
                raise ParserError(
                    f"unexpected token {token} inside control {name.text!r}",
                    token.span,
                )
        close = self._expect_punct("}", f"to close control {name.text!r}")
        if apply_block is None:
            apply_block = Block((), span=close.span)
        return ControlDecl(
            name.text,
            tuple(params),
            tuple(locals_),
            apply_block,
            pc_label=pc_label,
            span=keyword.span.merge(close.span),
        )

    def _parse_param_list(self) -> List[Param]:
        params: List[Param] = []
        if self._check_punct(")"):
            return params
        while True:
            params.append(self._parse_param())
            if not self._match_punct(","):
                return params

    def _parse_param(self) -> Param:
        start = self._peek().span
        direction = Direction.NONE
        token = self._peek()
        if token.is_keyword("in"):
            direction = Direction.IN
            self._advance()
        elif token.is_keyword("out"):
            direction = Direction.OUT
            self._advance()
        elif token.is_keyword("inout"):
            direction = Direction.INOUT
            self._advance()
        ty = self._parse_annotated_type()
        name = self._expect_ident("as a parameter name")
        return Param(direction, name.text, ty, span=start.merge(name.span))

    # ------------------------------------------------------------------ actions / functions

    def _parse_action(self) -> FunctionDecl:
        keyword = self._advance()
        name = self._expect_ident("as the action name")
        self._expect_punct("(", "after the action name")
        params = self._parse_param_list()
        self._expect_punct(")", "to close the action parameter list")
        body = self._parse_block()
        return FunctionDecl(
            name.text,
            tuple(params),
            body,
            return_type=None,
            is_action=True,
            span=keyword.span.merge(body.span),
        )

    def _parse_function(self) -> FunctionDecl:
        keyword = self._advance()
        if self._check_keyword("void"):
            self._advance()
            return_type: Optional[AnnotatedType] = None
        else:
            return_type = self._parse_annotated_type()
        name = self._expect_ident("as the function name")
        self._expect_punct("(", "after the function name")
        params = self._parse_param_list()
        self._expect_punct(")", "to close the function parameter list")
        body = self._parse_block()
        return FunctionDecl(
            name.text,
            tuple(params),
            body,
            return_type=return_type,
            is_action=False,
            span=keyword.span.merge(body.span),
        )

    # ------------------------------------------------------------------ tables

    def _parse_table(self) -> TableDecl:
        keyword = self._advance()
        name = self._expect_ident("as the table name")
        self._expect_punct("{", "to open the table body")
        keys: List[TableKey] = []
        actions: List[ActionRef] = []
        while not self._check_punct("}"):
            token = self._peek()
            if token.is_keyword("key"):
                self._advance()
                self._expect_punct("=", "after 'key'")
                self._expect_punct("{", "to open the key list")
                while not self._check_punct("}"):
                    key_expr = self.parse_expression()
                    self._expect_punct(":", "between a key expression and its match kind")
                    kind = self._expect_ident("as a match kind")
                    self._match_punct(";")
                    keys.append(
                        TableKey(key_expr, kind.text, span=key_expr.span.merge(kind.span))
                    )
                self._expect_punct("}", "to close the key list")
                self._match_punct(";")
            elif token.is_keyword("actions"):
                self._advance()
                self._expect_punct("=", "after 'actions'")
                self._expect_punct("{", "to open the action list")
                while not self._check_punct("}"):
                    actions.append(self._parse_action_ref())
                    if not (self._match_punct(";") or self._match_punct(",")):
                        break
                self._expect_punct("}", "to close the action list")
                self._match_punct(";")
            else:
                raise ParserError(
                    f"unexpected token {token} inside table {name.text!r}; "
                    "expected 'key = {...}' or 'actions = {...}'",
                    token.span,
                )
        close = self._expect_punct("}", f"to close table {name.text!r}")
        self._match_punct(";")
        return TableDecl(
            name.text, tuple(keys), tuple(actions), span=keyword.span.merge(close.span)
        )

    def _parse_action_ref(self) -> ActionRef:
        name = self._expect_ident("as an action reference")
        arguments: List[Expression] = []
        span = name.span
        if self._match_punct("("):
            if not self._check_punct(")"):
                while True:
                    arguments.append(self.parse_expression())
                    if not self._match_punct(","):
                        break
            close = self._expect_punct(")", "to close action arguments")
            span = span.merge(close.span)
        return ActionRef(name.text, tuple(arguments), span=span)

    # ------------------------------------------------------------------ variable declarations

    def _parse_var_decl(self, *, allow_const: bool = False) -> VarDecl:
        start = self._peek().span
        if allow_const and self._check_keyword("const"):
            self._advance()
        ty = self._parse_annotated_type()
        name = self._expect_ident("as a variable name")
        init: Optional[Expression] = None
        if self._match_punct("="):
            init = self.parse_expression()
        semi = self._expect_punct(";", "after a variable declaration")
        return VarDecl(ty, name.text, init, span=start.merge(semi.span))

    def _looks_like_type_start(self) -> bool:
        """Decide whether the upcoming tokens begin a (possibly annotated) type.

        Used to disambiguate variable declarations from expression statements
        without backtracking.  A statement starts a declaration when it
        begins with ``<`` (an annotated type), a type keyword, or an
        identifier immediately followed by another identifier (``ipv4_t x``)
        or by ``[n] ident`` (a stack-typed variable).
        """
        token = self._peek()
        if token.is_punct("<"):
            return True
        if token.kind is TokenKind.KEYWORD and token.text in _TYPE_KEYWORDS:
            return True
        if token.kind is TokenKind.IDENT:
            nxt = self._peek(1)
            if nxt.kind is TokenKind.IDENT:
                return True
            if (
                nxt.is_punct("[")
                and self._peek(2).kind is TokenKind.INT
                and self._peek(3).is_punct("]")
                and self._peek(4).kind is TokenKind.IDENT
            ):
                return True
        return False

    # ------------------------------------------------------------------ statements

    def _parse_block(self) -> Block:
        open_brace = self._expect_punct("{", "to open a block")
        statements: List[Statement] = []
        while not self._check_punct("}"):
            statements.append(self._parse_statement())
        close = self._expect_punct("}", "to close a block")
        return Block(tuple(statements), span=open_brace.span.merge(close.span))

    def _parse_statement(self) -> Statement:
        token = self._peek()
        if token.is_punct("{"):
            return self._parse_block()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("exit"):
            self._advance()
            semi = self._expect_punct(";", "after 'exit'")
            return Exit(span=token.span.merge(semi.span))
        if token.is_keyword("return"):
            self._advance()
            if self._check_punct(";"):
                semi = self._advance()
                return Return(None, span=token.span.merge(semi.span))
            value = self.parse_expression()
            semi = self._expect_punct(";", "after a return value")
            return Return(value, span=token.span.merge(semi.span))
        if self._looks_like_type_start() or token.is_keyword("const"):
            decl = self._parse_var_decl(allow_const=True)
            return VarDeclStmt(decl, span=decl.span)
        return self._parse_expression_statement()

    def _parse_if(self) -> If:
        keyword = self._advance()
        self._expect_punct("(", "after 'if'")
        condition = self.parse_expression()
        self._expect_punct(")", "to close the if condition")
        then_branch = self._parse_block()
        else_branch = Block((), span=then_branch.span)
        if self._check_keyword("else"):
            self._advance()
            if self._check_keyword("if"):
                nested = self._parse_if()
                else_branch = Block((nested,), span=nested.span)
            else:
                else_branch = self._parse_block()
        return If(
            condition,
            then_branch,
            else_branch,
            span=keyword.span.merge(else_branch.span),
        )

    def _parse_expression_statement(self) -> Statement:
        expr = self.parse_expression()
        if self._match_punct("="):
            value = self.parse_expression()
            semi = self._expect_punct(";", "after an assignment")
            return Assign(expr, value, span=expr.span.merge(semi.span))
        semi = self._expect_punct(";", "after an expression statement")
        if isinstance(expr, Call):
            return CallStmt(expr, span=expr.span.merge(semi.span))
        raise ParserError(
            f"expression {expr.describe()!r} cannot be used as a statement",
            expr.span,
        )

    # ------------------------------------------------------------------ expressions

    def parse_expression(self) -> Expression:
        return self._parse_binary(0)

    def _parse_binary(self, level: int) -> Expression:
        if level >= len(_BINARY_PRECEDENCE):
            return self._parse_unary()
        operators = _BINARY_PRECEDENCE[level]
        left = self._parse_binary(level + 1)
        while self._peek().kind is TokenKind.PUNCT and self._peek().text in operators:
            op = self._advance()
            right = self._parse_binary(level + 1)
            left = BinaryOp(op.text, left, right, span=left.span.merge(right.span))
        return left

    def _parse_unary(self) -> Expression:
        token = self._peek()
        if token.kind is TokenKind.PUNCT and token.text in ("!", "-", "~"):
            self._advance()
            operand = self._parse_unary()
            return UnaryOp(token.text, operand, span=token.span.merge(operand.span))
        return self._parse_postfix()

    def _parse_postfix(self) -> Expression:
        expr = self._parse_primary()
        while True:
            if self._check_punct("."):
                self._advance()
                field = self._peek()
                if field.is_keyword("apply"):
                    # table application t.apply(...) desugars to t(...)
                    self._advance()
                    self._expect_punct("(", "after '.apply'")
                    arguments = self._parse_call_arguments()
                    close_span = self._tokens[self._index - 1].span
                    expr = Call(expr, tuple(arguments), span=expr.span.merge(close_span))
                    continue
                if field.kind is not TokenKind.IDENT:
                    raise ParserError(
                        f"expected a field name after '.', found {field}", field.span
                    )
                self._advance()
                expr = FieldAccess(expr, field.text, span=expr.span.merge(field.span))
            elif self._check_punct("["):
                self._advance()
                index = self.parse_expression()
                close = self._expect_punct("]", "to close an index expression")
                expr = Index(expr, index, span=expr.span.merge(close.span))
            elif self._check_punct("("):
                self._advance()
                arguments = self._parse_call_arguments()
                close_span = self._tokens[self._index - 1].span
                expr = Call(expr, tuple(arguments), span=expr.span.merge(close_span))
            else:
                return expr

    def _parse_call_arguments(self) -> List[Expression]:
        arguments: List[Expression] = []
        if not self._check_punct(")"):
            while True:
                arguments.append(self.parse_expression())
                if not self._match_punct(","):
                    break
        self._expect_punct(")", "to close a call")
        return arguments

    def _parse_primary(self) -> Expression:
        token = self._peek()
        if token.kind is TokenKind.INT:
            self._advance()
            return IntLiteral(token.value or 0, token.width, span=token.span)
        if token.is_keyword("true") or token.is_keyword("false"):
            self._advance()
            return BoolLiteral(token.text == "true", span=token.span)
        if token.kind is TokenKind.IDENT:
            self._advance()
            return Var(token.text, span=token.span)
        if token.is_punct("("):
            self._advance()
            inner = self.parse_expression()
            self._expect_punct(")", "to close a parenthesised expression")
            return inner
        if token.is_punct("{"):
            return self._parse_record_literal()
        raise ParserError(f"expected an expression, found {token}", token.span)

    def _parse_record_literal(self) -> RecordLiteral:
        open_brace = self._advance()
        fields: List[Tuple[str, Expression]] = []
        while not self._check_punct("}"):
            name = self._expect_ident("as a record field name")
            self._expect_punct("=", "after a record field name")
            value = self.parse_expression()
            fields.append((name.text, value))
            if not self._match_punct(","):
                break
        close = self._expect_punct("}", "to close a record literal")
        return RecordLiteral(tuple(fields), span=open_brace.span.merge(close.span))

    # ------------------------------------------------------------------ types

    def _parse_annotated_type(self) -> AnnotatedType:
        token = self._peek()
        if token.is_punct("<"):
            open_angle = self._advance()
            inner = self._parse_type()
            self._expect_punct(",", "between a type and its security label")
            label = self._parse_label_text(">")
            close = self._expect_punct(">", "to close a security annotation")
            return AnnotatedType(inner, label, span=open_angle.span.merge(close.span))
        span_start = token.span
        ty = self._parse_type()
        # Span the whole type, not just its first token: ``bit<8>`` and
        # ``ipv4_t[4]`` span through the last consumed token, so SARIF
        # regions cover the full type expression.
        span_end = self._tokens[self._index - 1].span
        return AnnotatedType(ty, None, span=span_start.merge(span_end))

    def _parse_type(self) -> Type:
        token = self._peek()
        base: Type
        if token.is_keyword("bit"):
            self._advance()
            self._expect_punct("<", "after 'bit'")
            width = self._peek()
            if width.kind is not TokenKind.INT:
                raise ParserError("expected a bit width", width.span)
            self._advance()
            self._expect_punct(">", "to close 'bit<...>'")
            base = BitType(width.value or 0)
        elif token.is_keyword("bool"):
            self._advance()
            base = BoolType()
        elif token.is_keyword("int"):
            self._advance()
            base = IntType()
        elif token.is_keyword("void"):
            self._advance()
            base = UnitType()
        elif token.kind is TokenKind.IDENT:
            self._advance()
            base = TypeName(token.text)
        else:
            raise ParserError(f"expected a type, found {token}", token.span)
        # header stacks / arrays: τ[n]
        while self._check_punct("[") and self._peek(1).kind is TokenKind.INT:
            self._advance()
            size = self._advance()
            self._expect_punct("]", "to close a stack type")
            base = StackType(AnnotatedType(base, None), size.value or 0)
        return base

    def _parse_label_text(self, closing: str) -> str:
        """Collect the raw spelling of a security label up to ``closing``.

        Labels are usually a single identifier (``high``, ``A``) but may be
        a brace-enclosed principal set (``{alice, bob}``) or a parenthesised
        pair for product lattices.
        """
        parts: List[str] = []
        depth = 0
        while True:
            token = self._peek()
            if token.kind is TokenKind.EOF:
                raise ParserError("unterminated security label", token.span)
            if depth == 0 and token.is_punct(closing):
                break
            if token.kind is TokenKind.PUNCT and token.text in "({":
                depth += 1
            elif token.kind is TokenKind.PUNCT and token.text in ")}":
                depth -= 1
            parts.append(token.text)
            self._advance()
        text = "".join(
            part if part in ",(){}" else (" " + part) for part in parts
        ).replace("( ", "(").replace("{ ", "{").strip()
        if not text:
            raise ParserError("empty security label", self._peek().span)
        return text


def parse_program(source: str, filename: str = "<input>", name: str | None = None) -> Program:
    """Parse ``source`` into a :class:`Program`."""
    tokens = tokenize(source, filename)
    parser = Parser(tokens, filename)
    return parser.parse_program(name or filename)


def parse_expression(source: str, filename: str = "<expr>") -> Expression:
    """Parse a standalone expression (used by tests and builders)."""
    tokens = tokenize(source, filename)
    parser = Parser(tokens, filename)
    expr = parser.parse_expression()
    trailing = parser._peek()
    if trailing.kind is not TokenKind.EOF:
        raise ParserError(f"unexpected trailing token {trailing}", trailing.span)
    return expr
