"""Generators for synthetic annotated P4 programs.

Five families:

* :func:`random_straightline_program` -- random mixes of assignments and
  conditionals over a small header with one field per security level.
  Some generated programs leak and get rejected, others are safe and get
  accepted; the soundness property test checks that every *accepted* one
  passes the differential non-interference harness.
* :func:`chain_pipeline_program` -- a deterministic "telemetry pipeline"
  over a chain lattice of arbitrary height: level ``i`` aggregates into
  level ``i+1``.  Always well-typed; used by the lattice-size ablation.
* :func:`wide_table_program` -- a control block with many actions and
  tables; used by the program-size ablation alongside the D2R unrolling.
* :func:`deep_dataflow_program` -- long *unannotated* def-use chains
  seeded by one annotated source, yielding a propagation graph that is one
  deep acyclic path per chain.  Sized to produce 10k+ inference
  constraints for the solver-scaling benchmark.
* :func:`scc_cycle_program` -- many mutually-assigning field groups (each
  a genuine strongly connected component in the propagation graph) chained
  one after another, stressing SCC condensation and confined iteration.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence


def _header_for_levels(levels: Sequence[str], width: int = 8) -> str:
    fields = "\n".join(
        f"    <bit<{width}>, {level}> f_{level};" for level in levels
    )
    return f"header data_t {{\n{fields}\n}}\n\nstruct headers {{ data_t data; }}\n"


def random_straightline_program(
    seed: int,
    *,
    statements: int = 8,
    levels: Sequence[str] = ("low", "high"),
    max_depth: int = 2,
) -> str:
    """A random program over one field per security level.

    Statements are assignments between fields (possibly through arithmetic)
    and conditionals whose guards mention arbitrary fields, so both legal
    flows and explicit/implicit leaks are generated.
    """
    rng = random.Random(seed)
    levels = list(levels)

    def field(level: str) -> str:
        return f"hdr.data.f_{level}"

    def source_level(upper_index: int) -> str:
        # Mostly pick sources at or below the target's level so a healthy
        # fraction of generated programs is leak-free; occasionally pick any
        # level so explicit flows are generated too.
        if rng.random() < 0.8:
            return levels[rng.randrange(0, upper_index + 1)]
        return rng.choice(levels)

    def expression(target_index: int) -> str:
        choice = rng.random()
        if choice < 0.3:
            return str(rng.randrange(0, 200))
        source = field(source_level(target_index))
        if choice < 0.7:
            return source
        other = field(source_level(target_index))
        op = rng.choice(["+", "-", "&", "|", "^"])
        return f"({source} {op} {other})"

    def statement(depth: int, pc_index: int) -> List[str]:
        pad = "        " + "    " * depth
        if depth < max_depth and rng.random() < 0.3:
            # Mostly branch on low guards (safe); sometimes on anything.
            if rng.random() < 0.7:
                guard_index = pc_index
            else:
                guard_index = rng.randrange(len(levels))
            guard = f"{field(levels[guard_index])} > {rng.randrange(0, 200)}"
            inner_pc = max(pc_index, guard_index)
            inner = statement(depth + 1, inner_pc) + statement(depth + 1, inner_pc)
            return (
                [f"{pad}if ({guard}) {{"]
                + inner
                + [f"{pad}}} else {{"]
                + statement(depth + 1, inner_pc)
                + [f"{pad}}}"]
            )
        # Mostly write at or above the current pc level (safe); sometimes not.
        if rng.random() < 0.8:
            target_index = rng.randrange(pc_index, len(levels))
        else:
            target_index = rng.randrange(len(levels))
        target = field(levels[target_index])
        return [f"{pad}{target} = {expression(target_index)};"]

    body: List[str] = []
    for _ in range(statements):
        body.extend(statement(0, 0))
    return (
        _header_for_levels(levels)
        + "\ncontrol Synth_Ingress(inout headers hdr) {\n    apply {\n"
        + "\n".join(body)
        + "\n    }\n}\n"
    )


def chain_pipeline_program(levels: Sequence[str], *, rounds: int = 1) -> str:
    """A telemetry pipeline over a clearance chain (always well-typed).

    Each round aggregates every level's counter into the next higher
    level's counter -- only upward flows, so the program is accepted for
    the chain lattice with the given levels, whatever its height.
    """
    levels = list(levels)
    lines: List[str] = []
    for _ in range(max(1, rounds)):
        for lower, upper in zip(levels, levels[1:]):
            lines.append(
                f"        hdr.data.f_{upper} = hdr.data.f_{upper} + hdr.data.f_{lower};"
            )
    return (
        _header_for_levels(levels, width=32)
        + "\ncontrol Pipeline_Ingress(inout headers hdr) {\n    apply {\n"
        + "\n".join(lines)
        + "\n    }\n}\n"
    )


def deep_dataflow_program(
    depth: int,
    *,
    chains: int = 1,
    source_level: str = "high",
    sink_level: Optional[str] = None,
    width: int = 8,
) -> str:
    """``chains`` unannotated def-use chains of length ``depth`` each.

    The header declares one annotated ``seed`` field at ``source_level``
    and ``chains * depth`` *unannotated* fields; every chain copies the
    seed into its first field and then each field into the next.  Under
    inference every unannotated field becomes a label variable and every
    assignment a propagation edge, so the constraint system is ``chains``
    parallel acyclic paths of length ``depth`` -- the worst case for an
    unordered worklist (which revisits each edge it popped too early) and
    the best case for topological scheduling (one pass).

    ``sink_level`` optionally appends a ``sink`` field at that level
    assigned from the end of the first chain; choosing a level that does
    not dominate ``source_level`` makes the system unsatisfiable with a
    ``depth``-long unsat core, stressing conflict explanation at scale.
    """
    if depth < 1 or chains < 1:
        raise ValueError("deep_dataflow_program needs depth >= 1 and chains >= 1")
    fields = [f"    <bit<{width}>, {source_level}> seed;"]
    for chain in range(chains):
        fields.extend(
            f"    bit<{width}> c{chain}_s{i};" for i in range(depth)
        )
    if sink_level is not None:
        fields.append(f"    <bit<{width}>, {sink_level}> sink;")
    body: List[str] = []
    for chain in range(chains):
        body.append(f"        hdr.data.c{chain}_s0 = hdr.data.seed;")
        body.extend(
            f"        hdr.data.c{chain}_s{i} = hdr.data.c{chain}_s{i - 1};"
            for i in range(1, depth)
        )
    if sink_level is not None:
        body.append(f"        hdr.data.sink = hdr.data.c0_s{depth - 1};")
    return (
        "header data_t {\n"
        + "\n".join(fields)
        + "\n}\n\nstruct headers { data_t data; }\n"
        + "\ncontrol Deep_Ingress(inout headers hdr) {\n    apply {\n"
        + "\n".join(body)
        + "\n    }\n}\n"
    )


def scc_cycle_program(
    cycles: int,
    cycle_length: int = 3,
    *,
    source_level: str = "high",
    width: int = 8,
) -> str:
    """``cycles`` groups of ``cycle_length`` mutually-assigning fields.

    Each group's fields are copied around in a ring (``n1 = n0``, ...,
    ``n0 = n(L-1)``), making every group one strongly connected component
    of the propagation graph; group ``k`` is additionally fed from group
    ``k-1`` (group 0 from the annotated seed), so the condensation is a
    chain of ``cycles`` cyclic components.  A solver that schedules the
    condensation topologically converges each ring locally before moving
    on; a global worklist keeps revisiting earlier rings.
    """
    if cycles < 1 or cycle_length < 2:
        raise ValueError(
            "scc_cycle_program needs cycles >= 1 and cycle_length >= 2"
        )
    fields = [f"    <bit<{width}>, {source_level}> seed;"]
    for cycle in range(cycles):
        fields.extend(
            f"    bit<{width}> c{cycle}_n{i};" for i in range(cycle_length)
        )
    body: List[str] = []
    for cycle in range(cycles):
        feeder = "seed" if cycle == 0 else f"c{cycle - 1}_n0"
        body.append(f"        hdr.data.c{cycle}_n0 = hdr.data.{feeder};")
        body.extend(
            f"        hdr.data.c{cycle}_n{i} = hdr.data.c{cycle}_n{i - 1};"
            for i in range(1, cycle_length)
        )
        body.append(
            f"        hdr.data.c{cycle}_n0 = hdr.data.c{cycle}_n{cycle_length - 1};"
        )
    return (
        "header data_t {\n"
        + "\n".join(fields)
        + "\n}\n\nstruct headers { data_t data; }\n"
        + "\ncontrol Cycle_Ingress(inout headers hdr) {\n    apply {\n"
        + "\n".join(body)
        + "\n    }\n}\n"
    )


def wide_table_program(
    *,
    tables: int = 4,
    actions_per_table: int = 4,
    keys_per_table: int = 2,
    secure: bool = True,
    seed: Optional[int] = None,
) -> str:
    """A control block with many match-action tables.

    Every action writes a distinct low field; keys are low in the secure
    variant and high in the insecure one (so the insecure variant triggers
    ``tables * actions_per_table`` table-key violations -- useful both for
    checker stress tests and for measuring how T-TblDecl's key x action
    constraint checking scales).
    """
    rng = random.Random(seed or 0)
    key_label = "low" if secure else "high"
    header_fields = ["    <bit<32>, low> out_value;", "    <bit<8>, low> ttl;"]
    for table_index in range(tables):
        for key_index in range(keys_per_table):
            header_fields.append(
                f"    <bit<32>, {key_label}> key_{table_index}_{key_index};"
            )
    header = (
        "header wide_t {\n" + "\n".join(header_fields) + "\n}\n\n"
        "struct headers { wide_t wide; }\n"
    )

    decls: List[str] = []
    applies: List[str] = []
    for table_index in range(tables):
        action_names = []
        for action_index in range(actions_per_table):
            name = f"act_{table_index}_{action_index}"
            action_names.append(name)
            constant = rng.randrange(1, 255)
            decls.append(
                f"    action {name}() {{\n"
                f"        hdr.wide.out_value = {constant};\n"
                f"        hdr.wide.ttl = hdr.wide.ttl - 1;\n"
                f"    }}"
            )
        keys = "\n".join(
            f"            hdr.wide.key_{table_index}_{key_index}: exact;"
            for key_index in range(keys_per_table)
        )
        actions = "; ".join(action_names)
        decls.append(
            f"    table tbl_{table_index} {{\n"
            f"        key = {{\n{keys}\n        }}\n"
            f"        actions = {{ {actions}; }}\n"
            f"    }}"
        )
        applies.append(f"        tbl_{table_index}.apply();")

    return (
        header
        + "\ncontrol Wide_Ingress(inout headers hdr) {\n"
        + "\n".join(decls)
        + "\n    apply {\n"
        + "\n".join(applies)
        + "\n    }\n}\n"
    )


def sharded_dataflow_program(
    shards: int,
    *,
    depth: int = 8,
    source_level: str = "high",
    width: int = 8,
) -> str:
    """``shards`` fully independent def-use chains, one control each.

    Every shard gets its own header, struct, and control block, and no
    shard references another's declarations -- so an edit confined to one
    shard leaves every other top-level unit byte-identical.  This is the
    workload the incremental workspace is measured on: a single-shard
    edit must re-walk one control (plus its changed declarations) and
    re-solve one shard's constraints, never the other ``shards - 1``.
    """
    if shards < 1 or depth < 1:
        raise ValueError("sharded_dataflow_program needs shards >= 1 and depth >= 1")
    parts: List[str] = []
    for shard in range(shards):
        fields = [f"    <bit<{width}>, {source_level}> seed;"]
        fields.extend(f"    bit<{width}> s{i};" for i in range(depth))
        parts.append(
            f"header shard{shard}_t {{\n" + "\n".join(fields) + "\n}\n"
        )
        parts.append(f"struct shard{shard}_headers {{ shard{shard}_t data; }}\n")
    for shard in range(shards):
        body = ["        hdr.data.s0 = hdr.data.seed;"]
        body.extend(
            f"        hdr.data.s{i} = hdr.data.s{i - 1};" for i in range(1, depth)
        )
        parts.append(
            f"control Shard{shard}(inout shard{shard}_headers hdr) {{\n    apply {{\n"
            + "\n".join(body)
            + "\n    }\n}\n"
        )
    return "\n".join(parts)
