"""Mega-scale synthetic constraint systems for solver benchmarking.

The program generators in :mod:`repro.synth.programs` stress the whole
pipeline, but parsing and constraint *generation* dominate long before the
solver does -- a 1M-constraint program would spend minutes in the frontend
to benchmark seconds of solving.  :func:`mega_constraint_system` therefore
builds :class:`~repro.inference.constraints.Constraint` lists directly, in
the exact shapes the generator emits (variable-to-variable propagation
chains, join fan-ins, occasional cycles, constant sources, upper-bound
checks), so ``benchmarks/test_solver_scaling.py`` can push the solver
backends from 10k to 1M constraints and record an ops/sec curve.

The system is deterministic for a given argument tuple (seeded
:class:`random.Random`, no set iteration), and its propagation graph has
the structure the parallel packed backend exploits: ``chains`` mostly
independent constant-seeded chains (= independent clusters for the
process-pool dispatch), sparse cross-links inside a chain's own cluster,
and optional small cycles to exercise the iterating schedule.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.inference.constraints import Constraint
from repro.inference.terms import (
    ConstTerm,
    JoinTerm,
    LabelVar,
    Term,
    VarSupply,
    VarTerm,
)
from repro.lattice.base import Label, Lattice


def mega_constraint_system(
    n_constraints: int,
    lattice: Lattice,
    *,
    seed: int = 0,
    chains: int = 64,
    cross_link_every: int = 17,
    cycle_every: int = 0,
    check_every: int = 100,
) -> Tuple[List[Constraint], List[LabelVar]]:
    """A deterministic constraint system of roughly ``n_constraints``.

    ``chains`` parallel def-use chains are grown round-robin, each seeded
    from a constant source label (cycling through the lattice's non-bottom
    labels so different chains converge to different values).  Every
    ``cross_link_every``-th step joins the previous link with a neighbour
    of the *same* chain a few links back (keeping chains in separate
    propagation clusters); every ``cycle_every``-th step (0 = never) adds a
    back-edge a few links up the same chain, creating a small genuine SCC;
    every ``check_every``-th step emits an upper-bound check against ⊤
    (always satisfiable) so the check machinery is exercised without
    drowning the output in conflicts.

    Returns ``(constraints, chain_tails)`` -- the tails are the final
    variable of each chain, handy for spot-checking solved values.
    """
    if n_constraints < chains:
        chains = max(1, n_constraints)
    rng = random.Random(seed)
    supply = VarSupply()
    constraints: List[Constraint] = []
    seeds = _seed_labels(lattice, chains, rng)
    tails: List[LabelVar] = []
    history: List[List[LabelVar]] = []
    for chain_index in range(chains):
        head = supply.fresh(hint=f"chain{chain_index}.v0")
        constraints.append(
            Constraint(
                ConstTerm(seeds[chain_index]),
                VarTerm(head),
                rule="synth-source",
                reason=f"chain {chain_index} source",
            )
        )
        tails.append(head)
        history.append([head])
    step = 0
    while len(constraints) < n_constraints:
        chain_index = step % chains
        step += 1
        prev = tails[chain_index]
        links = history[chain_index]
        nxt = supply.fresh(hint=f"chain{chain_index}.v{len(links)}")
        lhs: Term = VarTerm(prev)
        if cross_link_every and step % cross_link_every == 0 and len(links) > 3:
            other = links[rng.randrange(0, len(links) - 1)]
            lhs = JoinTerm((VarTerm(prev), VarTerm(other)))
        constraints.append(
            Constraint(lhs, VarTerm(nxt), rule="synth-step")
        )
        if cycle_every and step % cycle_every == 0 and len(links) > 4:
            back = links[-rng.randrange(2, min(5, len(links)))]
            constraints.append(
                Constraint(VarTerm(nxt), VarTerm(back), rule="synth-cycle")
            )
        if check_every and step % check_every == 0:
            constraints.append(
                Constraint(
                    VarTerm(nxt),
                    ConstTerm(lattice.top),
                    rule="synth-check",
                    reason="synthetic upper bound",
                )
            )
        tails[chain_index] = nxt
        links.append(nxt)
        # Bound the per-chain history so cross links stay local and memory
        # stays flat at the 1M tier.
        if len(links) > 64:
            del links[: len(links) - 64]
    return constraints, tails


def _seed_labels(lattice: Lattice, chains: int, rng: random.Random) -> List[Label]:
    """One source label per chain, cycling through a few non-bottom labels.

    Structured lattices can have astronomically many labels; sampling joins
    of ``top``-ish primitives keeps this cheap.  At minimum the list
    alternates ``top`` with one intermediate label when one exists.
    """
    pool: List[Label] = []
    for label in lattice.labels():
        if not lattice.equal(label, lattice.bottom):
            pool.append(label)
        if len(pool) >= 8:
            break
    if not pool:
        pool = [lattice.top]
    return [pool[rng.randrange(0, len(pool))] for _ in range(chains)]


def constraint_label_count(constraints: Sequence[Constraint]) -> int:
    """Distinct label variables a constraint list mentions (for reports)."""
    seen = set()
    for constraint in constraints:
        seen.update(constraint.variables())
    return len(seen)
