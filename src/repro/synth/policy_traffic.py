"""Deterministic scenario/traffic generation for the compliance workload.

The generator answers two needs of the throughput harness and the
differential suites:

* **a populated universe** — data subjects with varied consent grants and
  a dataset DAG with derivation lineage (raw per-subject datasets, shared
  aggregates, deep derivation chains), sized by parameters so the same
  shapes scale from the 48-label ``policy-mini`` smoke runs to the
  216-principal benchmark lattice;

* **a replayable event stream** — per-request label queries in the four
  scenario families the GDPR framing names (data-subject **access**,
  cross-purpose **reuse**, retention-**expiry** probes, plus mid-stream
  consent **revocations**), produced by a seeded :class:`random.Random`
  so the stream is byte-identical for a given ``(lattice, sizes, seed)``
  on any platform, hash seed, or worker count.

Events are plain data (:class:`TrafficEvent`), not engine calls: the same
stream replays against the packed and the graph backend and must produce
identical decision sequences — that equality is the differential pin.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.lattice.policy import PolicyLabel, PolicyLattice
from repro.policy.model import Dataset, PolicyUniverse, Request, SubjectGrant


@dataclass(frozen=True)
class TrafficEvent:
    """One event of the stream: a request to decide, or a consent update.

    Exactly one of ``request`` / ``regrant`` is set.
    """

    uid: int
    request: Optional[Request] = None
    #: ``(subject, new_bound)`` — a mid-stream consent revocation (the new
    #: bound is strictly below the old one) or a re-grant.
    regrant: Optional[Tuple[str, PolicyLabel]] = None

    @property
    def kind(self) -> str:
        return self.request.kind if self.request is not None else "revoke"


def scenario_universe(
    lattice: PolicyLattice,
    *,
    subjects: int = 24,
    datasets: int = 12,
    seed: int = 0,
) -> PolicyUniverse:
    """A deterministic universe over ``lattice``.

    Each subject grants a random-but-seeded subset of purposes/recipients
    and a retention ceiling biased away from the extremes; datasets split
    into per-subject *raw* datasets and *derived* datasets whose parents
    are drawn from everything generated before them (so later datasets
    have deep, wide lineage closures — the expensive compile case).
    """
    if subjects < 1 or datasets < 1:
        raise ValueError("a scenario needs at least one subject and one dataset")
    rng = random.Random((seed, subjects, datasets, lattice.name).__repr__())
    purposes = list(lattice.purposes)
    recipients = list(lattice.recipients)
    retention = list(lattice.retention_classes)

    def random_grant() -> PolicyLabel:
        return lattice.label(
            rng.sample(purposes, rng.randint(1, max(1, len(purposes) * 3 // 4))),
            rng.sample(recipients, rng.randint(1, max(1, len(recipients) * 3 // 4))),
            retention[rng.randint(len(retention) // 3, len(retention) - 1)],
        )

    grants = [
        SubjectGrant(f"s{index}", random_grant()) for index in range(subjects)
    ]
    raw_count = max(1, min(subjects, (datasets + 1) // 2))
    dataset_list: List[Dataset] = [
        Dataset(f"raw{index}", subjects=frozenset({f"s{index % subjects}"}))
        for index in range(raw_count)
    ]
    for index in range(raw_count, datasets):
        pool = [d.name for d in dataset_list]
        parents = tuple(sorted(rng.sample(pool, rng.randint(1, min(3, len(pool))))))
        direct = frozenset(
            f"s{rng.randrange(subjects)}" for _ in range(rng.randint(0, 2))
        )
        dataset_list.append(Dataset(f"drv{index}", subjects=direct, parents=parents))
    return PolicyUniverse(lattice, grants, dataset_list)


def policy_traffic(
    universe: PolicyUniverse,
    *,
    events: int = 1000,
    revoke_every: int = 200,
    seed: int = 0,
) -> List[TrafficEvent]:
    """A deterministic stream of ``events`` traffic events over ``universe``.

    The mix cycles through the scenario families:

    * ``access`` — a data subject accesses a raw dataset for an in-grant
      purpose (mostly permits);
    * ``reuse`` — a derived dataset is reused for a random purpose/
      recipient pair (cross-purpose reuse; permits and denies);
    * ``expiry`` — a request demands the *longest* retention class, the
      retention-expiry probe (denied unless every contributing subject
      accepted indefinite retention);
    * every ``revoke_every`` events, one subject's grant shrinks to the
      meet of its current bound with a fresh random grant — mid-stream
      revocation, so bounds only ever tighten and later decisions flip
      from permit to deny, never the reverse.
    """
    if events < 1:
        raise ValueError("a traffic stream needs at least one event")
    lattice = universe.lattice
    rng = random.Random((seed, events, revoke_every, lattice.name).__repr__())
    purposes = list(lattice.purposes)
    recipients = list(lattice.recipients)
    retention = list(lattice.retention_classes)
    subjects = list(universe.subjects)
    datasets = list(universe.datasets)
    raw = [name for name in datasets if not universe.dataset(name).parents]
    derived = [name for name in datasets if universe.dataset(name).parents] or raw

    stream: List[TrafficEvent] = []
    grants = dict(universe.grants())
    for uid in range(events):
        if revoke_every and uid and uid % revoke_every == 0:
            subject = rng.choice(subjects)
            shrunk = lattice.meet(
                grants[subject],
                lattice.label(
                    rng.sample(purposes, max(1, len(purposes) // 2)),
                    rng.sample(recipients, max(1, len(recipients) // 2)),
                    retention[rng.randrange(len(retention))],
                ),
            )
            grants[subject] = shrunk
            stream.append(TrafficEvent(uid, regrant=(subject, shrunk)))
            continue
        family = rng.randrange(3)
        if family == 0:
            dataset = rng.choice(raw)
            subject_pool = universe.contributing_subjects(dataset)
            bound = grants[subject_pool[0]] if subject_pool else lattice.top
            purpose = (
                rng.choice(sorted(bound.purposes))
                if bound.purposes
                else rng.choice(purposes)
            )
            recipient = (
                rng.choice(sorted(bound.recipients))
                if bound.recipients
                else rng.choice(recipients)
            )
            request = Request(
                uid, dataset, purpose, recipient, retention[0], kind="access"
            )
        elif family == 1:
            request = Request(
                uid,
                rng.choice(derived),
                rng.choice(purposes),
                rng.choice(recipients),
                retention[rng.randrange(len(retention))],
                kind="reuse",
            )
        else:
            request = Request(
                uid,
                rng.choice(datasets),
                rng.choice(purposes),
                rng.choice(recipients),
                retention[-1],
                kind="expiry",
            )
        stream.append(TrafficEvent(uid, request=request))
    return stream
