"""Synthetic program generation.

Used by the ablation benchmarks (checker cost vs program size and vs
lattice height) and by the property-based tests that validate the
soundness claim empirically: any randomly generated program the checker
accepts must pass the differential non-interference harness.
"""

from repro.synth.programs import (
    chain_pipeline_program,
    random_straightline_program,
    wide_table_program,
)

__all__ = [
    "chain_pipeline_program",
    "random_straightline_program",
    "wide_table_program",
]
