"""Synthetic program generation.

Used by the ablation benchmarks (checker cost vs program size and vs
lattice height), by the property-based tests that validate the soundness
claim empirically (any randomly generated program the checker accepts must
pass the differential non-interference harness), and by the solver-scaling
stress suite (:func:`deep_dataflow_program` / :func:`scc_cycle_program`
synthesise programs whose inference constraint systems reach 10k+
constraints).
"""

from repro.synth.constraints import constraint_label_count, mega_constraint_system
from repro.synth.policy_traffic import TrafficEvent, policy_traffic, scenario_universe
from repro.synth.programs import (
    chain_pipeline_program,
    deep_dataflow_program,
    random_straightline_program,
    scc_cycle_program,
    sharded_dataflow_program,
    wide_table_program,
)

__all__ = [
    "chain_pipeline_program",
    "constraint_label_count",
    "deep_dataflow_program",
    "mega_constraint_system",
    "policy_traffic",
    "random_straightline_program",
    "scc_cycle_program",
    "scenario_universe",
    "sharded_dataflow_program",
    "TrafficEvent",
    "wide_table_program",
]
