"""D2R: dataplane routing with priorities (Section 5.1, Listing 3).

D2R performs routing entirely in the data plane: each switch carries BFS
bookkeeping in a ``bfs_t`` header and repeatedly applies a ``bfs_step``
table (the loop is unrolled, since P4 has no loops) until the search
reaches the destination, at which point the ``forward`` table forwards the
packet.

The paper's extension assigns higher priority to packets that encountered
more link failures.  The number of failures is derived from
``hdr.bfs.num_hops``, which is secret (it reveals how unreliable a private
network's links are).  The insecure variant branches on the failure count
inside the forwarding action and writes the public ``ipv4.priority`` field
-- an indirect leak.  The secure variant derives the priority only from the
public count of tried links.
"""

from __future__ import annotations

from repro.casestudies.base import CaseStudy
from repro.ifc.errors import ViolationKind
from repro.semantics.control_plane import ControlPlane, TableEntry, Wildcard
from repro.semantics.values import IntValue

_HEADERS = """
// D2R: data-plane routing with priorities (Listing 3).
header bfs_t {
    <bit<32>, low>  curr;
    <bit<32>, low>  next_node;
    <bit<32>, low>  tried_links;
    <bit<32>, high> num_hops;
}

header ipv4_t {
    <bit<3>, low>  priority;
    <bit<8>, low>  ttl;
    <bit<32>, low> dstAddr;
}

struct headers {
    bfs_t bfs;
    ipv4_t ipv4;
}
"""

_INSECURE_ACTIONS = """
    // number of failed links: tried links minus successfully traversed hops
    <bit<32>, high> failures = hdr.bfs.tried_links - hdr.bfs.num_hops;

    action NoAction() { }
    action bfs_advance(<bit<32>, low> next_node) {
        hdr.bfs.curr = hdr.bfs.next_node;
        hdr.bfs.next_node = next_node;
        hdr.bfs.tried_links = hdr.bfs.tried_links + 1;
    }
    table bfs_step {
        key = { hdr.bfs.curr: exact; }
        actions = { bfs_advance; NoAction; }
    }
    action forwarding(in <bit<32>, high> failures) {
        if (failures >= 2) {
            hdr.ipv4.priority = 7;   // Leak: low <- branch on high
        } else {
            hdr.ipv4.priority = 1;   // Leak: low <- branch on high
        }
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    table forward {
        key = { hdr.bfs.next_node: exact; }
        actions = { forwarding(failures); NoAction; }
    }
"""

_SECURE_ACTIONS = """
    // priority is computed from the (public) number of tried links only
    <bit<32>, low> tried = hdr.bfs.tried_links;

    action NoAction() { }
    action bfs_advance(<bit<32>, low> next_node) {
        hdr.bfs.curr = hdr.bfs.next_node;
        hdr.bfs.next_node = next_node;
        hdr.bfs.tried_links = hdr.bfs.tried_links + 1;
    }
    table bfs_step {
        key = { hdr.bfs.curr: exact; }
        actions = { bfs_advance; NoAction; }
    }
    action forwarding(in <bit<32>, low> tried) {
        if (tried >= 2) {
            hdr.ipv4.priority = 7;
        } else {
            hdr.ipv4.priority = 1;
        }
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    table forward {
        key = { hdr.bfs.next_node: exact; }
        actions = { forwarding(tried); NoAction; }
    }
"""

_APPLY_STEP = """
        if (hdr.bfs.curr != hdr.ipv4.dstAddr) {
            bfs_step.apply();
        } else {
            forward.apply();
        }
"""


def d2r_source(*, secure: bool, bfs_steps: int = 2) -> str:
    """Build the D2R program with ``bfs_steps`` unrolled BFS iterations.

    The unrolling factor is the knob used by the scaling ablation benchmark:
    larger values produce longer apply blocks (as a real D2R deployment
    would unroll to the network diameter).
    """
    actions = _SECURE_ACTIONS if secure else _INSECURE_ACTIONS
    body = _APPLY_STEP * max(1, bfs_steps)
    return (
        _HEADERS
        + "\ncontrol D2R_Ingress(inout headers hdr) {\n"
        + actions
        + "    apply {\n"
        + body
        + "    }\n}\n"
    )


def _control_plane() -> ControlPlane:
    plane = ControlPlane()
    # BFS steps: advance node 1 -> 2 -> 3; destination is node 3.
    plane.add_exact_entry("bfs_step", [1], "bfs_advance", {"next_node": IntValue(2, 32)})
    plane.add_exact_entry("bfs_step", [2], "bfs_advance", {"next_node": IntValue(3, 32)})
    plane.set_default_action("bfs_step", "NoAction")
    # Forwarding matches any next_node.
    plane.add_entry("forward", TableEntry((Wildcard(),), "forwarding"))
    plane.set_default_action("forward", "forwarding")
    return plane


def d2r_case_study(bfs_steps: int = 2) -> CaseStudy:
    """The D2R row of Table 1 (Section 5.1)."""
    return CaseStudy(
        name="d2r",
        title="Dataplane routing with priorities (D2R)",
        section="5.1",
        description=(
            "In-switch BFS routing that prioritises packets which saw many link "
            "failures; the failure count is derived from the secret num_hops "
            "field, so using it to set the public priority is an indirect leak."
        ),
        lattice_name="two-point",
        secure_source=d2r_source(secure=True, bfs_steps=bfs_steps),
        insecure_source=d2r_source(secure=False, bfs_steps=bfs_steps),
        expected_violations=(ViolationKind.IMPLICIT_FLOW,),
        control_plane_factory=_control_plane,
        leak_observable_differentially=False,
        notes=(
            "The secret (num_hops) arrives in the packet, so the leak is "
            "observable through ipv4.priority -- but only on packets whose BFS "
            "has already reached the destination (curr == dstAddr), which random "
            "inputs rarely satisfy.  The test-suite exhibits the leak with a "
            "directed input pair instead of the random harness."
        ),
    )
