"""Common infrastructure for the case studies."""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from repro.ifc.errors import ViolationKind
from repro.semantics.control_plane import ControlPlane

#: Matches a security annotation ``<type, label>`` where the type may itself
#: contain one level of angle brackets (``bit<32>``); used to produce the
#: unannotated (plain p4c) variant of a program.
_ANNOTATION_RE = re.compile(
    r"<\s*((?:bit|int)\s*<\s*\d+\s*>|bool|int|void|\w+)\s*,\s*[^<>]+?>"
)

#: Matches the ``@pc(label)`` control annotation.
_PC_RE = re.compile(r"@pc\([^)]*\)\s*")


def strip_security_annotations(source: str) -> str:
    """Remove every security annotation, yielding a plain (p4c-style) program."""
    stripped = _ANNOTATION_RE.sub(lambda m: m.group(1), source)
    return _PC_RE.sub("", stripped)


def strip_body_annotations(source: str) -> str:
    """Remove the security annotations inside the control blocks only.

    Header/struct/typedef declarations (and any ``@pc`` annotations) keep
    their labels -- wherever they appear, including between or after
    control blocks -- so the security policy of the packet formats stays
    declared while every local variable and action parameter loses its
    annotation.  This is the *partially annotated* shape the
    :mod:`repro.inference` subsystem targets: the labels that remain act as
    the fixed sources/sinks of the constraint system, and inference
    re-derives everything in between.
    """
    pieces = []
    pos = 0
    for match in re.finditer(r"(?m)^[ \t]*control\b", source):
        start = match.start()
        if start < pos:
            continue
        open_brace = source.find("{", match.end())
        if open_brace < 0:
            break
        depth = 0
        end = open_brace
        while end < len(source):
            if source[end] == "{":
                depth += 1
            elif source[end] == "}":
                depth -= 1
                if depth == 0:
                    end += 1
                    break
            end += 1
        pieces.append(source[pos:start])
        pieces.append(_ANNOTATION_RE.sub(lambda m: m.group(1), source[start:end]))
        pos = end
    pieces.append(source[pos:])
    return "".join(pieces)


@dataclass
class CaseStudy:
    """One case study: its programs, lattice, and execution harness."""

    #: Short key used by the registry and the Table 1 benchmark rows.
    name: str
    #: Human readable title (matches the paper's section heading).
    title: str
    #: Paper section the case study comes from.
    section: str
    #: One paragraph describing the scenario and the leak.
    description: str
    #: Name of the lattice the programs are checked against.
    lattice_name: str
    #: Source of the variant accepted by P4BID.
    secure_source: str
    #: Source of the variant rejected by P4BID.
    insecure_source: str
    #: Violation kinds the insecure variant is expected to trigger.
    expected_violations: Tuple[ViolationKind, ...] = ()
    #: Builds the control plane used to execute the programs.
    control_plane_factory: Callable[[], ControlPlane] = ControlPlane
    #: Controls to check / run (None means every control in the program).
    control_names: Optional[Tuple[str, ...]] = None
    #: Observation level for the differential NI harness (None = lattice ⊥).
    #: The isolation study needs a tenant-level observer (Bob) to witness
    #: Alice's misbehaviour, since nothing is labelled below the tenants.
    ni_observation_level: Optional[str] = None
    #: Whether the differential NI harness can observe the insecure leak
    #: (False when the secret lives only in the control plane, which is held
    #: fixed across the two runs -- e.g. the Topology example).
    leak_observable_differentially: bool = True
    #: Extra notes rendered into EXPERIMENTS.md.
    notes: str = ""

    @property
    def unannotated_source(self) -> str:
        """The plain (label-free) program used as the p4c baseline in Table 1."""
        return strip_security_annotations(self.secure_source)

    def control_plane(self) -> ControlPlane:
        """A fresh control plane instance for executing the programs."""
        return self.control_plane_factory()
