"""Preventing manipulation in resource allocation (Section 5.3, Listing 5).

A gateway switch raises the priority of packets belonging to
latency-sensitive applications.  Reading the labels as integrity
(``high`` = untrusted, ``low`` = trusted): the client-supplied application
identifier is untrusted, while the priority field the network acts on is
trusted.  The insecure variant selects the priority by matching on the
untrusted ``appID``, letting a malicious client inflate its own priority;
the secure variant matches on the destination address instead, which a
client cannot forge without losing its own traffic.
"""

from __future__ import annotations

from repro.casestudies.base import CaseStudy
from repro.ifc.errors import ViolationKind
from repro.semantics.control_plane import ControlPlane, TernaryMatch, TableEntry
from repro.semantics.values import IntValue

_INSECURE = """
// Listing 5: resource allocation keyed on the untrusted application ID (insecure).
header app_t  { <bit<8>, high> appID; }
header ipv4_t {
    <bit<32>, low> dstAddr;
    <bit<3>, low>  priority;
    <bit<8>, low>  ttl;
}

struct headers {
    app_t app;
    ipv4_t ipv4;
}

control App_Ingress(inout headers hdr) {
    action set_priority(<bit<3>, low> priority) {
        hdr.ipv4.priority = priority;
    }
    action NoAction() { }
    table app_resources {
        key = { hdr.app.appID: exact; }
        actions = { set_priority; NoAction; }
    }
    apply {
        app_resources.apply();
    }
}
"""

_SECURE = """
// Resource allocation keyed on the trusted destination address (secure).
header app_t  { <bit<8>, high> appID; }
header ipv4_t {
    <bit<32>, low> dstAddr;
    <bit<3>, low>  priority;
    <bit<8>, low>  ttl;
}

struct headers {
    app_t app;
    ipv4_t ipv4;
}

control App_Ingress(inout headers hdr) {
    action set_priority(<bit<3>, low> priority) {
        hdr.ipv4.priority = priority;
    }
    action NoAction() { }
    table app_resources {
        key = { hdr.ipv4.dstAddr: exact; }
        actions = { set_priority; NoAction; }
    }
    apply {
        app_resources.apply();
    }
}
"""


def _control_plane() -> ControlPlane:
    plane = ControlPlane()
    # Requests whose key has its low bit set are latency sensitive and get a
    # high priority; everything else keeps the default priority.
    plane.add_entry(
        "app_resources",
        TableEntry(
            patterns=(TernaryMatch(1, 1),),
            action="set_priority",
            action_args=(("priority", IntValue(7, 3)),),
        ),
    )
    plane.set_default_action(
        "app_resources", "set_priority", {"priority": IntValue(1, 3)}
    )
    return plane


def resource_allocation_case_study() -> CaseStudy:
    """The App row of Table 1 (Section 5.3)."""
    return CaseStudy(
        name="app",
        title="Resource allocation integrity",
        section="5.3",
        description=(
            "A gateway assigns per-application priorities.  Under the integrity "
            "reading of labels, the client-controlled appID is untrusted and the "
            "priority field is trusted; deriving priority from appID lets a "
            "malicious client manipulate the allocation."
        ),
        lattice_name="two-point",
        secure_source=_SECURE,
        insecure_source=_INSECURE,
        expected_violations=(ViolationKind.TABLE_KEY_FLOW,),
        control_plane_factory=_control_plane,
    )
