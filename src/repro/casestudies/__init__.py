"""The case-study programs of Section 5 (and Table 1).

Each case study comes in a *secure* variant (accepted by P4BID), an
*insecure* variant (rejected, exhibiting the leak the paper describes), and
an *unannotated* variant (the p4c baseline of Table 1, obtained by
stripping the security annotations from the secure program).  Each also
provides a control plane so the programs can be executed by the
interpreter and fed to the non-interference harness.
"""

from repro.casestudies.base import CaseStudy, strip_security_annotations
from repro.casestudies.topology import topology_case_study
from repro.casestudies.d2r import d2r_case_study, d2r_source
from repro.casestudies.cache import cache_case_study
from repro.casestudies.resource_allocation import resource_allocation_case_study
from repro.casestudies.isolation import isolation_case_study
from repro.casestudies.netchain import netchain_case_study
from repro.casestudies.registry import (
    all_case_studies,
    get_case_study,
    table1_case_studies,
)

__all__ = [
    "CaseStudy",
    "strip_security_annotations",
    "topology_case_study",
    "d2r_case_study",
    "d2r_source",
    "cache_case_study",
    "resource_allocation_case_study",
    "isolation_case_study",
    "netchain_case_study",
    "all_case_studies",
    "get_case_study",
    "table1_case_studies",
]
