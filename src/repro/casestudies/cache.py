"""In-network caching with a timing side channel (Section 5.2, Listing 4).

A key-value store keeps hot items directly on the switch.  Whether a
request is served from the switch (fast) or from the controller (slow) is
observable to a timing-sensitive adversary; the program models that
observation with a ``hit`` flag in the response header.

The query is secret.  The table matches on the query and the invoked
actions write the publicly observable ``hit`` flag, so the match leaks one
bit of the query -- an indirect leak through the table key, which T-TblDecl
rejects.  The secure variant labels the adversary-visible response fields
``high`` as well (the operator decides the cache's hit pattern may only be
revealed to high observers), which type checks.
"""

from __future__ import annotations

from repro.casestudies.base import CaseStudy
from repro.ifc.errors import ViolationKind
from repro.semantics.control_plane import ControlPlane, TernaryMatch, TableEntry
from repro.semantics.values import IntValue

_INSECURE = """
// Listing 4: in-network cache with an observable hit flag (insecure).
header request_t  { <bit<8>, high> query; }
header response_t { <bit<1>, low> hit; <bit<32>, low> value; }
header eth_t      { <bit<48>, low> srcAddr; <bit<48>, low> dstAddr; }

struct headers {
    request_t req;
    response_t resp;
    eth_t eth;
}

control Cache_Ingress(inout headers hdr) {
    action cache_hit(<bit<32>, low> value) {
        hdr.resp.value = value;
        hdr.resp.hit = 1;
    }
    action cache_miss() {
        hdr.resp.hit = 0;
    }
    table fetch_from_cache {
        key = { hdr.req.query: exact; }
        actions = { cache_hit; cache_miss; }
    }
    apply {
        fetch_from_cache.apply();
    }
}
"""

_SECURE = """
// In-network cache, secure variant: the hit/value response fields are only
// visible to high observers, so matching on the secret query is allowed.
header request_t  { <bit<8>, high> query; }
header response_t { <bit<1>, high> hit; <bit<32>, high> value; }
header eth_t      { <bit<48>, low> srcAddr; <bit<48>, low> dstAddr; }

struct headers {
    request_t req;
    response_t resp;
    eth_t eth;
}

control Cache_Ingress(inout headers hdr) {
    action cache_hit(<bit<32>, high> value) {
        hdr.resp.value = value;
        hdr.resp.hit = 1;
    }
    action cache_miss() {
        hdr.resp.hit = 0;
    }
    table fetch_from_cache {
        key = { hdr.req.query: exact; }
        actions = { cache_hit; cache_miss; }
    }
    apply {
        fetch_from_cache.apply();
    }
}
"""


def _control_plane() -> ControlPlane:
    plane = ControlPlane()
    # Even queries are cached (hit), odd queries go to the controller (miss):
    # a ternary entry on the least significant bit keeps the hit rate at 50%
    # whatever the query distribution, so the differential harness observes
    # the leak quickly.
    plane.add_entry(
        "fetch_from_cache",
        TableEntry(
            patterns=(TernaryMatch(0, 1),),
            action="cache_hit",
            action_args=(("value", IntValue(0xDEADBEEF, 32)),),
        ),
    )
    plane.set_default_action("fetch_from_cache", "cache_miss")
    return plane


def cache_case_study() -> CaseStudy:
    """The Cache row of Table 1 (Section 5.2)."""
    return CaseStudy(
        name="cache",
        title="In-network caching (timing side channel)",
        section="5.2",
        description=(
            "A switch-resident cache answers hot queries locally; whether a "
            "request hit the cache is timing-observable, modelled as a public "
            "hit flag.  Matching on the secret query to set that flag is an "
            "indirect leak through the table key."
        ),
        lattice_name="two-point",
        secure_source=_SECURE,
        insecure_source=_INSECURE,
        expected_violations=(ViolationKind.TABLE_KEY_FLOW,),
        control_plane_factory=_control_plane,
    )
