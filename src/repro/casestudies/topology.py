"""Topology obfuscation: translating virtual to physical addresses.

This is the paper's running example (Listings 1 and 2, Section 2).  A
gateway switch rewrites virtual destination addresses into physical ones
when packets enter a local network.  The physical topology details
(physical address, local hop budget) are private to the network and live in
a dedicated ``local_hdr`` header that is stripped before packets leave.

The insecure variant stores the *local* TTL into the public ``ipv4.ttl``
field (Listing 1, line 34), so topology information escapes with the
packet.  P4BID flags the assignment as an explicit flow; the secure variant
stores it into ``local_hdr.phys_ttl`` instead.

Note: the secret here is supplied by the *control plane* (the
``update_to_phys`` arguments), which the non-interference definition holds
fixed across the two runs -- so this particular leak is a labelling error
caught statically but not observable by the differential harness.
"""

from __future__ import annotations

from repro.casestudies.base import CaseStudy
from repro.ifc.errors import ViolationKind
from repro.semantics.control_plane import ControlPlane, LpmMatch, TableEntry
from repro.semantics.values import IntValue

_SECURE = """
// Listing 2: security-annotated virtual-to-physical translation (secure).
header local_hdr_t {
    <bit<32>, high> phys_dstAddr;
    <bit<8>, high>  phys_ttl;
    <bit<48>, high> next_hop_MAC_addr;
}

header ipv4_t {
    <bit<8>, low>  ttl;
    <bit<8>, low>  protocol;
    <bit<32>, low> srcAddr;
    <bit<32>, low> dstAddr;
}

header eth_t {
    <bit<48>, low> srcAddr;
    <bit<48>, low> dstAddr;
}

struct headers {
    ipv4_t ipv4;
    eth_t eth;
    local_hdr_t local_hdr;
}

struct standard_metadata_t {
    <bit<9>, low> egress_spec;
    <bit<1>, low> drop_flag;
}

control Obfuscate_Ingress(inout headers hdr,
                          inout standard_metadata_t standard_metadata) {
    action update_to_phys(<bit<32>, high> phys_dstAddr, <bit<8>, high> phys_ttl) {
        hdr.local_hdr.phys_dstAddr = phys_dstAddr;
        // FIX: high <- high
        hdr.local_hdr.phys_ttl = phys_ttl;
    }
    table virtual2phys_topology {
        key = { hdr.ipv4.dstAddr: exact; }
        actions = { update_to_phys; }
    }
    action ipv4_forward(<bit<48>, low> dstAddr, <bit<9>, low> port) {
        hdr.eth.dstAddr = dstAddr;
        standard_metadata.egress_spec = port;
    }
    action drop() {
        standard_metadata.drop_flag = 1;
    }
    table ipv4_lpm_forward {
        key = { hdr.ipv4.dstAddr: lpm; }
        actions = { ipv4_forward; drop; }
    }
    apply {
        virtual2phys_topology.apply();
        ipv4_lpm_forward.apply();
    }
}
"""

_INSECURE = _SECURE.replace(
    """        // FIX: high <- high
        hdr.local_hdr.phys_ttl = phys_ttl;""",
    """        // BUG: low <- high (Listing 1, line 34)
        hdr.ipv4.ttl = phys_ttl;""",
)


def _control_plane() -> ControlPlane:
    plane = ControlPlane()
    plane.add_exact_entry(
        "virtual2phys_topology",
        [10],
        "update_to_phys",
        {"phys_dstAddr": IntValue(0xC0A80101, 32), "phys_ttl": IntValue(3, 8)},
    )
    plane.add_exact_entry(
        "virtual2phys_topology",
        [20],
        "update_to_phys",
        {"phys_dstAddr": IntValue(0xC0A80202, 32), "phys_ttl": IntValue(5, 8)},
    )
    plane.add_entry(
        "ipv4_lpm_forward",
        TableEntry(
            patterns=(LpmMatch(0, 0),),
            action="ipv4_forward",
            action_args=(
                ("dstAddr", IntValue(0xAABBCCDDEE00, 48)),
                ("port", IntValue(7, 9)),
            ),
        ),
    )
    plane.set_default_action("virtual2phys_topology", "update_to_phys")
    return plane


def topology_case_study() -> CaseStudy:
    """The Topology row of Table 1 (Listings 1 and 2)."""
    return CaseStudy(
        name="topology",
        title="Topology obfuscation (virtual-to-physical translation)",
        section="2",
        description=(
            "A gateway switch translates virtual destination addresses into "
            "physical ones; local topology details are high and must not reach "
            "the public ipv4/eth headers that leave the network."
        ),
        lattice_name="two-point",
        secure_source=_SECURE,
        insecure_source=_INSECURE,
        expected_violations=(ViolationKind.EXPLICIT_FLOW,),
        control_plane_factory=_control_plane,
        leak_observable_differentially=False,
        notes=(
            "The leaked secret (phys_ttl) is installed by the control plane, "
            "which Definition 4.2 holds fixed, so the leak is caught by the "
            "type system but not by the differential harness."
        ),
    )
