"""Registry of the case studies, keyed by their Table 1 row names."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.casestudies.base import CaseStudy
from repro.casestudies.cache import cache_case_study
from repro.casestudies.d2r import d2r_case_study
from repro.casestudies.isolation import isolation_case_study
from repro.casestudies.netchain import netchain_case_study
from repro.casestudies.resource_allocation import resource_allocation_case_study
from repro.casestudies.topology import topology_case_study

_FACTORIES: Dict[str, Callable[[], CaseStudy]] = {
    "d2r": d2r_case_study,
    "app": resource_allocation_case_study,
    "lattice": isolation_case_study,
    "topology": topology_case_study,
    "cache": cache_case_study,
    "netchain": netchain_case_study,
}

#: The five programs measured in Table 1, in the paper's row order.
TABLE1_ORDER = ("d2r", "app", "lattice", "topology", "cache")


def all_case_studies() -> List[CaseStudy]:
    """Every case study, Table 1 rows first."""
    ordered = list(TABLE1_ORDER) + [
        name for name in _FACTORIES if name not in TABLE1_ORDER
    ]
    return [_FACTORIES[name]() for name in ordered]


def table1_case_studies() -> List[CaseStudy]:
    """The five case studies whose checking time Table 1 reports."""
    return [_FACTORIES[name]() for name in TABLE1_ORDER]


def get_case_study(name: str) -> CaseStudy:
    """Look up a case study by its registry name (case-insensitive)."""
    key = name.strip().lower()
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown case study {name!r}; available: {', '.join(sorted(_FACTORIES))}"
        )
    return _FACTORIES[key]()
