"""NetChain role leakage (mentioned at the end of Section 5.1).

NetChain implements chain replication for a key-value store directly on
switches.  Each switch is assigned a role (head, internal, tail) which
determines, among other things, whether it emits a reply.  If the role is
considered secret topological information, making the externally visible
reply decision depend on it is an implicit leak, which is what the paper
reports finding when instrumenting NetChain with a ``high`` label on the
role field.

The secure variant bases the reply decision on the (public) destination
address of the request instead, e.g. replying exactly when the switch owns
the queried key range.
"""

from __future__ import annotations

from repro.casestudies.base import CaseStudy
from repro.ifc.errors import ViolationKind
from repro.semantics.control_plane import ControlPlane

_INSECURE = """
// NetChain-style chain replication: the reply decision leaks the switch role.
header chain_t {
    <bit<8>, high> role;
    <bit<16>, low> seq;
}
header kv_t {
    <bit<32>, low> query_key;
    <bit<32>, low> value;
    <bit<1>, low>  reply_sent;
}

struct headers {
    chain_t chain;
    kv_t kv;
}

control NetChain_Ingress(inout headers hdr) {
    action mark_reply() {
        hdr.kv.reply_sent = 1;
    }
    action forward_along_chain() {
        hdr.chain.seq = hdr.chain.seq + 1;
    }
    apply {
        if (hdr.chain.role == 2) {
            // BUG: the tail role (secret) decides the visible reply flag
            mark_reply();
        } else {
            forward_along_chain();
        }
    }
}
"""

_SECURE = """
// NetChain-style chain replication: reply decided from public data (secure).
header chain_t {
    <bit<8>, high> role;
    <bit<16>, low> seq;
}
header kv_t {
    <bit<32>, low> query_key;
    <bit<32>, low> value;
    <bit<1>, low>  reply_sent;
    <bit<32>, low> owned_range_end;
}

struct headers {
    chain_t chain;
    kv_t kv;
}

control NetChain_Ingress(inout headers hdr) {
    action mark_reply() {
        hdr.kv.reply_sent = 1;
    }
    action forward_along_chain() {
        hdr.chain.seq = hdr.chain.seq + 1;
    }
    apply {
        if (hdr.kv.query_key <= hdr.kv.owned_range_end) {
            mark_reply();
        } else {
            forward_along_chain();
        }
    }
}
"""


def netchain_case_study() -> CaseStudy:
    """The NetChain example (not a Table 1 row, but discussed in Section 5.1)."""
    return CaseStudy(
        name="netchain",
        title="NetChain role confidentiality",
        section="5.1",
        description=(
            "Chain replication on switches assigns each node a role; if the role "
            "is secret topological information, deciding whether to emit a reply "
            "based on it leaks the role to external observers."
        ),
        lattice_name="two-point",
        secure_source=_SECURE,
        insecure_source=_INSECURE,
        expected_violations=(ViolationKind.CALL_CONTEXT,),
        control_plane_factory=ControlPlane,
        notes=(
            "The leak is an implicit flow through a branch on the secret role; "
            "because the branch invokes an action that writes a low field, the "
            "checker reports it as a call in a high context."
        ),
    )
