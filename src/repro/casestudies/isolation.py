"""Network isolation with the diamond lattice (Section 5.4, Listings 6/7).

Two tenants, Alice and Bob, run dataplane programs on separate switches of
a shared private network.  Packets carry fields for each tenant plus
in-band telemetry and pre-configured routing data.  Labels come from the
four-point diamond lattice of Figure 8b:

* ``A`` -- Alice's fields, ``B`` -- Bob's fields,
* ``top`` -- telemetry (anyone may add to it, nobody below may read it),
* ``bot`` -- globally visible routing data.

Alice's control block is type checked under ``pc = A`` and Bob's under
``pc = B`` (the ``@pc(...)`` annotation), so each tenant can only write
fields at or above their own label.  The insecure variant has Alice writing
Bob's field and keying a table on telemetry; the secure variant (Listing 7)
only touches Alice's own field.
"""

from __future__ import annotations

from repro.casestudies.base import CaseStudy
from repro.ifc.errors import ViolationKind
from repro.semantics.control_plane import ControlPlane, TernaryMatch, TableEntry

_TYPES = """
header alice_t { <bit<32>, A> data; <bit<8>, A> tag; }
header bob_t   { <bit<32>, B> data; <bit<8>, B> tag; }
header telem_t { <bit<32>, top> counter; }
header eth_t   { <bit<48>, bot> srcAddr; <bit<48>, bot> dstAddr; }

struct headers {
    alice_t alice_data;
    bob_t bob_data;
    telem_t telem;
    eth_t eth;
}
"""

_INSECURE = _TYPES + """
// Listing 6: Alice's switch touches Bob's data and reads telemetry (insecure).
@pc(A)
control Alice_Ingress(inout headers hdr) {
    action set_by_alice(<bit<32>, A> value) {
        // Error: should not have written to Bob's field
        hdr.bob_data.data = value;
    }
    table update_by_alice {
        // Error: should not have used the telemetry field as a key
        key = { hdr.telem.counter: exact; }
        actions = { set_by_alice; }
    }
    apply {
        update_by_alice.apply();
    }
}

@pc(B)
control Bob_Ingress(inout headers hdr) {
    action set_by_bob() {
        // Allowed: accumulate telemetry using telemetry
        hdr.telem.counter = hdr.telem.counter + 1;
    }
    action NoAction() { }
    table update_by_bob {
        key = { hdr.eth.dstAddr: exact; }
        actions = { set_by_bob; NoAction; }
    }
    apply {
        update_by_bob.apply();
    }
}
"""

_SECURE = _TYPES + """
// Listing 7: each tenant only touches its own fields (secure).
@pc(A)
control Alice_Ingress(inout headers hdr) {
    action set_by_alice(<bit<32>, A> value) {
        hdr.alice_data.data = value;
    }
    table update_by_alice {
        key = { hdr.alice_data.tag: exact; }
        actions = { set_by_alice; }
    }
    apply {
        update_by_alice.apply();
    }
}

@pc(B)
control Bob_Ingress(inout headers hdr) {
    action set_by_bob() {
        // Allowed: accumulate telemetry using telemetry
        hdr.telem.counter = hdr.telem.counter + 1;
    }
    action NoAction() { }
    table update_by_bob {
        key = { hdr.eth.dstAddr: exact; }
        actions = { set_by_bob; NoAction; }
    }
    apply {
        update_by_bob.apply();
    }
}
"""


def _control_plane() -> ControlPlane:
    plane = ControlPlane()
    # Alice's table fires on every other key value so the two runs of the
    # differential harness are likely to disagree on whether it fires.
    alice_entry = TableEntry(patterns=(TernaryMatch(0, 1),), action="set_by_alice")
    plane.add_entry("update_by_alice", alice_entry)
    bob_entry = TableEntry(patterns=(TernaryMatch(0, 1),), action="set_by_bob")
    plane.add_entry("update_by_bob", bob_entry)
    plane.set_default_action("update_by_bob", "NoAction")
    return plane


def isolation_case_study() -> CaseStudy:
    """The Lattice row of Table 1 (Section 5.4)."""
    return CaseStudy(
        name="lattice",
        title="Network isolation and telemetry (diamond lattice)",
        section="5.4",
        description=(
            "Alice and Bob share a private network; a four-point diamond lattice "
            "isolates their header fields from each other while letting both add "
            "to write-only telemetry and read shared routing data."
        ),
        lattice_name="diamond",
        secure_source=_SECURE,
        insecure_source=_INSECURE,
        expected_violations=(
            ViolationKind.EXPLICIT_FLOW,
            ViolationKind.TABLE_KEY_FLOW,
        ),
        control_plane_factory=_control_plane,
        control_names=("Alice_Ingress", "Bob_Ingress"),
        ni_observation_level="B",
        notes=(
            "The insecure variant is rejected for two reasons, exactly as the "
            "paper describes: Alice writes Bob's field (A -> B is not allowed in "
            "the diamond) and keys a table on top-labelled telemetry while its "
            "action writes below top."
        ),
    )
