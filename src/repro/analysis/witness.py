"""Leak-path witnesses: the shortest provenance chain behind a conflict.

An unsat core (:meth:`repro.inference.graph.PropagationGraph.unsat_core`)
is the *complete* backward slice of a failing check -- every constraint
that helped push the offending label above its bound.  That is the right
artefact for minimisation but a poor explanation: at case-study size a
core routinely names a dozen constraints with no order a reader can
follow.

A :class:`LeakWitness` is the complementary artefact: one *shortest* chain
of propagation hops from a source (an edge whose high label is introduced
by constants alone -- an annotation, a literal's context, a pinned slot)
down to the failing ``require_leq`` obligation.  It is computed by a
breadth-first walk backwards over the deduplicated propagation graph,
restricted to edges that actually carried the offending label (evaluated
value above the check's bound, join covers honoured), so every hop is a
step the leak really takes and carries the source span of the constraint
that induced it.

``witnesses_for_solution`` builds one witness per conflict and orders the
conflicts by witness length -- shortest explanation first -- which is the
order ``p4bid`` reports them in (the CDCL-lifting line of work motivates
ranking conflict evidence by explanatory size).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.inference.constraints import Constraint
from repro.inference.solve import InferenceConflict, Solution
from repro.inference.terms import LabelVar, evaluate, free_vars
from repro.lattice.base import Label, Lattice
from repro.syntax.source import SourceSpan

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.inference.graph import PropagationEdge, PropagationGraph


@dataclass(frozen=True)
class WitnessHop:
    """One step of a leak path.

    ``var`` is the variable this hop raised above the bound (``None`` for
    the final hop, which is the failing check itself); ``value`` is the
    label the hop carried under the least solution.
    """

    constraint: Constraint
    var: Optional[LabelVar]
    value: Label

    @property
    def span(self) -> SourceSpan:
        return self.constraint.span

    def describe(self, lattice: Lattice) -> str:
        carried = lattice.format_label(self.value)
        where = "" if self.span.is_unknown() else f" at {self.span}"
        if self.var is None:
            return f"fails the check {self.constraint.describe()}{where}"
        return (
            f"raises {self.var.hint} to {carried}{where} "
            f"({self.constraint.reason or self.constraint.rule})"
        )


@dataclass(frozen=True)
class LeakWitness:
    """The shortest source→sink provenance chain behind one conflict."""

    conflict: InferenceConflict
    #: Source-first, sink-last; the final hop is the failing check.
    hops: Tuple[WitnessHop, ...]

    @property
    def length(self) -> int:
        return len(self.hops)

    def describe(self, lattice: Lattice) -> str:
        header = (
            f"leak path ({self.length} hop(s)): "
            f"{lattice.format_label(self.conflict.observed)} reaches a sink "
            f"bounded by {lattice.format_label(self.conflict.required)}"
        )
        lines = [header]
        for index, hop in enumerate(self.hops):
            lines.append(f"  {index + 1}. {hop.describe(lattice)}")
        return "\n".join(lines)


def _provenance(edge: "PropagationEdge") -> Constraint:
    """The constraint to show for one edge: prefer one with a real span."""
    for constraint in edge.constraints:
        if not constraint.span.is_unknown():
            return constraint
    return edge.origin


def witness_for_conflict(
    graph: "PropagationGraph",
    assignment: Dict[LabelVar, Label],
    conflict: InferenceConflict,
) -> LeakWitness:
    """Shortest leak path for ``conflict`` over the solved ``graph``.

    Breadth-first from the variables of the failing check backwards along
    the in-edges that carried the offending label; the first edge found
    whose own high label comes from constants alone (no source variable
    above the bound) is the nearest *source*, and the BFS parent pointers
    reconstruct the chain down to the check.  When the failing check
    involves no variables (a constant obligation, e.g. ``pc_fn ⊑ ⊥`` over
    an explicitly-labelled body), the witness is the single check hop.
    """
    lattice = graph.lattice
    bound = conflict.required
    check_hop = WitnessHop(conflict.constraint, None, conflict.observed)
    seeds = [
        var
        for var in sorted(free_vars(conflict.constraint.lhs), key=lambda v: v.uid)
        if var in assignment and not lattice.leq(assignment[var], bound)
    ]
    if not seeds:
        return LeakWitness(conflict, (check_hop,))
    #: upstream var -> (edge that raised it from the downstream side, the
    #: downstream var it was reached from).
    parents: Dict[LabelVar, Tuple["PropagationEdge", LabelVar]] = {}
    visited = set(seeds)
    queue: deque = deque(seeds)
    terminal: Optional[Tuple["PropagationEdge", LabelVar]] = None
    while queue and terminal is None:
        var = queue.popleft()
        for index in graph.edges_into.get(var, ()):
            edge = graph.edges[index]
            value = evaluate(edge.lhs, lattice, assignment)
            if edge.cover is not None and lattice.leq(value, edge.cover):
                continue  # the join's constant part absorbed the flow
            if lattice.leq(value, bound):
                continue  # this edge never pushed the variable over
            high_sources = [
                src
                for src in edge.sources
                if not lattice.leq(assignment[src], bound)
            ]
            if not high_sources:
                # The high label is introduced right here, by constants:
                # the nearest source annotation.  BFS order makes this the
                # shortest chain.
                terminal = (edge, var)
                break
            for src in high_sources:
                if src not in visited:
                    visited.add(src)
                    parents[src] = (edge, var)
                    queue.append(src)
    if terminal is None:
        # Every blamed variable is (transitively) raised only through
        # cycles of variables -- possible only via override floors; fall
        # back to the bare check so callers always get a witness.
        return LeakWitness(conflict, (check_hop,))
    edge, var = terminal
    hops: List[WitnessHop] = [
        WitnessHop(_provenance(edge), var, evaluate(edge.lhs, lattice, assignment))
    ]
    cursor = var
    while cursor in parents:
        down_edge, down_var = parents[cursor]
        hops.append(
            WitnessHop(
                _provenance(down_edge),
                down_var,
                evaluate(down_edge.lhs, lattice, assignment),
            )
        )
        cursor = down_var
    hops.append(check_hop)
    return LeakWitness(conflict, tuple(hops))


def witnesses_for_solution(solution: Solution) -> List[LeakWitness]:
    """One witness per conflict, ordered shortest-explanation-first.

    Requires a solution produced by the graph-based solvers (which set
    :attr:`~repro.inference.solve.Solution.graph`); a graphless solution
    yields bare single-hop witnesses so callers never need a special case.
    """
    graph = solution.graph
    witnesses: List[LeakWitness] = []
    for conflict in solution.conflicts:
        if graph is None:
            witnesses.append(
                LeakWitness(
                    conflict,
                    (WitnessHop(conflict.constraint, None, conflict.observed),),
                )
            )
        else:
            witnesses.append(
                witness_for_conflict(graph, solution.assignment, conflict)
            )
    witnesses.sort(
        key=lambda w: (w.length, str(w.conflict.constraint.span))
    )
    return witnesses
