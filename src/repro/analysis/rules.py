"""The coded diagnostic rules of the static-analysis layer.

Every finding the analysis layer can produce -- lint findings from
:mod:`repro.analysis.lints` as well as the checker/inference violations
re-surfaced for SARIF -- carries a stable rule code:

========  ==========================  ========
code      name                        severity
========  ==========================  ========
P4B001    redundant-annotation        note
P4B002    annotation-slack            warning
P4B003    ineffective-declassify      warning
P4B004    write-to-dead-slot          warning
P4B005    unreachable-after-exit      warning
P4B100    parse-error                 error
P4B101+   one per ``ViolationKind``   error
P4B110    core-type-error             error
========  ==========================  ========

The registry is the single source of truth: the lint engine looks rules up
by code when it emits a :class:`Finding`, and the SARIF writer
(:mod:`repro.analysis.sarif`) serialises the whole table as
``tool.driver.rules`` so every result's ``ruleIndex`` resolves to real
metadata.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ifc.errors import ViolationKind
from repro.syntax.source import SourceSpan


class Severity(enum.Enum):
    """Finding severity, aligned with SARIF ``level`` values."""

    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"

    @property
    def sarif_level(self) -> str:
        return self.value


@dataclass(frozen=True)
class LintRule:
    """Metadata for one rule code."""

    code: str
    name: str
    severity: Severity
    summary: str
    #: Longer help text; for lints this doubles as the generic fix hint.
    help: str


@dataclass(frozen=True)
class RelatedSpan:
    """A secondary location attached to a finding (witness hops, sources)."""

    message: str
    span: SourceSpan


@dataclass(frozen=True)
class Finding:
    """One located diagnostic produced by the analysis layer."""

    rule: LintRule
    message: str
    span: SourceSpan
    #: Rule-instance-specific fix hint (falls back to ``rule.help``).
    fix_hint: Optional[str] = None
    related: Tuple[RelatedSpan, ...] = ()

    @property
    def code(self) -> str:
        return self.rule.code

    @property
    def severity(self) -> Severity:
        return self.rule.severity

    def describe(self) -> str:
        location = "" if self.span.is_unknown() else f"{self.span}: "
        text = f"{location}{self.rule.severity.value} {self.rule.code} " \
            f"[{self.rule.name}]: {self.message}"
        hint = self.fix_hint or ""
        if hint:
            text += f" (hint: {hint})"
        return text

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule.code,
            "name": self.rule.name,
            "severity": self.rule.severity.value,
            "message": self.message,
            "span": str(self.span),
            "fix_hint": self.fix_hint or self.rule.help,
            "related": [
                {"message": rel.message, "span": str(rel.span)}
                for rel in self.related
            ],
        }


_RULES: List[LintRule] = [
    LintRule(
        "P4B001",
        "redundant-annotation",
        Severity.NOTE,
        "Explicit label equals the inferred least solution.",
        "The annotation restates what inference derives; drop it (or mark it "
        "`infer`) to keep the program minimal.",
    ),
    LintRule(
        "P4B002",
        "annotation-slack",
        Severity.WARNING,
        "Explicit label sits strictly above the inferred least solution.",
        "The slot over-classifies its data; lowering the annotation to the "
        "inferred label keeps every flow checkable and widens what "
        "downstream observers may see.",
    ),
    LintRule(
        "P4B003",
        "ineffective-declassify",
        Severity.WARNING,
        "Declassified value never reaches a lower-labelled sink.",
        "Removing this declassify() changes nothing the checker can see; "
        "delete it so every remaining declassify marks a real release.",
    ),
    LintRule(
        "P4B004",
        "write-to-dead-slot",
        Severity.WARNING,
        "Stored label is never read downstream.",
        "The slot absorbs flows but nothing observes it; remove the store "
        "or route the value somewhere it is read.",
    ),
    LintRule(
        "P4B005",
        "unreachable-after-exit",
        Severity.WARNING,
        "Statement can never execute: it follows exit/return in its block.",
        "Delete the dead statements or move them before the terminator.",
    ),
    LintRule(
        "P4B100",
        "parse-error",
        Severity.ERROR,
        "The source failed to parse.",
        "Fix the syntax error; nothing downstream of the parser ran.",
    ),
    LintRule(
        "P4B110",
        "core-type-error",
        Severity.ERROR,
        "The program is ill-typed in Core P4, before any label reasoning.",
        "Fix the base type error; security types refine core types.",
    ),
]

#: ``ViolationKind`` -> rule code, stable across releases: P4B101 upward in
#: enum declaration order.
VIOLATION_RULES: Dict[ViolationKind, LintRule] = {}
for _offset, _kind in enumerate(ViolationKind):
    _rule = LintRule(
        f"P4B{101 + _offset}",
        _kind.value,
        Severity.ERROR,
        f"Information-flow violation: {_kind.value.replace('-', ' ')}.",
        "The flow is rejected by the security type system; raise the sink's "
        "label, lower the source's, or audit the release with declassify().",
    )
    VIOLATION_RULES[_kind] = _rule
    _RULES.append(_rule)

#: Every rule, sorted by code -- the order SARIF ``ruleIndex`` values use.
ALL_RULES: Tuple[LintRule, ...] = tuple(sorted(_RULES, key=lambda r: r.code))

_BY_CODE: Dict[str, LintRule] = {rule.code: rule for rule in ALL_RULES}


def rule_by_code(code: str) -> LintRule:
    """Look a rule up by its ``P4Bxxx`` code."""
    return _BY_CODE[code]


def rule_for_violation(kind: ViolationKind) -> LintRule:
    """The rule backing one checker/inference violation kind."""
    return VIOLATION_RULES[kind]


def rule_table() -> str:
    """The registry as an aligned text table (README / ``--lint`` header)."""
    rows = [(rule.code, rule.name, rule.severity.value, rule.summary)
            for rule in ALL_RULES]
    widths = [max(len(row[i]) for row in rows) for i in range(3)]
    return "\n".join(
        f"{code:<{widths[0]}}  {name:<{widths[1]}}  "
        f"{severity:<{widths[2]}}  {summary}"
        for code, name, severity, summary in rows
    )
