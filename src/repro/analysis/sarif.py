"""SARIF 2.1.0 serialisation of analysis findings.

One :func:`sarif_document` call turns the findings of any number of
checked programs into a single SARIF log: one run, the full
:data:`repro.analysis.rules.ALL_RULES` registry as
``tool.driver.rules`` (so every result's ``ruleIndex`` resolves to real
metadata -- id, name, short description, default level, help), and one
``result`` per finding with a physical location whose region carries the
span's start *and* end line/column.  The shape follows the published
SARIF 2.1.0 schema; ``tests/test_analysis_sarif.py`` pins the required
structure without needing a JSON-schema validator.

Checker/inference/parse diagnostics are mapped onto the ``P4B1xx`` error
rules by the ``findings_from_*`` helpers, so a SARIF log carries the whole
verdict -- errors and lints -- in one artefact a CI system or editor can
ingest (``p4bid --sarif FILE``).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.rules import (
    ALL_RULES,
    Finding,
    rule_by_code,
    rule_for_violation,
)
from repro.ifc.errors import IfcDiagnostic
from repro.syntax.source import SourceSpan
from repro.typechecker.errors import TypeDiagnostic
from repro.version import __version__

_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"
_INFO_URI = "https://github.com/p4bid/p4bid"

_RULE_INDEX: Dict[str, int] = {rule.code: i for i, rule in enumerate(ALL_RULES)}


def findings_from_diagnostics(
    diagnostics: Iterable[IfcDiagnostic],
) -> List[Finding]:
    """IFC / inference diagnostics as ``P4B101+`` error findings."""
    return [
        Finding(rule_for_violation(diag.kind), diag.message, diag.span)
        for diag in diagnostics
    ]


def findings_from_core(diagnostics: Iterable[TypeDiagnostic]) -> List[Finding]:
    """Core type errors as ``P4B110`` findings."""
    return [
        Finding(rule_by_code("P4B110"), diag.message, diag.span)
        for diag in diagnostics
    ]


def finding_from_parse_error(message: str, filename: str) -> Finding:
    """A parse failure as the single ``P4B100`` finding of its artifact."""
    return Finding(
        rule_by_code("P4B100"),
        message,
        SourceSpan.point(1, 1, filename),
    )


def _region(span: SourceSpan) -> Dict[str, int]:
    if span.is_unknown():
        # SARIF regions are 1-based and mandatory for physical locations
        # here; synthesised nodes pin to the artifact's first character.
        return {"startLine": 1, "startColumn": 1, "endLine": 1, "endColumn": 1}
    return {
        "startLine": span.start.line,
        "startColumn": span.start.column,
        "endLine": max(span.end.line, span.start.line),
        "endColumn": max(span.end.column, 1),
    }


def _location(span: SourceSpan, fallback_uri: str) -> Dict[str, object]:
    uri = fallback_uri
    if not span.is_unknown() and span.filename not in ("<input>", ""):
        uri = span.filename
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": uri},
            "region": _region(span),
        }
    }


def _result(finding: Finding, uri: str) -> Dict[str, object]:
    message = finding.message
    hint = finding.fix_hint or ""
    if hint:
        message = f"{message} (hint: {hint})"
    result: Dict[str, object] = {
        "ruleId": finding.rule.code,
        "ruleIndex": _RULE_INDEX[finding.rule.code],
        "level": finding.rule.severity.sarif_level,
        "message": {"text": message},
        "locations": [_location(finding.span, uri)],
    }
    if finding.related:
        result["relatedLocations"] = [
            {
                **_location(rel.span, uri),
                "message": {"text": rel.message},
            }
            for rel in finding.related
        ]
    return result


def sarif_document(
    artifacts: Sequence[tuple],
    *,
    tool_name: str = "p4bid",
) -> Dict[str, object]:
    """Build one SARIF 2.1.0 log from ``(uri, findings)`` pairs."""
    rules = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": rule.help},
            "help": {"text": rule.help},
            "defaultConfiguration": {"level": rule.severity.sarif_level},
        }
        for rule in ALL_RULES
    ]
    results: List[Dict[str, object]] = []
    artifact_entries: List[Dict[str, object]] = []
    for uri, findings in artifacts:
        artifact_entries.append({"location": {"uri": uri}})
        for finding in findings:
            results.append(_result(finding, uri))
    return {
        "$schema": _SCHEMA_URI,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "version": __version__,
                        "informationUri": _INFO_URI,
                        "rules": rules,
                    }
                },
                "artifacts": artifact_entries,
                "results": results,
            }
        ],
    }


def sarif_json(
    artifacts: Sequence[tuple], *, tool_name: str = "p4bid", indent: Optional[int] = 2
) -> str:
    """The SARIF log as a JSON string."""
    return json.dumps(
        sarif_document(artifacts, tool_name=tool_name), indent=indent, sort_keys=False
    )
