"""The lint engine: coded findings over the label-flow structure.

Each rule is computed from one of three substrates -- the same three the
rest of the system already maintains, which is what makes the lints cheap
and trustworthy:

* **Relaxed re-inference** (P4B001 redundant-annotation, P4B002
  annotation-slack).  The program is re-generated with a
  :class:`RelaxedLabeler` that opens every *explicit* scalar annotation as
  a label variable pinned (floored) at its declared label, then a
  persistent :class:`~repro.inference.engine.Solver` unpins one slot at a
  time -- a cone-of-influence re-solve, so per-slot cost is proportional
  to what the slot can reach.  The unpinned least value is exactly what
  inference would derive if the annotation were deleted: equal to the
  declaration means the annotation is implied by the flows (P4B001),
  strictly below means the slot over-classifies and the gap is reported
  (P4B002), and anything else means the annotation genuinely constrains
  the program -- no finding.

* **Declassify probing** (P4B003 ineffective-declassify, and the
  ``--explain-flows`` audit in :func:`explain_flows`).  A
  :class:`ProbeAlgebra` re-runs constraint generation with a single
  ``declassify``/``endorse`` site *neutralised* (its labels kept instead
  of lowered to ⊥).  Conflicts that appear only under neutralisation are
  precisely the flows that site releases; each gets a shortest leak-path
  witness through the site (:mod:`repro.analysis.witness`).  A site whose
  neutralisation releases nothing is dead weight: the declassified value
  never reaches a lower-labelled sink (P4B003).

* **Graph queries and syntax** (P4B004 write-to-dead-slot, P4B005
  unreachable-after-exit).  A dead slot is an inferred annotation slot
  whose variable has in-edges in the propagation graph but is read by no
  edge and no check -- label flows in, nothing downstream ever observes
  it.  Unreachable statements are found by a direct walk over blocks: any
  statement after an ``exit``/``return`` in the same block can never run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.rules import Finding, RelatedSpan, rule_by_code
from repro.analysis.witness import LeakWitness, witness_for_conflict
from repro.flow.symbolic import SymbolicAlgebra
from repro.ifc.declassify import DECLASSIFY_FUNCTIONS
from repro.ifc.security_types import SecurityType, SHeader, SRecord, SStack
from repro.inference.engine import Solver
from repro.inference.generate import InferenceLabeler, generate_constraints
from repro.inference.graph import PropagationGraph
from repro.inference.solve import InferenceConflict, solve
from repro.inference.terms import LabelVar, Term, VarTerm, free_vars, join_terms
from repro.lattice.base import Label, Lattice, LatticeError
from repro.syntax import expressions as e
from repro.syntax import statements as s
from repro.syntax.program import Program
from repro.syntax.source import SourceSpan
from repro.syntax.types import AnnotatedType
from repro.syntax.visitor import walk
from repro.telemetry.recorder import current_recorder


# ---------------------------------------------------------------------------
# relaxed re-inference: explicit annotations as pinned variables


class RelaxedLabeler(InferenceLabeler):
    """An :class:`InferenceLabeler` that also opens *explicit* scalar slots.

    Every explicit scalar annotation becomes a fresh label variable
    recorded in ``pins`` with its declared label; the driver floors the
    variable at the declaration, so the solved system agrees with the
    annotated program, but any single slot can be unpinned to ask what
    inference would derive without it.
    """

    def __init__(self, lattice, definitions, registry, pins) -> None:
        super().__init__(lattice, definitions, registry)
        self._pins: Dict[LabelVar, Label] = pins

    def attach_label(
        self, annotated: AnnotatedType, base: SecurityType
    ) -> SecurityType:
        composite = isinstance(base.body, (SRecord, SHeader, SStack))
        if composite or self.slot_is_open(annotated.label):
            return super().attach_label(annotated, base)
        try:
            declared = self.lattice.parse_label(annotated.label)
        except LatticeError:
            return super().attach_label(annotated, base)
        var = self._registry.var_for(annotated)
        self._pins.setdefault(var, declared)
        base_label = base.label if isinstance(base.label, Term) else None
        parts = [VarTerm(var)] if base_label is None else [base_label, VarTerm(var)]
        return SecurityType(base.body, join_terms(self.lattice, parts))


class RelaxedAlgebra(SymbolicAlgebra):
    """Symbolic algebra whose labeler opens explicit scalar slots."""

    def __init__(self, lattice: Lattice, *, allow_declassification: bool = False):
        super().__init__(lattice, allow_declassification=allow_declassification)
        self.pins: Dict[LabelVar, Label] = {}

    def make_labeler(self, definitions) -> RelaxedLabeler:
        return RelaxedLabeler(self.lattice, definitions, self.registry, self.pins)


def _local_annotation_nodes(program: Program) -> set:
    """Identities of the annotation nodes on *local variable* declarations.

    Annotation lints deliberately cover only these: parameters, typedefs
    and header fields form the program's security *interface* -- declared
    policy, where "inference would derive less" is the whole point of the
    annotation -- whereas a local's label is implementation detail the
    flows fully determine, exactly the slots ``--infer`` can solve for.
    """
    from repro.syntax import declarations as d

    return {
        id(node.ty)
        for node in walk(program)
        if isinstance(node, d.VarDecl)
    }


def _annotation_findings(
    program: Program, lattice: Lattice, *, allow_declassification: bool
) -> List[Finding]:
    from repro.flow.analysis import FlowAnalysis

    algebra = RelaxedAlgebra(lattice, allow_declassification=allow_declassification)
    FlowAnalysis(algebra).run(program)
    if algebra.errors:
        return []  # unknown labels etc.: the relaxed system is not trustworthy
    local_nodes = _local_annotation_nodes(program)
    sites_by_var = {site.var: site for site in algebra.registry.sites()}
    pins = {
        var: label
        for var, label in algebra.pins.items()
        if var in sites_by_var and id(sites_by_var[var].node) in local_nodes
    }
    if not pins:
        return []
    # Every explicit annotation stays pinned (the solved system must agree
    # with the annotated program); only the local slots are probed.
    solver = Solver(lattice, algebra.constraints.as_list())
    solver.resolve(dict(algebra.pins))
    findings: List[Finding] = []
    for var in sorted(pins, key=lambda v: v.uid):
        declared = pins[var]
        relaxed = solver.resolve({var: None})
        least = relaxed.value_of(var)
        solver.resolve({var: declared})
        site = sites_by_var.get(var)
        span = site.span if site is not None else var.span
        hint = site.hint if site is not None else var.hint
        if lattice.equal(least, declared):
            findings.append(
                Finding(
                    rule_by_code("P4B001"),
                    f"annotation {lattice.format_label(declared)} on {hint} "
                    "equals the inferred least label; the flows already imply it",
                    span,
                    fix_hint="drop the annotation (or mark it `infer`)",
                )
            )
        elif lattice.leq(least, declared):
            findings.append(
                Finding(
                    rule_by_code("P4B002"),
                    f"{hint} is annotated {lattice.format_label(declared)} but "
                    f"inference derives {lattice.format_label(least)}; the slot "
                    "over-classifies its data by that gap",
                    span,
                    fix_hint=(
                        f"lower the annotation to {lattice.format_label(least)}"
                    ),
                )
            )
        # Otherwise the flows force the slot at or above somewhere the
        # declaration does not cover: the annotation is load-bearing.
    return findings


# ---------------------------------------------------------------------------
# declassify probing


@dataclass(frozen=True)
class DeclassifySite:
    """One honoured ``declassify``/``endorse`` use, in traversal order."""

    index: int
    primitive: str
    expression: str
    span: SourceSpan

    def describe(self) -> str:
        return f"{self.primitive}({self.expression}) at {self.span}"


@dataclass(frozen=True)
class ReleasedFlow:
    """One flow a declassify site releases: site plus leak-path witness.

    The witness is computed in the *neutralised* system (the site's labels
    kept instead of lowered), so its chain is exactly the source→sink path
    that crosses the release.
    """

    site: DeclassifySite
    witness: LeakWitness


class ProbeAlgebra(SymbolicAlgebra):
    """Symbolic algebra that can *neutralise* one declassify site.

    The traversal calls ``record_declassification`` immediately before
    ``lower_to_bottom`` at every honoured release site; numbering the
    sites in traversal order therefore lets probe run ``i`` skip exactly
    the ``i``-th lowering, keeping the declassified value's labels intact.
    """

    def __init__(self, lattice: Lattice, *, neutralize: Optional[int] = None):
        super().__init__(lattice, allow_declassification=True)
        self.neutralize = neutralize
        self.sites: List[DeclassifySite] = []
        self._skip_next_lower = False

    def record_declassification(
        self, primitive: str, expression: str, sec_type, span: SourceSpan
    ) -> None:
        index = len(self.sites)
        self.sites.append(DeclassifySite(index, primitive, expression, span))
        self._skip_next_lower = self.neutralize == index

    def lower_to_bottom(self, sec_type: SecurityType) -> SecurityType:
        if self._skip_next_lower:
            self._skip_next_lower = False
            return sec_type
        return super().lower_to_bottom(sec_type)


def _conflict_key(conflict: InferenceConflict) -> Tuple[str, str, str]:
    constraint = conflict.constraint
    return (str(constraint.span), constraint.rule, constraint.reason)


def _has_declassify(program: Program) -> bool:
    return any(
        isinstance(node, e.Call)
        and isinstance(node.callee, e.Var)
        and node.callee.name in DECLASSIFY_FUNCTIONS
        for node in walk(program)
    )


def probe_declassifications(
    program: Program, lattice: Lattice
) -> Tuple[List[DeclassifySite], Dict[int, List[ReleasedFlow]]]:
    """What every declassify site releases.

    Runs one honoured baseline generation plus one neutralised
    generation+solve per site; conflicts present only under neutralisation
    are the released flows, each explained by a shortest witness through
    the site.  Returns the sites (traversal order) and the per-site
    released flows (empty list = the site is ineffective).
    """
    from repro.flow.analysis import FlowAnalysis

    recorder = current_recorder()
    baseline = ProbeAlgebra(lattice)
    with recorder.span("analysis.declassify-baseline"):
        FlowAnalysis(baseline).run(program)
        baseline_solution = solve(lattice, baseline.constraints.as_list())
    baseline_keys = {_conflict_key(c) for c in baseline_solution.conflicts}
    releases: Dict[int, List[ReleasedFlow]] = {}
    for site in baseline.sites:
        with recorder.span("analysis.declassify-probe", site=str(site.span)):
            probe = ProbeAlgebra(lattice, neutralize=site.index)
            FlowAnalysis(probe).run(program)
            solution = solve(lattice, probe.constraints.as_list())
        released = [
            conflict
            for conflict in solution.conflicts
            if _conflict_key(conflict) not in baseline_keys
        ]
        releases[site.index] = [
            ReleasedFlow(
                site,
                witness_for_conflict(
                    solution.graph, solution.assignment, conflict
                ),
            )
            for conflict in released
        ]
        if recorder.enabled:
            recorder.count("analysis.declassify_probes")
            recorder.count("analysis.released_flows", len(released))
    return baseline.sites, releases


def _declassify_findings(program: Program, lattice: Lattice) -> List[Finding]:
    if not _has_declassify(program):
        return []
    sites, releases = probe_declassifications(program, lattice)
    findings: List[Finding] = []
    for site in sites:
        if releases.get(site.index):
            continue
        findings.append(
            Finding(
                rule_by_code("P4B003"),
                f"{site.primitive}({site.expression}) has no effect: the "
                "declassified value never reaches a lower-labelled sink",
                site.span,
                fix_hint=f"remove the {site.primitive}() wrapper",
            )
        )
    return findings


def explain_flows(program: Program, lattice: Lattice) -> List[ReleasedFlow]:
    """Every declassify-crossing source→sink path, for ``--explain-flows``.

    The audit a reviewer signs off on: for each release site, the flows
    that exist *because* of it, each as a shortest leak-path witness
    (ordered by site, then by witness length).
    """
    if not _has_declassify(program):
        return []
    sites, releases = probe_declassifications(program, lattice)
    flows: List[ReleasedFlow] = []
    for site in sites:
        flows.extend(
            sorted(
                releases.get(site.index, ()),
                key=lambda flow: (
                    flow.witness.length,
                    str(flow.witness.conflict.constraint.span),
                ),
            )
        )
    return flows


# ---------------------------------------------------------------------------
# graph query: write-to-dead-slot


def _dead_slot_findings(
    program: Program,
    lattice: Lattice,
    *,
    allow_declassification: bool,
    generation=None,
    graph=None,
) -> List[Finding]:
    if generation is None:
        generation = generate_constraints(
            program, lattice, allow_declassification=allow_declassification
        )
    if generation.errors:
        return []
    if graph is None:
        graph = PropagationGraph(lattice, generation.constraints)
    read_vars = set(graph.dependents)  # appears on some edge's left side
    for lhs, rhs, _origin in graph.checks:
        read_vars |= free_vars(lhs) | free_vars(rhs)
    findings: List[Finding] = []
    for site in generation.sites:
        var = site.var
        if var not in graph.edges_into:
            continue  # nothing ever stored into the slot
        if var in read_vars:
            continue  # the stored label is observed downstream
        findings.append(
            Finding(
                rule_by_code("P4B004"),
                f"label stored into {site.hint} is never read downstream: "
                f"{len(graph.edges_into[var])} flow(s) in, none out",
                site.span,
                fix_hint="remove the store or route the value to a reader",
            )
        )
    return findings


# ---------------------------------------------------------------------------
# syntactic lint: unreachable-after-exit


def _unreachable_findings(program: Program) -> List[Finding]:
    findings: List[Finding] = []
    for node in walk(program):
        if not isinstance(node, s.Block):
            continue
        terminator: Optional[s.Statement] = None
        dead: List[s.Statement] = []
        for statement in node.statements:
            if terminator is not None:
                dead.append(statement)
            elif isinstance(statement, (s.Exit, s.Return)):
                terminator = statement
        if terminator is None or not dead:
            continue
        span = dead[0].span
        for statement in dead[1:]:
            span = span.merge(statement.span)
        kind = "exit" if isinstance(terminator, s.Exit) else "return"
        findings.append(
            Finding(
                rule_by_code("P4B005"),
                f"{len(dead)} statement(s) can never execute: the block "
                f"{kind}s at {terminator.span}",
                span,
                fix_hint="delete the dead statements or move them before "
                f"the {kind}",
                related=(RelatedSpan(f"block {kind}s here", terminator.span),),
            )
        )
    return findings


# ---------------------------------------------------------------------------
# the engine


def _finding_order(finding: Finding) -> Tuple[int, int, str, str]:
    span = finding.span
    return (span.start.line, span.start.column, finding.code, finding.message)


def run_lints(
    program: Program,
    lattice: Lattice,
    *,
    allow_declassification: bool = False,
    generation=None,
    graph=None,
) -> List[Finding]:
    """Run every lint rule over ``program``; findings in source order.

    P4B003 probes only run when declassification is honoured
    (``allow_declassification``) -- otherwise every release site is
    already an error and "ineffective" is meaningless.

    A warm workspace passes its cached ``generation`` and propagation
    ``graph`` so the graph-query lints skip the redundant constraint
    re-generation; the findings are identical either way.
    """
    recorder = current_recorder()
    with recorder.span("analysis.lint"):
        findings: List[Finding] = []
        with recorder.span("analysis.lint.annotations"):
            findings.extend(
                _annotation_findings(
                    program, lattice,
                    allow_declassification=allow_declassification,
                )
            )
        if allow_declassification:
            with recorder.span("analysis.lint.declassify"):
                findings.extend(_declassify_findings(program, lattice))
        with recorder.span("analysis.lint.dead-slots"):
            findings.extend(
                _dead_slot_findings(
                    program, lattice,
                    allow_declassification=allow_declassification,
                    generation=generation,
                    graph=graph,
                )
            )
        with recorder.span("analysis.lint.unreachable"):
            findings.extend(_unreachable_findings(program))
    findings.sort(key=_finding_order)
    if recorder.enabled:
        recorder.count("analysis.lint_runs")
        recorder.count("analysis.findings", len(findings))
    return findings
