"""Static analyses over the label-flow structure.

The checker and solver answer "does it check?"; this package answers the
follow-up questions a reviewer actually asks:

* *why does it fail?* -- :mod:`repro.analysis.witness` walks the
  propagation graph backwards from a failing obligation to the nearest
  source annotation and returns the shortest provenance chain;
* *what is sloppy even though it checks?* -- :mod:`repro.analysis.lints`
  runs the coded ``P4B0xx`` rules (redundant/slack annotations,
  ineffective declassify, dead slots, unreachable code) defined in
  :mod:`repro.analysis.rules`;
* *can the solver skip work?* -- :mod:`repro.analysis.presolve` folds the
  constant-reachable acyclic region of the graph before Kleene iteration,
  preserving the least solution and conflict set exactly;
* *how do tools consume it?* -- :mod:`repro.analysis.sarif` serialises
  findings as SARIF 2.1.0 (``p4bid --lint --sarif FILE``).
"""

from repro.analysis.lints import (
    DeclassifySite,
    ReleasedFlow,
    explain_flows,
    probe_declassifications,
    run_lints,
)
from repro.analysis.presolve import PresolveReduction, presolve_graph
from repro.analysis.rules import (
    ALL_RULES,
    Finding,
    LintRule,
    RelatedSpan,
    Severity,
    rule_by_code,
    rule_for_violation,
    rule_table,
)
from repro.analysis.sarif import (
    finding_from_parse_error,
    findings_from_core,
    findings_from_diagnostics,
    sarif_document,
    sarif_json,
)
from repro.analysis.witness import (
    LeakWitness,
    WitnessHop,
    witness_for_conflict,
    witnesses_for_solution,
)

__all__ = [
    "ALL_RULES",
    "DeclassifySite",
    "Finding",
    "LeakWitness",
    "LintRule",
    "PresolveReduction",
    "RelatedSpan",
    "ReleasedFlow",
    "Severity",
    "WitnessHop",
    "explain_flows",
    "finding_from_parse_error",
    "findings_from_core",
    "findings_from_diagnostics",
    "presolve_graph",
    "probe_declassifications",
    "rule_by_code",
    "rule_for_violation",
    "rule_table",
    "run_lints",
    "sarif_document",
    "sarif_json",
    "witness_for_conflict",
    "witnesses_for_solution",
]
