"""Constant-label pre-solve reduction over the propagation graph.

Most label variables in a realistic system are *trivially fixed*: their
value is forced entirely by constants and by other already-fixed variables,
through acyclic (singleton-SCC) regions of the propagation graph.  Kleene
iteration still schedules every such component, seeds every in-edge and
joins bottom onto bottom, which at 10k-constraint scale is most of the
solver's work.

:func:`presolve_graph` folds that region away up front.  It walks the
graph's SCC condensation in topological order and *resolves* every
singleton acyclic component whose in-edges draw only on already-resolved
variables: the variable's least value is computed directly (the join of its
in-edge values above its override floor, with join covers honoured), the
component is marked to be skipped by the schedule, and its in-edges are
counted as pruned.  Cyclic components -- and anything downstream of one --
are left for the normal Kleene iteration.

The reduction is *exact* by construction: the value computed for a resolved
variable is precisely the value the full schedule would converge to
(induction over topological order), the graph structure itself is never
mutated, and the checks and unsat-core slicing run over the same edges and
the same final assignment.  Least solutions, conflict sets and cores are
therefore preserved bit-for-bit; the property tests in
``tests/test_analysis_presolve.py`` pin this across every registered
lattice.  What changes is :class:`~repro.inference.graph.SolverStats`:
``edges_visited`` / ``worklist_pops`` drop by the pruned region and the
``presolve_*`` fields record what was folded.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Set

from repro.inference.terms import LabelVar, evaluate
from repro.lattice.base import Label

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.inference.graph import PropagationGraph, SolverStats


@dataclass
class PresolveReduction:
    """Outcome of the constant-label reduction on one propagation graph.

    ``values`` holds the exact least-solution value of every resolved
    variable; ``resolved_components`` are the component indices the
    SCC schedule may skip; ``pruned_edges`` counts the in-edges of those
    components (the edges Kleene iteration never has to evaluate).
    """

    values: Dict[LabelVar, Label] = field(default_factory=dict)
    resolved_components: Set[int] = field(default_factory=set)
    pruned_edges: int = 0
    elapsed_ms: float = 0.0

    @property
    def resolved_count(self) -> int:
        return len(self.values)

    def apply(self, assignment: Dict[LabelVar, Label], stats: "SolverStats") -> None:
        """Seed the resolved values into ``assignment`` and record stats."""
        assignment.update(self.values)
        stats.presolve_resolved_vars = len(self.values)
        stats.presolve_pruned_edges = self.pruned_edges
        stats.presolve_ms = self.elapsed_ms


def presolve_graph(
    graph: "PropagationGraph",
    overrides: Optional[Mapping[LabelVar, Label]] = None,
) -> PresolveReduction:
    """Resolve the constant-reachable acyclic region of ``graph``.

    ``overrides`` are the same floors a subsequent
    :meth:`~repro.inference.graph.PropagationGraph.solve` would start
    from; resolved values sit above them exactly as the full solve's
    would.
    """
    start = time.perf_counter()
    lattice = graph.lattice
    # Working values: floors for everything, exact values once resolved.
    # Only edges whose sources are all resolved are ever evaluated, so the
    # unresolved floors are never read through an edge.
    values: Dict[LabelVar, Label] = {
        var: lattice.bottom for var in graph.variables
    }
    for var, label in (overrides or {}).items():
        if var in values:
            values[var] = lattice.join(values[var], label)
    reduction = PresolveReduction()
    resolved: Set[LabelVar] = set()
    for comp_index, component in enumerate(graph.components):
        if graph._cyclic[comp_index]:
            continue
        var = component[0]
        in_edges = graph.edges_into.get(var, ())
        if any(
            src not in resolved
            for index in in_edges
            for src in graph.edges[index].sources
        ):
            continue  # fed (transitively) by a cycle: leave to the schedule
        value = values[var]
        for index in in_edges:
            edge = graph.edges[index]
            flowed = evaluate(edge.lhs, lattice, values)
            if edge.cover is not None and lattice.leq(flowed, edge.cover):
                continue  # the join's constant part absorbs the flow
            value = lattice.join(value, flowed)
        values[var] = value
        resolved.add(var)
        reduction.values[var] = value
        reduction.resolved_components.add(comp_index)
        reduction.pruned_edges += len(in_edges)
    reduction.elapsed_ms = (time.perf_counter() - start) * 1000.0
    return reduction
