"""Product lattices: pointwise combination of two component lattices.

``(a1, a2) ⊑ (b1, b2)`` iff ``a1 ⊑ b1`` and ``a2 ⊑ b2``.  Products let one
track confidentiality and integrity simultaneously, a standard construction
in the IFC literature that the paper mentions as a way to enforce "richer
dataflow policies" (Section 5.4).
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.lattice.base import Label, Lattice


class ProductLattice(Lattice):
    """The product of two lattices, with pairs as labels."""

    def __init__(self, left: Lattice, right: Lattice, *, name: str | None = None) -> None:
        self._left = left
        self._right = right
        self.name = name or f"{left.name}*{right.name}"

    @property
    def left(self) -> Lattice:
        """The first component lattice."""
        return self._left

    @property
    def right(self) -> Lattice:
        """The second component lattice."""
        return self._right

    def labels(self) -> Iterable[Tuple[Label, Label]]:
        return tuple((a, b) for a in self._left.labels() for b in self._right.labels())

    def height_bound(self) -> int:
        # A strict step in the product strictly raises at least one
        # component, so chains are bounded by the sum of the component
        # heights (minus the shared starting point) -- far below the
        # default carrier-size bound of |left| * |right|.
        return max(2, self._left.height_bound() + self._right.height_bound() - 1)

    def leq(self, a: Tuple[Label, Label], b: Tuple[Label, Label]) -> bool:
        self.require(a)
        self.require(b)
        return self._left.leq(a[0], b[0]) and self._right.leq(a[1], b[1])

    @property
    def bottom(self) -> Tuple[Label, Label]:
        return (self._left.bottom, self._right.bottom)

    @property
    def top(self) -> Tuple[Label, Label]:
        return (self._left.top, self._right.top)

    def join(self, a: Tuple[Label, Label], b: Tuple[Label, Label]) -> Tuple[Label, Label]:
        self.require(a)
        self.require(b)
        return (self._left.join(a[0], b[0]), self._right.join(a[1], b[1]))

    def meet(self, a: Tuple[Label, Label], b: Tuple[Label, Label]) -> Tuple[Label, Label]:
        self.require(a)
        self.require(b)
        return (self._left.meet(a[0], b[0]), self._right.meet(a[1], b[1]))

    def __contains__(self, label: Label) -> bool:
        return (
            isinstance(label, tuple)
            and len(label) == 2
            and label[0] in self._left
            and label[1] in self._right
        )

    def parse_label(self, text: str) -> Tuple[Label, Label]:
        cleaned = text.strip()
        if cleaned.startswith("(") and cleaned.endswith(")"):
            cleaned = cleaned[1:-1]
        parts = cleaned.split(",")
        if len(parts) != 2:
            return super().parse_label(text)
        return (self._left.parse_label(parts[0]), self._right.parse_label(parts[1]))

    def format_label(self, label: Tuple[Label, Label]) -> str:
        return (
            f"({self._left.format_label(label[0])}, "
            f"{self._right.format_label(label[1])})"
        )
