"""Finite lattices given by an explicit order relation.

Most concrete lattices in this package are small and finite, so they are
implemented by closing a user-supplied covering relation under reflexivity
and transitivity and computing joins/meets by search.  This keeps the
concrete lattice classes (two-point, diamond, chain, ...) tiny.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Sequence, Set, Tuple

from repro.lattice.base import Label, Lattice, LatticeError


class FiniteLattice(Lattice):
    """A finite lattice defined by its members and an order relation.

    Parameters
    ----------
    members:
        The carrier set.
    order:
        Pairs ``(a, b)`` meaning ``a ⊑ b``.  The reflexive-transitive closure
        is taken automatically, so supplying only the covering (Hasse) edges
        is enough.
    name:
        Display name used in diagnostics and by the registry.
    """

    def __init__(
        self,
        members: Sequence[Label],
        order: Iterable[Tuple[Label, Label]],
        *,
        name: str = "finite",
    ) -> None:
        self.name = name
        self._members: Tuple[Label, ...] = tuple(dict.fromkeys(members))
        member_set = set(self._members)
        for a, b in order:
            if a not in member_set or b not in member_set:
                raise LatticeError(
                    f"order pair ({a!r}, {b!r}) mentions a label outside the carrier"
                )
        self._leq: Dict[Label, FrozenSet[Label]] = self._close(self._members, order)
        self._bottom = self._find_bottom()
        self._top = self._find_top()
        self._join_table: Dict[Tuple[Label, Label], Label] = {}
        self._meet_table: Dict[Tuple[Label, Label], Label] = {}
        self._precompute_bounds()

    # -- construction helpers ---------------------------------------------

    @staticmethod
    def _close(
        members: Sequence[Label], order: Iterable[Tuple[Label, Label]]
    ) -> Dict[Label, FrozenSet[Label]]:
        """Reflexive-transitive closure: map each label to its up-set."""
        above: Dict[Label, Set[Label]] = {m: {m} for m in members}
        edges: Dict[Label, Set[Label]] = {m: set() for m in members}
        for a, b in order:
            edges[a].add(b)
        changed = True
        while changed:
            changed = False
            for a in members:
                new = set(above[a])
                for b in list(new):
                    new |= edges[b]
                    new |= above[b]
                if new != above[a]:
                    above[a] = new
                    changed = True
        return {m: frozenset(above[m]) for m in members}

    def _find_bottom(self) -> Label:
        candidates = [m for m in self._members if self._leq[m] == frozenset(self._members)]
        if len(candidates) != 1:
            raise LatticeError(
                f"lattice {self.name!r} must have exactly one bottom element, "
                f"found {candidates!r}"
            )
        return candidates[0]

    def _find_top(self) -> Label:
        candidates = [
            m
            for m in self._members
            if all(m in self._leq[other] for other in self._members)
        ]
        if len(candidates) != 1:
            raise LatticeError(
                f"lattice {self.name!r} must have exactly one top element, "
                f"found {candidates!r}"
            )
        return candidates[0]

    def _precompute_bounds(self) -> None:
        members = self._members
        for a in members:
            for b in members:
                uppers = [c for c in members if self.leq(a, c) and self.leq(b, c)]
                least = [u for u in uppers if all(self.leq(u, v) for v in uppers)]
                if len(least) != 1:
                    raise LatticeError(
                        f"labels {a!r} and {b!r} have no unique join in {self.name!r}"
                    )
                self._join_table[(a, b)] = least[0]
                lowers = [c for c in members if self.leq(c, a) and self.leq(c, b)]
                greatest = [l for l in lowers if all(self.leq(v, l) for v in lowers)]
                if len(greatest) != 1:
                    raise LatticeError(
                        f"labels {a!r} and {b!r} have no unique meet in {self.name!r}"
                    )
                self._meet_table[(a, b)] = greatest[0]

    # -- Lattice interface --------------------------------------------------

    def labels(self) -> Tuple[Label, ...]:
        return self._members

    def leq(self, a: Label, b: Label) -> bool:
        self.require(a)
        self.require(b)
        return b in self._leq[a]

    @property
    def bottom(self) -> Label:
        return self._bottom

    @property
    def top(self) -> Label:
        return self._top

    def join(self, a: Label, b: Label) -> Label:
        self.require(a)
        self.require(b)
        return self._join_table[(a, b)]

    def meet(self, a: Label, b: Label) -> Label:
        self.require(a)
        self.require(b)
        return self._meet_table[(a, b)]

    def __contains__(self, label: Label) -> bool:
        return label in self._leq

    # -- alternative constructors -------------------------------------------

    @classmethod
    def from_upsets(
        cls, upsets: Mapping[Label, Iterable[Label]], *, name: str = "finite"
    ) -> "FiniteLattice":
        """Construct from a mapping ``label -> labels above it``."""
        members = list(upsets)
        order = [(a, b) for a, bs in upsets.items() for b in bs]
        return cls(members, order, name=name)
