"""Security lattices for the P4BID information-flow control type system.

The type system of Section 4 is parameterised by a lattice ``(L, ⊑)`` of
security labels with top and bottom elements.  The paper's implementation
supports the two-point lattice ``{low, high}`` and a four-point diamond
lattice ``{⊥, A, B, ⊤}`` (Figure 8b).  This package provides those plus a
few useful constructions (total-order chains, products, powersets, and
arbitrary finite lattices given by a Hasse-style order relation).
"""

from repro.lattice.base import Label, Lattice, LatticeError
from repro.lattice.finite import FiniteLattice
from repro.lattice.two_point import TwoPointLattice, LOW, HIGH
from repro.lattice.diamond import DiamondLattice
from repro.lattice.chain import ChainLattice
from repro.lattice.product import ProductLattice
from repro.lattice.powerset import PowersetLattice
from repro.lattice.policy import PolicyLabel, PolicyLattice, mini_policy_lattice, policy_lattice
from repro.lattice.registry import get_lattice, register_lattice, available_lattices

__all__ = [
    "Label",
    "Lattice",
    "LatticeError",
    "FiniteLattice",
    "TwoPointLattice",
    "LOW",
    "HIGH",
    "DiamondLattice",
    "ChainLattice",
    "ProductLattice",
    "PowersetLattice",
    "PolicyLabel",
    "PolicyLattice",
    "mini_policy_lattice",
    "policy_lattice",
    "get_lattice",
    "register_lattice",
    "available_lattices",
]
