"""Abstract interface for security lattices.

A security label is any hashable value; a :class:`Lattice` interprets a set
of labels with a partial order, binary join/meet, and distinguished top and
bottom elements.  All IFC typing rules only use:

* ``leq(a, b)`` -- the order ``a ⊑ b``,
* ``join(a, b)`` -- least upper bound (used, e.g., by T-BinOp),
* ``meet(a, b)`` -- greatest lower bound (used when combining write bounds),
* ``bottom`` / ``top``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Iterable

#: A security label.  Labels are opaque to the type system; only the lattice
#: interprets them.
Label = Hashable


class LatticeError(Exception):
    """Raised when a label is not a member of the lattice or the lattice
    definition itself is malformed (not reflexive, no unique bounds, ...)."""


class Lattice(ABC):
    """Interface every security lattice implements."""

    #: Short, human readable name used by the registry and diagnostics.
    name: str = "lattice"

    # -- membership -------------------------------------------------------

    @abstractmethod
    def labels(self) -> Iterable[Label]:
        """Return an iterable over every label in the lattice."""

    def __contains__(self, label: Label) -> bool:
        return label in set(self.labels())

    def require(self, label: Label) -> Label:
        """Return ``label`` unchanged, raising :class:`LatticeError` if it is
        not a member of this lattice."""
        if label not in self:
            raise LatticeError(
                f"label {label!r} is not a member of lattice {self.name!r}"
            )
        return label

    # -- order ------------------------------------------------------------

    @abstractmethod
    def leq(self, a: Label, b: Label) -> bool:
        """Return True when ``a ⊑ b``."""

    def lt(self, a: Label, b: Label) -> bool:
        """Strict order: ``a ⊑ b`` and ``a ≠ b``."""
        return self.leq(a, b) and not self.equal(a, b)

    def equal(self, a: Label, b: Label) -> bool:
        """Label equality modulo the order (antisymmetry)."""
        return self.leq(a, b) and self.leq(b, a)

    def comparable(self, a: Label, b: Label) -> bool:
        """Return True when ``a`` and ``b`` are ordered either way."""
        return self.leq(a, b) or self.leq(b, a)

    # -- bounds -----------------------------------------------------------

    @property
    @abstractmethod
    def bottom(self) -> Label:
        """The least element ``⊥`` (public / trusted)."""

    @property
    @abstractmethod
    def top(self) -> Label:
        """The greatest element ``⊤`` (secret / untrusted)."""

    @abstractmethod
    def join(self, a: Label, b: Label) -> Label:
        """Least upper bound of ``a`` and ``b``."""

    @abstractmethod
    def meet(self, a: Label, b: Label) -> Label:
        """Greatest lower bound of ``a`` and ``b``."""

    # -- n-ary conveniences -------------------------------------------------

    def join_all(self, labels: Iterable[Label]) -> Label:
        """Join of an arbitrary (possibly empty) collection; empty -> ⊥."""
        result = self.bottom
        for label in labels:
            result = self.join(result, label)
        return result

    def meet_all(self, labels: Iterable[Label]) -> Label:
        """Meet of an arbitrary (possibly empty) collection; empty -> ⊤."""
        result = self.top
        for label in labels:
            result = self.meet(result, label)
        return result

    # -- structure ----------------------------------------------------------

    def height_bound(self) -> int:
        """An upper bound on the length of any strictly ascending chain.

        Used by the constraint solver to budget Kleene iteration.  The
        default counts the carrier (a chain visits distinct labels), which
        is only suitable for small lattices; lattices with a large but
        structured carrier -- powersets, products -- override this with a
        bound computed from their structure instead of enumerating labels.
        """
        return max(2, sum(1 for _ in self.labels()))

    # -- parsing / display --------------------------------------------------

    def parse_label(self, text: str) -> Label:
        """Parse the surface-syntax spelling of a label.

        The default implementation matches against ``str(label)`` for every
        member, case-insensitively, and also accepts the spellings ``bot`` /
        ``bottom`` / ``top`` for the bounds.
        """
        lowered = text.strip().lower()
        if lowered in {"bot", "bottom", "_|_"}:
            return self.bottom
        if lowered in {"top", "t"} and "top" not in {str(x).lower() for x in self.labels()}:
            return self.top
        for label in self.labels():
            if str(label).lower() == lowered:
                return label
        raise LatticeError(
            f"unknown security label {text!r} for lattice {self.name!r}; "
            f"expected one of {sorted(str(x) for x in self.labels())}"
        )

    def format_label(self, label: Label) -> str:
        """Human readable spelling of a label (used by diagnostics)."""
        return str(label)

    # -- sanity checking ----------------------------------------------------

    def validate(self) -> None:
        """Check the lattice laws on the (finite) carrier.

        Verifies reflexivity, antisymmetry, transitivity, that ``bottom`` and
        ``top`` really are bounds, and that ``join`` / ``meet`` compute least
        upper / greatest lower bounds.  Raises :class:`LatticeError` on the
        first violation.  Intended for tests and for user-defined lattices.
        """
        members = list(self.labels())
        for a in members:
            if not self.leq(a, a):
                raise LatticeError(f"order not reflexive at {a!r}")
            if not self.leq(self.bottom, a):
                raise LatticeError(f"bottom is not below {a!r}")
            if not self.leq(a, self.top):
                raise LatticeError(f"top is not above {a!r}")
        for a in members:
            for b in members:
                if self.leq(a, b) and self.leq(b, a) and a != b:
                    raise LatticeError(f"order not antisymmetric at {a!r}, {b!r}")
                j = self.join(a, b)
                m = self.meet(a, b)
                if not (self.leq(a, j) and self.leq(b, j)):
                    raise LatticeError(f"join({a!r}, {b!r}) = {j!r} is not an upper bound")
                if not (self.leq(m, a) and self.leq(m, b)):
                    raise LatticeError(f"meet({a!r}, {b!r}) = {m!r} is not a lower bound")
                for c in members:
                    if self.leq(a, c) and self.leq(b, c) and not self.leq(j, c):
                        raise LatticeError(
                            f"join({a!r}, {b!r}) = {j!r} is not the *least* upper bound "
                            f"(violated by {c!r})"
                        )
                    if self.leq(c, a) and self.leq(c, b) and not self.leq(c, m):
                        raise LatticeError(
                            f"meet({a!r}, {b!r}) = {m!r} is not the *greatest* lower bound "
                            f"(violated by {c!r})"
                        )
        for a in members:
            for b in members:
                for c in members:
                    if self.leq(a, b) and self.leq(b, c) and not self.leq(a, c):
                        raise LatticeError(
                            f"order not transitive at {a!r} ⊑ {b!r} ⊑ {c!r}"
                        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
