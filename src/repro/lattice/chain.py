"""Total-order ("chain") lattices of arbitrary height.

A chain of height ``n`` has labels ``L0 ⊑ L1 ⊑ ... ⊑ L(n-1)``.  The paper's
two-point lattice is the chain of height 2; taller chains are used by our
lattice-size ablation benchmark and to model multi-level clearances.
"""

from __future__ import annotations

from typing import Sequence

from repro.lattice.base import LatticeError
from repro.lattice.finite import FiniteLattice


class ChainLattice(FiniteLattice):
    """A totally ordered lattice over the given labels (lowest first)."""

    def __init__(self, levels: Sequence[str], *, name: str | None = None) -> None:
        if len(levels) < 2:
            raise LatticeError("a chain lattice needs at least two levels")
        if len(set(levels)) != len(levels):
            raise LatticeError("chain levels must be distinct")
        order = [(levels[i], levels[i + 1]) for i in range(len(levels) - 1)]
        super().__init__(list(levels), order, name=name or f"chain-{len(levels)}")
        self._levels = tuple(levels)

    @classmethod
    def of_height(cls, height: int) -> "ChainLattice":
        """A chain ``L0 ⊑ ... ⊑ L(height-1)`` with generated label names."""
        return cls([f"L{i}" for i in range(height)])

    @property
    def levels(self) -> tuple:
        """The labels in increasing order."""
        return self._levels

    def height_bound(self) -> int:
        # A chain's height is exactly its number of levels.
        return len(self._levels)

    def rank(self, label: str) -> int:
        """The position of ``label`` in the chain (0 = bottom)."""
        self.require(label)
        return self._levels.index(label)
