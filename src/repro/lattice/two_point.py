"""The two-point security lattice ``{low, high}`` used throughout the paper.

``low`` is public (or trusted, under the integrity reading of Section 5.3)
and ``high`` is secret (or untrusted); ``low ⊑ high``.
"""

from __future__ import annotations

from repro.lattice.finite import FiniteLattice

#: Canonical spelling of the public / trusted label.
LOW = "low"
#: Canonical spelling of the secret / untrusted label.
HIGH = "high"


class TwoPointLattice(FiniteLattice):
    """The classic ``low ⊑ high`` lattice (the paper's default)."""

    def __init__(self) -> None:
        super().__init__([LOW, HIGH], [(LOW, HIGH)], name="two-point")

    def parse_label(self, text: str) -> str:
        lowered = text.strip().lower()
        aliases = {
            "public": LOW,
            "trusted": LOW,
            "l": LOW,
            "secret": HIGH,
            "untrusted": HIGH,
            "h": HIGH,
        }
        if lowered in aliases:
            return aliases[lowered]
        return super().parse_label(text)
