"""Powerset lattices over a finite set of principals.

The labels are (frozen) subsets of a universe of principals, ordered by
inclusion, with union as join and intersection as meet.  The diamond lattice
of Figure 8b is the powerset lattice over ``{Alice, Bob}``; powersets over
more principals give the "directly generalised to more parties" lattices the
paper sketches at the end of Section 5.4.
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import FrozenSet, Iterable, Sequence

from repro.lattice.base import Label, Lattice, LatticeError


class PowersetLattice(Lattice):
    """Subsets of ``principals`` ordered by inclusion."""

    def __init__(self, principals: Sequence[str], *, name: str | None = None) -> None:
        if len(set(principals)) != len(principals):
            raise LatticeError("principals must be distinct")
        self._universe: FrozenSet[str] = frozenset(principals)
        self._ordered_principals = tuple(principals)
        self.name = name or f"powerset-{len(principals)}"

    @property
    def principals(self) -> tuple:
        """The principals in declaration order (the canonical bit order for
        the packed solver backend's bitset encoding)."""
        return self._ordered_principals

    def labels(self) -> Iterable[FrozenSet[str]]:
        items = self._ordered_principals
        return tuple(
            frozenset(c)
            for c in chain.from_iterable(
                combinations(items, r) for r in range(len(items) + 1)
            )
        )

    def height_bound(self) -> int:
        # Chains add one principal at a time: at most |universe| + 1 steps.
        # (The default would enumerate all 2^n subsets.)
        return max(2, len(self._universe) + 1)

    def leq(self, a: Label, b: Label) -> bool:
        self.require(a)
        self.require(b)
        return frozenset(a) <= frozenset(b)

    @property
    def bottom(self) -> FrozenSet[str]:
        return frozenset()

    @property
    def top(self) -> FrozenSet[str]:
        return self._universe

    def join(self, a: Label, b: Label) -> FrozenSet[str]:
        self.require(a)
        self.require(b)
        return frozenset(a) | frozenset(b)

    def meet(self, a: Label, b: Label) -> FrozenSet[str]:
        self.require(a)
        self.require(b)
        return frozenset(a) & frozenset(b)

    def __contains__(self, label: Label) -> bool:
        try:
            return frozenset(label) <= self._universe
        except TypeError:
            return False

    def parse_label(self, text: str) -> FrozenSet[str]:
        cleaned = text.strip()
        if cleaned.lower() in {"bot", "bottom", "{}", ""}:
            return self.bottom
        if cleaned.lower() in {"top", "all"}:
            return self.top
        if cleaned.startswith("{") and cleaned.endswith("}"):
            cleaned = cleaned[1:-1]
        parts = [p.strip() for p in cleaned.split(",") if p.strip()]
        label = frozenset(parts)
        if label not in self:
            raise LatticeError(
                f"unknown principals {sorted(label - self._universe)!r} "
                f"for lattice {self.name!r}"
            )
        return label

    def format_label(self, label: Label) -> str:
        items = sorted(frozenset(label))
        return "{" + ", ".join(items) + "}"
