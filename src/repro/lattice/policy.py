"""Policy-scale lattices for data-governance compliance workloads.

"Real Time Reasoning in OWL2 for GDPR Compliance" (PAPERS.md) frames
real-time compliance as per-request *subsumption* checks over structured
policies.  A :class:`PolicyLattice` makes that exactly our lattice-``⊑``
workload: a policy label is a triple

* **purposes** -- the set of processing purposes consented to (powerset
  component; ``⊑`` is inclusion),
* **recipients** -- the set of processors/recipients the data may reach
  (powerset component), and
* **retention** -- how long the data may be kept (a totally ordered chain
  of retention classes; ``⊑`` is "no longer than").

A data subject's *consent grant* is a label bounding what is allowed; a
processing request *demands* a label (one purpose, one recipient, a
retention class), and the request is compliant exactly when
``demand ⊑ grant`` -- a single lattice comparison, which the bit-packed
codec (:mod:`repro.inference.packed`) turns into two int instructions.

Unlike the generic :class:`~repro.lattice.product.ProductLattice`, labels
are :class:`PolicyLabel` values with a *surface syntax* designed to
survive every consumer in the repository:

* ``str(label)`` is the **canonical spelling** -- a valid identifier
  (``Panalytics_ads__Rstore__t1``), so the synthetic program generators
  can use labels as annotation text *and* as field-name suffixes, which
  is what lets policy lattices ride through the registered-lattice drift
  and differential suites unchanged;
* :meth:`PolicyLattice.format_label` is the **pretty spelling**
  (``{ads,analytics}|{store}|t1``), used by diagnostics and reports;
* :meth:`PolicyLattice.parse_label` accepts both, plus the usual
  ``bot``/``low`` and ``top``/``high``/``all`` aliases, so existing
  two-point test programs check under a policy lattice unmodified.

The carrier has ``2^(|purposes|+|recipients|) * |retention|`` labels, so
:meth:`labels` refuses to enumerate policy-scale instances (hundreds of
principals); every other operation -- order, bounds, join, meet, parsing,
``height_bound`` -- is structural and stays cheap at any width.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from itertools import chain, combinations
from typing import FrozenSet, Iterable, Sequence, Tuple

from repro.lattice.base import Label, Lattice, LatticeError

#: Principal and retention-class names must be identifier-shaped *without*
#: underscores: the canonical label spelling joins set members with ``_``
#: and components with ``__``, so a name containing ``_`` would be
#: ambiguous to re-parse.
_NAME_RE = re.compile(r"^[A-Za-z][A-Za-z0-9]*$")

#: :meth:`PolicyLattice.labels` refuses to enumerate carriers wider than
#: this many powerset bits (2^20 subsets is already a test-only size).
_MAX_ENUMERABLE_BITS = 20


@dataclass(frozen=True)
class PolicyLabel:
    """One policy label: (purposes, recipients, retention class).

    Immutable and hashable; comparisons beyond equality live on the
    :class:`PolicyLattice` (only the lattice knows the retention order).
    ``str()`` is the canonical identifier-safe spelling.
    """

    purposes: FrozenSet[str]
    recipients: FrozenSet[str]
    retention: str

    def __str__(self) -> str:
        return (
            "P" + "_".join(sorted(self.purposes))
            + "__R" + "_".join(sorted(self.recipients))
            + "__" + self.retention
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PolicyLabel({self})"


class PolicyLattice(Lattice):
    """Purpose/consent/retention policies as one product/powerset lattice."""

    def __init__(
        self,
        purposes: Sequence[str],
        recipients: Sequence[str],
        retention: Sequence[str],
        *,
        name: str | None = None,
    ) -> None:
        for group, names in (
            ("purpose", purposes),
            ("recipient", recipients),
            ("retention class", retention),
        ):
            if len(set(names)) != len(names):
                raise LatticeError(f"{group} names must be distinct")
            for item in names:
                if not _NAME_RE.match(item):
                    raise LatticeError(
                        f"{group} name {item!r} must be letters/digits only "
                        f"(no underscores; they separate spelling components)"
                    )
        if not retention:
            raise LatticeError("a policy lattice needs at least one retention class")
        overlap = set(purposes) & set(recipients)
        if overlap:
            raise LatticeError(
                f"purpose and recipient names must not overlap: {sorted(overlap)!r}"
            )
        self._purposes: Tuple[str, ...] = tuple(purposes)
        self._recipients: Tuple[str, ...] = tuple(recipients)
        self._retention: Tuple[str, ...] = tuple(retention)
        self._purpose_set = frozenset(purposes)
        self._recipient_set = frozenset(recipients)
        self._rank = {level: index for index, level in enumerate(retention)}
        self.name = name or (
            f"policy-{len(purposes)}-{len(recipients)}-{len(retention)}"
        )

    # -- structure ----------------------------------------------------------

    @property
    def purposes(self) -> Tuple[str, ...]:
        """Purposes in declaration order (the packed codec's bit order)."""
        return self._purposes

    @property
    def recipients(self) -> Tuple[str, ...]:
        """Recipients in declaration order (the packed codec's bit order)."""
        return self._recipients

    @property
    def retention_classes(self) -> Tuple[str, ...]:
        """Retention classes in increasing order (shortest-lived first)."""
        return self._retention

    @property
    def principal_count(self) -> int:
        """Powerset principals overall -- the "policy scale" headline."""
        return len(self._purposes) + len(self._recipients)

    def retention_rank(self, level: str) -> int:
        """Position of ``level`` in the retention chain (0 = shortest)."""
        rank = self._rank.get(level)
        if rank is None:
            raise LatticeError(
                f"unknown retention class {level!r} for lattice {self.name!r}"
            )
        return rank

    def label(
        self,
        purposes: Iterable[str] = (),
        recipients: Iterable[str] = (),
        retention: str | None = None,
    ) -> PolicyLabel:
        """Construct (and validate) a label of this lattice."""
        return self.require(
            PolicyLabel(
                frozenset(purposes),
                frozenset(recipients),
                self._retention[0] if retention is None else retention,
            )
        )

    # -- membership ---------------------------------------------------------

    def __contains__(self, label: Label) -> bool:
        return (
            isinstance(label, PolicyLabel)
            and label.purposes <= self._purpose_set
            and label.recipients <= self._recipient_set
            and label.retention in self._rank
        )

    def labels(self) -> Iterable[PolicyLabel]:
        bits = len(self._purposes) + len(self._recipients)
        if bits > _MAX_ENUMERABLE_BITS:
            raise LatticeError(
                f"lattice {self.name!r} has 2^{bits} * {len(self._retention)} "
                f"labels; refusing to enumerate a policy-scale carrier"
            )
        def subsets(items: Tuple[str, ...]):
            return [
                frozenset(c)
                for c in chain.from_iterable(
                    combinations(items, r) for r in range(len(items) + 1)
                )
            ]
        return tuple(
            PolicyLabel(p, r, t)
            for p in subsets(self._purposes)
            for r in subsets(self._recipients)
            for t in self._retention
        )

    def height_bound(self) -> int:
        # Every strict step adds a purpose, adds a recipient, or raises the
        # retention class: |P| + |R| + (|T| - 1) steps, + 1 for the start.
        return max(2, len(self._purposes) + len(self._recipients) + len(self._retention))

    # -- order and bounds ---------------------------------------------------

    def leq(self, a: Label, b: Label) -> bool:
        self.require(a)
        self.require(b)
        return (
            a.purposes <= b.purposes
            and a.recipients <= b.recipients
            and self._rank[a.retention] <= self._rank[b.retention]
        )

    @property
    def bottom(self) -> PolicyLabel:
        return PolicyLabel(frozenset(), frozenset(), self._retention[0])

    @property
    def top(self) -> PolicyLabel:
        return PolicyLabel(self._purpose_set, self._recipient_set, self._retention[-1])

    def join(self, a: Label, b: Label) -> PolicyLabel:
        self.require(a)
        self.require(b)
        return PolicyLabel(
            a.purposes | b.purposes,
            a.recipients | b.recipients,
            self._retention[max(self._rank[a.retention], self._rank[b.retention])],
        )

    def meet(self, a: Label, b: Label) -> PolicyLabel:
        self.require(a)
        self.require(b)
        return PolicyLabel(
            a.purposes & b.purposes,
            a.recipients & b.recipients,
            self._retention[min(self._rank[a.retention], self._rank[b.retention])],
        )

    def require(self, label: Label) -> PolicyLabel:
        if label not in self:
            raise LatticeError(
                f"label {label!r} is not a member of lattice {self.name!r}"
            )
        return label  # type: ignore[return-value]

    # -- parsing / display --------------------------------------------------

    def parse_label(self, text: str) -> PolicyLabel:
        cleaned = text.strip()
        lowered = cleaned.lower()
        if lowered in {"bot", "bottom", "low", "_|_"}:
            return self.bottom
        if lowered in {"top", "high", "all"}:
            return self.top
        if "|" in cleaned:
            return self._parse_pretty(cleaned)
        if cleaned.startswith("P") and "__" in cleaned:
            return self._parse_canonical(cleaned)
        raise LatticeError(
            f"unknown policy label {text!r} for lattice {self.name!r}; expected "
            f"'{{purposes}}|{{recipients}}|retention' or the canonical "
            f"'P..__R..__retention' spelling"
        )

    def _parse_pretty(self, text: str) -> PolicyLabel:
        parts = [part.strip() for part in text.split("|")]
        if len(parts) != 3:
            raise LatticeError(
                f"policy label {text!r} must have three '|'-separated components"
            )
        def parse_set(part: str) -> FrozenSet[str]:
            if part.startswith("{") and part.endswith("}"):
                part = part[1:-1]
            return frozenset(
                item.strip() for item in part.split(",") if item.strip()
            )
        return self.require(
            PolicyLabel(parse_set(parts[0]), parse_set(parts[1]), parts[2].strip())
        )

    def _parse_canonical(self, text: str) -> PolicyLabel:
        parts = text.split("__")
        if len(parts) != 3 or not parts[0].startswith("P") or not parts[1].startswith("R"):
            raise LatticeError(
                f"canonical policy label {text!r} must spell P..__R..__retention"
            )
        def parse_group(body: str) -> FrozenSet[str]:
            return frozenset(item for item in body.split("_") if item)
        return self.require(
            PolicyLabel(parse_group(parts[0][1:]), parse_group(parts[1][1:]), parts[2])
        )

    def format_label(self, label: Label) -> str:
        member = self.require(label)
        return (
            "{" + ",".join(sorted(member.purposes)) + "}|"
            "{" + ",".join(sorted(member.recipients)) + "}|"
            + member.retention
        )


def policy_lattice(
    n_purposes: int, n_recipients: int, n_retention: int
) -> PolicyLattice:
    """A generated policy lattice: purposes ``p0..``, recipients ``r0..``,
    retention classes ``t0..`` -- the shape ``get_lattice("policy-P-R-T")``
    constructs for policy-scale benchmarks (e.g. ``policy-120-96-8`` is a
    216-principal lattice)."""
    if n_purposes < 1 or n_recipients < 1 or n_retention < 1:
        raise LatticeError("policy lattice dimensions must all be at least 1")
    return PolicyLattice(
        [f"p{i}" for i in range(n_purposes)],
        [f"r{i}" for i in range(n_recipients)],
        [f"t{i}" for i in range(n_retention)],
    )


def mini_policy_lattice() -> PolicyLattice:
    """The small registered instance (``--lattice policy-mini``): 2 purposes
    x 2 recipients x 3 retention classes = 48 labels, small enough for the
    exhaustive drift-guard, codec-verification and property suites."""
    return PolicyLattice(
        ["analytics", "ads"],
        ["store", "partner"],
        ["t0", "t1", "t2"],
        name="policy-mini",
    )
