"""The four-point diamond lattice of Figure 8b.

::

          top
         /    \\
        B      A
         \\    /
          bot

Used in Section 5.4 to model network isolation: Alice's data is labelled
``A``, Bob's data ``B``, in-band telemetry ``top`` and globally visible
routing data ``bot``.  Non-interference then guarantees that Alice cannot
influence Bob's fields and vice versa, and neither can read telemetry.
"""

from __future__ import annotations

from repro.lattice.finite import FiniteLattice

BOT = "bot"
ALICE = "A"
BOB = "B"
TOP = "top"


class DiamondLattice(FiniteLattice):
    """``{bot, A, B, top}`` with ``bot ⊑ A ⊑ top`` and ``bot ⊑ B ⊑ top``."""

    def __init__(self) -> None:
        super().__init__(
            [BOT, ALICE, BOB, TOP],
            [(BOT, ALICE), (BOT, BOB), (ALICE, TOP), (BOB, TOP)],
            name="diamond",
        )

    def parse_label(self, text: str) -> str:
        lowered = text.strip().lower()
        aliases = {
            "alice": ALICE,
            "a": ALICE,
            "bob": BOB,
            "b": BOB,
            "low": BOT,
            "high": TOP,
        }
        if lowered in aliases:
            return aliases[lowered]
        return super().parse_label(text)
