"""A small registry of named lattices for the CLI and the test-suite.

The P4BID tool selects the lattice by name (``--lattice two-point`` or
``--lattice diamond``); additional lattices can be registered by library
users (e.g. chains of a given height for multi-level policies).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.lattice.base import Lattice, LatticeError
from repro.lattice.chain import ChainLattice
from repro.lattice.diamond import DiamondLattice
from repro.lattice.policy import mini_policy_lattice, policy_lattice
from repro.lattice.two_point import TwoPointLattice

_FACTORIES: Dict[str, Callable[[], Lattice]] = {}


def register_lattice(name: str, factory: Callable[[], Lattice]) -> None:
    """Register ``factory`` so ``get_lattice(name)`` can construct it."""
    _FACTORIES[name] = factory


def available_lattices() -> Tuple[str, ...]:
    """Names of every registered lattice, sorted."""
    return tuple(sorted(_FACTORIES))


def get_lattice(name: str) -> Lattice:
    """Construct the lattice registered under ``name``.

    Also accepts two parametric families even if the exact shape was never
    explicitly registered:

    * ``chain-N`` for any integer ``N >= 2``;
    * ``policy-P-R-T`` for integers ``P, R, T >= 1`` — a policy lattice with
      ``P`` purposes, ``R`` recipients and ``T`` retention classes (e.g.
      ``policy-120-96-8`` is the 216-principal benchmark shape).
    """
    if name in _FACTORIES:
        return _FACTORIES[name]()
    if name.startswith("chain-"):
        suffix = name[len("chain-"):]
        if suffix.isdigit() and int(suffix) >= 2:
            return ChainLattice.of_height(int(suffix))
    if name.startswith("policy-"):
        parts = name[len("policy-"):].split("-")
        if len(parts) == 3 and all(p.isdigit() and int(p) >= 1 for p in parts):
            return policy_lattice(int(parts[0]), int(parts[1]), int(parts[2]))
    raise LatticeError(
        f"unknown lattice {name!r}; available: {', '.join(available_lattices())}"
    )


register_lattice("two-point", TwoPointLattice)
register_lattice("diamond", DiamondLattice)
register_lattice("policy-mini", mini_policy_lattice)
