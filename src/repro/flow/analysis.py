"""The single Figure 5–7 traversal, parameterized by a label algebra.

``FlowAnalysis`` walks a :class:`~repro.syntax.program.Program` -- its
declarations (Figure 7), statements (Figure 6), and expressions
(Figure 5) -- exactly once, and at every rule site calls into the
:class:`~repro.flow.algebra.LabelAlgebra` it was constructed with.  Run
with the :class:`~repro.flow.concrete.ConcreteAlgebra` it *is* the IFC
checker; run with the :class:`~repro.flow.symbolic.SymbolicAlgebra` it
*is* the constraint generator.  The rule bodies exist only here, so the
two interpretations cannot drift: a new rule (or a fix to an old one)
reaches both by construction.

Write-effect inference
----------------------

The typing rules take the function bound ``pc_fn`` and the table bound
``pc_tbl`` as given (they appear in the types).  The traversal *infers*
them: ``pc_fn`` is the greatest lower bound of the labels the function
body writes (assignment targets, bounds of callees, ⊥ for ``exit`` /
``return`` which only type under a ⊥ pc), and ``pc_tbl`` is the meet of
the bounds of the table's actions.  T-TblDecl's side conditions
``χ_k ⊑ pc_fn_j`` then become checkable conditions between the inferred
bounds and the labels of the table keys.

The body walk that collects the write bounds runs under a ⊥ pc inside
``algebra.write_bound_pass()``.  The concrete algebra silences
diagnostics there and asks (``rechecks_bodies``) for a second walk under
the inferred ``pc_fn`` -- the original checker's strategy.  The symbolic
algebra takes the first walk as the real one: re-walking under ``pc_fn``
would only add conditions of the shape ``⨅ targets ⊑ target_i``, which
hold by lattice laws -- except at declassify sites, whose ``pc ⊑ ⊥``
condition does involve ``pc_fn``; those are flagged via
``RuleSite.pc_obligation`` and the symbolic algebra emits them against
``pc_fn`` when the body walk finishes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.flow.algebra import LabelAlgebra, RuleSite
from repro.ifc.context import SecurityContext, SecurityTypeDefs
from repro.ifc.convert import LabelResolutionError, TypeLabeler
from repro.ifc.declassify import DECLASSIFY_FUNCTIONS
from repro.ifc.errors import ViolationKind
from repro.ifc.security_types import (
    DIR_IN,
    DIR_INOUT,
    SBit,
    SBool,
    SFunction,
    SHeader,
    SInt,
    SMatchKind,
    SParam,
    SRecord,
    SStack,
    STable,
    SUnit,
    SecurityBody,
    SecurityType,
    bodies_compatible,
)
from repro.syntax import declarations as d
from repro.syntax import expressions as e
from repro.syntax import statements as s
from repro.syntax.declarations import Direction
from repro.syntax.program import Program
from repro.syntax.source import SourceSpan
from repro.syntax.types import AnnotatedType, HeaderType, RecordType
from repro.typechecker.checker import DEFAULT_MATCH_KINDS


def binary_result_body(op: str, left: SecurityBody, right: SecurityBody) -> SecurityBody:
    """The type component of a binary operation's result (T-BinOp)."""
    if op in {"==", "!=", "<", ">", "<=", ">=", "&&", "||"}:
        return SBool()
    if isinstance(left, SBit):
        return left
    if isinstance(right, SBit):
        return right
    if isinstance(left, SInt) or isinstance(right, SInt):
        return SInt()
    return left


class FlowAnalysis:
    """One walk of the Figure 5–7 rules over an abstract label algebra."""

    def __init__(self, algebra: LabelAlgebra) -> None:
        self.algebra = algebra
        self._write_bounds: List[List[object]] = []
        #: Inferred write bounds (carrier-valued), by action / table name.
        self.function_bounds: dict = {}
        self.table_bounds: dict = {}
        #: Enclosing control/action names, innermost last (scopes slot hints).
        self._owner: List[str] = []

    # ------------------------------------------------------------------ plumbing

    def _record_write(self, bound) -> None:
        if self._write_bounds:
            self._write_bounds[-1].append(bound)

    def _security_type(
        self, annotated: AnnotatedType, labeler: TypeLabeler, span: SourceSpan
    ) -> Optional[SecurityType]:
        try:
            return labeler.security_type(annotated)
        except LabelResolutionError as exc:
            self.algebra.error(ViolationKind.LABEL_ERROR, str(exc), span, rule="labels")
            return None

    # ------------------------------------------------------------------ entry point

    def run(self, program: Program) -> None:
        """Walk the whole program (named declarations, then controls)."""
        algebra = self.algebra
        delta = SecurityTypeDefs()
        labeler = algebra.make_labeler(delta)
        gamma = SecurityContext()
        kind = SecurityType(SMatchKind(), algebra.bottom)
        for member in DEFAULT_MATCH_KINDS:
            gamma.bind(member, kind)
        self._suggest_declaration_hints(program)
        for decl in program.declarations:
            gamma = self.check_declaration(decl, gamma, labeler, algebra.bottom)
        for control in program.controls:
            self.check_control(control, gamma, labeler)

    def _suggest_declaration_hints(self, program: Program) -> None:
        """Attach readable hints to the annotation slots of declared types."""
        if not self.algebra.wants_hints:
            return
        for decl in program.iter_declarations():
            if isinstance(decl, (d.HeaderDecl, d.StructDecl)):
                for field in decl.fields:
                    self.algebra.suggest_hint(
                        field.ty, f"field {decl.name}.{field.name}"
                    )
            elif isinstance(decl, d.TypedefDecl):
                self.algebra.suggest_hint(decl.ty, f"typedef {decl.name}")

    # ------------------------------------------------------------------ controls

    def check_control(
        self,
        control: d.ControlDecl,
        gamma: SecurityContext,
        labeler: TypeLabeler,
    ) -> None:
        pc = self.algebra.resolve_control_pc(control)
        scope = gamma.child()
        for param in control.params:
            if self.algebra.wants_hints:
                self.algebra.suggest_hint(
                    param.ty, f"parameter {param.name} of control {control.name}"
                )
            sec_type = self._security_type(param.ty, labeler, param.span)
            if sec_type is not None:
                scope.bind(param.name, sec_type)
        self._owner.append(control.name)
        try:
            for decl in control.local_declarations:
                scope = self.check_declaration(decl, scope, labeler, pc)
            self.check_statement(control.apply_block, scope, labeler, pc)
        finally:
            self._owner.pop()

    # ------------------------------------------------------------------ declarations (Figure 7)

    def check_declaration(
        self,
        decl: d.Declaration,
        gamma: SecurityContext,
        labeler: TypeLabeler,
        pc,
    ) -> SecurityContext:
        if isinstance(decl, d.VarDecl):
            return self._check_var_decl(decl, gamma, labeler, pc)
        if isinstance(decl, d.TypedefDecl):
            labeler.definitions.define(decl.name, decl.ty)
            return gamma
        if isinstance(decl, d.HeaderDecl):
            labeler.definitions.define(
                decl.name, AnnotatedType(HeaderType(decl.fields), None, decl.span)
            )
            return gamma
        if isinstance(decl, d.StructDecl):
            labeler.definitions.define(
                decl.name, AnnotatedType(RecordType(decl.fields), None, decl.span)
            )
            return gamma
        if isinstance(decl, d.MatchKindDecl):
            kind = SecurityType(SMatchKind(), self.algebra.bottom)
            for member in decl.members:
                gamma.bind(member, kind)
            return gamma
        if isinstance(decl, d.FunctionDecl):
            return self._check_function_decl(decl, gamma, labeler)
        if isinstance(decl, d.TableDecl):
            return self._check_table_decl(decl, gamma, labeler, pc)
        self.algebra.type_error(
            f"unsupported declaration {decl.describe()}", decl.span, rule="decl"
        )
        return gamma

    # -- T-VarDecl / T-VarInit ------------------------------------------------

    def _check_var_decl(
        self,
        decl: d.VarDecl,
        gamma: SecurityContext,
        labeler: TypeLabeler,
        pc,
    ) -> SecurityContext:
        if self.algebra.wants_hints:
            owner = f" in {self._owner[-1]}" if self._owner else ""
            self.algebra.suggest_hint(decl.ty, f"variable {decl.name}{owner}")
        declared = self._security_type(decl.ty, labeler, decl.span)
        if declared is None:
            return gamma
        if decl.init is not None:
            init_type, _ = self.check_expression(decl.init, gamma, labeler, pc)
            if init_type is not None and bodies_compatible(declared.body, init_type.body):
                self.algebra.require_flow(
                    init_type,
                    declared,
                    RuleSite(
                        decl.span,
                        rule="T-VarInit",
                        kind=ViolationKind.EXPLICIT_FLOW,
                        reason=(
                            f"initialiser of {decl.name!r} flows into its "
                            "declared label"
                        ),
                        message=(
                            f"initialiser of {decl.name!r} has label {{src}}, "
                            "which may not flow into a variable labelled {dst}"
                        ),
                    ),
                )
        gamma.bind(decl.name, declared)
        return gamma

    # -- T-FuncDecl -----------------------------------------------------------

    def _check_function_decl(
        self,
        decl: d.FunctionDecl,
        gamma: SecurityContext,
        labeler: TypeLabeler,
    ) -> SecurityContext:
        algebra = self.algebra
        parameters: List[SParam] = []
        body_scope = gamma.child()
        for param in decl.params:
            if algebra.wants_hints:
                algebra.suggest_hint(param.ty, f"parameter {param.name} of {decl.name}")
            sec_type = self._security_type(param.ty, labeler, param.span)
            if sec_type is None:
                sec_type = SecurityType(SUnit(), algebra.bottom)
            body_scope.bind(param.name, sec_type)
            parameters.append(
                SParam(
                    param.direction.effective().value,
                    sec_type,
                    param.name,
                    control_plane=param.direction is Direction.NONE,
                )
            )
        if decl.return_type is None:
            return_type = SecurityType(SUnit(), algebra.bottom)
        else:
            if algebra.wants_hints:
                algebra.suggest_hint(decl.return_type, f"return type of {decl.name}")
            resolved = self._security_type(decl.return_type, labeler, decl.span)
            return_type = resolved or SecurityType(SUnit(), algebra.bottom)
        body_scope.bind(SecurityContext.RETURN_KEY, return_type)

        pc_fn = self._analyze_function_body(decl, body_scope, labeler)

        fn_type = SecurityType(
            SFunction(tuple(parameters), pc_fn, return_type), algebra.bottom
        )
        gamma.bind(decl.name, fn_type)
        self.function_bounds[decl.name] = pc_fn
        return gamma

    def _analyze_function_body(
        self, decl: d.FunctionDecl, body_scope: SecurityContext, labeler: TypeLabeler
    ):
        """Infer ``pc_fn`` and impose T-FuncDecl's body conditions."""
        algebra = self.algebra
        algebra.enter_function_body(decl.name)
        self._write_bounds.append([])
        self._owner.append(decl.name)
        try:
            with algebra.write_bound_pass():
                self.check_statement(decl.body, body_scope, labeler, algebra.bottom)
        finally:
            self._owner.pop()
            bounds = self._write_bounds.pop()
        pc_fn = algebra.meet_all(bounds)
        algebra.exit_function_body(decl.name, pc_fn)
        if algebra.rechecks_bodies:
            # T-FuncDecl: the body must be well-typed under the inferred pc_fn.
            self.check_statement(decl.body, body_scope, labeler, pc_fn)
        return pc_fn

    # -- T-TblDecl ------------------------------------------------------------

    def _check_table_decl(
        self,
        decl: d.TableDecl,
        gamma: SecurityContext,
        labeler: TypeLabeler,
        pc,
    ) -> SecurityContext:
        key_labels: List[Tuple[d.TableKey, object]] = []
        for key in decl.keys:
            key_type, _ = self.check_expression(key.expression, gamma, labeler, pc)
            if key_type is None:
                continue
            key_labels.append((key, self.algebra.read_label(key_type)))

        action_bounds: List[object] = []
        for action_ref in decl.actions:
            bound = self._check_table_action_ref(
                action_ref, gamma, labeler, key_labels, pc, decl.name
            )
            if bound is not None:
                action_bounds.append(bound)

        pc_tbl = self.algebra.meet_all(action_bounds)
        # T-TblDecl also requires χ_k ⊑ pc_tbl; with pc_tbl the meet of the
        # action bounds this is implied by the per-action checks above, but a
        # table with no actions still gets the constraint against ⊤ trivially.
        self.table_bounds[decl.name] = pc_tbl
        gamma.bind(decl.name, SecurityType(STable(pc_tbl), self.algebra.bottom))
        return gamma

    def _check_table_action_ref(
        self,
        ref: d.ActionRef,
        gamma: SecurityContext,
        labeler: TypeLabeler,
        key_labels: List[Tuple[d.TableKey, object]],
        pc,
        table_name: str,
    ):
        target = gamma.lookup(ref.name)
        if target is None or not isinstance(target.body, SFunction):
            # The ordinary checker reports the missing/ill-typed action.
            return None
        fn = target.body
        # Keys act like the guard of a conditional: every key label must be
        # below the write bound of every action the table may invoke.
        for key, key_label in key_labels:
            self.algebra.require_leq(
                key_label,
                self.algebra.coerce(fn.pc_fn),
                RuleSite(
                    key.span,
                    rule="T-TblDecl",
                    kind=ViolationKind.TABLE_KEY_FLOW,
                    reason=(
                        f"table key {key.expression.describe()!r} of "
                        f"{table_name!r} must stay below the write bound of "
                        f"action {ref.name!r}"
                    ),
                    message=(
                        f"table key {key.expression.describe()!r} has label "
                        f"{{lhs}}, but action {ref.name!r} writes at level "
                        "{rhs}; matching on the key would leak it"
                    ),
                ),
            )
        # Declaration-time arguments bind to the action's leading parameters.
        for argument, parameter in zip(ref.arguments, fn.parameters):
            arg_type, arg_dir = self.check_expression(argument, gamma, labeler, pc)
            if arg_type is None:
                continue
            self._check_argument_flow(argument, arg_type, arg_dir, parameter, ref.name)
        return fn.pc_fn

    # ------------------------------------------------------------------ statements (Figure 6)

    def check_statement(
        self,
        stmt: s.Statement,
        gamma: SecurityContext,
        labeler: TypeLabeler,
        pc,
    ) -> SecurityContext:
        if isinstance(stmt, s.Block):
            scope = gamma.child()
            for inner in stmt.statements:
                scope = self.check_statement(inner, scope, labeler, pc)
            return gamma
        if isinstance(stmt, s.Assign):
            self._check_assign(stmt, gamma, labeler, pc)
            return gamma
        if isinstance(stmt, s.If):
            self._check_if(stmt, gamma, labeler, pc)
            return gamma
        if isinstance(stmt, s.CallStmt):
            self._check_call_statement(stmt, gamma, labeler, pc)
            return gamma
        if isinstance(stmt, s.Exit):
            self._check_control_signal(stmt.span, "exit", pc, rule="T-Exit")
            return gamma
        if isinstance(stmt, s.Return):
            self._check_return(stmt, gamma, labeler, pc)
            return gamma
        if isinstance(stmt, s.VarDeclStmt):
            return self._check_var_decl(stmt.declaration, gamma, labeler, pc)
        self.algebra.type_error(
            f"unsupported statement {stmt.describe()}", stmt.span, rule="stmt"
        )
        return gamma

    # -- T-Assign --------------------------------------------------------------

    def _check_assign(
        self, stmt: s.Assign, gamma: SecurityContext, labeler: TypeLabeler, pc
    ) -> None:
        target_type, target_dir = self.check_expression(stmt.target, gamma, labeler, pc)
        value_type, _ = self.check_expression(stmt.value, gamma, labeler, pc)
        if target_type is None or value_type is None:
            return
        target_bound = self.algebra.write_label(target_type)
        self._record_write(target_bound)
        if target_dir != DIR_INOUT:
            # Assignment to a read-only expression never executes; the flow
            # and pc conditions below would blame labels for a type error.
            self.algebra.type_error(
                f"cannot assign to read-only expression {stmt.target.describe()!r}",
                stmt.target.span,
                rule="T-Assign",
            )
            return
        if not bodies_compatible(target_type.body, value_type.body):
            # The ordinary checker reports the shape mismatch; nothing to add.
            return
        self.algebra.require_flow(
            value_type,
            target_type,
            RuleSite(
                stmt.span,
                rule="T-Assign",
                kind=ViolationKind.EXPLICIT_FLOW,
                reason=(
                    f"{stmt.value.describe()!r} flows into "
                    f"{stmt.target.describe()!r}"
                ),
                message=(
                    f"cannot assign {stmt.value.describe()!r} (label {{src}}) to "
                    f"{stmt.target.describe()!r} (label {{dst}}): {{dst}} <- "
                    "{src} is not allowed"
                ),
            ),
        )
        self.algebra.require_leq(
            pc,
            target_bound,
            RuleSite(
                stmt.span,
                rule="T-Assign",
                kind=ViolationKind.IMPLICIT_FLOW,
                reason=(
                    f"assignment to {stmt.target.describe()!r} must be writable "
                    "at the level of the surrounding branch or table key"
                ),
                message=(
                    f"assignment to {stmt.target.describe()!r} (label {{rhs}}) "
                    "occurs in a context of level {lhs}; the branch or table "
                    "key would leak implicitly"
                ),
            ),
        )

    # -- T-Cond ----------------------------------------------------------------

    def _check_if(
        self, stmt: s.If, gamma: SecurityContext, labeler: TypeLabeler, pc
    ) -> None:
        guard_type, _ = self.check_expression(stmt.condition, gamma, labeler, pc)
        guard_label = (
            self.algebra.read_label(guard_type)
            if guard_type is not None
            else self.algebra.bottom
        )
        branch_pc = self.algebra.join(pc, guard_label)
        self.check_statement(stmt.then_branch, gamma, labeler, branch_pc)
        self.check_statement(stmt.else_branch, gamma, labeler, branch_pc)

    # -- T-FnCallStmt / T-TblCall ----------------------------------------------

    def _check_call_statement(
        self, stmt: s.CallStmt, gamma: SecurityContext, labeler: TypeLabeler, pc
    ) -> None:
        call = stmt.call
        callee_type, _ = self.check_expression(call.callee, gamma, labeler, pc)
        if callee_type is None:
            return
        if isinstance(callee_type.body, STable):
            pc_tbl = self.algebra.coerce(callee_type.body.pc_tbl)
            self._record_write(pc_tbl)
            self.algebra.require_leq(
                pc,
                pc_tbl,
                RuleSite(
                    stmt.span,
                    rule="T-TblCall",
                    kind=ViolationKind.IMPLICIT_FLOW,
                    reason=(
                        f"table {call.callee.describe()!r} is applied in a "
                        "guarded context; its write bound must dominate the guard"
                    ),
                    message=(
                        f"table {call.callee.describe()!r} writes at level "
                        "{rhs} but is applied in a context of level {lhs}"
                    ),
                ),
            )
            return
        # Ordinary action / function call used as a statement.
        self.check_expression(call, gamma, labeler, pc)

    # -- T-Exit / T-Return -------------------------------------------------------

    def _check_control_signal(
        self, span: SourceSpan, keyword: str, pc, rule: str
    ) -> None:
        self._record_write(self.algebra.bottom)
        self.algebra.require_leq(
            pc,
            self.algebra.bottom,
            RuleSite(
                span,
                rule=rule,
                kind=ViolationKind.CONTROL_SIGNAL,
                reason=f"{keyword!r} statements only type check under a public pc",
                message=(
                    f"{keyword!r} statements only type check under a {{rhs}} "
                    "program counter, but the context has level {lhs}; the "
                    "control signal would leak the guard"
                ),
            ),
        )

    def _check_return(
        self, stmt: s.Return, gamma: SecurityContext, labeler: TypeLabeler, pc
    ) -> None:
        self._check_control_signal(stmt.span, "return", pc, rule="T-Return")
        expected = gamma.lookup(SecurityContext.RETURN_KEY)
        if stmt.value is None or expected is None:
            return
        value_type, _ = self.check_expression(stmt.value, gamma, labeler, pc)
        if value_type is None:
            return
        if bodies_compatible(expected.body, value_type.body):
            self.algebra.require_flow(
                value_type,
                expected,
                RuleSite(
                    stmt.span,
                    rule="T-Return",
                    kind=ViolationKind.EXPLICIT_FLOW,
                    reason="return value flows into the function's return label",
                    message=(
                        "return value has label {src}, but the function's "
                        "return type is labelled {dst}"
                    ),
                ),
            )

    # ------------------------------------------------------------------ expressions (Figure 5)

    def check_expression(
        self,
        expr: e.Expression,
        gamma: SecurityContext,
        labeler: TypeLabeler,
        pc,
    ) -> Tuple[Optional[SecurityType], str]:
        """Type an expression; returns ``(security type, direction)``."""
        algebra = self.algebra
        bottom = algebra.bottom
        if isinstance(expr, e.BoolLiteral):
            return SecurityType(SBool(), bottom), DIR_IN
        if isinstance(expr, e.IntLiteral):
            body: SecurityBody = SInt() if expr.width is None else SBit(expr.width)
            return SecurityType(body, bottom), DIR_IN
        if isinstance(expr, e.Var):
            sec_type = gamma.lookup(expr.name)
            if sec_type is None:
                # Unknown variables are the ordinary checker's problem.
                return None, DIR_IN
            return sec_type, DIR_INOUT
        if isinstance(expr, e.BinaryOp):
            left_type, _ = self.check_expression(expr.left, gamma, labeler, pc)
            right_type, _ = self.check_expression(expr.right, gamma, labeler, pc)
            if left_type is None or right_type is None:
                return None, DIR_IN
            label = algebra.join(
                algebra.read_label(left_type), algebra.read_label(right_type)
            )
            result_body = binary_result_body(expr.op, left_type.body, right_type.body)
            return SecurityType(result_body, label), DIR_IN
        if isinstance(expr, e.UnaryOp):
            operand_type, _ = self.check_expression(expr.operand, gamma, labeler, pc)
            if operand_type is None:
                return None, DIR_IN
            return operand_type.with_label(algebra.read_label(operand_type)), DIR_IN
        if isinstance(expr, e.RecordLiteral):
            fields = []
            for name, value in expr.fields:
                value_type, _ = self.check_expression(value, gamma, labeler, pc)
                if value_type is None:
                    return None, DIR_IN
                fields.append((name, value_type))
            return SecurityType(SRecord(tuple(fields)), bottom), DIR_IN
        if isinstance(expr, e.FieldAccess):
            return self._check_field_access(expr, gamma, labeler, pc)
        if isinstance(expr, e.Index):
            return self._check_index(expr, gamma, labeler, pc)
        if isinstance(expr, e.Call):
            if (
                isinstance(expr.callee, e.Var)
                and expr.callee.name in DECLASSIFY_FUNCTIONS
                and gamma.lookup(expr.callee.name) is None
            ):
                return self._check_declassify(expr, gamma, labeler, pc)
            return self._check_call(expr, gamma, labeler, pc)
        return None, DIR_IN

    # -- T-MemRec / T-MemHdr ------------------------------------------------------

    def _check_field_access(
        self, expr: e.FieldAccess, gamma: SecurityContext, labeler: TypeLabeler, pc
    ) -> Tuple[Optional[SecurityType], str]:
        target_type, direction = self.check_expression(expr.target, gamma, labeler, pc)
        if target_type is None:
            return None, DIR_IN
        body = target_type.body
        if not isinstance(body, (SRecord, SHeader)):
            return None, DIR_IN
        field_type = body.field_named(expr.field_name)
        if field_type is None:
            return None, DIR_IN
        return field_type, direction

    # -- T-Index ------------------------------------------------------------------

    def _check_index(
        self, expr: e.Index, gamma: SecurityContext, labeler: TypeLabeler, pc
    ) -> Tuple[Optional[SecurityType], str]:
        array_type, direction = self.check_expression(expr.array, gamma, labeler, pc)
        index_type, _ = self.check_expression(expr.index, gamma, labeler, pc)
        if array_type is None or not isinstance(array_type.body, SStack):
            return None, DIR_IN
        element = array_type.body.element
        if index_type is not None:
            self.algebra.require_leq(
                self.algebra.read_label(index_type),
                self.algebra.coerce(element.label),
                RuleSite(
                    expr.span,
                    rule="T-Index",
                    kind=ViolationKind.EXPLICIT_FLOW,
                    reason=(
                        f"index {expr.index.describe()!r} leaks through the "
                        "selected stack element"
                    ),
                    message=(
                        f"index {expr.index.describe()!r} has label {{lhs}}, "
                        "which is not below the element label {rhs}; the index "
                        "would leak through the selected element"
                    ),
                ),
            )
        return element, direction

    # -- declassify / endorse (extension; off unless explicitly enabled) ----------

    def _check_declassify(
        self, expr: e.Call, gamma: SecurityContext, labeler: TypeLabeler, pc
    ) -> Tuple[Optional[SecurityType], str]:
        primitive = expr.callee.name  # type: ignore[union-attr]
        if len(expr.arguments) != 1:
            self.algebra.error(
                ViolationKind.TYPE_ERROR,
                f"{primitive} takes exactly one argument",
                expr.span,
                rule="T-Declassify",
            )
            return None, DIR_IN
        argument = expr.arguments[0]
        arg_type, _ = self.check_expression(argument, gamma, labeler, pc)
        if arg_type is None:
            return None, DIR_IN
        if not self.algebra.allow_declassification:
            self.algebra.error(
                ViolationKind.DECLASSIFICATION,
                f"{primitive}({argument.describe()}) is not permitted: run the "
                "checker with declassification enabled (p4bid --allow-declassify) "
                "to accept audited releases",
                expr.span,
                rule="T-Declassify",
            )
            return arg_type, DIR_IN
        # Releases are only honoured in a public context: otherwise the fact
        # that the release happened would itself leak the guard.
        self.algebra.require_leq(
            pc,
            self.algebra.bottom,
            RuleSite(
                expr.span,
                rule="T-Declassify",
                kind=ViolationKind.IMPLICIT_FLOW,
                reason=f"{primitive} may only be used in a public context",
                message=f"{primitive} may not be used in a context of level {{lhs}}",
                pc_obligation=True,
            ),
        )
        self.algebra.record_declassification(
            primitive, argument.describe(), arg_type, expr.span
        )
        return self.algebra.lower_to_bottom(arg_type), DIR_IN

    # -- T-Call --------------------------------------------------------------------

    def _check_call(
        self, expr: e.Call, gamma: SecurityContext, labeler: TypeLabeler, pc
    ) -> Tuple[Optional[SecurityType], str]:
        callee_type, _ = self.check_expression(expr.callee, gamma, labeler, pc)
        if callee_type is None:
            return None, DIR_IN
        if isinstance(callee_type.body, STable):
            # Table application in expression position; the ordinary checker
            # flags the position, here we just return unit.
            return SecurityType(SUnit(), self.algebra.bottom), DIR_IN
        if not isinstance(callee_type.body, SFunction):
            return None, DIR_IN
        fn = callee_type.body
        self._record_write(fn.pc_fn)
        self.algebra.require_leq(
            pc,
            self.algebra.coerce(fn.pc_fn),
            RuleSite(
                expr.span,
                rule="T-FnCall",
                kind=ViolationKind.CALL_CONTEXT,
                reason=(
                    f"{expr.callee.describe()!r} is called in a guarded context; "
                    "its write bound must dominate the guard"
                ),
                message=(
                    f"{expr.callee.describe()!r} writes at level {{rhs}} but is "
                    "called in a context of level {lhs}; the call would leak "
                    "the guard into the callee's writes"
                ),
            ),
        )
        for argument, parameter in zip(expr.arguments, fn.parameters):
            arg_type, arg_dir = self.check_expression(argument, gamma, labeler, pc)
            if arg_type is None:
                continue
            self._check_argument_flow(
                argument, arg_type, arg_dir, parameter, expr.callee.describe()
            )
        return fn.return_type, DIR_IN

    # -- T-Call / T-SubType-In arguments ---------------------------------------------

    def _check_argument_flow(
        self,
        argument: e.Expression,
        arg_type: SecurityType,
        arg_dir: str,
        parameter: SParam,
        callee: str,
    ) -> None:
        if not bodies_compatible(parameter.sec_type.body, arg_type.body):
            # Shape mismatch: the ordinary checker reports it.
            return
        if parameter.direction in (DIR_INOUT, "out"):
            self._record_write(self.algebra.write_label(arg_type))
            if arg_dir != DIR_INOUT:
                self.algebra.type_error(
                    f"argument {argument.describe()!r} for {parameter.direction} "
                    f"parameter {parameter.name!r} of {callee!r} must be an l-value",
                    argument.span,
                    rule="T-Call",
                )
                return
            # T-SubType-In only applies to in-direction expressions: inout
            # arguments must carry exactly the parameter's labels.
            self.algebra.require_labels_equal(
                arg_type,
                parameter.sec_type,
                RuleSite(
                    argument.span,
                    rule="T-SubType-In",
                    kind=ViolationKind.ARGUMENT_FLOW,
                    reason=(
                        f"inout argument {argument.describe()!r} must carry "
                        f"exactly the label of parameter {parameter.name!r} of "
                        f"{callee!r}"
                    ),
                    message=(
                        f"inout argument {argument.describe()!r} (label {{src}}) "
                        f"does not match the label of parameter "
                        f"{parameter.name!r} ({{dst}}); relabelling writable "
                        "arguments is unsound"
                    ),
                ),
            )
            return
        # in-direction parameter: subsumption allows raising the label.
        self.algebra.require_flow(
            arg_type,
            parameter.sec_type,
            RuleSite(
                argument.span,
                rule="T-Call",
                kind=ViolationKind.ARGUMENT_FLOW,
                reason=(
                    f"argument {argument.describe()!r} flows into parameter "
                    f"{parameter.name!r} of {callee!r}"
                ),
                message=(
                    f"argument {argument.describe()!r} has label {{src}}, which "
                    f"may not flow into parameter {parameter.name!r} of "
                    f"{callee!r} (label {{dst_read}})"
                ),
            ),
        )
