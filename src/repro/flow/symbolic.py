"""The symbolic instance: Figure 5–7 over label *terms*.

``SymbolicAlgebra`` interprets every ``require_*`` hook by appending the
side condition -- unevaluated, with full provenance -- to a
:class:`~repro.inference.constraints.ConstraintSet` over
:class:`~repro.inference.terms.Term`\\ s.  Running
:class:`~repro.flow.analysis.FlowAnalysis` with this algebra is the
label-inference constraint generator;
:class:`repro.inference.generate.ConstraintGenerator` is a thin façade
over exactly that.

Label variables enter through
:class:`~repro.inference.generate.InferenceLabeler`, whose
``attach_label`` hook allocates a fresh variable for every scalar
annotation slot that is missing or explicitly marked ``infer``.  Security
types are reused unchanged -- their ``label`` slots simply hold terms --
so the structural machinery of Figure 4 needs no duplication.

Function bodies are walked once (``rechecks_bodies`` is False): the
conditions a concrete re-walk under ``pc_fn`` would add hold by lattice
laws, except the ``pc ⊑ ⊥`` condition of T-Declassify, whose spans are
collected as obligations during the walk and emitted against the
symbolic ``pc_fn`` when the body finishes (see
:meth:`SymbolicAlgebra.exit_function_body`).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.flow.algebra import LabelAlgebra, RuleSite
from repro.ifc.context import SecurityTypeDefs
from repro.ifc.errors import IfcDiagnostic, ViolationKind
from repro.ifc.security_types import SHeader, SRecord, SStack, SecurityType
from repro.inference.constraints import Constraint, ConstraintSet
from repro.inference.generate import (
    InferenceLabeler,
    SiteRegistry,
    term_read_label,
    term_write_label,
)
from repro.inference.terms import (
    ConstTerm,
    LabelVar,
    Term,
    VarSupply,
    VarTerm,
    as_term,
    join_terms,
    meet_terms,
)
from repro.lattice.base import Lattice, LatticeError
from repro.syntax import declarations as d
from repro.syntax.source import SourceSpan
from repro.syntax.types import AnnotatedType, is_inference_marker


class SymbolicAlgebra(LabelAlgebra):
    """Label algebra whose carrier is terms over label variables."""

    rechecks_bodies = False
    wants_hints = True

    def __init__(self, lattice: Lattice, *, allow_declassification: bool = False) -> None:
        super().__init__(lattice, allow_declassification=allow_declassification)
        self.supply = VarSupply()
        self.registry = SiteRegistry(self.supply)
        self.constraints = ConstraintSet()
        self.errors: List[IfcDiagnostic] = []
        #: Label variables standing for ``@pc(infer)`` control annotations,
        #: as (control, variable) pairs -- keyed by the declaration itself,
        #: not its name, since duplicate control names are legal.
        self.control_pc_vars: List[Tuple[d.ControlDecl, LabelVar]] = []
        #: Spans of declassify uses in the enclosing function body: each one
        #: obliges ``pc_fn ⊑ ⊥`` once the bound is known.
        self._pc_obligations: List[List[SourceSpan]] = []
        self._bottom = ConstTerm(lattice.bottom)

    # ------------------------------------------------------------------ carrier

    @property
    def bottom(self) -> Term:
        return self._bottom

    def coerce(self, label: object) -> Term:
        return as_term(label)

    def join(self, *labels: object) -> Term:
        return join_terms(self.lattice, labels)

    def meet_all(self, labels: Iterable) -> Term:
        return meet_terms(self.lattice, labels)

    def read_label(self, sec_type: SecurityType) -> Term:
        return term_read_label(self.lattice, sec_type)

    def write_label(self, sec_type: SecurityType) -> Term:
        return term_write_label(self.lattice, sec_type)

    # ------------------------------------------------------------------ resolution

    def make_labeler(self, definitions: SecurityTypeDefs) -> InferenceLabeler:
        return InferenceLabeler(self.lattice, definitions, self.registry)

    def resolve_control_pc(self, control: d.ControlDecl) -> Term:
        if control.pc_label is None:
            return self._bottom
        try:
            return ConstTerm(self.lattice.parse_label(control.pc_label))
        except LatticeError:
            if is_inference_marker(control.pc_label):
                var = self.supply.fresh(f"pc of control {control.name}", control.span)
                self.control_pc_vars.append((control, var))
                return VarTerm(var)
            self.error(
                ViolationKind.LABEL_ERROR,
                f"unknown pc label {control.pc_label!r} on control {control.name!r}",
                control.span,
                rule="@pc",
            )
            return self._bottom

    # ------------------------------------------------------------------ rule sites

    def _constrain(self, lhs: object, rhs: object, site: RuleSite) -> None:
        lhs_term, rhs_term = as_term(lhs), as_term(rhs)
        if isinstance(lhs_term, ConstTerm) and isinstance(rhs_term, ConstTerm):
            if self.lattice.leq(lhs_term.label, rhs_term.label):
                return  # trivially satisfied; keep the system small
        elif lhs_term == self._bottom:
            return  # ⊥ flows anywhere
        recorder = self.telemetry
        if recorder.enabled:
            recorder.count("constraints.emitted." + site.rule)
        self.constraints.add(
            Constraint(lhs_term, rhs_term, site.span, site.rule, site.kind, site.reason)
        )

    def require_leq(self, lhs: object, rhs: object, site: RuleSite) -> None:
        self.note_site(site)
        self._constrain(lhs, rhs, site)
        if site.pc_obligation and self._pc_obligations:
            self._pc_obligations[-1].append(site.span)

    def require_flow(
        self, source: SecurityType, destination: SecurityType, site: RuleSite
    ) -> None:
        self.note_site(site)
        self._flow(source, destination, site)

    def _flow(
        self, source: SecurityType, destination: SecurityType, site: RuleSite
    ) -> None:
        """Term analogue of ``flow_allowed``: one constraint per leaf."""
        src_body, dst_body = source.body, destination.body
        if isinstance(dst_body, (SRecord, SHeader)) and type(src_body) is type(dst_body):
            src_map = src_body.field_map()
            for name, dst_field in dst_body.fields:
                src_field = src_map.get(name)
                if src_field is None:
                    return
                self._flow(src_field, dst_field, site)
            return
        if isinstance(dst_body, SStack) and isinstance(src_body, SStack):
            if dst_body.size != src_body.size:
                return
            self._flow(src_body.element, dst_body.element, site)
            return
        self._constrain(source.label, destination.label, site)

    def require_labels_equal(
        self, left: SecurityType, right: SecurityType, site: RuleSite
    ) -> None:
        self.note_site(site)
        # Equality is both directions of ⊑, leaf-wise.
        self._flow(left, right, site)
        self._flow(right, left, site)

    def error(
        self, kind: ViolationKind, message: str, span: SourceSpan, rule: str
    ) -> None:
        self.errors.append(IfcDiagnostic(kind, message, span, rule))

    # ------------------------------------------------------------------ traversal hooks

    def suggest_hint(self, node: AnnotatedType, hint: str) -> None:
        self.registry.suggest_hint(node, hint)

    def enter_function_body(self, name: str) -> None:
        self._pc_obligations.append([])

    def exit_function_body(self, name: str, pc_fn: Term) -> None:
        obligations = self._pc_obligations.pop()
        for span in obligations:
            self._constrain(
                pc_fn,
                self._bottom,
                RuleSite(
                    span,
                    rule="T-Declassify",
                    kind=ViolationKind.IMPLICIT_FLOW,
                    reason=(
                        f"declassification inside {name!r} requires the "
                        "function's write bound pc_fn to be public"
                    ),
                ),
            )
