"""One Figure 5–7 traversal, parameterized by a label algebra.

The security typing rules of the paper admit two useful readings: *check*
them against concrete lattice labels (the P4BID checker) or *collect*
them as ⊑-constraints over label terms (the inference generator).  This
package factors the rules into a single traversal,
:class:`~repro.flow.analysis.FlowAnalysis`, written once against the
:class:`~repro.flow.algebra.LabelAlgebra` protocol, plus one algebra
instance per reading:

* :class:`~repro.flow.concrete.ConcreteAlgebra` -- carrier
  :data:`~repro.lattice.base.Label`; ``require_flow`` evaluates ``⊑``
  immediately and emits :class:`~repro.ifc.errors.IfcDiagnostic`\\ s;
* :class:`~repro.flow.symbolic.SymbolicAlgebra` -- carrier
  :class:`~repro.inference.terms.Term`; ``require_flow`` appends a
  constraint with provenance.

:class:`repro.ifc.checker.IfcChecker` and
:class:`repro.inference.generate.ConstraintGenerator` are façades over
these, so checker/generator drift is structurally impossible: there is
only one rule walk to drift from.
"""

from repro.flow.algebra import LabelAlgebra, RuleSite
from repro.flow.analysis import FlowAnalysis, binary_result_body
from repro.flow.concrete import ConcreteAlgebra

__all__ = [
    "ConcreteAlgebra",
    "FlowAnalysis",
    "LabelAlgebra",
    "RuleSite",
    "SymbolicAlgebra",
    "binary_result_body",
]


def __getattr__(name: str):
    # SymbolicAlgebra is resolved lazily (PEP 562): it pulls in the whole
    # repro.inference subsystem (terms, constraints, the labeler), which a
    # plain concrete check has no use for.
    if name == "SymbolicAlgebra":
        from repro.flow.symbolic import SymbolicAlgebra

        return SymbolicAlgebra
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
