"""The ``LabelAlgebra`` protocol: one ruleset, two interpretations.

The Figure 5–7 typing rules are a *traversal shape* plus a handful of
label-algebraic operations: joins at T-BinOp and branch program counters,
meets when folding write bounds into ``pc_fn`` / ``pc_tbl``, and ``⊑``
side conditions everywhere a value, guard, or key flows somewhere.  The
checker and the constraint generator used to implement the shape twice --
once testing ``⊑`` over concrete labels, once emitting it as a constraint
over terms.  A :class:`LabelAlgebra` abstracts exactly that difference:

* the **carrier**: what sits in the ``label`` slot of a
  :class:`~repro.ifc.security_types.SecurityType` (a concrete
  :data:`~repro.lattice.base.Label`, or a
  :class:`~repro.inference.terms.Term` over label variables);
* ``join`` / ``meet_all`` / ``read_label`` / ``write_label`` /
  ``lower_to_bottom`` over that carrier;
* the ``require_*`` hooks, which receive every ``⊑`` side condition the
  rules impose together with a :class:`RuleSite` describing *which* rule
  imposed it and why.  The concrete algebra evaluates the condition and
  emits an :class:`~repro.ifc.errors.IfcDiagnostic` when it fails; the
  symbolic algebra appends it, provenance and all, to a constraint system.

:class:`~repro.flow.analysis.FlowAnalysis` walks the AST exactly once and
is the only implementation of the traversal shape; the two algebra
instances live in :mod:`repro.flow.concrete` and
:mod:`repro.flow.symbolic`.  A third instance (bounded label polymorphism
for functions shared between tables) can be added without touching the
traversal -- that is the point of the parameterization.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.ifc.context import SecurityTypeDefs
from repro.ifc.convert import TypeLabeler
from repro.ifc.errors import ViolationKind
from repro.ifc.security_types import SecurityType, lower_labels
from repro.lattice.base import Lattice
from repro.telemetry.recorder import current_recorder
from repro.syntax import declarations as d
from repro.syntax.source import SourceSpan
from repro.syntax.types import AnnotatedType


@dataclass(frozen=True)
class RuleSite:
    """One rule application site: where a ``⊑`` side condition comes from.

    ``reason`` is the constraint-IR provenance (phrased like the
    generator's reasons); ``message`` is the concrete diagnostic template,
    in which the tokens ``{lhs}``/``{rhs}`` (for :meth:`LabelAlgebra.require_leq`)
    or ``{src}``/``{dst}``/``{dst_read}`` (for flow checks) are replaced with
    the formatted labels of the failing comparison.  Token substitution is
    plain string replacement, so expression renderings inside the template
    cannot collide with ``str.format`` brace parsing.
    """

    span: SourceSpan
    rule: str
    kind: ViolationKind
    reason: str
    message: str = ""
    #: Marks the ``pc ⊑ ⊥`` condition of T-Declassify, which additionally
    #: obliges the *enclosing function's* write bound to be public.  The
    #: concrete algebra discharges that by re-checking the body under
    #: ``pc_fn``; the symbolic algebra records the span and emits
    #: ``pc_fn ⊑ ⊥`` when the body walk finishes.
    pc_obligation: bool = False

    def render(self, lattice: Lattice, **labels: object) -> str:
        """The concrete diagnostic text, with label tokens substituted."""
        text = self.message or self.reason
        for token, label in labels.items():
            text = text.replace("{" + token + "}", lattice.format_label(label))
        return text


class LabelAlgebra(ABC):
    """The operations Figures 5–7 need, over an abstract label carrier."""

    #: Whether function bodies are re-walked under the inferred ``pc_fn``
    #: after the write-bound pass (the concrete checker's strategy; the
    #: symbolic algebra gets the same conditions from one walk because
    #: ``pc_fn``-dependent obligations are emitted symbolically instead).
    rechecks_bodies: bool = False

    #: Whether :meth:`suggest_hint` does anything.  The traversal checks
    #: this before *building* hint strings, so the concrete hot path does
    #: not pay for formatting names it would discard.
    wants_hints: bool = False

    def __init__(self, lattice: Lattice, *, allow_declassification: bool = False) -> None:
        self.lattice = lattice
        self.allow_declassification = allow_declassification
        #: The ambient telemetry recorder, captured once per walk.  The
        #: ``require_*`` implementations report each rule-site application
        #: through :meth:`note_site`; with the default no-op recorder the
        #: cost is one attribute test per site.
        self.telemetry = current_recorder()

    # ------------------------------------------------------------------ carrier

    @property
    @abstractmethod
    def bottom(self):
        """The carrier's ⊥ (a concrete label, or the constant ⊥ term)."""

    @abstractmethod
    def coerce(self, label):
        """Lift a raw label stored in a security type into the carrier."""

    @abstractmethod
    def join(self, *labels) -> object:
        """Least upper bound of carrier values (T-BinOp, branch pcs)."""

    @abstractmethod
    def meet_all(self, labels: Iterable) -> object:
        """Greatest lower bound of a collection (``pc_fn`` / ``pc_tbl``)."""

    @abstractmethod
    def read_label(self, sec_type: SecurityType):
        """The join of every label in ``sec_type`` (observing a value)."""

    @abstractmethod
    def write_label(self, sec_type: SecurityType):
        """The meet of every label in ``sec_type`` (writing an l-value)."""

    def lower_to_bottom(self, sec_type: SecurityType) -> SecurityType:
        """``sec_type`` with every label at ⊥ (declassify's full release)."""
        return lower_labels(sec_type, self.bottom)

    # ------------------------------------------------------------------ resolution

    @abstractmethod
    def make_labeler(self, definitions: SecurityTypeDefs) -> TypeLabeler:
        """The :class:`TypeLabeler` resolving annotations into the carrier."""

    @abstractmethod
    def resolve_control_pc(self, control: d.ControlDecl):
        """The pc a ``@pc``-annotated control runs under (⊥ when absent)."""

    # ------------------------------------------------------------------ rule sites

    def note_site(self, site: RuleSite) -> None:
        """Count one rule-site application (``flow.site.<rule>``).

        The single instrumentation point both interpretations share: every
        ``require_*`` implementation calls it on entry, so the concrete
        checker and the symbolic generator report the same per-rule
        traffic to whichever recorder is active.
        """
        recorder = self.telemetry
        if recorder.enabled:
            recorder.count("flow.site." + site.rule)

    @abstractmethod
    def require_leq(self, lhs, rhs, site: RuleSite) -> None:
        """Impose ``lhs ⊑ rhs`` between two carrier values."""

    @abstractmethod
    def require_flow(
        self, source: SecurityType, destination: SecurityType, site: RuleSite
    ) -> None:
        """Impose that a value of ``source`` may flow into ``destination``
        (field-wise for records/headers, element-wise for stacks)."""

    @abstractmethod
    def require_labels_equal(
        self, left: SecurityType, right: SecurityType, site: RuleSite
    ) -> None:
        """Impose label equality (both ⊑ directions) for inout arguments."""

    @abstractmethod
    def error(
        self, kind: ViolationKind, message: str, span: SourceSpan, rule: str
    ) -> None:
        """Report a non-flow rule failure both interpretations surface
        (unknown labels, forbidden declassification, arity errors)."""

    def type_error(self, message: str, span: SourceSpan, rule: str) -> None:
        """Report an ordinary type error (read-only writes, non-l-value
        arguments, unsupported constructs).  The checker owns these; the
        symbolic algebra leaves them to the re-run checker, so the default
        is a no-op."""

    # ------------------------------------------------------------------ declassification

    def record_declassification(
        self, primitive: str, expression: str, sec_type: SecurityType, span: SourceSpan
    ) -> None:
        """Audit one honoured ``declassify``/``endorse`` use (concrete only)."""

    # ------------------------------------------------------------------ traversal hooks

    def suggest_hint(self, node: AnnotatedType, hint: str) -> None:
        """Attach a readable name to an annotation slot (symbolic only)."""

    def enter_function_body(self, name: str) -> None:
        """A function/action body walk is starting."""

    def exit_function_body(self, name: str, pc_fn) -> None:
        """The body walk finished and its write bound is ``pc_fn``."""

    @contextmanager
    def write_bound_pass(self) -> Iterator[None]:
        """Wraps the body walk that collects write bounds.

        The concrete algebra silences diagnostics here (the body is
        re-checked for real under ``pc_fn`` afterwards); for the symbolic
        algebra the same walk *is* the real one, so the default does
        nothing.
        """
        yield
