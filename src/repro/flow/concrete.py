"""The concrete instance: Figure 5–7 over actual lattice labels.

``ConcreteAlgebra`` interprets every ``require_*`` hook by *evaluating*
the side condition with the lattice and emitting an
:class:`~repro.ifc.errors.IfcDiagnostic` when it fails.  Running
:class:`~repro.flow.analysis.FlowAnalysis` with this algebra is the P4BID
security checker; :class:`repro.ifc.checker.IfcChecker` is a thin façade
over exactly that.

Function bodies are analysed in two passes (``rechecks_bodies``): a
*silent* walk under a ⊥ pc collects the labels the body writes at (their
meet is ``pc_fn``), then the body is re-checked for real under ``pc_fn``.
Diagnostics and declassification audit events are suppressed during the
silent walk so nothing is reported twice.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator, List

from repro.flow.algebra import LabelAlgebra, RuleSite
from repro.ifc.context import SecurityTypeDefs
from repro.ifc.convert import TypeLabeler
from repro.ifc.declassify import DeclassificationEvent
from repro.ifc.errors import IfcDiagnostic, ViolationKind
from repro.ifc.security_types import (
    SecurityType,
    flow_allowed,
    labels_equal,
    read_label,
    write_label,
)
from repro.lattice.base import Label, Lattice
from repro.syntax import declarations as d
from repro.syntax.source import SourceSpan
from repro.syntax.types import inference_marker_guidance, is_inference_marker


class ConcreteAlgebra(LabelAlgebra):
    """Label algebra whose carrier is the lattice itself."""

    rechecks_bodies = True

    def __init__(self, lattice: Lattice, *, allow_declassification: bool = False) -> None:
        super().__init__(lattice, allow_declassification=allow_declassification)
        self.diagnostics: List[IfcDiagnostic] = []
        self.declassifications: List[DeclassificationEvent] = []
        self._silent_depth = 0

    # ------------------------------------------------------------------ carrier

    @property
    def bottom(self) -> Label:
        return self.lattice.bottom

    def coerce(self, label: Label) -> Label:
        return label

    def join(self, *labels: Label) -> Label:
        return self.lattice.join_all(labels)

    def meet_all(self, labels: Iterable[Label]) -> Label:
        return self.lattice.meet_all(labels)

    def read_label(self, sec_type: SecurityType) -> Label:
        return read_label(self.lattice, sec_type)

    def write_label(self, sec_type: SecurityType) -> Label:
        return write_label(self.lattice, sec_type)

    # ------------------------------------------------------------------ resolution

    def make_labeler(self, definitions: SecurityTypeDefs) -> TypeLabeler:
        return TypeLabeler(self.lattice, definitions)

    def resolve_control_pc(self, control: d.ControlDecl) -> Label:
        if control.pc_label is None:
            return self.lattice.bottom
        try:
            return self.lattice.parse_label(control.pc_label)
        except Exception:
            if is_inference_marker(control.pc_label):
                message = inference_marker_guidance(
                    control.pc_label, construct="@pc annotation"
                )
            else:
                message = (
                    f"unknown pc label {control.pc_label!r} on control "
                    f"{control.name!r}"
                )
            self.error(ViolationKind.LABEL_ERROR, message, control.span, rule="@pc")
            return self.lattice.bottom

    # ------------------------------------------------------------------ rule sites

    def require_leq(self, lhs: Label, rhs: Label, site: RuleSite) -> None:
        self.note_site(site)
        if not self.lattice.leq(lhs, rhs):
            self._emit(
                site.kind, site.render(self.lattice, lhs=lhs, rhs=rhs), site.span, site.rule
            )

    def require_flow(
        self, source: SecurityType, destination: SecurityType, site: RuleSite
    ) -> None:
        self.note_site(site)
        if not flow_allowed(self.lattice, source, destination):
            self._emit(
                site.kind,
                site.render(
                    self.lattice,
                    src=read_label(self.lattice, source),
                    dst=destination.label,
                    dst_read=read_label(self.lattice, destination),
                ),
                site.span,
                site.rule,
            )

    def require_labels_equal(
        self, left: SecurityType, right: SecurityType, site: RuleSite
    ) -> None:
        self.note_site(site)
        if not labels_equal(self.lattice, left, right):
            self._emit(
                site.kind,
                site.render(
                    self.lattice,
                    src=read_label(self.lattice, left),
                    dst=read_label(self.lattice, right),
                ),
                site.span,
                site.rule,
            )

    def error(
        self, kind: ViolationKind, message: str, span: SourceSpan, rule: str
    ) -> None:
        self._emit(kind, message, span, rule)

    def type_error(self, message: str, span: SourceSpan, rule: str) -> None:
        self._emit(ViolationKind.TYPE_ERROR, message, span, rule)

    def _emit(
        self, kind: ViolationKind, message: str, span: SourceSpan, rule: str
    ) -> None:
        if self._silent_depth == 0:
            self.diagnostics.append(IfcDiagnostic(kind, message, span, rule))

    # ------------------------------------------------------------------ declassification

    def record_declassification(
        self, primitive: str, expression: str, sec_type: SecurityType, span: SourceSpan
    ) -> None:
        if self._silent_depth == 0:
            self.declassifications.append(
                DeclassificationEvent(
                    primitive,
                    expression,
                    read_label(self.lattice, sec_type),
                    self.lattice.bottom,
                    span,
                )
            )

    # ------------------------------------------------------------------ traversal hooks

    @contextmanager
    def write_bound_pass(self) -> Iterator[None]:
        self._silent_depth += 1
        try:
            yield
        finally:
            self._silent_depth -= 1
