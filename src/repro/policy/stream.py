"""Replaying scenario traffic through an engine at sustained rate.

:func:`replay` drives a :class:`~repro.policy.engine.PolicyEngine` over a
:mod:`repro.synth.policy_traffic` event stream and separates the two
things a throughput harness must never conflate:

* the **decision log** — deterministic, byte-identical for a given
  ``(universe, stream)`` regardless of backend, worker count, hash seed
  or machine load; this is what the differential and determinism suites
  compare;
* the **timing report** — checks/sec plus p50/p95/p99 latency from a
  local power-of-two :class:`~repro.telemetry.recorder.Histogram` of
  per-decision microseconds; this is what ``BENCH_policy.json`` records
  and the CI guard thresholds.

``rate`` (requests/sec) paces the replay with monotonic-clock sleeps for
soak runs; the default ``None`` replays at full speed, which is what the
sustained-throughput benchmark wants.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.policy.engine import Decision, PolicyEngine
from repro.telemetry.recorder import Histogram, current_recorder

if TYPE_CHECKING:  # pragma: no cover - type-only import (synth imports us)
    from repro.synth.policy_traffic import TrafficEvent


@dataclass
class ReplayReport:
    """The outcome of one replay: decision log + timing summary."""

    engine: PolicyEngine
    decisions: List[Decision] = field(default_factory=list)
    revocations: int = 0
    duration_s: float = 0.0
    #: Per-decision latency in microseconds (power-of-two buckets).
    latency_us: Histogram = field(default_factory=Histogram)

    @property
    def checks_per_sec(self) -> float:
        if self.duration_s <= 0.0:
            return 0.0
        return len(self.decisions) / self.duration_s

    @property
    def permits(self) -> int:
        return sum(1 for decision in self.decisions if decision.permit)

    @property
    def denies(self) -> int:
        return len(self.decisions) - self.permits

    def decision_log(self) -> List[str]:
        """One deterministic line per decision — the byte-stability surface.

        Contains no timing, no backend name, nothing environmental: two
        replays of the same stream must produce identical logs whatever
        backend or machine decided them.
        """
        lattice = self.engine.universe.lattice
        return [
            f"{decision.request.uid} {decision.request.kind} "
            f"{decision.request.dataset} "
            f"{'PERMIT' if decision.permit else 'DENY'} "
            f"demand={decision.demand} bound={lattice.format_label(decision.bound)}"
            for decision in self.decisions
        ]

    def as_dict(self) -> Dict[str, Any]:
        quantiles = self.latency_us.percentiles()
        return {
            "backend": self.engine.backend,
            "lattice": self.engine.universe.lattice.name,
            "principals": self.engine.universe.lattice.principal_count,
            "events": len(self.decisions) + self.revocations,
            "decisions": len(self.decisions),
            "permits": self.permits,
            "denies": self.denies,
            "revocations": self.revocations,
            "duration_s": self.duration_s,
            "checks_per_sec": self.checks_per_sec,
            "latency_us": {
                "mean": self.latency_us.mean,
                "p50": quantiles["p50"],
                "p95": quantiles["p95"],
                "p99": quantiles["p99"],
                "max": self.latency_us.maximum,
            },
        }

    def describe(self) -> str:
        payload = self.as_dict()
        quantiles = payload["latency_us"]
        return (
            f"{payload['decisions']} decisions "
            f"({payload['permits']} permit / {payload['denies']} deny, "
            f"{payload['revocations']} revocation(s)) on {payload['backend']} "
            f"over {payload['lattice']}: {payload['checks_per_sec']:,.0f} "
            f"checks/sec, latency p50={quantiles['p50']:.1f}us "
            f"p95={quantiles['p95']:.1f}us p99={quantiles['p99']:.1f}us"
        )


def replay(
    engine: PolicyEngine,
    events: List["TrafficEvent"],
    *,
    rate: Optional[float] = None,
) -> ReplayReport:
    """Replay ``events`` through ``engine``, timing every decision.

    ``rate`` paces request admission at that many events/sec (monotonic
    deadline schedule, so pacing error does not accumulate); ``None``
    replays as fast as the engine decides.
    """
    if rate is not None and rate <= 0.0:
        raise ValueError(f"replay rate must be positive, got {rate!r}")
    report = ReplayReport(engine)
    recorder = current_recorder()
    with recorder.span("policy.replay", events=len(events)):
        started = time.perf_counter()
        for index, event in enumerate(events):
            if rate is not None:
                deadline = started + index / rate
                remaining = deadline - time.perf_counter()
                if remaining > 0.0:
                    time.sleep(remaining)
            if event.regrant is not None:
                subject, bound = event.regrant
                engine.set_grant(subject, bound)
                report.revocations += 1
                continue
            assert event.request is not None
            before = time.perf_counter_ns()
            decision = engine.decide(event.request)
            report.latency_us.record((time.perf_counter_ns() - before) / 1000.0)
            report.decisions.append(decision)
        report.duration_s = time.perf_counter() - started
        if recorder.enabled:
            recorder.count("policy.replayed_events", len(events))
    return report
