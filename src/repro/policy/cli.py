"""The ``p4bid policy`` verbs: check, bench, explain.

* ``p4bid policy check`` — generate the deterministic scenario universe
  and traffic stream, replay it through a :class:`PolicyEngine`, and
  print (or emit as JSON) the decision summary — optionally the full
  decision log, which is byte-identical across backends and machines.
* ``p4bid policy bench`` — the sustained-throughput comparison: the same
  universe and stream replayed on the packed *and* the graph backend,
  reporting checks/sec and p50/p95/p99 latency for both, and failing
  (exit 1) if the decision logs diverge or, with ``--require-speedup``,
  if packed does not beat graph on checks/sec.
* ``p4bid policy explain`` — decide one request of the stream and, when
  denied, print the shortest policy-violation chains (request →
  derivation lineage → the consent bound it breaks).

Exit status follows the checker's conventions: 0 ok, 1 the verb's
verdict is negative (bench guard failed, explained request denied with
``--deny-exit``), 2 usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.lattice.policy import PolicyLattice
from repro.lattice.registry import available_lattices, get_lattice
from repro.policy.engine import PolicyEngine
from repro.policy.model import PolicyError
from repro.policy.stream import ReplayReport, replay
from repro.synth.policy_traffic import policy_traffic, scenario_universe


def build_policy_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="p4bid policy",
        description=(
            "Data-governance compliance over policy lattices: decide "
            "purpose/consent/retention requests at traffic rate."
        ),
    )
    verbs = parser.add_subparsers(dest="verb", required=True)

    def common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--lattice",
            default="policy-mini",
            help=(
                "policy lattice to decide against (policy-mini, or "
                "policy-P-R-T for P purposes / R recipients / T retention "
                f"classes; registered: {', '.join(available_lattices())})"
            ),
        )
        sub.add_argument(
            "--subjects", type=int, default=24, metavar="N",
            help="data subjects in the scenario universe (default 24)",
        )
        sub.add_argument(
            "--datasets", type=int, default=12, metavar="N",
            help="datasets (raw + derived lineage) in the universe (default 12)",
        )
        sub.add_argument(
            "--events", type=int, default=1000, metavar="N",
            help="traffic events to generate (default 1000)",
        )
        sub.add_argument(
            "--revoke-every", type=int, default=200, metavar="N",
            help="inject a consent revocation every N events (0: never)",
        )
        sub.add_argument(
            "--seed", type=int, default=0,
            help="scenario seed; same seed, same universe and stream",
        )
        sub.add_argument(
            "--json", action="store_true", help="emit JSON instead of text"
        )

    check = verbs.add_parser(
        "check", help="replay the scenario stream and report the decisions"
    )
    common(check)
    check.add_argument(
        "--backend",
        choices=("auto", "packed", "graph"),
        default="auto",
        help=(
            "decision backend: packed int codec, object-lattice graph, or "
            "auto (packed when the lattice has a verified codec)"
        ),
    )
    check.add_argument(
        "--rate", type=float, metavar="R",
        help="pace the replay at R events/sec (default: full speed)",
    )
    check.add_argument(
        "--log", action="store_true",
        help="also print the per-decision log (deterministic, diffable)",
    )

    bench = verbs.add_parser(
        "bench", help="replay on both backends and compare checks/sec"
    )
    common(bench)
    bench.add_argument(
        "--require-speedup",
        action="store_true",
        help="exit 1 unless the packed backend beats graph on checks/sec",
    )

    explain = verbs.add_parser(
        "explain", help="explain one request of the stream (witness chains)"
    )
    common(explain)
    explain.add_argument(
        "--request", type=int, required=True, metavar="UID",
        help="uid of the stream event to explain (see `policy check --log`)",
    )
    explain.add_argument(
        "--deny-exit", action="store_true",
        help="exit 1 when the explained request is denied",
    )
    return parser


def _build_scenario(args: argparse.Namespace):
    lattice = get_lattice(args.lattice)
    if not isinstance(lattice, PolicyLattice):
        raise PolicyError(
            f"lattice {args.lattice!r} is not a policy lattice; use "
            f"policy-mini or policy-P-R-T"
        )
    universe = scenario_universe(
        lattice, subjects=args.subjects, datasets=args.datasets, seed=args.seed
    )
    events = policy_traffic(
        universe,
        events=args.events,
        revoke_every=args.revoke_every,
        seed=args.seed,
    )
    return universe, events


def _notice_fallback(engine: PolicyEngine) -> None:
    if engine.fallback_reason:
        print(
            f"p4bid policy: note: packed decisions unavailable -- "
            f"{engine.fallback_reason}",
            file=sys.stderr,
        )


def _check(args: argparse.Namespace) -> int:
    universe, events = _build_scenario(args)
    engine = PolicyEngine(universe, backend=args.backend)
    _notice_fallback(engine)
    report = replay(engine, events, rate=args.rate)
    if args.json:
        payload = report.as_dict()
        if args.log:
            payload["log"] = report.decision_log()
        print(json.dumps(payload, indent=2))
    else:
        print(report.describe())
        if args.log:
            print("\n".join(report.decision_log()))
    return 0


def _bench(args: argparse.Namespace) -> int:
    reports: List[ReplayReport] = []
    for backend in ("packed", "graph"):
        universe, events = _build_scenario(args)
        engine = PolicyEngine(universe, backend=backend)
        if backend == "packed" and engine.backend != "packed":
            _notice_fallback(engine)
            print(
                "p4bid policy: bench needs a packed-codec lattice to compare "
                "backends",
                file=sys.stderr,
            )
            return 2
        reports.append(replay(engine, events))
    packed, graph = reports
    identical = packed.decision_log() == graph.decision_log()
    speedup = (
        packed.checks_per_sec / graph.checks_per_sec
        if graph.checks_per_sec
        else 0.0
    )
    if args.json:
        print(
            json.dumps(
                {
                    "packed": packed.as_dict(),
                    "graph": graph.as_dict(),
                    "decisions_identical": identical,
                    "speedup": speedup,
                },
                indent=2,
            )
        )
    else:
        print(packed.describe())
        print(graph.describe())
        print(
            f"decisions identical: {identical}; packed/graph speedup: "
            f"{speedup:.2f}x"
        )
    if not identical:
        print("p4bid policy: backends disagree on decisions", file=sys.stderr)
        return 1
    if args.require_speedup and speedup <= 1.0:
        print(
            f"p4bid policy: packed did not beat graph "
            f"({packed.checks_per_sec:,.0f} vs {graph.checks_per_sec:,.0f} "
            f"checks/sec)",
            file=sys.stderr,
        )
        return 1
    return 0


def _explain(args: argparse.Namespace) -> int:
    universe, events = _build_scenario(args)
    engine = PolicyEngine(universe, backend="graph")
    target = None
    # Replay the stream up to the target uid so mid-stream revocations are
    # in effect, exactly as they were when the stream decided it.
    for event in events:
        if event.uid == args.request:
            target = event
            break
        if event.regrant is not None:
            engine.set_grant(*event.regrant)
    if target is None or target.request is None:
        print(
            f"p4bid policy: event {args.request} is not a request of this "
            f"stream (seed {args.seed}, {args.events} events)",
            file=sys.stderr,
        )
        return 2
    explanation = engine.explain(target.request)
    if args.json:
        lattice = universe.lattice
        print(
            json.dumps(
                {
                    "decision": explanation.decision.as_dict(engine),
                    "violated_subjects": list(explanation.violated_subjects),
                    "witnesses": [
                        witness.describe(lattice).splitlines()
                        for witness in explanation.witnesses
                    ],
                },
                indent=2,
            )
        )
    else:
        print(explanation.describe(engine))
    if args.deny_exit and not explanation.decision.permit:
        return 1
    return 0


def policy_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``p4bid policy``."""
    parser = build_policy_arg_parser()
    args = parser.parse_args(argv)
    if args.subjects < 1 or args.datasets < 1 or args.events < 1:
        parser.error("--subjects, --datasets and --events must be at least 1")
    if args.revoke_every < 0:
        parser.error("--revoke-every must be non-negative")
    try:
        if args.verb == "check":
            return _check(args)
        if args.verb == "bench":
            return _bench(args)
        return _explain(args)
    except PolicyError as exc:
        print(f"p4bid policy: {exc}", file=sys.stderr)
        return 2
