"""Data-governance policy compliance as a lattice-``⊑`` workload.

The second domain served by the shared core (the first is P4 IFC
checking): purpose/consent/retention policies are labels of a
:class:`~repro.lattice.policy.PolicyLattice`, a processing request
*demands* a label, and compliance is one ``demand ⊑ bound`` comparison
— evaluated through the bit-packed int codecs of
:mod:`repro.inference.packed` with a pure object-lattice fallback.

* :mod:`repro.policy.model` — the universe: data subjects with consent
  grants, datasets with derivation lineage, processing requests.
* :mod:`repro.policy.engine` — :class:`PolicyEngine`: compiles consent
  bounds, decides requests (permit/deny), explains denies through the
  leak-witness machinery, applies mid-stream consent revocations.
* :mod:`repro.policy.stream` — replays the deterministic scenario
  traffic from :mod:`repro.synth.policy_traffic` through an engine and
  reports sustained checks/sec with p50/p95/p99 latency.
* :mod:`repro.policy.cli` — the ``p4bid policy check|bench|explain``
  verbs.
"""

from repro.policy.model import (
    Dataset,
    PolicyError,
    PolicyUniverse,
    Request,
    SubjectGrant,
)
from repro.policy.engine import Decision, PolicyEngine
from repro.policy.stream import ReplayReport, replay

__all__ = [
    "Dataset",
    "Decision",
    "PolicyEngine",
    "PolicyError",
    "PolicyUniverse",
    "ReplayReport",
    "Request",
    "SubjectGrant",
    "replay",
]
