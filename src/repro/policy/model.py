"""The policy universe: subjects, consent grants, datasets, requests.

The model is deliberately small — three value types and one container —
because the *semantics* collapses onto the lattice:

* a **subject grant** is a :class:`~repro.lattice.policy.PolicyLabel`
  upper bound: the purposes and recipients the data subject consented
  to, and the longest retention class they accepted;
* a **dataset** names its direct data subjects and, for derived data
  (aggregates, model features, joins), the datasets it was derived
  from — a DAG of lineage;
* the **effective bound** of a dataset is the *meet* of the grants of
  every subject in its transitive lineage closure: derived data may be
  used only in ways *all* contributing subjects allowed;
* a **request** demands a label (one purpose, one recipient, one
  retention class) against a dataset, and is compliant exactly when
  ``demand ⊑ effective_bound`` — one lattice comparison per request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Sequence, Tuple

from repro.lattice.policy import PolicyLabel, PolicyLattice


class PolicyError(Exception):
    """A malformed universe or an unintelligible request."""


@dataclass(frozen=True)
class SubjectGrant:
    """One data subject's consent: an upper bound on any use of their data."""

    subject: str
    bound: PolicyLabel


@dataclass(frozen=True)
class Dataset:
    """A dataset with its direct subjects and derivation lineage."""

    name: str
    subjects: FrozenSet[str] = frozenset()
    parents: Tuple[str, ...] = ()


@dataclass(frozen=True)
class Request:
    """One processing request: use ``dataset`` for ``purpose``, disclose to
    ``recipient``, keep for ``retention``.  ``kind`` tags the scenario event
    that produced it (access / reuse / expiry-probe / ...)."""

    uid: int
    dataset: str
    purpose: str
    recipient: str
    retention: str
    kind: str = "access"

    def describe(self) -> str:
        return (
            f"request #{self.uid} [{self.kind}]: use {self.dataset!r} for "
            f"{self.purpose!r} -> {self.recipient!r} (keep {self.retention!r})"
        )


class PolicyUniverse:
    """All subjects, grants and datasets governed by one policy lattice.

    The universe is mutable only through :meth:`set_grant` (consent grants
    and revocations re-bound a subject); dataset lineage is fixed at
    construction.  Lineage closures are computed once and cached — consent
    updates invalidate only the *bounds*, not the closures.
    """

    def __init__(
        self,
        lattice: PolicyLattice,
        grants: Iterable[SubjectGrant],
        datasets: Iterable[Dataset],
    ) -> None:
        self.lattice = lattice
        self._grants: Dict[str, PolicyLabel] = {}
        for grant in grants:
            if grant.subject in self._grants:
                raise PolicyError(f"duplicate grant for subject {grant.subject!r}")
            self._grants[grant.subject] = lattice.require(grant.bound)
        self._datasets: Dict[str, Dataset] = {}
        for dataset in datasets:
            if dataset.name in self._datasets:
                raise PolicyError(f"duplicate dataset {dataset.name!r}")
            self._datasets[dataset.name] = dataset
        for dataset in self._datasets.values():
            for parent in dataset.parents:
                if parent not in self._datasets:
                    raise PolicyError(
                        f"dataset {dataset.name!r} derives from unknown "
                        f"dataset {parent!r}"
                    )
            for subject in dataset.subjects:
                if subject not in self._grants:
                    raise PolicyError(
                        f"dataset {dataset.name!r} names unknown subject "
                        f"{subject!r}"
                    )
        self._closures: Dict[str, Tuple[str, ...]] = {}
        for name in self._datasets:
            self._closure(name, ())

    # -- structure ----------------------------------------------------------

    @property
    def subjects(self) -> Tuple[str, ...]:
        return tuple(sorted(self._grants))

    @property
    def datasets(self) -> Tuple[str, ...]:
        return tuple(sorted(self._datasets))

    def dataset(self, name: str) -> Dataset:
        dataset = self._datasets.get(name)
        if dataset is None:
            raise PolicyError(f"unknown dataset {name!r}")
        return dataset

    def grant(self, subject: str) -> PolicyLabel:
        bound = self._grants.get(subject)
        if bound is None:
            raise PolicyError(f"unknown subject {subject!r}")
        return bound

    def set_grant(self, subject: str, bound: PolicyLabel) -> None:
        """Re-bound ``subject`` — a fresh consent grant or a revocation.

        Revoking a purpose/recipient is granting a *smaller* label; a full
        revocation is granting ``lattice.bottom``."""
        if subject not in self._grants:
            raise PolicyError(f"unknown subject {subject!r}")
        self._grants[subject] = self.lattice.require(bound)

    def contributing_subjects(self, dataset: str) -> Tuple[str, ...]:
        """Every subject in ``dataset``'s transitive lineage, sorted."""
        closure = self._closures.get(dataset)
        if closure is None:
            raise PolicyError(f"unknown dataset {dataset!r}")
        return closure

    def _closure(self, name: str, stack: Tuple[str, ...]) -> Tuple[str, ...]:
        cached = self._closures.get(name)
        if cached is not None:
            return cached
        if name in stack:
            cycle = " -> ".join(stack + (name,))
            raise PolicyError(f"dataset lineage is cyclic: {cycle}")
        dataset = self._datasets[name]
        subjects = set(dataset.subjects)
        for parent in dataset.parents:
            subjects.update(self._closure(parent, stack + (name,)))
        closure = tuple(sorted(subjects))
        self._closures[name] = closure
        return closure

    # -- semantics ----------------------------------------------------------

    def effective_bound(self, dataset: str) -> PolicyLabel:
        """Meet of the grants over the dataset's lineage closure.

        A dataset with no contributing subjects carries no personal data
        and is bounded only by ``top`` (anything is permitted)."""
        lattice = self.lattice
        bound = lattice.top
        for subject in self.contributing_subjects(dataset):
            bound = lattice.meet(bound, self._grants[subject])
        return bound

    def demand(self, request: Request) -> PolicyLabel:
        """The label a request demands (validated against the lattice)."""
        try:
            return self.lattice.label(
                [request.purpose], [request.recipient], request.retention
            )
        except Exception as exc:
            raise PolicyError(
                f"{request.describe()} demands labels outside lattice "
                f"{self.lattice.name!r}: {exc}"
            ) from exc

    def grants(self) -> Mapping[str, PolicyLabel]:
        """A read-only view of the current grant table."""
        return dict(self._grants)
