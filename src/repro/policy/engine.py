"""The batch decision engine: ``decide(request) -> permit/deny + witness``.

Compilation and decision are separate stages because the workload is
read-heavy: consent changes are rare, requests are not.

* **compile** — every dataset's effective consent bound (the meet over
  its lineage closure) is computed once and, when the lattice has a
  verified int codec (:func:`repro.inference.packed.codec_for`), packed
  into an int.  A consent update re-compiles only the datasets whose
  closure contains the updated subject.

* **decide** — one ``⊑`` check.  On the packed path that is literally
  ``demand | bound == bound`` over two cached ints; the pure-graph
  fallback evaluates :meth:`~repro.lattice.policy.PolicyLattice.leq`
  on the object labels.  Both paths produce byte-identical decisions —
  the differential suites pin this.

* **explain** — a denied request is re-phrased as a tiny constraint
  system (the demand propagates up the derivation lineage; every
  contributing subject's grant is a check obligation) and solved with
  the graph backend, so the PR 7 leak-witness machinery reports the
  *shortest policy-violation chain*: request → derivation hops → the
  consent bound it breaks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.witness import LeakWitness, witnesses_for_solution
from repro.ifc.errors import ViolationKind
from repro.inference.constraints import Constraint
from repro.inference.packed import LabelCodec, codec_for
from repro.inference.solve import Solution, solve
from repro.inference.terms import ConstTerm, LabelVar, VarSupply, VarTerm
from repro.lattice.policy import PolicyLabel
from repro.policy.model import PolicyError, PolicyUniverse, Request
from repro.telemetry.recorder import current_recorder


@dataclass(frozen=True)
class Decision:
    """The outcome of one compliance check, deterministic by construction."""

    request: Request
    permit: bool
    demand: PolicyLabel
    bound: PolicyLabel
    backend: str

    def as_dict(self, engine: "PolicyEngine") -> Dict[str, Any]:
        lattice = engine.universe.lattice
        return {
            "request": self.request.uid,
            "kind": self.request.kind,
            "dataset": self.request.dataset,
            "permit": self.permit,
            "demand": lattice.format_label(self.demand),
            "bound": lattice.format_label(self.bound),
            "backend": self.backend,
        }

    def describe(self, engine: "PolicyEngine") -> str:
        lattice = engine.universe.lattice
        verdict = "PERMIT" if self.permit else "DENY"
        return (
            f"{verdict} {self.request.describe()} — demands "
            f"{lattice.format_label(self.demand)}, bound "
            f"{lattice.format_label(self.bound)}"
        )


@dataclass(frozen=True)
class Explanation:
    """Why a request was denied: the shortest policy-violation chain."""

    decision: Decision
    #: One witness per violated consent bound, shortest chain first.
    witnesses: Tuple[LeakWitness, ...]
    #: The subjects whose grants the request violates, sorted.
    violated_subjects: Tuple[str, ...]

    def describe(self, engine: "PolicyEngine") -> str:
        lattice = engine.universe.lattice
        lines = [self.decision.describe(engine)]
        if not self.witnesses:
            lines.append("  (permitted: nothing to explain)")
        for witness in self.witnesses:
            lines.extend(
                "  " + line for line in witness.describe(lattice).splitlines()
            )
        return "\n".join(lines)


class PolicyEngine:
    """Decides compliance requests against one :class:`PolicyUniverse`."""

    def __init__(self, universe: PolicyUniverse, *, backend: str = "auto") -> None:
        if backend not in ("auto", "packed", "graph"):
            raise PolicyError(
                f"unknown policy backend {backend!r}; expected 'auto', "
                f"'packed' or 'graph'"
            )
        self.universe = universe
        self.requested_backend = backend
        self._codec: Optional[LabelCodec] = None
        self.fallback_reason: Optional[str] = None
        if backend in ("auto", "packed"):
            self._codec = codec_for(universe.lattice)
            if self._codec is None:
                self.fallback_reason = (
                    f"lattice {universe.lattice.name!r} has no verified int "
                    f"codec; deciding on the object lattice"
                )
                current_recorder().count("policy.fallbacks")
        self.backend = "packed" if self._codec is not None else "graph"
        self._bounds: Dict[str, PolicyLabel] = {}
        self._bound_bits: Dict[str, int] = {}
        self._subject_datasets: Dict[str, Tuple[str, ...]] = {}
        # Per-component demand bit tables: on the packed path a request
        # encodes as three dict lookups and one OR, no object labels.
        lattice = universe.lattice
        self._purpose_bits: Dict[str, int] = {}
        self._recipient_bits: Dict[str, int] = {}
        self._retention_bits: Dict[str, int] = {}
        if self._codec is not None:
            for name in lattice.purposes:
                self._purpose_bits[name] = self._codec.encode(
                    lattice.label([name])
                )
            for name in lattice.recipients:
                self._recipient_bits[name] = self._codec.encode(
                    lattice.label(recipients=[name])
                )
            for name in lattice.retention_classes:
                self._retention_bits[name] = self._codec.encode(
                    lattice.label(retention=name)
                )
        self.decisions = 0
        self.permits = 0
        self.denies = 0
        self.revocations = 0
        self._compile_all()

    # -- compilation --------------------------------------------------------

    def _compile_all(self) -> None:
        recorder = current_recorder()
        with recorder.span(
            "policy.compile",
            lattice=self.universe.lattice.name,
            backend=self.backend,
        ):
            by_subject: Dict[str, List[str]] = {}
            for name in self.universe.datasets:
                for subject in self.universe.contributing_subjects(name):
                    by_subject.setdefault(subject, []).append(name)
                self._compile_dataset(name)
            self._subject_datasets = {
                subject: tuple(names) for subject, names in by_subject.items()
            }
            recorder.count("policy.compiled_bounds", len(self._bounds))

    def _compile_dataset(self, name: str) -> None:
        bound = self.universe.effective_bound(name)
        self._bounds[name] = bound
        if self._codec is not None:
            self._bound_bits[name] = self._codec.encode(bound)

    def bound_for(self, dataset: str) -> PolicyLabel:
        bound = self._bounds.get(dataset)
        if bound is None:
            raise PolicyError(f"unknown dataset {dataset!r}")
        return bound

    # -- decisions ----------------------------------------------------------

    def decide(self, request: Request) -> Decision:
        recorder = current_recorder()
        started = time.perf_counter_ns() if recorder.enabled else 0
        if self._codec is not None:
            # The packed hot path: demand validation *is* the bit lookup,
            # the ⊑ check is one OR and one compare over cached ints.
            try:
                demand_bits = (
                    self._purpose_bits[request.purpose]
                    | self._recipient_bits[request.recipient]
                    | self._retention_bits[request.retention]
                )
                bound_bits = self._bound_bits[request.dataset]
            except KeyError as exc:
                raise PolicyError(
                    f"{request.describe()} names unknown dataset or labels "
                    f"outside lattice {self.universe.lattice.name!r}"
                ) from exc
            permit = demand_bits | bound_bits == bound_bits
            demand = PolicyLabel(
                frozenset((request.purpose,)),
                frozenset((request.recipient,)),
                request.retention,
            )
            bound = self._bounds[request.dataset]
        else:
            demand = self.universe.demand(request)
            bound = self.bound_for(request.dataset)
            permit = self.universe.lattice.leq(demand, bound)
        self.decisions += 1
        if permit:
            self.permits += 1
        else:
            self.denies += 1
        if recorder.enabled:
            recorder.count("policy.decisions")
            recorder.count("policy.permits" if permit else "policy.denies")
            recorder.observe(
                "policy.decide_us", (time.perf_counter_ns() - started) / 1000.0
            )
        return Decision(request, permit, demand, bound, self.backend)

    def decide_batch(self, requests: List[Request]) -> List[Decision]:
        with current_recorder().span("policy.decide", batch=len(requests)):
            return [self.decide(request) for request in requests]

    # -- consent updates ----------------------------------------------------

    def set_grant(self, subject: str, bound: PolicyLabel) -> Tuple[str, ...]:
        """Apply a consent grant/revocation; returns the datasets whose
        effective bound was re-compiled (the subject's lineage fan-out)."""
        recorder = current_recorder()
        with recorder.span("policy.regrant", subject=subject):
            self.universe.set_grant(subject, bound)
            affected = self._subject_datasets.get(subject, ())
            for name in affected:
                self._compile_dataset(name)
            self.revocations += 1
            recorder.count("policy.revocations")
            recorder.count("policy.recompiled_bounds", len(affected))
        return affected

    # -- explanations -------------------------------------------------------

    def _lineage_system(
        self, request: Request
    ) -> Tuple[List[Constraint], Dict[LabelVar, str]]:
        """The request as a constraint system over its lineage.

        One variable per dataset on the lineage paths ("the use demanded of
        this dataset"); the request's demand seeds the target; derived use
        counts as use of every source (``use(child) ⊑ use(parent)``); each
        direct subject's grant is a check obligation.
        """
        universe = self.universe
        supply = VarSupply()
        use_of: Dict[str, LabelVar] = {}
        var_dataset: Dict[LabelVar, str] = {}

        def use_var(name: str) -> LabelVar:
            var = use_of.get(name)
            if var is None:
                var = supply.fresh(hint=f"use({name})")
                use_of[name] = var
                var_dataset[var] = name
            return var

        constraints: List[Constraint] = []
        demand = universe.demand(request)
        pending = [request.dataset]
        seen = set()
        constraints.append(
            Constraint(
                ConstTerm(demand),
                VarTerm(use_var(request.dataset)),
                rule="policy-request",
                kind=ViolationKind.EXPLICIT_FLOW,
                reason=request.describe(),
            )
        )
        while pending:
            name = pending.pop()
            if name in seen:
                continue
            seen.add(name)
            dataset = universe.dataset(name)
            for parent in dataset.parents:
                constraints.append(
                    Constraint(
                        VarTerm(use_var(name)),
                        VarTerm(use_var(parent)),
                        rule="policy-derivation",
                        kind=ViolationKind.EXPLICIT_FLOW,
                        reason=f"{name!r} is derived from {parent!r}",
                    )
                )
                pending.append(parent)
            for subject in sorted(dataset.subjects):
                constraints.append(
                    Constraint(
                        VarTerm(use_var(name)),
                        ConstTerm(universe.grant(subject)),
                        rule="policy-consent",
                        kind=ViolationKind.DECLASSIFICATION,
                        reason=f"consent bound of subject {subject!r} on {name!r}",
                    )
                )
        return constraints, var_dataset

    def explain(self, request: Request) -> Explanation:
        """Explain ``request``; denies get shortest policy-violation chains.

        Always uses the graph backend — explanations need the propagation
        graph the witness BFS walks, and they are cold-path by design."""
        with current_recorder().span("policy.explain", request=request.uid):
            decision = self.decide(request)
            if decision.permit:
                return Explanation(decision, (), ())
            constraints, _ = self._lineage_system(request)
            solution = solve(self.universe.lattice, constraints, backend="graph")
            witnesses = tuple(witnesses_for_solution(solution))
            violated = sorted(
                {
                    _subject_of(witness.conflict.constraint.reason)
                    for witness in witnesses
                }
                - {None}
            )
            return Explanation(decision, witnesses, tuple(violated))

    # -- audits -------------------------------------------------------------

    def audit(
        self,
        requests: List[Request],
        *,
        backend: Optional[str] = None,
        workers: int = 1,
    ) -> Solution:
        """Solve every request's lineage system as *one* batch.

        This is the bulk path the parallel packed scheduler was built for
        (independent requests are independent clusters), and the surface
        the determinism suite pins across backends and worker counts."""
        constraints: List[Constraint] = []
        for request in requests:
            constraints.extend(self._lineage_system(request)[0])
        return solve(
            self.universe.lattice,
            constraints,
            backend=backend or ("packed" if self.backend == "packed" else "graph"),
            workers=workers,
        )

    # -- stats --------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "lattice": self.universe.lattice.name,
            "principals": self.universe.lattice.principal_count,
            "backend": self.backend,
            "requested_backend": self.requested_backend,
            "fallback_reason": self.fallback_reason,
            "subjects": len(self.universe.subjects),
            "datasets": len(self.universe.datasets),
            "decisions": self.decisions,
            "permits": self.permits,
            "denies": self.denies,
            "revocations": self.revocations,
        }


def _subject_of(reason: str) -> Optional[str]:
    """Recover the subject name from a ``policy-consent`` reason string."""
    marker = "consent bound of subject "
    if not reason.startswith(marker):
        return None
    rest = reason[len(marker):]
    if not rest.startswith("'"):
        return None
    return rest[1 : rest.index("'", 1)]
