"""The ordinary (label-free) Core P4 type system of Figure 3.

This is the baseline the paper compares against in Table 1: checking an
*unannotated* program uses only these rules, while P4BID additionally runs
the security rules of :mod:`repro.ifc`.
"""

from repro.typechecker.errors import CoreTypeError, TypeDiagnostic
from repro.typechecker.environment import TypeContext, TypeDefinitions
from repro.typechecker.unfold import unfold_type
from repro.typechecker.operators import binary_result_type, unary_result_type
from repro.typechecker.checker import (
    CoreTypeChecker,
    CoreCheckResult,
    check_core_types,
)

__all__ = [
    "CoreTypeError",
    "TypeDiagnostic",
    "TypeContext",
    "TypeDefinitions",
    "unfold_type",
    "binary_result_type",
    "unary_result_type",
    "CoreTypeChecker",
    "CoreCheckResult",
    "check_core_types",
]
