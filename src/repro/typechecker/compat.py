"""Structural type compatibility for the ordinary type system.

Two types are compatible when they unfold to structurally equal types; as
in P4, arbitrary-precision ``int`` literals are additionally compatible
with any ``bit<n>`` type (width-inferred constants).
"""

from __future__ import annotations

from repro.syntax.types import (
    BitType,
    BoolType,
    HeaderType,
    IntType,
    MatchKindType,
    RecordType,
    StackType,
    Type,
    UnitType,
)
from repro.typechecker.environment import TypeDefinitions
from repro.typechecker.unfold import unfold_type


def types_compatible(delta: TypeDefinitions, expected: Type, actual: Type) -> bool:
    """Whether a value of type ``actual`` can be used where ``expected`` is required."""
    expected = unfold_type(delta, expected)
    actual = unfold_type(delta, actual)
    if isinstance(expected, BoolType) and isinstance(actual, BoolType):
        return True
    if isinstance(expected, UnitType) and isinstance(actual, UnitType):
        return True
    if isinstance(expected, IntType) and isinstance(actual, (IntType, BitType)):
        return isinstance(actual, IntType)
    if isinstance(expected, BitType):
        if isinstance(actual, BitType):
            return expected.width == actual.width
        return isinstance(actual, IntType)
    if isinstance(expected, (RecordType, HeaderType)) and type(expected) is type(actual):
        if len(expected.fields) != len(actual.fields):
            return False
        for exp_field, act_field in zip(expected.fields, actual.fields):
            if exp_field.name != act_field.name:
                return False
            if not types_compatible(delta, exp_field.ty.ty, act_field.ty.ty):
                return False
        return True
    if isinstance(expected, StackType) and isinstance(actual, StackType):
        return expected.size == actual.size and types_compatible(
            delta, expected.element.ty, actual.element.ty
        )
    if isinstance(expected, MatchKindType) and isinstance(actual, MatchKindType):
        return True
    return False


def record_compatible_with_literal(
    delta: TypeDefinitions, expected: Type, literal_fields: list[tuple[str, Type]]
) -> bool:
    """Whether a record literal with the given field types fits ``expected``."""
    expected = unfold_type(delta, expected)
    if not isinstance(expected, (RecordType, HeaderType)):
        return False
    if len(expected.fields) != len(literal_fields):
        return False
    expected_by_name = {f.name: f.ty.ty for f in expected.fields}
    for name, ty in literal_fields:
        if name not in expected_by_name:
            return False
        if not types_compatible(delta, expected_by_name[name], ty):
            return False
    return True
