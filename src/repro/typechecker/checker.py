"""The ordinary Core P4 type checker.

Implements the label-free typing judgements the paper recalls in
Section 3.3:

* ``Γ, Δ ⊢ exp : κ goes d`` -- expression typing with a directionality,
* ``Γ, Δ ⊢ stmt ⊣ Γ'`` -- statement typing,
* ``Γ, Δ ⊢ decl ⊣ Γ', Δ'`` -- declaration typing.

The checker collects diagnostics instead of aborting on the first error so
the CLI can report every problem in a file, matching p4c's behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.syntax import declarations as d
from repro.syntax import expressions as e
from repro.syntax import statements as s
from repro.syntax.program import Program
from repro.syntax.source import SourceSpan
from repro.syntax.types import (
    AnnotatedType,
    BitType,
    BoolType,
    Field,
    FunctionType,
    HeaderType,
    IntType,
    MatchKindType,
    Parameter,
    RecordType,
    StackType,
    TableType,
    Type,
    TypeName,
    UnitType,
)
from repro.typechecker.compat import types_compatible
from repro.typechecker.environment import TypeContext, TypeDefinitions
from repro.typechecker.errors import CoreTypeError, TypeDiagnostic
from repro.typechecker.operators import binary_result_type, unary_result_type
from repro.typechecker.unfold import UnfoldError, unfold_type

#: Directionality of an expression: read-only or readable-and-writable.
DIR_IN = "in"
DIR_INOUT = "inout"

#: The match kinds the checker accepts when no match_kind declaration is in
#: scope.  Real P4 programs import these from core.p4; our dialect lets the
#: programmer redeclare them but does not require it.
DEFAULT_MATCH_KINDS = ("exact", "lpm", "ternary", "range", "optional")


@dataclass
class CoreCheckResult:
    """Outcome of running the ordinary type checker over a program."""

    program: Program
    diagnostics: List[TypeDiagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def raise_on_error(self) -> "CoreCheckResult":
        if self.diagnostics:
            raise CoreTypeError(self.diagnostics)
        return self


class CoreTypeChecker:
    """Checks a program against the ordinary Core P4 type system."""

    def __init__(self) -> None:
        self._diagnostics: List[TypeDiagnostic] = []

    # ------------------------------------------------------------------ entry points

    def check_program(self, program: Program) -> CoreCheckResult:
        self._diagnostics = []
        delta = TypeDefinitions()
        gamma = TypeContext()
        self._install_default_match_kinds(delta, gamma)
        for decl in program.declarations:
            gamma, delta = self.check_declaration(decl, gamma, delta)
        for control in program.controls:
            self.check_control(control, gamma, delta)
        return CoreCheckResult(program, list(self._diagnostics))

    def check_control(
        self, control: d.ControlDecl, gamma: TypeContext, delta: TypeDefinitions
    ) -> None:
        scope = gamma.child()
        for param in control.params:
            resolved = self._resolve_type(param.ty, delta, param.span)
            scope.bind(param.name, resolved)
        for decl in control.local_declarations:
            scope, delta = self.check_declaration(decl, scope, delta)
        self.check_statement(control.apply_block, scope, delta)

    # ------------------------------------------------------------------ helpers

    def _error(self, message: str, span: SourceSpan, rule: str = "") -> None:
        self._diagnostics.append(TypeDiagnostic(message, span, rule))

    def _install_default_match_kinds(
        self, delta: TypeDefinitions, gamma: TypeContext
    ) -> None:
        kind_type = MatchKindType(DEFAULT_MATCH_KINDS)
        delta.define("match_kind", kind_type)
        for member in DEFAULT_MATCH_KINDS:
            gamma.bind(member, kind_type)

    def _resolve_type(
        self, annotated: AnnotatedType, delta: TypeDefinitions, span: SourceSpan
    ) -> Type:
        """Unfold an annotated type, reporting unknown names as diagnostics."""
        try:
            return unfold_type(delta, annotated.ty)
        except UnfoldError as exc:
            self._error(str(exc), span, rule="typedef")
            return UnitType()

    def _unfold(self, ty: Type, delta: TypeDefinitions, span: SourceSpan) -> Type:
        try:
            return unfold_type(delta, ty)
        except UnfoldError as exc:
            self._error(str(exc), span, rule="typedef")
            return UnitType()

    # ------------------------------------------------------------------ declarations

    def check_declaration(
        self, decl: d.Declaration, gamma: TypeContext, delta: TypeDefinitions
    ) -> Tuple[TypeContext, TypeDefinitions]:
        if isinstance(decl, d.VarDecl):
            return self._check_var_decl(decl, gamma, delta), delta
        if isinstance(decl, d.TypedefDecl):
            delta.define(decl.name, decl.ty.ty)
            return gamma, delta
        if isinstance(decl, d.HeaderDecl):
            delta.define(decl.name, HeaderType(decl.fields))
            return gamma, delta
        if isinstance(decl, d.StructDecl):
            delta.define(decl.name, RecordType(decl.fields))
            return gamma, delta
        if isinstance(decl, d.MatchKindDecl):
            kind_type = MatchKindType(decl.members)
            delta.define("match_kind", kind_type)
            for member in decl.members:
                gamma.bind(member, kind_type)
            return gamma, delta
        if isinstance(decl, d.FunctionDecl):
            return self._check_function_decl(decl, gamma, delta), delta
        if isinstance(decl, d.TableDecl):
            return self._check_table_decl(decl, gamma, delta), delta
        self._error(f"unsupported declaration {decl.describe()}", decl.span)
        return gamma, delta

    def _check_var_decl(
        self, decl: d.VarDecl, gamma: TypeContext, delta: TypeDefinitions
    ) -> TypeContext:
        declared = self._resolve_type(decl.ty, delta, decl.span)
        if not declared.is_base():
            self._error(
                f"variables must have base types, not {declared.describe()}",
                decl.span,
                rule="T-VarDecl",
            )
        if decl.init is not None:
            init_type, _ = self.check_expression(decl.init, gamma, delta)
            if init_type is not None and not types_compatible(delta, declared, init_type):
                self._error(
                    f"initialiser of {decl.name!r} has type {init_type.describe()}, "
                    f"expected {declared.describe()}",
                    decl.span,
                    rule="T-VarInit",
                )
        gamma.bind(decl.name, declared)
        return gamma

    def _check_function_decl(
        self, decl: d.FunctionDecl, gamma: TypeContext, delta: TypeDefinitions
    ) -> TypeContext:
        parameters: List[Parameter] = []
        body_scope = gamma.child()
        for param in decl.params:
            resolved = self._resolve_type(param.ty, delta, param.span)
            body_scope.bind(param.name, resolved)
            parameters.append(
                Parameter(
                    param.direction.effective().value,
                    AnnotatedType(resolved, param.ty.label),
                    param.name,
                )
            )
        if decl.return_type is None:
            return_type = AnnotatedType(UnitType(), None)
        else:
            return_type = AnnotatedType(
                self._resolve_type(decl.return_type, delta, decl.span),
                decl.return_type.label,
            )
        body_scope.bind(TypeContext.RETURN_KEY, return_type.ty)
        self.check_statement(decl.body, body_scope, delta)
        fn_type = FunctionType(tuple(parameters), return_type)
        gamma.bind(decl.name, fn_type)
        return gamma

    def _check_table_decl(
        self, decl: d.TableDecl, gamma: TypeContext, delta: TypeDefinitions
    ) -> TypeContext:
        known_kinds = set(DEFAULT_MATCH_KINDS)
        declared_kinds = delta.lookup("match_kind")
        if isinstance(declared_kinds, MatchKindType):
            known_kinds |= set(declared_kinds.members)
        for key in decl.keys:
            key_type, _ = self.check_expression(key.expression, gamma, delta)
            if key_type is not None and not key_type.is_base():
                self._error(
                    f"table key {key.expression.describe()!r} must have a base type",
                    key.span,
                    rule="T-TblDecl",
                )
            if key.match_kind not in known_kinds:
                self._error(
                    f"unknown match kind {key.match_kind!r}",
                    key.span,
                    rule="T-TblDecl",
                )
        for action_ref in decl.actions:
            self._check_action_ref(action_ref, gamma, delta)
        gamma.bind(decl.name, TableType())
        return gamma

    def _check_action_ref(
        self, ref: d.ActionRef, gamma: TypeContext, delta: TypeDefinitions
    ) -> None:
        target = gamma.lookup(ref.name)
        if target is None:
            self._error(
                f"table refers to undeclared action {ref.name!r}",
                ref.span,
                rule="T-TblDecl",
            )
            return
        if not isinstance(target, FunctionType):
            self._error(
                f"table action {ref.name!r} is not an action (it has type "
                f"{target.describe()})",
                ref.span,
                rule="T-TblDecl",
            )
            return
        if len(ref.arguments) > len(target.parameters):
            self._error(
                f"action {ref.name!r} takes {len(target.parameters)} parameters but "
                f"{len(ref.arguments)} arguments were supplied",
                ref.span,
                rule="T-TblDecl",
            )
            return
        for argument, parameter in zip(ref.arguments, target.parameters):
            arg_type, arg_dir = self.check_expression(argument, gamma, delta)
            if arg_type is None:
                continue
            expected = self._unfold(parameter.ty.ty, delta, ref.span)
            if not types_compatible(delta, expected, arg_type):
                self._error(
                    f"argument {argument.describe()!r} of action {ref.name!r} has type "
                    f"{arg_type.describe()}, expected {expected.describe()}",
                    ref.span,
                    rule="T-TblDecl",
                )
            if parameter.direction in (DIR_INOUT, "out") and arg_dir != DIR_INOUT:
                self._error(
                    f"argument {argument.describe()!r} must be writable (direction "
                    f"{parameter.direction})",
                    ref.span,
                    rule="T-TblDecl",
                )

    # ------------------------------------------------------------------ statements

    def check_statement(
        self, stmt: s.Statement, gamma: TypeContext, delta: TypeDefinitions
    ) -> TypeContext:
        if isinstance(stmt, s.Block):
            scope = gamma.child()
            for inner in stmt.statements:
                scope = self.check_statement(inner, scope, delta)
            return gamma
        if isinstance(stmt, s.Assign):
            self._check_assign(stmt, gamma, delta)
            return gamma
        if isinstance(stmt, s.CallStmt):
            self.check_expression(stmt.call, gamma, delta, allow_table_apply=True)
            return gamma
        if isinstance(stmt, s.If):
            cond_type, _ = self.check_expression(stmt.condition, gamma, delta)
            if cond_type is not None and not isinstance(
                self._unfold(cond_type, delta, stmt.span), BoolType
            ):
                self._error(
                    f"if condition has type {cond_type.describe()}, expected bool",
                    stmt.condition.span,
                    rule="T-Cond",
                )
            self.check_statement(stmt.then_branch, gamma, delta)
            self.check_statement(stmt.else_branch, gamma, delta)
            return gamma
        if isinstance(stmt, s.Exit):
            return gamma
        if isinstance(stmt, s.Return):
            self._check_return(stmt, gamma, delta)
            return gamma
        if isinstance(stmt, s.VarDeclStmt):
            return self._check_var_decl(stmt.declaration, gamma, delta)
        self._error(f"unsupported statement {stmt.describe()}", stmt.span)
        return gamma

    def _check_assign(
        self, stmt: s.Assign, gamma: TypeContext, delta: TypeDefinitions
    ) -> None:
        target_type, target_dir = self.check_expression(stmt.target, gamma, delta)
        value_type, _ = self.check_expression(stmt.value, gamma, delta)
        if target_type is None or value_type is None:
            return
        if target_dir != DIR_INOUT:
            self._error(
                f"cannot assign to read-only expression {stmt.target.describe()!r}",
                stmt.target.span,
                rule="T-Assign",
            )
        if not types_compatible(delta, target_type, value_type):
            self._error(
                f"cannot assign {value_type.describe()} to "
                f"{stmt.target.describe()!r} of type {target_type.describe()}",
                stmt.span,
                rule="T-Assign",
            )

    def _check_return(
        self, stmt: s.Return, gamma: TypeContext, delta: TypeDefinitions
    ) -> None:
        expected = gamma.lookup(TypeContext.RETURN_KEY)
        if expected is None:
            self._error(
                "return statement outside of a function or action",
                stmt.span,
                rule="T-Return",
            )
            return
        expected = self._unfold(expected, delta, stmt.span)
        if stmt.value is None:
            if not isinstance(expected, UnitType):
                self._error(
                    f"return without a value in a function returning "
                    f"{expected.describe()}",
                    stmt.span,
                    rule="T-Return",
                )
            return
        value_type, _ = self.check_expression(stmt.value, gamma, delta)
        if value_type is not None and not types_compatible(delta, expected, value_type):
            self._error(
                f"return value has type {value_type.describe()}, expected "
                f"{expected.describe()}",
                stmt.span,
                rule="T-Return",
            )

    # ------------------------------------------------------------------ expressions

    def check_expression(
        self,
        expr: e.Expression,
        gamma: TypeContext,
        delta: TypeDefinitions,
        *,
        allow_table_apply: bool = False,
    ) -> Tuple[Optional[Type], str]:
        """Type an expression; returns ``(type, direction)``.

        Returns ``(None, "in")`` when the expression is ill-typed; a
        diagnostic has already been recorded in that case.
        """
        if isinstance(expr, e.BoolLiteral):
            return BoolType(), DIR_IN
        if isinstance(expr, e.IntLiteral):
            if expr.width is None:
                return IntType(), DIR_IN
            return BitType(expr.width), DIR_IN
        if isinstance(expr, e.Var):
            ty = gamma.lookup(expr.name)
            if ty is None:
                self._error(f"unknown variable {expr.name!r}", expr.span, rule="T-Var")
                return None, DIR_IN
            return ty, DIR_INOUT
        if isinstance(expr, e.Index):
            return self._check_index(expr, gamma, delta)
        if isinstance(expr, e.BinaryOp):
            return self._check_binary(expr, gamma, delta)
        if isinstance(expr, e.UnaryOp):
            return self._check_unary(expr, gamma, delta)
        if isinstance(expr, e.RecordLiteral):
            return self._check_record_literal(expr, gamma, delta)
        if isinstance(expr, e.FieldAccess):
            return self._check_field_access(expr, gamma, delta)
        if isinstance(expr, e.Call):
            return self._check_call(expr, gamma, delta, allow_table_apply)
        self._error(f"unsupported expression {expr.describe()}", expr.span)
        return None, DIR_IN

    def _check_index(
        self, expr: e.Index, gamma: TypeContext, delta: TypeDefinitions
    ) -> Tuple[Optional[Type], str]:
        array_type, direction = self.check_expression(expr.array, gamma, delta)
        index_type, _ = self.check_expression(expr.index, gamma, delta)
        if array_type is None:
            return None, DIR_IN
        array_type = self._unfold(array_type, delta, expr.span)
        if not isinstance(array_type, StackType):
            self._error(
                f"cannot index into non-array type {array_type.describe()}",
                expr.span,
                rule="T-Index",
            )
            return None, DIR_IN
        if index_type is not None and not isinstance(
            self._unfold(index_type, delta, expr.span), (BitType, IntType)
        ):
            self._error(
                f"array index must be numeric, found {index_type.describe()}",
                expr.index.span,
                rule="T-Index",
            )
        return self._unfold(array_type.element.ty, delta, expr.span), direction

    def _check_binary(
        self, expr: e.BinaryOp, gamma: TypeContext, delta: TypeDefinitions
    ) -> Tuple[Optional[Type], str]:
        left_type, _ = self.check_expression(expr.left, gamma, delta)
        right_type, _ = self.check_expression(expr.right, gamma, delta)
        if left_type is None or right_type is None:
            return None, DIR_IN
        left_type = self._unfold(left_type, delta, expr.span)
        right_type = self._unfold(right_type, delta, expr.span)
        result = binary_result_type(expr.op, left_type, right_type)
        if result is None:
            self._error(
                f"operator {expr.op!r} cannot be applied to {left_type.describe()} "
                f"and {right_type.describe()}",
                expr.span,
                rule="T-BinOp",
            )
            return None, DIR_IN
        return result, DIR_IN

    def _check_unary(
        self, expr: e.UnaryOp, gamma: TypeContext, delta: TypeDefinitions
    ) -> Tuple[Optional[Type], str]:
        operand_type, _ = self.check_expression(expr.operand, gamma, delta)
        if operand_type is None:
            return None, DIR_IN
        operand_type = self._unfold(operand_type, delta, expr.span)
        result = unary_result_type(expr.op, operand_type)
        if result is None:
            self._error(
                f"operator {expr.op!r} cannot be applied to {operand_type.describe()}",
                expr.span,
                rule="T-UnOp",
            )
            return None, DIR_IN
        return result, DIR_IN

    def _check_record_literal(
        self, expr: e.RecordLiteral, gamma: TypeContext, delta: TypeDefinitions
    ) -> Tuple[Optional[Type], str]:
        fields: List[Field] = []
        for name, value in expr.fields:
            value_type, _ = self.check_expression(value, gamma, delta)
            if value_type is None:
                return None, DIR_IN
            fields.append(Field(name, AnnotatedType(value_type, None)))
        return RecordType(tuple(fields)), DIR_IN

    def _check_field_access(
        self, expr: e.FieldAccess, gamma: TypeContext, delta: TypeDefinitions
    ) -> Tuple[Optional[Type], str]:
        target_type, direction = self.check_expression(expr.target, gamma, delta)
        if target_type is None:
            return None, DIR_IN
        target_type = self._unfold(target_type, delta, expr.span)
        if not isinstance(target_type, (RecordType, HeaderType)):
            self._error(
                f"cannot project field {expr.field_name!r} from "
                f"{target_type.describe()}",
                expr.span,
                rule="T-MemRec",
            )
            return None, DIR_IN
        target_field = target_type.field_named(expr.field_name)
        if target_field is None:
            self._error(
                f"type {target_type.describe()} has no field {expr.field_name!r}",
                expr.span,
                rule="T-MemRec",
            )
            return None, DIR_IN
        return self._unfold(target_field.ty.ty, delta, expr.span), direction

    def _check_call(
        self,
        expr: e.Call,
        gamma: TypeContext,
        delta: TypeDefinitions,
        allow_table_apply: bool,
    ) -> Tuple[Optional[Type], str]:
        # declassify/endorse are built-in identity functions (see
        # repro.ifc.declassify); they are ordinary-typed as τ -> τ.
        if (
            isinstance(expr.callee, e.Var)
            and expr.callee.name in ("declassify", "endorse")
            and gamma.lookup(expr.callee.name) is None
        ):
            if len(expr.arguments) != 1:
                self._error(
                    f"{expr.callee.name} takes exactly one argument",
                    expr.span,
                    rule="T-Call",
                )
                return None, DIR_IN
            return self.check_expression(expr.arguments[0], gamma, delta)[0], DIR_IN
        callee_type, _ = self.check_expression(expr.callee, gamma, delta)
        if callee_type is None:
            return None, DIR_IN
        if isinstance(callee_type, TableType):
            if not allow_table_apply:
                self._error(
                    "tables may only be applied in statement position",
                    expr.span,
                    rule="T-TblCall",
                )
            if expr.arguments:
                self._error(
                    "table application takes no arguments",
                    expr.span,
                    rule="T-TblCall",
                )
            return UnitType(), DIR_IN
        if not isinstance(callee_type, FunctionType):
            self._error(
                f"{expr.callee.describe()!r} of type {callee_type.describe()} "
                "is not callable",
                expr.span,
                rule="T-Call",
            )
            return None, DIR_IN
        directional = [
            p for p in callee_type.parameters if p.direction in (DIR_IN, DIR_INOUT, "out", "")
        ]
        if len(expr.arguments) > len(directional):
            self._error(
                f"call supplies {len(expr.arguments)} arguments but "
                f"{expr.callee.describe()!r} takes {len(directional)}",
                expr.span,
                rule="T-Call",
            )
            return self._unfold(callee_type.return_type.ty, delta, expr.span), DIR_IN
        for argument, parameter in zip(expr.arguments, callee_type.parameters):
            arg_type, arg_dir = self.check_expression(argument, gamma, delta)
            if arg_type is None:
                continue
            expected = self._unfold(parameter.ty.ty, delta, expr.span)
            if not types_compatible(delta, expected, arg_type):
                self._error(
                    f"argument {argument.describe()!r} has type {arg_type.describe()}, "
                    f"expected {expected.describe()}",
                    argument.span,
                    rule="T-Call",
                )
            if parameter.direction in (DIR_INOUT, "out") and arg_dir != DIR_INOUT:
                self._error(
                    f"argument {argument.describe()!r} for {parameter.direction} "
                    f"parameter {parameter.name!r} must be an l-value",
                    argument.span,
                    rule="T-Call",
                )
        return self._unfold(callee_type.return_type.ty, delta, expr.span), DIR_IN


def check_core_types(program: Program) -> CoreCheckResult:
    """Run the ordinary type checker over ``program``."""
    return CoreTypeChecker().check_program(program)
