"""The binary-operation typing oracle ``T(Δ; ⊕; ρ1; ρ2) = ρ3``.

The paper leaves the concrete oracle abstract; we implement the standard P4
behaviour for the operators the case studies use:

* arithmetic and bitwise operators on two ``bit<n>`` values of equal width
  (or on ``int``) return the same numeric type,
* comparisons return ``bool``,
* boolean connectives require and return ``bool``,
* ``int`` literals are implicitly compatible with any ``bit<n>`` operand
  (they are width-inferred constants in P4).
"""

from __future__ import annotations

from typing import Optional

from repro.syntax.types import BitType, BoolType, IntType, Type

#: Operators whose result is a boolean regardless of operand numeric type.
COMPARISON_OPERATORS = frozenset({"==", "!=", "<", ">", "<=", ">="})

#: Operators over booleans.
BOOLEAN_OPERATORS = frozenset({"&&", "||"})

#: Numeric operators: arithmetic, bitwise, shifts.
NUMERIC_OPERATORS = frozenset({"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"})


def _is_numeric(ty: Type) -> bool:
    return isinstance(ty, (BitType, IntType))


def _merge_numeric(left: Type, right: Type) -> Optional[Type]:
    """The common numeric type of two operands, or None if incompatible."""
    if isinstance(left, IntType) and isinstance(right, IntType):
        return IntType()
    if isinstance(left, BitType) and isinstance(right, BitType):
        if left.width == right.width:
            return BitType(left.width)
        return None
    if isinstance(left, BitType) and isinstance(right, IntType):
        return BitType(left.width)
    if isinstance(left, IntType) and isinstance(right, BitType):
        return BitType(right.width)
    return None


def binary_result_type(op: str, left: Type, right: Type) -> Optional[Type]:
    """``T(Δ; op; left; right)``: the result type, or None when ill-typed."""
    if op in BOOLEAN_OPERATORS:
        if isinstance(left, BoolType) and isinstance(right, BoolType):
            return BoolType()
        return None
    if op in COMPARISON_OPERATORS:
        if isinstance(left, BoolType) and isinstance(right, BoolType) and op in {"==", "!="}:
            return BoolType()
        if _is_numeric(left) and _is_numeric(right) and _merge_numeric(left, right) is not None:
            return BoolType()
        return None
    if op in NUMERIC_OPERATORS:
        if op in {"<<", ">>"}:
            # shifts allow the two operands to have different widths
            if _is_numeric(left) and _is_numeric(right):
                return left if isinstance(left, BitType) else IntType()
            return None
        if _is_numeric(left) and _is_numeric(right):
            return _merge_numeric(left, right)
        return None
    return None


def unary_result_type(op: str, operand: Type) -> Optional[Type]:
    """Result type of a unary operation, or None when ill-typed."""
    if op == "!":
        return BoolType() if isinstance(operand, BoolType) else None
    if op in {"-", "~"}:
        if isinstance(operand, BitType):
            return BitType(operand.width)
        if isinstance(operand, IntType):
            return IntType()
        return None
    return None
