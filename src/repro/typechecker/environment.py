"""Typing contexts for the ordinary Core P4 type system.

``TypeDefinitions`` is the partial map Δ from type names to types (built by
``typedef`` / ``header`` / ``struct`` / ``match_kind`` declarations), and
``TypeContext`` is the partial map Γ from variables to types.  Both support
cheap child scopes so that statement blocks and function bodies extend the
context without mutating the enclosing one, mirroring how the judgements
thread ``Γ ⊣ Γ'``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from repro.syntax.types import Type


@dataclass
class TypeDefinitions:
    """The type-definition context Δ."""

    _definitions: Dict[str, Type] = field(default_factory=dict)
    _parent: Optional["TypeDefinitions"] = None

    def define(self, name: str, ty: Type) -> None:
        self._definitions[name] = ty

    def lookup(self, name: str) -> Optional[Type]:
        if name in self._definitions:
            return self._definitions[name]
        if self._parent is not None:
            return self._parent.lookup(name)
        return None

    def __contains__(self, name: str) -> bool:
        return self.lookup(name) is not None

    def child(self) -> "TypeDefinitions":
        return TypeDefinitions(_parent=self)

    def names(self) -> Iterator[str]:
        yield from self._definitions
        if self._parent is not None:
            yield from self._parent.names()


@dataclass
class TypeContext:
    """The variable typing context Γ.

    The special key ``return`` stores the enclosing function's return type,
    exactly as in the paper's T-FuncDecl / T-Return rules.
    """

    _bindings: Dict[str, Type] = field(default_factory=dict)
    _parent: Optional["TypeContext"] = None

    RETURN_KEY = "return"

    def bind(self, name: str, ty: Type) -> None:
        self._bindings[name] = ty

    def lookup(self, name: str) -> Optional[Type]:
        if name in self._bindings:
            return self._bindings[name]
        if self._parent is not None:
            return self._parent.lookup(name)
        return None

    def __contains__(self, name: str) -> bool:
        return self.lookup(name) is not None

    def child(self) -> "TypeContext":
        return TypeContext(_parent=self)

    def names(self) -> Iterator[str]:
        seen = set()
        scope: Optional[TypeContext] = self
        while scope is not None:
            for name in scope._bindings:
                if name not in seen:
                    seen.add(name)
                    yield name
            scope = scope._parent
