"""The type-unfolding judgement ``Δ ⊢ τ ⇝ τ'``.

Resolves :class:`~repro.syntax.types.TypeName` references through the
definition context until a structural type is reached, and recursively
unfolds the element types of stacks.  Field types inside records/headers
are *not* eagerly unfolded -- the typing rules unfold them on demand when a
field is projected -- which matches petr4's lazy treatment and keeps the
unfolding cheap for large header structs.
"""

from __future__ import annotations

from typing import Set

from repro.syntax.types import AnnotatedType, StackType, Type, TypeName
from repro.typechecker.environment import TypeDefinitions


class UnfoldError(Exception):
    """Raised on unknown type names or cyclic typedefs."""


def unfold_type(delta: TypeDefinitions, ty: Type) -> Type:
    """Resolve ``ty`` to a structural (non-name) type under ``delta``."""
    return _unfold(delta, ty, seen=set())


def _unfold(delta: TypeDefinitions, ty: Type, seen: Set[str]) -> Type:
    if isinstance(ty, TypeName):
        if ty.name in seen:
            raise UnfoldError(f"cyclic type definition involving {ty.name!r}")
        target = delta.lookup(ty.name)
        if target is None:
            raise UnfoldError(f"unknown type name {ty.name!r}")
        return _unfold(delta, target, seen | {ty.name})
    if isinstance(ty, StackType):
        element = _unfold(delta, ty.element.ty, seen)
        return StackType(AnnotatedType(element, ty.element.label, ty.element.span), ty.size)
    return ty


def unfold_annotated(delta: TypeDefinitions, annotated: AnnotatedType) -> AnnotatedType:
    """Unfold the type component of an annotated type, keeping its label."""
    return AnnotatedType(unfold_type(delta, annotated.ty), annotated.label, annotated.span)
