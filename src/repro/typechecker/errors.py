"""Diagnostics and errors for the ordinary Core P4 type system."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.syntax.source import SourceSpan


@dataclass(frozen=True, slots=True)
class TypeDiagnostic:
    """A single type error with its location and the rule that failed."""

    message: str
    span: SourceSpan = field(default_factory=SourceSpan.unknown)
    rule: str = ""

    def __str__(self) -> str:
        rule = f" [{self.rule}]" if self.rule else ""
        return f"{self.span}: type error{rule}: {self.message}"


class CoreTypeError(Exception):
    """Raised by ``assert``-style entry points when type checking fails."""

    def __init__(self, diagnostics: list[TypeDiagnostic]) -> None:
        self.diagnostics = list(diagnostics)
        summary = "; ".join(str(d) for d in self.diagnostics) or "type error"
        super().__init__(summary)
