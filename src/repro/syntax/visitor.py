"""Generic AST traversal utilities.

:func:`children` returns the direct AST children of a node, :func:`walk`
yields a pre-order traversal, and :class:`AstVisitor` is a small
double-dispatch base class used by the pretty printer and by analyses that
want per-node hooks without writing their own recursion.
"""

from __future__ import annotations

from typing import Any, Iterator, List

from repro.syntax import declarations as d
from repro.syntax import expressions as e
from repro.syntax import statements as s
from repro.syntax.program import Program

AstNode = Any


def children(node: AstNode) -> List[AstNode]:
    """The direct AST children of ``node`` (expressions, statements, decls)."""
    result: List[AstNode] = []
    if isinstance(node, Program):
        result.extend(node.declarations)
        result.extend(node.controls)
    elif isinstance(node, d.ControlDecl):
        result.extend(node.params)
        result.extend(node.local_declarations)
        result.append(node.apply_block)
    elif isinstance(node, d.FunctionDecl):
        result.extend(node.params)
        result.append(node.body)
    elif isinstance(node, d.TableDecl):
        result.extend(node.keys)
        result.extend(node.actions)
    elif isinstance(node, d.TableKey):
        result.append(node.expression)
    elif isinstance(node, d.ActionRef):
        result.extend(node.arguments)
    elif isinstance(node, d.VarDecl):
        if node.init is not None:
            result.append(node.init)
    elif isinstance(node, s.Block):
        result.extend(node.statements)
    elif isinstance(node, s.If):
        result.extend([node.condition, node.then_branch, node.else_branch])
    elif isinstance(node, s.Assign):
        result.extend([node.target, node.value])
    elif isinstance(node, s.CallStmt):
        result.append(node.call)
    elif isinstance(node, s.Return):
        if node.value is not None:
            result.append(node.value)
    elif isinstance(node, s.VarDeclStmt):
        result.append(node.declaration)
    elif isinstance(node, e.BinaryOp):
        result.extend([node.left, node.right])
    elif isinstance(node, e.UnaryOp):
        result.append(node.operand)
    elif isinstance(node, e.Index):
        result.extend([node.array, node.index])
    elif isinstance(node, e.FieldAccess):
        result.append(node.target)
    elif isinstance(node, e.Call):
        result.append(node.callee)
        result.extend(node.arguments)
    elif isinstance(node, e.RecordLiteral):
        result.extend(expr for _, expr in node.fields)
    return result


def walk(node: AstNode) -> Iterator[AstNode]:
    """Pre-order traversal of the AST rooted at ``node``."""
    yield node
    for child in children(node):
        yield from walk(child)


class AstVisitor:
    """Double-dispatch visitor: ``visit`` calls ``visit_<ClassName>``.

    Subclasses override the per-class hooks they care about; the default
    hook recurses into the children and returns None.
    """

    def visit(self, node: AstNode) -> Any:
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: AstNode) -> Any:
        for child in children(node):
            self.visit(child)
        return None
