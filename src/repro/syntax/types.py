"""Core P4 types (Figure 3).

Base types ``ρ``::

    bool | int | bit<n> | unit | { f : ρ } | header { f : ρ } | ρ[n]
         | match_kind { f }

General types ``κ``::

    ρ | table | d κ -> κ

Type *names* introduced by ``typedef`` / ``header`` / ``struct``
declarations are represented by :class:`TypeName` and resolved by the
unfolding judgement ``Δ ⊢ τ ⇝ τ'`` implemented in
:mod:`repro.typechecker.unfold`.

Security annotations from the surface syntax are carried by
:class:`AnnotatedType` as raw strings; they mean nothing to the ordinary
type system and are resolved against a lattice by :mod:`repro.ifc`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.syntax.source import SourceSpan

#: Annotation spellings that explicitly request label inference.  ``<bit<8>,
#: infer>`` (or ``<bit<8>, ?>``) asks the :mod:`repro.inference` subsystem to
#: solve for the label; outside inference mode such annotations are label
#: errors, so a partially annotated program cannot silently default to ⊥.
INFERENCE_MARKERS = frozenset({"infer", "?"})


def is_inference_marker(text: Optional[str]) -> bool:
    """Whether ``text`` is an explicit ``infer`` / ``?`` label annotation."""
    return text is not None and text.strip().lower() in INFERENCE_MARKERS


def inference_marker_guidance(text: str, *, construct: str = "annotation") -> str:
    """The shared diagnostic for an ``infer`` marker met outside infer mode."""
    return (
        f"{construct} {text!r} requests label inference; run the checker "
        "with inference enabled (p4bid --infer)"
    )


@dataclass(frozen=True, slots=True)
class Type:
    """Base class for every Core P4 type."""

    def is_base(self) -> bool:
        """Whether this is a base type ``ρ`` (usable as a field type)."""
        return True

    def describe(self) -> str:
        """Human readable spelling used in diagnostics."""
        return type(self).__name__


@dataclass(frozen=True, slots=True)
class BoolType(Type):
    """The boolean type."""

    def describe(self) -> str:
        return "bool"


@dataclass(frozen=True, slots=True)
class IntType(Type):
    """Arbitrary precision integers (``n_∞`` literals)."""

    def describe(self) -> str:
        return "int"


@dataclass(frozen=True, slots=True)
class BitType(Type):
    """Fixed-width bit vectors ``bit<n>``."""

    width: int = 32

    def describe(self) -> str:
        return f"bit<{self.width}>"


@dataclass(frozen=True, slots=True)
class UnitType(Type):
    """The unit type (return type of actions)."""

    def describe(self) -> str:
        return "unit"


@dataclass(frozen=True, slots=True)
class Field:
    """A named field of a record or header, with an optional label text."""

    name: str
    ty: "AnnotatedType"

    def describe(self) -> str:
        return f"{self.name}: {self.ty.describe()}"


@dataclass(frozen=True, slots=True)
class RecordType(Type):
    """Record (struct) types ``{ f : ρ }``."""

    fields: Tuple[Field, ...]

    def field_named(self, name: str) -> Optional[Field]:
        for f in self.fields:
            if f.name == name:
                return f
        return None

    def describe(self) -> str:
        inner = ", ".join(f.describe() for f in self.fields)
        return "struct {" + inner + "}"


@dataclass(frozen=True, slots=True)
class HeaderType(Type):
    """Header types ``header { f : ρ }``."""

    fields: Tuple[Field, ...]

    def field_named(self, name: str) -> Optional[Field]:
        for f in self.fields:
            if f.name == name:
                return f
        return None

    def describe(self) -> str:
        inner = ", ".join(f.describe() for f in self.fields)
        return "header {" + inner + "}"


@dataclass(frozen=True, slots=True)
class StackType(Type):
    """Header stacks / arrays ``ρ[n]``."""

    element: "AnnotatedType"
    size: int

    def describe(self) -> str:
        return f"{self.element.describe()}[{self.size}]"


@dataclass(frozen=True, slots=True)
class MatchKindType(Type):
    """``match_kind { f }`` enumerations (``exact``, ``lpm``, ...)."""

    members: Tuple[str, ...] = ()

    def describe(self) -> str:
        return "match_kind {" + ", ".join(self.members) + "}"


@dataclass(frozen=True, slots=True)
class TypeName(Type):
    """A reference to a named type introduced by a declaration."""

    name: str

    def describe(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class TableType(Type):
    """The type of match-action tables.

    The ordinary type system only needs the fact that a name denotes a
    table; the IFC system refines this to ``table(pc_tbl)``.  The optional
    ``pc_label`` field stores that bound when known.
    """

    pc_label: Optional[str] = None

    def is_base(self) -> bool:
        return False

    def describe(self) -> str:
        if self.pc_label is None:
            return "table"
        return f"table({self.pc_label})"


@dataclass(frozen=True, slots=True)
class Parameter:
    """A single parameter of a function/action type (``d κ``)."""

    direction: str
    ty: "AnnotatedType"
    name: str = ""

    def describe(self) -> str:
        prefix = f"{self.direction} " if self.direction else ""
        return f"{prefix}{self.ty.describe()}"


@dataclass(frozen=True, slots=True)
class FunctionType(Type):
    """Function (action) types ``d κ --pc_fn--> κ_ret``."""

    parameters: Tuple[Parameter, ...]
    return_type: "AnnotatedType"
    control_plane_parameters: Tuple[Parameter, ...] = ()

    def is_base(self) -> bool:
        return False

    def describe(self) -> str:
        params = ", ".join(p.describe() for p in self.parameters)
        return f"({params}) -> {self.return_type.describe()}"


@dataclass(frozen=True, slots=True)
class AnnotatedType:
    """A type together with its (optional, unresolved) security annotation.

    ``label`` is the raw spelling from the source (e.g. ``"high"`` or
    ``"A"``); ``None`` means the programmer left the type unannotated, in
    which case the IFC checker defaults it to the lattice bottom (the
    implementation section of the paper: "unannotated types default to
    low").
    """

    ty: Type
    label: Optional[str] = None
    span: SourceSpan = field(default_factory=SourceSpan.unknown)

    def with_label(self, label: Optional[str]) -> "AnnotatedType":
        """A copy of this annotated type carrying ``label``."""
        return AnnotatedType(self.ty, label, self.span)

    def wants_inference(self) -> bool:
        """Whether the annotation explicitly requests label inference."""
        return is_inference_marker(self.label)

    def describe(self) -> str:
        if self.label is None:
            return self.ty.describe()
        return f"<{self.ty.describe()}, {self.label}>"


def annotated(ty: Type, label: Optional[str] = None) -> AnnotatedType:
    """Convenience constructor used heavily by tests and builders."""
    return AnnotatedType(ty, label)
