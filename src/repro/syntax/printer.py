"""Pretty printer: render an AST back to the annotated P4 dialect.

The output is accepted by :mod:`repro.frontend.parser`, so the printer is
used for parse/print round-trip tests and by the case-study generators
(which synthesise large programs, e.g. D2R with ``k`` unrolled BFS steps,
and feed the printed text back through the full pipeline the way a user
would).
"""

from __future__ import annotations

from typing import List

from repro.syntax import declarations as d
from repro.syntax import expressions as e
from repro.syntax import statements as s
from repro.syntax.program import Program
from repro.syntax.types import (
    AnnotatedType,
    BitType,
    BoolType,
    HeaderType,
    IntType,
    MatchKindType,
    RecordType,
    StackType,
    TableType,
    Type,
    TypeName,
    UnitType,
)

_INDENT = "    "


def pretty_print(node) -> str:
    """Render a :class:`Program` (or any sub-node) as source text."""
    printer = _Printer()
    return printer.render(node)


class _Printer:
    def render(self, node) -> str:
        if isinstance(node, Program):
            return self.program(node)
        if isinstance(node, d.ControlDecl):
            return "\n".join(self.control(node))
        if isinstance(node, d.Declaration):
            return "\n".join(self.declaration(node, 0))
        if isinstance(node, s.Statement):
            return "\n".join(self.statement(node, 0))
        if isinstance(node, e.Expression):
            return self.expression(node)
        if isinstance(node, AnnotatedType):
            return self.annotated_type(node)
        if isinstance(node, Type):
            return self.type(node)
        raise TypeError(f"cannot pretty print {type(node).__name__}")

    # -- program level -----------------------------------------------------

    def program(self, program: Program) -> str:
        lines: List[str] = []
        for decl in program.declarations:
            lines.extend(self.declaration(decl, 0))
            lines.append("")
        for control in program.controls:
            lines.extend(self.control(control))
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"

    def control(self, control: d.ControlDecl) -> List[str]:
        lines: List[str] = []
        if control.pc_label is not None:
            lines.append(f"@pc({control.pc_label})")
        params = ", ".join(self.param(p) for p in control.params)
        lines.append(f"control {control.name}({params}) {{")
        for decl in control.local_declarations:
            lines.extend(self.declaration(decl, 1))
        lines.append(f"{_INDENT}apply {{")
        for stmt in control.apply_block.statements:
            lines.extend(self.statement(stmt, 2))
        lines.append(f"{_INDENT}}}")
        lines.append("}")
        return lines

    # -- declarations --------------------------------------------------------

    def declaration(self, decl: d.Declaration, depth: int) -> List[str]:
        pad = _INDENT * depth
        if isinstance(decl, d.HeaderDecl):
            lines = [f"{pad}header {decl.name} {{"]
            for field in decl.fields:
                lines.append(f"{pad}{_INDENT}{self.annotated_type(field.ty)} {field.name};")
            lines.append(f"{pad}}}")
            return lines
        if isinstance(decl, d.StructDecl):
            lines = [f"{pad}struct {decl.name} {{"]
            for field in decl.fields:
                lines.append(f"{pad}{_INDENT}{self.annotated_type(field.ty)} {field.name};")
            lines.append(f"{pad}}}")
            return lines
        if isinstance(decl, d.TypedefDecl):
            return [f"{pad}typedef {self.annotated_type(decl.ty)} {decl.name};"]
        if isinstance(decl, d.MatchKindDecl):
            return [f"{pad}match_kind {{ {', '.join(decl.members)} }}"]
        if isinstance(decl, d.VarDecl):
            if decl.init is None:
                return [f"{pad}{self.annotated_type(decl.ty)} {decl.name};"]
            return [
                f"{pad}{self.annotated_type(decl.ty)} {decl.name} = "
                f"{self.expression(decl.init)};"
            ]
        if isinstance(decl, d.FunctionDecl):
            params = ", ".join(self.param(p) for p in decl.params)
            if decl.is_action:
                head = f"{pad}action {decl.name}({params}) {{"
            else:
                ret = (
                    self.annotated_type(decl.return_type)
                    if decl.return_type is not None
                    else "void"
                )
                head = f"{pad}function {ret} {decl.name}({params}) {{"
            lines = [head]
            for stmt in decl.body.statements:
                lines.extend(self.statement(stmt, depth + 1))
            lines.append(f"{pad}}}")
            return lines
        if isinstance(decl, d.TableDecl):
            lines = [f"{pad}table {decl.name} {{"]
            lines.append(f"{pad}{_INDENT}key = {{")
            for key in decl.keys:
                lines.append(
                    f"{pad}{_INDENT}{_INDENT}{self.expression(key.expression)}: "
                    f"{key.match_kind};"
                )
            lines.append(f"{pad}{_INDENT}}}")
            actions = "; ".join(self.action_ref(a) for a in decl.actions)
            lines.append(f"{pad}{_INDENT}actions = {{ {actions}; }}")
            lines.append(f"{pad}}}")
            return lines
        raise TypeError(f"cannot print declaration {type(decl).__name__}")

    def param(self, param: d.Param) -> str:
        direction = param.direction.value
        prefix = f"{direction} " if direction else ""
        return f"{prefix}{self.annotated_type(param.ty)} {param.name}"

    def action_ref(self, ref: d.ActionRef) -> str:
        if not ref.arguments:
            return ref.name
        args = ", ".join(self.expression(a) for a in ref.arguments)
        return f"{ref.name}({args})"

    # -- statements -----------------------------------------------------------

    def statement(self, stmt: s.Statement, depth: int) -> List[str]:
        pad = _INDENT * depth
        if isinstance(stmt, s.Assign):
            return [
                f"{pad}{self.expression(stmt.target)} = "
                f"{self.expression(stmt.value)};"
            ]
        if isinstance(stmt, s.CallStmt):
            call = stmt.call
            if isinstance(call.callee, e.Var) and not call.arguments:
                return [f"{pad}{call.callee.name}.apply();"]
            return [f"{pad}{self.expression(call)};"]
        if isinstance(stmt, s.If):
            lines = [f"{pad}if ({self.expression(stmt.condition)}) {{"]
            for inner in stmt.then_branch.statements:
                lines.extend(self.statement(inner, depth + 1))
            if stmt.else_branch.is_empty():
                lines.append(f"{pad}}}")
            else:
                lines.append(f"{pad}}} else {{")
                for inner in stmt.else_branch.statements:
                    lines.extend(self.statement(inner, depth + 1))
                lines.append(f"{pad}}}")
            return lines
        if isinstance(stmt, s.Block):
            lines = [f"{pad}{{"]
            for inner in stmt.statements:
                lines.extend(self.statement(inner, depth + 1))
            lines.append(f"{pad}}}")
            return lines
        if isinstance(stmt, s.Exit):
            return [f"{pad}exit;"]
        if isinstance(stmt, s.Return):
            if stmt.value is None:
                return [f"{pad}return;"]
            return [f"{pad}return {self.expression(stmt.value)};"]
        if isinstance(stmt, s.VarDeclStmt):
            return self.declaration(stmt.declaration, depth)
        raise TypeError(f"cannot print statement {type(stmt).__name__}")

    # -- expressions ------------------------------------------------------------

    def expression(self, expr: e.Expression) -> str:
        if isinstance(expr, e.BoolLiteral):
            return "true" if expr.value else "false"
        if isinstance(expr, e.IntLiteral):
            if expr.width is None:
                return str(expr.value)
            return f"{expr.width}w{expr.value}"
        if isinstance(expr, e.Var):
            return expr.name
        if isinstance(expr, e.Index):
            return f"{self.expression(expr.array)}[{self.expression(expr.index)}]"
        if isinstance(expr, e.BinaryOp):
            return (
                f"({self.expression(expr.left)} {expr.op} "
                f"{self.expression(expr.right)})"
            )
        if isinstance(expr, e.UnaryOp):
            return f"({expr.op}{self.expression(expr.operand)})"
        if isinstance(expr, e.RecordLiteral):
            inner = ", ".join(
                f"{name} = {self.expression(value)}" for name, value in expr.fields
            )
            return "{" + inner + "}"
        if isinstance(expr, e.FieldAccess):
            return f"{self.expression(expr.target)}.{expr.field_name}"
        if isinstance(expr, e.Call):
            args = ", ".join(self.expression(a) for a in expr.arguments)
            return f"{self.expression(expr.callee)}({args})"
        raise TypeError(f"cannot print expression {type(expr).__name__}")

    # -- types -------------------------------------------------------------------

    def annotated_type(self, annotated: AnnotatedType) -> str:
        if annotated.label is None:
            return self.type(annotated.ty)
        return f"<{self.type(annotated.ty)}, {annotated.label}>"

    def type(self, ty: Type) -> str:
        if isinstance(ty, BoolType):
            return "bool"
        if isinstance(ty, IntType):
            return "int"
        if isinstance(ty, BitType):
            return f"bit<{ty.width}>"
        if isinstance(ty, UnitType):
            return "void"
        if isinstance(ty, TypeName):
            return ty.name
        if isinstance(ty, StackType):
            return f"{self.annotated_type(ty.element)}[{ty.size}]"
        if isinstance(ty, (RecordType, HeaderType)):
            keyword = "struct" if isinstance(ty, RecordType) else "header"
            inner = "; ".join(
                f"{self.annotated_type(f.ty)} {f.name}" for f in ty.fields
            )
            return f"{keyword} {{ {inner} }}"
        if isinstance(ty, MatchKindType):
            return "match_kind {" + ", ".join(ty.members) + "}"
        if isinstance(ty, TableType):
            return ty.describe()
        raise TypeError(f"cannot print type {type(ty).__name__}")
