"""Abstract syntax for the Core P4 fragment of Figure 1 / Figure 3.

The AST mirrors the paper's grammar:

* :mod:`repro.syntax.types` -- the base and general types of Figure 3.
* :mod:`repro.syntax.expressions` -- Figure 1a.
* :mod:`repro.syntax.statements` -- Figure 1b.
* :mod:`repro.syntax.declarations` -- Figure 1c/1d (variables, typedefs,
  match_kind, actions/functions, tables, headers/structs, controls).
* :mod:`repro.syntax.program` -- whole programs.

Security annotations from the surface syntax (``<bit<8>, high>``) are kept
as raw strings on :class:`repro.syntax.types.AnnotatedType`; the IFC checker
resolves them against a lattice, while the ordinary type checker ignores
them.
"""

from repro.syntax.source import SourceSpan, Position
from repro.syntax.types import (
    AnnotatedType,
    BitType,
    BoolType,
    Field,
    HeaderType,
    IntType,
    MatchKindType,
    RecordType,
    StackType,
    TableType,
    FunctionType,
    Parameter,
    Type,
    TypeName,
    UnitType,
)
from repro.syntax.expressions import (
    BinaryOp,
    BoolLiteral,
    Call,
    Expression,
    FieldAccess,
    Index,
    IntLiteral,
    RecordLiteral,
    UnaryOp,
    Var,
)
from repro.syntax.statements import (
    Assign,
    Block,
    CallStmt,
    Exit,
    If,
    Return,
    Statement,
    VarDeclStmt,
)
from repro.syntax.declarations import (
    ActionRef,
    ControlDecl,
    Declaration,
    Direction,
    FunctionDecl,
    HeaderDecl,
    MatchKindDecl,
    Param,
    StructDecl,
    TableDecl,
    TableKey,
    TypedefDecl,
    VarDecl,
)
from repro.syntax.program import Program
from repro.syntax.visitor import AstVisitor, walk
from repro.syntax.printer import pretty_print
from repro.syntax.digest import (
    RespanMismatch,
    declared_names,
    iter_tree,
    referenced_names,
    respan,
    unit_fingerprint,
)

__all__ = [
    "SourceSpan",
    "Position",
    # types
    "AnnotatedType",
    "BitType",
    "BoolType",
    "Field",
    "HeaderType",
    "IntType",
    "MatchKindType",
    "RecordType",
    "StackType",
    "TableType",
    "FunctionType",
    "Parameter",
    "Type",
    "TypeName",
    "UnitType",
    # expressions
    "BinaryOp",
    "BoolLiteral",
    "Call",
    "Expression",
    "FieldAccess",
    "Index",
    "IntLiteral",
    "RecordLiteral",
    "UnaryOp",
    "Var",
    # statements
    "Assign",
    "Block",
    "CallStmt",
    "Exit",
    "If",
    "Return",
    "Statement",
    "VarDeclStmt",
    # declarations
    "ActionRef",
    "ControlDecl",
    "Declaration",
    "Direction",
    "FunctionDecl",
    "HeaderDecl",
    "MatchKindDecl",
    "Param",
    "StructDecl",
    "TableDecl",
    "TableKey",
    "TypedefDecl",
    "VarDecl",
    # program and utilities
    "Program",
    "AstVisitor",
    "walk",
    "pretty_print",
    # structural digests (incremental workspaces)
    "RespanMismatch",
    "declared_names",
    "iter_tree",
    "referenced_names",
    "respan",
    "unit_fingerprint",
]
