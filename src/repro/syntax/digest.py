"""Structural digests of top-level declarations, for incremental sessions.

A :class:`~repro.workspace.session.Workspace` re-checks an edited program
by diffing it against the previous revision *per top-level unit* (a named
declaration or a control block).  The diff needs three ingredients, all
provided here:

* :func:`unit_fingerprint` -- a content hash of one unit, computed over
  its pretty-printed text.  The printer emits no spans, no whitespace
  variation and no comments, so the fingerprint is stable under
  formatting-only edits and under the unit merely *moving* inside the
  file;
* :func:`declared_names` / :func:`referenced_names` -- the names a unit
  exports to later units and the names it (conservatively) depends on,
  from which the diff derives an *environment signature* so a unit is
  re-walked when a declaration it references changed, even if its own
  text did not;
* :func:`respan` -- when a unit's content is unchanged but its position
  shifted, the previous revision's AST (whose node identities anchor the
  cached constraints and label variables) is *re-spanned* in place to the
  new positions, so diagnostics and witnesses render exactly as a cold
  parse of the new source would.

Re-spanning walks the old and new trees in lockstep.  The shapes are
guaranteed equal -- both parse to the same pretty-printed text -- but the
walk still verifies every node type and scalar field and raises
:class:`RespanMismatch` on any disagreement, letting the caller fall back
to a full re-walk of the unit rather than corrupt cached state.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, FrozenSet, Iterator, Tuple, Union

from repro.syntax import declarations as d
from repro.syntax import expressions as e
from repro.syntax.printer import pretty_print
from repro.syntax.source import Position, SourceSpan
from repro.syntax.types import TypeName

#: One top-level unit of a program: a named declaration or a control block.
Unit = Union[d.Declaration, d.ControlDecl]


def unit_fingerprint(unit: Unit) -> str:
    """A content hash of ``unit``: sha256 over its pretty-printed text.

    Positions, surrounding whitespace and comments do not participate, so
    two parses of differently formatted sources yield equal fingerprints
    exactly when the units are structurally identical.
    """
    return hashlib.sha256(pretty_print(unit).encode("utf-8")).hexdigest()


def _is_node(value: object) -> bool:
    """Whether ``value`` is an AST node (vs. a scalar or a span)."""
    return dataclasses.is_dataclass(value) and not isinstance(
        value, (SourceSpan, Position)
    )


#: Field names per node type.  ``dataclasses.fields`` allocates a fresh
#: tuple of Field objects on every call; the tree walks here visit
#: hundreds of thousands of nodes per revision, so the lookup is cached.
_FIELD_NAMES: Dict[type, Tuple[str, ...]] = {}


def _field_names(node: object) -> Tuple[str, ...]:
    names = _FIELD_NAMES.get(type(node))
    if names is None:
        names = tuple(f.name for f in dataclasses.fields(node))  # type: ignore[arg-type]
        _FIELD_NAMES[type(node)] = names
    return names


def iter_tree(node: object) -> Iterator[object]:
    """Pre-order walk of *every* AST node under ``node``.

    Unlike :func:`repro.syntax.visitor.walk` this descends into type
    annotations (:class:`~repro.syntax.types.AnnotatedType` trees, fields,
    parameters), which is what fingerprint-adjacent consumers need: the
    annotation slots live there.
    """
    yield node
    for name in _field_names(node):
        value = getattr(node, name)
        yield from _iter_value(value)


def _iter_value(value: object) -> Iterator[object]:
    if _is_node(value):
        yield from iter_tree(value)
    elif isinstance(value, tuple):
        for item in value:
            yield from _iter_value(item)


def declared_names(unit: Unit) -> Tuple[str, ...]:
    """The names ``unit`` binds for *later* top-level units.

    Control blocks bind nothing outward (their parameters and locals live
    in a child scope), so they return ``()``.
    """
    if isinstance(unit, d.MatchKindDecl):
        return tuple(unit.members)
    if isinstance(
        unit,
        (d.VarDecl, d.TypedefDecl, d.HeaderDecl, d.StructDecl, d.FunctionDecl, d.TableDecl),
    ):
        return (unit.name,)
    return ()


def referenced_names(unit: Unit) -> FrozenSet[str]:
    """Every name ``unit`` may look up in the surrounding environment.

    Deliberately conservative (it includes the unit's own local names and
    match kinds): a false positive only widens the set of units re-walked
    after an edit, never narrows it.
    """
    names = set()
    for node in iter_tree(unit):
        if isinstance(node, e.Var):
            names.add(node.name)
        elif isinstance(node, e.Call) and isinstance(node.callee, e.Var):
            names.add(node.callee.name)
        elif isinstance(node, d.ActionRef):
            names.add(node.name)
        elif isinstance(node, d.TableKey):
            names.add(node.match_kind)
        elif isinstance(node, TypeName):
            names.add(node.name)
    return frozenset(names)


class RespanMismatch(Exception):
    """The old and new trees disagree structurally; re-spanning is unsafe."""


def respan(old: Unit, new: Unit) -> Dict[SourceSpan, SourceSpan]:
    """Rewrite ``old``'s spans in place to ``new``'s, returning the map.

    ``old`` and ``new`` must be structurally identical (equal
    :func:`unit_fingerprint`); every node of ``old`` receives the span of
    its counterpart in ``new``, via ``object.__setattr__`` (the nodes are
    frozen dataclasses, but slot descriptors honour it, and no node's hash
    or equality depends on its span in a way the rewrite could corrupt:
    spans only feed diagnostics).  The returned dict maps each *changed*
    old span to its replacement, so cached values that embed spans
    (constraints, diagnostics) can be rebuilt with
    ``span_map.get(span, span)``.
    """
    span_map: Dict[SourceSpan, SourceSpan] = {}
    _respan_node(old, new, span_map)
    return span_map


def _respan_node(old: object, new: object, span_map: Dict[SourceSpan, SourceSpan]) -> None:
    if type(old) is not type(new):
        raise RespanMismatch(f"{type(old).__name__} vs {type(new).__name__}")
    for name in _field_names(old):
        old_value = getattr(old, name)
        new_value = getattr(new, name)
        if isinstance(old_value, SourceSpan):
            if not isinstance(new_value, SourceSpan):
                raise RespanMismatch(f"span field {name} became {new_value!r}")
            if old_value != new_value:
                span_map[old_value] = new_value
                object.__setattr__(old, name, new_value)
        elif _is_node(old_value) or _is_node(new_value):
            _respan_node(old_value, new_value, span_map)
        elif isinstance(old_value, tuple) and isinstance(new_value, tuple):
            _respan_tuple(old_value, new_value, span_map)
        elif old_value != new_value:
            raise RespanMismatch(
                f"field {name}: {old_value!r} != {new_value!r}"
            )


def _respan_tuple(
    old: tuple, new: tuple, span_map: Dict[SourceSpan, SourceSpan]
) -> None:
    if len(old) != len(new):
        raise RespanMismatch(f"tuple length {len(old)} vs {len(new)}")
    for old_item, new_item in zip(old, new):
        if _is_node(old_item) or _is_node(new_item):
            _respan_node(old_item, new_item, span_map)
        elif isinstance(old_item, tuple) and isinstance(new_item, tuple):
            _respan_tuple(old_item, new_item, span_map)
        elif old_item != new_item:
            raise RespanMismatch(f"tuple item {old_item!r} != {new_item!r}")
