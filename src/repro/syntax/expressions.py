"""Core P4 expressions (Figure 1a).

::

    exp ::= b                      Boolean
          | n_w                    integers or bits of width w
          | x                      variable
          | exp1[exp2]             array indexing
          | exp1 (+) exp2          binary operation
          | { f_i = exp_i }        record
          | exp.f_i                field projection
          | exp1(exp2)             function call

We additionally support unary operations (``!``, ``-``, ``~``) because the
case-study programs use them; they type like single-argument binary
operations and introduce no new information-flow behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.syntax.source import SourceSpan


@dataclass(frozen=True, slots=True)
class Expression:
    """Base class for every expression node."""

    span: SourceSpan = field(default_factory=SourceSpan.unknown, kw_only=True)

    def describe(self) -> str:
        """Compact, source-like rendering used by diagnostics."""
        return type(self).__name__


@dataclass(frozen=True, slots=True)
class BoolLiteral(Expression):
    """``true`` / ``false``."""

    value: bool

    def describe(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True, slots=True)
class IntLiteral(Expression):
    """Integer literals, optionally with an explicit bit width ``n_w``.

    ``width is None`` models the arbitrary precision integers ``n_∞``;
    a concrete width models ``bit<w>`` literals such as ``8w255``.
    """

    value: int
    width: Optional[int] = None

    def describe(self) -> str:
        if self.width is None:
            return str(self.value)
        return f"{self.width}w{self.value}"


@dataclass(frozen=True, slots=True)
class Var(Expression):
    """A variable reference ``x``."""

    name: str

    def describe(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Index(Expression):
    """Array / header-stack indexing ``exp1[exp2]``."""

    array: Expression
    index: Expression

    def describe(self) -> str:
        return f"{self.array.describe()}[{self.index.describe()}]"


@dataclass(frozen=True, slots=True)
class BinaryOp(Expression):
    """Binary operation ``exp1 (+) exp2``.

    The operator is kept as its source spelling (``+``, ``-``, ``==``,
    ``&&`` ...); the typing oracle ``T`` in
    :mod:`repro.typechecker.operators` gives its meaning.
    """

    op: str
    left: Expression
    right: Expression

    def describe(self) -> str:
        return f"({self.left.describe()} {self.op} {self.right.describe()})"


@dataclass(frozen=True, slots=True)
class UnaryOp(Expression):
    """Unary operation (``!``, ``-``, ``~``)."""

    op: str
    operand: Expression

    def describe(self) -> str:
        return f"({self.op}{self.operand.describe()})"


@dataclass(frozen=True, slots=True)
class RecordLiteral(Expression):
    """Record construction ``{ f_i = exp_i }``."""

    fields: Tuple[Tuple[str, Expression], ...]

    def describe(self) -> str:
        inner = ", ".join(f"{name} = {expr.describe()}" for name, expr in self.fields)
        return "{" + inner + "}"

    def field_named(self, name: str) -> Optional[Expression]:
        for field_name, expr in self.fields:
            if field_name == name:
                return expr
        return None


@dataclass(frozen=True, slots=True)
class FieldAccess(Expression):
    """Field projection ``exp.f``.

    Covers both record member access (T-MemRec) and header member access
    (T-MemHdr); which rule applies is determined by the type of ``target``.
    """

    target: Expression
    field_name: str

    def describe(self) -> str:
        return f"{self.target.describe()}.{self.field_name}"


@dataclass(frozen=True, slots=True)
class Call(Expression):
    """Function / action call ``exp1(exp2)``.

    Table application ``t.apply()`` is desugared by the parser to a call of
    the table-typed variable with no arguments, matching Core P4's
    ``exp()`` form used by T-TblCall.
    """

    callee: Expression
    arguments: Tuple[Expression, ...] = ()

    def describe(self) -> str:
        args = ", ".join(a.describe() for a in self.arguments)
        return f"{self.callee.describe()}({args})"
