"""Core P4 declarations (Figure 1c/1d).

::

    decl      ::= var_decl | obj_decl | typ_decl
    var_decl  ::= τ x := exp | τ x
    typ_decl  ::= match_kind { f } | typedef τ X
    obj_decl  ::= table x { key act }
                | function τ_ret x (d y : τ) { stmt }
    d         ::= in | inout
    key       ::= exp : x
    act       ::= x(exp, x : τ)

On top of the calculus we keep the P4 surface constructs the case studies
need: ``header`` / ``struct`` type declarations (which introduce named
record/header types, i.e. typedefs) and ``control`` blocks (the
``ctrl_body`` of the grammar: local declarations plus an ``apply`` block).
Actions are functions whose return type is ``unit``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.syntax.expressions import Expression
from repro.syntax.source import SourceSpan
from repro.syntax.statements import Block
from repro.syntax.types import AnnotatedType, Field


class Direction(str, enum.Enum):
    """Parameter directionality ``d``.

    ``NONE`` models directionless parameters, which default to ``in`` for
    typing purposes but are supplied by the control plane when the action is
    invoked from a table (the paper's "optional arguments").
    """

    IN = "in"
    INOUT = "inout"
    OUT = "out"
    NONE = ""

    def readable(self) -> bool:
        return True

    def writable(self) -> bool:
        return self in (Direction.INOUT, Direction.OUT)

    def effective(self) -> "Direction":
        """The direction used by the typing rules (directionless -> in)."""
        return Direction.IN if self is Direction.NONE else self


@dataclass(frozen=True, slots=True)
class Declaration:
    """Base class for every declaration node."""

    span: SourceSpan = field(default_factory=SourceSpan.unknown, kw_only=True)

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True, slots=True)
class VarDecl(Declaration):
    """``τ x`` or ``τ x := exp``."""

    ty: AnnotatedType
    name: str
    init: Optional[Expression] = None

    def describe(self) -> str:
        if self.init is None:
            return f"{self.ty.describe()} {self.name};"
        return f"{self.ty.describe()} {self.name} = {self.init.describe()};"


@dataclass(frozen=True, slots=True)
class TypedefDecl(Declaration):
    """``typedef τ X`` -- introduce ``X`` as an alias for ``τ``."""

    ty: AnnotatedType
    name: str

    def describe(self) -> str:
        return f"typedef {self.ty.describe()} {self.name};"


@dataclass(frozen=True, slots=True)
class MatchKindDecl(Declaration):
    """``match_kind { exact, lpm, ternary }``."""

    members: Tuple[str, ...]

    def describe(self) -> str:
        return "match_kind {" + ", ".join(self.members) + "}"


@dataclass(frozen=True, slots=True)
class HeaderDecl(Declaration):
    """``header X { fields }`` -- a named header type."""

    name: str
    fields: Tuple[Field, ...]

    def describe(self) -> str:
        return f"header {self.name} {{...}}"


@dataclass(frozen=True, slots=True)
class StructDecl(Declaration):
    """``struct X { fields }`` -- a named record type."""

    name: str
    fields: Tuple[Field, ...]

    def describe(self) -> str:
        return f"struct {self.name} {{...}}"


@dataclass(frozen=True, slots=True)
class Param(Declaration):
    """A declared parameter ``d y : τ`` of a function or control."""

    direction: Direction
    name: str
    ty: AnnotatedType

    def describe(self) -> str:
        d = self.direction.value
        prefix = f"{d} " if d else ""
        return f"{prefix}{self.ty.describe()} {self.name}"


@dataclass(frozen=True, slots=True)
class FunctionDecl(Declaration):
    """``function τ_ret x (d y : τ) { stmt }``.

    Actions are the special case where ``return_type`` is ``None`` (unit).
    ``is_action`` records the surface keyword so the pretty printer can
    round-trip programs faithfully.
    """

    name: str
    params: Tuple[Param, ...]
    body: Block
    return_type: Optional[AnnotatedType] = None
    is_action: bool = True

    def describe(self) -> str:
        keyword = "action" if self.is_action else "function"
        params = ", ".join(p.describe() for p in self.params)
        return f"{keyword} {self.name}({params}) {{...}}"


@dataclass(frozen=True, slots=True)
class TableKey(Declaration):
    """One table key ``exp : match_kind_name``."""

    expression: Expression
    match_kind: str

    def describe(self) -> str:
        return f"{self.expression.describe()}: {self.match_kind}"


@dataclass(frozen=True, slots=True)
class ActionRef(Declaration):
    """A reference to an action from a table's action list.

    ``arguments`` are the directional arguments supplied at declaration
    time (the ``exp`` in ``act ::= x(exp, x : τ)``); any remaining
    directionless parameters of the action are filled in by the control
    plane at match time.
    """

    name: str
    arguments: Tuple[Expression, ...] = ()

    def describe(self) -> str:
        if not self.arguments:
            return self.name
        args = ", ".join(a.describe() for a in self.arguments)
        return f"{self.name}({args})"


@dataclass(frozen=True, slots=True)
class TableDecl(Declaration):
    """``table x { key = {...} actions = {...} }``."""

    name: str
    keys: Tuple[TableKey, ...]
    actions: Tuple[ActionRef, ...]

    def describe(self) -> str:
        return f"table {self.name} {{...}}"


@dataclass(frozen=True, slots=True)
class ControlDecl(Declaration):
    """A control block: parameters, local declarations, and an apply block.

    This is the ``ctrl_body`` of the paper's grammar (``decl stmt``) plus
    the parameter list P4 controls carry (typically the parsed headers and
    the standard metadata).  ``pc_label`` records an optional annotation
    ``@pc(A)`` used by the isolation case study to typecheck a control block
    under a non-bottom program counter.
    """

    name: str
    params: Tuple[Param, ...]
    local_declarations: Tuple[Declaration, ...]
    apply_block: Block
    pc_label: Optional[str] = None

    def describe(self) -> str:
        return f"control {self.name} {{...}}"
