"""Core P4 statements (Figure 1b).

::

    stmt ::= exp1(exp2)                 function call
           | exp1 := exp2               assignment
           | if (exp) stmt1 else stmt2  conditional
           | { stmt }                   sequencing
           | exit                       exit
           | return exp                 return
           | var_decl                   variable declaration
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, TYPE_CHECKING

from repro.syntax.expressions import Call, Expression
from repro.syntax.source import SourceSpan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.syntax.declarations import VarDecl


@dataclass(frozen=True, slots=True)
class Statement:
    """Base class for every statement node."""

    span: SourceSpan = field(default_factory=SourceSpan.unknown, kw_only=True)

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True, slots=True)
class CallStmt(Statement):
    """A call used as a statement (action invocation or table apply)."""

    call: Call

    def describe(self) -> str:
        return self.call.describe() + ";"


@dataclass(frozen=True, slots=True)
class Assign(Statement):
    """Assignment ``exp1 := exp2`` (surface spelling ``lhs = rhs;``)."""

    target: Expression
    value: Expression

    def describe(self) -> str:
        return f"{self.target.describe()} = {self.value.describe()};"


@dataclass(frozen=True, slots=True)
class If(Statement):
    """Conditional ``if (exp) stmt1 else stmt2``.

    A missing else branch is represented by an empty :class:`Block`, which
    matches the typing rule's treatment (the empty block types under any
    pc).
    """

    condition: Expression
    then_branch: "Block"
    else_branch: "Block"

    def describe(self) -> str:
        return f"if ({self.condition.describe()}) ... else ..."


@dataclass(frozen=True, slots=True)
class Block(Statement):
    """A brace-enclosed sequence of statements ``{ stmt }``."""

    statements: Tuple[Statement, ...] = ()

    def describe(self) -> str:
        return "{ " + " ".join(s.describe() for s in self.statements) + " }"

    def is_empty(self) -> bool:
        return not self.statements


@dataclass(frozen=True, slots=True)
class Exit(Statement):
    """``exit;`` -- abort packet processing."""

    def describe(self) -> str:
        return "exit;"


@dataclass(frozen=True, slots=True)
class Return(Statement):
    """``return exp;`` (or bare ``return;`` for unit-returning actions)."""

    value: Optional[Expression] = None

    def describe(self) -> str:
        if self.value is None:
            return "return;"
        return f"return {self.value.describe()};"


@dataclass(frozen=True, slots=True)
class VarDeclStmt(Statement):
    """A variable declaration used in statement position."""

    declaration: "VarDecl"

    def describe(self) -> str:
        return self.declaration.describe()
