"""Whole programs: top-level declarations plus control blocks.

The paper's grammar has ``prg ::= typ_decl ctrl_body``; real P4 programs
contain several top-level type declarations and possibly more than one
control block (the isolation case study has both an Alice and a Bob
control), so :class:`Program` holds a list of each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

from repro.syntax.declarations import ControlDecl, Declaration
from repro.syntax.source import SourceSpan


@dataclass(frozen=True, slots=True)
class Program:
    """A parsed program: type/object declarations followed by controls."""

    declarations: Tuple[Declaration, ...] = ()
    controls: Tuple[ControlDecl, ...] = ()
    span: SourceSpan = field(default_factory=SourceSpan.unknown)
    name: str = "<program>"

    def control_named(self, name: str) -> Optional[ControlDecl]:
        """The control block called ``name``, or None."""
        for control in self.controls:
            if control.name == name:
                return control
        return None

    def iter_declarations(self) -> Iterator[Declaration]:
        """All top-level declarations, then each control's locals."""
        yield from self.declarations
        for control in self.controls:
            yield from control.local_declarations

    def main_control(self) -> ControlDecl:
        """The single control block most programs have.

        Raises ``ValueError`` when the program has zero or several controls;
        callers that support multi-control programs should iterate
        ``self.controls`` instead.
        """
        if len(self.controls) != 1:
            raise ValueError(
                f"expected exactly one control block, found {len(self.controls)}"
            )
        return self.controls[0]
