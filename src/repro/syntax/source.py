"""Source positions and spans for diagnostics.

Every AST node carries an optional :class:`SourceSpan` so that both the
ordinary type checker and the IFC checker can report errors at the precise
location of the offending expression, mirroring how P4BID extends p4c's
diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Position:
    """A 1-based line/column position in a source file."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


@dataclass(frozen=True, slots=True)
class SourceSpan:
    """A half-open region of source text, with an optional file name."""

    start: Position
    end: Position
    filename: str = "<input>"

    @classmethod
    def unknown(cls) -> "SourceSpan":
        """A placeholder span for synthesised nodes (tests, builders)."""
        return cls(Position(0, 0), Position(0, 0), "<synthesised>")

    @classmethod
    def point(cls, line: int, column: int, filename: str = "<input>") -> "SourceSpan":
        """A zero-width span at a single position."""
        return cls(Position(line, column), Position(line, column), filename)

    def merge(self, other: "SourceSpan") -> "SourceSpan":
        """The smallest span covering both ``self`` and ``other``."""
        if self.is_unknown():
            return other
        if other.is_unknown():
            return self
        start = min(
            (self.start, other.start), key=lambda p: (p.line, p.column)
        )
        end = max((self.end, other.end), key=lambda p: (p.line, p.column))
        return SourceSpan(start, end, self.filename)

    def is_unknown(self) -> bool:
        return self.start.line == 0

    def __str__(self) -> str:
        if self.is_unknown():
            return "<unknown>"
        return f"{self.filename}:{self.start}"
