"""Structural diffing of programs at top-level-unit granularity.

A :class:`~repro.workspace.session.Workspace` re-checks an edited program
without re-walking it wholesale.  The units of reuse are the *top-level
units* of a :class:`~repro.syntax.program.Program`: its named declarations
and its control blocks, in program order.  For each unit the workspace
keeps a :class:`UnitState` -- the AST node whose identities anchor the
cached label variables, plus everything the last symbolic walk of the
unit produced (constraints, diagnostics, context effects, touched
annotation sites).

Diffing a new revision against the cached states proceeds in three steps,
all span-insensitive:

1. **Match** by content fingerprint
   (:func:`repro.syntax.digest.unit_fingerprint`): each new unit claims
   the first unclaimed old unit with the same fingerprint, in order
   (FIFO, so duplicated units pair up positionally).  Matching is
   position-independent -- a unit that merely moved still matches.
2. **Classify** by environment signature: a matched unit is *clean* only
   if the names it references still resolve to byte-identical earlier
   declarations (:func:`environment_signatures`).  A unit whose own text
   is untouched but whose referenced ``header`` changed is re-walked, so
   cross-unit label variables are re-allocated consistently.
3. **Re-span**: a matched unit's cached AST is rewritten in place to the
   new revision's positions (:func:`repro.syntax.digest.respan`), so
   cached constraints and diagnostics render exactly as a cold parse of
   the new source would.

Everything here is pure bookkeeping over the syntax layer; the walk that
consumes the plan lives in :mod:`repro.workspace.regen`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.ifc.errors import IfcDiagnostic
from repro.inference.constraints import Constraint
from repro.inference.generate import InferenceSite
from repro.inference.terms import LabelVar
from repro.syntax import declarations as d
from repro.syntax.digest import (
    RespanMismatch,
    Unit,
    declared_names,
    referenced_names,
    respan,
    unit_fingerprint,
)
from repro.syntax.program import Program

#: One recorded top-level effect of a unit's walk, replayed verbatim when
#: the unit is reused: ``("gamma", name, SecurityType)`` for Γ bindings,
#: ``("delta", name, AnnotatedType)`` for Δ definitions, ``("fn", name,
#: Term)`` / ``("tbl", name, Term)`` for inferred write bounds.
Effect = Tuple[str, str, object]


@dataclass
class UnitState:
    """One top-level unit with everything its last walk produced."""

    node: Unit
    fingerprint: str
    declared: Tuple[str, ...]
    referenced: FrozenSet[str]
    #: referenced name -> fingerprint of the declaring unit (None when the
    #: name resolves to nothing); the unit must be re-walked when this map
    #: changes, even if its own text did not.
    signature: Dict[str, Optional[str]] = field(default_factory=dict)
    #: Cached products of the unit's last symbolic walk.
    constraints: List[Constraint] = field(default_factory=list)
    errors: List[IfcDiagnostic] = field(default_factory=list)
    pc_vars: List[Tuple[d.ControlDecl, LabelVar]] = field(default_factory=list)
    touches: List[InferenceSite] = field(default_factory=list)
    effects: List[Effect] = field(default_factory=list)

    @property
    def is_control(self) -> bool:
        return isinstance(self.node, d.ControlDecl)


@dataclass
class UnitPlan:
    """The diff's verdict for one unit of the new revision, in order."""

    state: UnitState
    #: Whether the unit must be re-walked (new, content changed, or a
    #: referenced declaration changed).  Clean units replay their caches.
    dirty: bool
    #: Whether a matched unit's spans were rewritten to new positions.
    respanned: bool = False
    #: The changed-span map of the re-span (old span -> new span), for
    #: rebuilding cached values that embed spans.
    span_map: Dict[object, object] = field(default_factory=dict)


def program_units(program: Program) -> List[Unit]:
    """The top-level units of ``program`` in walk order: declarations
    first (in order), then control blocks (in order)."""
    return [*program.declarations, *program.controls]


def environment_signatures(
    units: List[Unit],
    fingerprints: List[str],
    referenced: List[FrozenSet[str]],
) -> List[Dict[str, Optional[str]]]:
    """The environment signature of every unit, in unit order.

    A unit's signature maps each name it references to the *deep*
    fingerprint of the declaring unit that binding would resolve to --
    the latest earlier declaration for named declarations (top-level
    scoping is sequential), the final declaration map for control blocks
    (controls are walked after every declaration).  Deep fingerprints
    combine a declarer's own content hash with its signature, so a change
    propagates transitively: editing a ``header`` dirties the ``struct``
    that embeds it *and* every control typed against that struct, even
    when their own text is untouched.  ``None`` records "resolves to
    nothing", so a deleted or newly introduced declaration changes the
    signature exactly like an edited one.
    """
    env: Dict[str, str] = {}
    signatures: List[Dict[str, Optional[str]]] = [dict() for _ in units]
    control_indices: List[int] = []
    for index, unit in enumerate(units):
        if isinstance(unit, d.ControlDecl):
            control_indices.append(index)
            continue
        signature = {name: env.get(name) for name in sorted(referenced[index])}
        signatures[index] = signature
        declared = declared_names(unit)
        if declared:
            deep = hashlib.sha256(
                (fingerprints[index] + "|" + repr(sorted(signature.items()))).encode(
                    "utf-8"
                )
            ).hexdigest()
            for name in declared:
                env[name] = deep
    for index in control_indices:
        signatures[index] = {
            name: env.get(name) for name in sorted(referenced[index])
        }
    return signatures


def diff_program(old_states: List[UnitState], program: Program) -> List[UnitPlan]:
    """Diff ``program`` against the cached ``old_states``.

    Returns one :class:`UnitPlan` per unit of the new revision, in walk
    order.  Matched units *reuse the old state object* (and with it the
    old AST nodes, whose identities anchor cached label variables); their
    spans are rewritten in place to the new positions.  Old states that
    no new unit claims are dropped -- their annotation sites disappear
    from the registry once the walk's touch union is recomputed.
    """
    units = program_units(program)
    fingerprints = [unit_fingerprint(unit) for unit in units]

    pool: Dict[str, List[UnitState]] = {}
    for state in old_states:
        pool.setdefault(state.fingerprint, []).append(state)

    # Match (and re-span) first, so reference sets of matched units can be
    # taken from the cached state instead of re-walking their trees: equal
    # fingerprints mean equal content, hence equal referenced names.
    matches: List[Optional[UnitState]] = []
    span_maps: List[Dict[object, object]] = []
    for index, unit in enumerate(units):
        bucket = pool.get(fingerprints[index])
        old = bucket.pop(0) if bucket else None
        span_map: Dict[object, object] = {}
        if old is not None:
            try:
                span_map = respan(old.node, unit)
            except RespanMismatch:
                # Identical fingerprints should guarantee identical
                # shapes; if they somehow do not, fall back to a full
                # re-walk of the fresh node rather than corrupt caches.
                old, span_map = None, {}
        matches.append(old)
        span_maps.append(span_map)

    referenced = [
        matches[index].referenced
        if matches[index] is not None
        else referenced_names(unit)
        for index, unit in enumerate(units)
    ]
    signatures = environment_signatures(units, fingerprints, referenced)

    plans: List[UnitPlan] = []
    for index, unit in enumerate(units):
        old = matches[index]
        if old is not None:
            dirty = old.signature != signatures[index]
            old.signature = signatures[index]
            plans.append(
                UnitPlan(
                    old,
                    dirty,
                    respanned=bool(span_maps[index]),
                    span_map=span_maps[index],
                )
            )
            continue
        plans.append(
            UnitPlan(
                UnitState(
                    node=unit,
                    fingerprint=fingerprints[index],
                    declared=declared_names(unit),
                    referenced=referenced[index],
                    signature=signatures[index],
                ),
                dirty=True,
            )
        )
    return plans
