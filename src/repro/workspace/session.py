"""The session-oriented workspace: long-lived state between checks.

A :class:`Workspace` owns everything the one-shot pipeline used to build
from scratch on every call -- the parsed :class:`~repro.syntax.program.Program`,
the constraint system with its annotation-site registry, the propagation
graph, the solved assignment, and cached verdicts -- and keeps them warm
across edits:

* :meth:`Workspace.open` / :meth:`Workspace.edit` install a new source
  revision; :meth:`Workspace.infer` (and everything downstream) then
  re-walks only the *changed* declarations
  (:class:`~repro.workspace.regen.IncrementalGenerator`) and re-solves
  only the edit's cone of influence
  (:meth:`~repro.inference.engine.Solver.rebase`);
* :meth:`Workspace.pin` models an interactive annotation edit over the
  current revision (:meth:`~repro.inference.engine.Solver.resolve`);
  pinning a slot back to ``None`` restores its inferred least label;
* :meth:`Workspace.save` / :meth:`Workspace.load` persist the whole
  solved state (:mod:`repro.workspace.persist`), so a later session warms
  up without a cold solve.

The first check of a freshly opened workspace is the *cold* path run
verbatim -- same walk, same solver entry point, same spans and counters
-- so a one-shot :func:`repro.check_source` built on a throwaway
workspace stays byte-identical with what the pipeline always produced.
The persistent :class:`~repro.inference.engine.Solver` is only
constructed at the first warm operation (it adopts the cold solution and
rebases from there).

This module never imports :mod:`repro.tool.pipeline` at module level --
the pipeline imports the workspace to serve as its engine; reports are
produced via :func:`repro.tool.pipeline.check_workspace`, imported
lazily by :meth:`Workspace.check`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.frontend.errors import FrontendError
from repro.frontend.parser import parse_program
from repro.inference.elaborate import elaborate_program
from repro.inference.engine import (
    InferenceResult,
    InferredLabel,
    Solver,
    _maximise_control_pcs,
)
from repro.inference.generate import GenerationResult
from repro.inference.graph import NormalisationCache, PropagationGraph
from repro.inference.solve import Solution, solve
from repro.lattice.base import Label, Lattice
from repro.lattice.registry import get_lattice
from repro.lattice.two_point import TwoPointLattice
from repro.syntax.program import Program
from repro.telemetry.recorder import current_recorder
from repro.workspace.regen import IncrementalGenerator, RegenStats


class WorkspaceError(Exception):
    """An operation the workspace's current state cannot support."""


class Workspace:
    """Long-lived checking state for one program under one lattice."""

    def __init__(
        self,
        lattice: Union[Lattice, str, None] = None,
        *,
        allow_declassification: bool = False,
        presolve: bool = False,
        backend: str = "graph",
        solver_workers: int = 1,
        name: Optional[str] = None,
    ) -> None:
        if lattice is None:
            resolved: Lattice = TwoPointLattice()
        elif isinstance(lattice, str):
            resolved = get_lattice(lattice)
        else:
            resolved = lattice
        self.lattice = resolved
        self.allow_declassification = allow_declassification
        self.presolve = presolve
        self.backend = backend
        self.solver_workers = solver_workers
        self.name = name
        self.filename = "<workspace>"
        #: Bumped on every :meth:`open` / :meth:`edit`; caches key off it.
        self.revision = 0
        self.program: Optional[Program] = None
        self.parse_error: Optional[str] = None
        self._generator = IncrementalGenerator(
            resolved, allow_declassification=allow_declassification
        )
        self._cache = NormalisationCache(resolved)
        self._generation: Optional[GenerationResult] = None
        self._generation_rev = -1
        self._solver: Optional[Solver] = None
        self._solved: Optional[Solution] = None
        self._solved_generation: Optional[GenerationResult] = None
        self._solved_constraints: list = []
        self._inference: Optional[InferenceResult] = None
        self._inference_rev = -1
        self._core = None
        self._core_rev = -1
        self._lints = None
        self._lints_rev = -1
        #: Interactive pins, keyed by slot *hint* (stable across the var
        #: re-allocation a structural edit may cause).
        self._pin_hints: Dict[str, Label] = {}

    # ------------------------------------------------------------------ identity

    @property
    def display_name(self) -> str:
        return self.name or self.filename

    @property
    def regen_stats(self) -> RegenStats:
        """What the last re-generation reused (for tests and ``stats``)."""
        return self._generator.last

    # ------------------------------------------------------------------ revisions

    def open(
        self,
        source: str,
        *,
        filename: str = "<workspace>",
        name: Optional[str] = None,
    ) -> bool:
        """Install a new source revision; returns whether it parsed.

        A parse failure keeps the previous solved state warm: the next
        revision that parses diffs against it as usual.
        """
        self.filename = filename
        if name is not None:
            self.name = name
        self.revision += 1
        self._invalidate()
        try:
            program = parse_program(source, filename, name=self.name)
        except FrontendError as exc:
            self.parse_error = str(exc)
            self.program = None
            return False
        self.parse_error = None
        self.program = program
        return True

    def edit(self, source: str) -> bool:
        """Install the next revision of the current file."""
        return self.open(source, filename=self.filename, name=self.name)

    def open_program(self, program: Program, *, name: Optional[str] = None) -> None:
        """Install an already-parsed program as the next revision."""
        if name is not None:
            self.name = name
        self.revision += 1
        self._invalidate()
        self.parse_error = None
        self.program = program

    def _invalidate(self) -> None:
        self._generation = None
        self._generation_rev = -1
        self._inference = None
        self._inference_rev = -1
        self._core = None
        self._core_rev = -1
        self._lints = None
        self._lints_rev = -1

    def _require_program(self) -> Program:
        if self.program is None:
            raise WorkspaceError(
                self.parse_error
                if self.parse_error is not None
                else "no program opened in this workspace"
            )
        return self.program

    # ------------------------------------------------------------------ generation

    def _ensure_generation(self) -> GenerationResult:
        self._require_program()
        if self._generation is not None and self._generation_rev == self.revision:
            return self._generation
        recorder = current_recorder()
        with recorder.span("workspace.regenerate", revision=self.revision):
            generation = self._generator.refresh(self.program)
        stats = self._generator.last
        if recorder.enabled:
            recorder.count("workspace.regenerations")
            recorder.count("workspace.units_total", stats.units_total)
            recorder.count("workspace.units_reused", stats.units_reused)
            recorder.count("workspace.units_rewalked", stats.units_rewalked)
            recorder.count("workspace.units_respanned", stats.units_respanned)
            recorder.count("workspace.constraints_reused", stats.constraints_reused)
            recorder.count(
                "workspace.constraints_regenerated", stats.constraints_regenerated
            )
            recorder.count("workspace.sites_live", stats.sites_live)
        # Matched units keep their original AST nodes; the assembled
        # program (identical to the parse on a first refresh) is what
        # every downstream phase must see.
        self.program = generation.program
        self._generation = generation
        self._generation_rev = self.revision
        return generation

    # ------------------------------------------------------------------ solving

    def _pins_for(self, generation: GenerationResult) -> Dict[object, Label]:
        pins: Dict[object, Label] = {}
        if self._pin_hints:
            for site in generation.sites:
                label = self._pin_hints.get(site.hint)
                if label is not None:
                    pins[site.var] = label
        return pins

    def _ensure_solver(self) -> Solver:
        """The persistent solver, built lazily at the first warm operation."""
        if self._solver is None:
            # The cold solve already built a propagation graph over exactly
            # these constraints (graph backend); hand it over rather than
            # constructing it a second time.
            graph = self._solved.graph if self._solved is not None else None
            if not isinstance(graph, PropagationGraph):
                graph = None
            self._solver = Solver(
                self.lattice,
                self._solved_constraints,
                cache=self._cache,
                backend=self.backend,
                workers=self.solver_workers,
                graph=graph,
            )
            if self._solved is not None:
                self._solver.adopt(self._solved)
        return self._solver

    def _ensure_solution(self) -> Solution:
        generation = self._ensure_generation()
        if self._solved is not None and self._solved_generation is generation:
            return self._solved
        if self._solved is None and self._solver is None:
            # First solve ever: run the one-shot path verbatim (identical
            # spans/counters to the cold pipeline) unless pins already
            # exist, which only the persistent solver can honour.
            if self._pin_hints:
                self._solved_constraints = list(generation.constraints)
                solution = self._ensure_solver().resolve(self._pins_for(generation))
            else:
                solution = solve(
                    self.lattice,
                    generation.constraints,
                    presolve=self.presolve,
                    backend=self.backend,
                    workers=self.solver_workers,
                )
        else:
            solver = self._ensure_solver()
            solution = solver.rebase(
                generation.constraints, pins=self._pins_for(generation)
            )
        self._solved = solution
        self._solved_generation = generation
        self._solved_constraints = list(generation.constraints)
        return solution

    def _solution_graph(self, generation: GenerationResult) -> PropagationGraph:
        """A propagation graph over the current constraints, reusing the
        solver's when it is current (packed first solves have none)."""
        if (
            self._solver is not None
            and self._solved_generation is generation
            and self._solver.graph.lattice is self.lattice
        ):
            return self._solver.graph
        if (
            self._solved is not None
            and self._solved_generation is generation
            and self._solved.graph is not None
        ):
            return self._solved.graph
        return PropagationGraph(self.lattice, generation.constraints, cache=self._cache)

    # ------------------------------------------------------------------ pinning

    def pin(self, hint: str, label: Union[Label, str, None]) -> None:
        """Pin the slot named ``hint`` to ``label`` (``None`` unpins).

        Models the user writing (or deleting) an explicit annotation:
        the label becomes a floor of the slot; unpinning restores the
        inferred least label.  Over a warm solution only the pin's cone
        of influence is re-solved.
        """
        if isinstance(label, str):
            label = self.lattice.parse_label(label)
        generation = self._ensure_generation()
        site = next((s for s in generation.sites if s.hint == hint), None)
        if site is None:
            raise WorkspaceError(f"no annotation slot named {hint!r}")
        if label is None:
            self._pin_hints.pop(hint, None)
        else:
            self._pin_hints[hint] = label
        self._inference = None
        self._inference_rev = -1
        if self._solved is not None and self._solved_generation is generation:
            self._solved = self._ensure_solver().resolve({site.var: label})

    @property
    def pins(self) -> Dict[str, Label]:
        """The active pins, keyed by slot hint (a copy)."""
        return dict(self._pin_hints)

    # ------------------------------------------------------------------ phases

    def core(self):
        """The Core P4 (non-security) check, cached per revision."""
        from repro.typechecker.checker import check_core_types

        program = self._require_program()
        if self._core is None or self._core_rev != self.revision:
            self._core = check_core_types(program)
            self._core_rev = self.revision
        return self._core

    def infer(self) -> InferenceResult:
        """Label inference over the current revision (cached until edited).

        Re-implements :func:`repro.inference.engine.infer_labels` over
        the warm state: generation comes from the incremental re-walk and
        the solution from the persistent solver; everything downstream
        (pc maximisation, elaboration, diagnostics) is shared code.
        """
        if self._inference is not None and self._inference_rev == self.revision:
            return self._inference
        recorder = current_recorder()
        with recorder.span("infer.generate") as generate_span:
            generation = self._ensure_generation()
        if recorder.enabled:
            generate_span.attrs["constraints"] = len(generation.constraints)
            generate_span.attrs["slots"] = len(generation.sites)
            recorder.count("infer.runs")
            recorder.count("infer.constraints_generated", len(generation.constraints))
            recorder.count("infer.slots", len(generation.sites))
        solution = self._ensure_solution()
        if solution.ok and generation.control_pc_vars:
            with recorder.span(
                "infer.maximise-pc", pcs=len(generation.control_pc_vars)
            ):
                solution = _maximise_control_pcs(
                    self.lattice,
                    generation,
                    solution,
                    backend=self.backend,
                    workers=self.solver_workers,
                )
        inferred = [
            InferredLabel(
                site.hint,
                site.span,
                solution.value_of(site.var)
                if site.floor is None
                else self.lattice.join(solution.value_of(site.var), site.floor),
            )
            for site in generation.sites
        ]
        diagnostics = list(generation.errors)
        diagnostics.extend(
            conflict.as_diagnostic(self.lattice) for conflict in solution.conflicts
        )
        with recorder.span("infer.elaborate"):
            elaborated = elaborate_program(generation, solution)
        result = InferenceResult(
            self.program,
            self.lattice,
            generation,
            solution,
            inferred,
            diagnostics,
            elaborated,
        )
        self._inference = result
        self._inference_rev = self.revision
        return result

    def lint(self) -> list:
        """The :mod:`repro.analysis` lints over the warm constraint graph."""
        from repro.analysis import run_lints

        if self._lints is not None and self._lints_rev == self.revision:
            return self._lints
        generation = self._ensure_generation()
        graph = self._solution_graph(generation)
        self._lints = run_lints(
            self.program,
            self.lattice,
            allow_declassification=self.allow_declassification,
            generation=generation,
            graph=graph,
        )
        self._lints_rev = self.revision
        return self._lints

    def unsat_cores(self) -> List[dict]:
        """The conflicts of the current solution with their cores."""
        solution = self._ensure_solution()
        cores = []
        for conflict in solution.conflicts:
            cores.append(
                {
                    "message": str(conflict.as_diagnostic(self.lattice)),
                    "span": str(conflict.constraint.span),
                    "observed": self.lattice.format_label(conflict.observed),
                    "required": self.lattice.format_label(conflict.required),
                    "core": [
                        {
                            "span": str(c.span),
                            "rule": c.rule,
                            "reason": c.reason,
                        }
                        for c in conflict.core
                    ],
                }
            )
        return cores

    def witnesses(self) -> list:
        """Leak-path witnesses for the current conflicts, warm."""
        from repro.analysis.witness import witnesses_for_solution

        generation = self._ensure_generation()
        solution = self._ensure_solution()
        if solution.graph is None:
            solution.graph = self._solution_graph(generation)
        return witnesses_for_solution(solution)

    # ------------------------------------------------------------------ reports

    def check(
        self,
        *,
        include_ifc: bool = True,
        infer: bool = False,
        lint: bool = False,
        explain_released_flows: bool = False,
        recorder=None,
    ):
        """A full :class:`~repro.tool.pipeline.CheckReport` over the warm state."""
        from repro.tool.pipeline import check_workspace

        return check_workspace(
            self,
            include_ifc=include_ifc,
            infer=infer,
            lint=lint,
            explain_released_flows=explain_released_flows,
            recorder=recorder,
        )

    # ------------------------------------------------------------------ persistence

    def save(self, path) -> None:
        """Persist the solved workspace state to ``path``."""
        from repro.workspace.persist import save_workspace

        save_workspace(self, path)

    @classmethod
    def load(cls, path) -> "Workspace":
        """Restore a workspace persisted with :meth:`save`."""
        from repro.workspace.persist import load_workspace

        return load_workspace(path)

    # ------------------------------------------------------------------ stats

    def stats(self) -> dict:
        """A JSON-friendly snapshot of the workspace's warm state."""
        regen = self._generator.last
        return {
            "name": self.display_name,
            "lattice": self.lattice.name,
            "backend": self.backend,
            "revision": self.revision,
            "parsed": self.program is not None,
            "parse_error": self.parse_error,
            "units": len(self._generator.units),
            "constraints": len(self._generation.constraints)
            if self._generation is not None
            else None,
            "sites": len(self._generation.sites)
            if self._generation is not None
            else None,
            "pins": {
                hint: self.lattice.format_label(label)
                for hint, label in sorted(self._pin_hints.items())
            },
            "solver": {
                "persistent": self._solver is not None,
                "solved": self._solved is not None,
                "conflicts": len(self._solved.conflicts)
                if self._solved is not None
                else None,
            },
            "regen": {
                "units_total": regen.units_total,
                "units_reused": regen.units_reused,
                "units_rewalked": regen.units_rewalked,
                "units_respanned": regen.units_respanned,
                "constraints_reused": regen.constraints_reused,
                "constraints_regenerated": regen.constraints_regenerated,
                "sites_live": regen.sites_live,
            },
            "normalisation_cache": {
                "entries": len(self._cache),
                "hits": self._cache.hits,
                "misses": self._cache.misses,
            },
        }
