"""Incremental constraint re-generation over a persistent symbolic walk.

:class:`IncrementalGenerator` owns one long-lived
:class:`~repro.flow.symbolic.SymbolicAlgebra` -- and with it the variable
supply and :class:`~repro.inference.generate.SiteRegistry` whose node
identities anchor every label variable ever allocated.  Each call to
:meth:`IncrementalGenerator.refresh` diffs the new program revision
against the cached per-unit states (:mod:`repro.workspace.diff`), then:

* **clean** units replay their recorded context effects (Γ bindings, Δ
  definitions, inferred write bounds) and reuse their cached constraints,
  diagnostics, and touched annotation sites verbatim;
* **dirty** units are re-walked through the real
  :class:`~repro.flow.analysis.FlowAnalysis` traversal, with the
  algebra's per-unit outputs (constraint set, error list, pc vars)
  swapped out so exactly this unit's products are captured.

The merge of per-unit products reproduces what a cold
:func:`~repro.inference.generate.generate_constraints` over the same
source would build: the global constraint list re-deduplicates in unit
order (the dedup key includes the span, so per-unit capture cannot
manufacture cross-unit collisions), and the live site list is the
first-occurrence union of the units' touch logs -- which on a fully
dirty refresh *is* allocation order.  A matched unit keeps its old AST
node (so its sites keep their variables) but is re-spanned in place to
the new revision's positions; cached constraints, diagnostics, and
variable spans are rewritten through the re-span map so warm output
renders identically to a cold run.

Interception of context effects is by substitution, not patching:
:class:`RecordingContext` / :class:`RecordingDefs` subclass the real
contexts and log top-level ``bind`` / ``define`` calls when a log is
installed.  Their inherited ``child()`` returns *plain* instances, so
statement-level scopes inside function bodies record nothing -- only the
effects that outlive the unit are replayed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Dict, List, Optional

from repro.flow.analysis import FlowAnalysis
from repro.flow.symbolic import SymbolicAlgebra
from repro.ifc.context import SecurityContext, SecurityTypeDefs
from repro.ifc.security_types import SMatchKind, SecurityType
from repro.inference.constraints import ConstraintSet
from repro.inference.generate import GenerationResult, InferenceSite
from repro.lattice.base import Lattice
from repro.syntax.digest import iter_tree
from repro.syntax.program import Program
from repro.syntax.source import SourceSpan
from repro.syntax.types import AnnotatedType
from repro.telemetry import current_recorder
from repro.typechecker.checker import DEFAULT_MATCH_KINDS
from repro.workspace.diff import UnitState, diff_program


class RecordingDefs(SecurityTypeDefs):
    """Δ that logs top-level ``define`` calls when a log is installed."""

    def __init__(self) -> None:
        super().__init__()
        self.effects: Optional[list] = None

    def define(self, name: str, ty) -> None:
        if self.effects is not None:
            self.effects.append(("delta", name, ty))
        super().define(name, ty)


class RecordingContext(SecurityContext):
    """Γ that logs top-level ``bind`` calls when a log is installed."""

    def __init__(self) -> None:
        super().__init__()
        self.effects: Optional[list] = None

    def bind(self, name: str, sec_type) -> None:
        if self.effects is not None:
            self.effects.append(("gamma", name, sec_type))
        super().bind(name, sec_type)


class RecordingDict(dict):
    """Bounds dict (``function_bounds`` / ``table_bounds``) with a log."""

    def __init__(self, tag: str) -> None:
        super().__init__()
        self.tag = tag
        self.effects: Optional[list] = None

    def __setitem__(self, key, value) -> None:
        if self.effects is not None:
            self.effects.append((self.tag, key, value))
        super().__setitem__(key, value)


@dataclass
class RegenStats:
    """What one :meth:`IncrementalGenerator.refresh` reused vs. redid."""

    units_total: int = 0
    units_reused: int = 0
    units_rewalked: int = 0
    units_respanned: int = 0
    constraints_reused: int = 0
    constraints_regenerated: int = 0
    sites_live: int = 0


class IncrementalGenerator:
    """A persistent constraint generator that re-walks only dirty units."""

    def __init__(
        self, lattice: Lattice, *, allow_declassification: bool = False
    ) -> None:
        self.lattice = lattice
        self.allow_declassification = allow_declassification
        self.algebra = SymbolicAlgebra(
            lattice, allow_declassification=allow_declassification
        )
        self.units: List[UnitState] = []
        self.last = RegenStats()

    # ------------------------------------------------------------------ re-span

    def _apply_respan(
        self, state: UnitState, span_map: Dict[SourceSpan, SourceSpan]
    ) -> None:
        """Rewrite everything the unit cached that embeds old spans.

        The AST nodes themselves were already rewritten in place by
        :func:`~repro.syntax.digest.respan`; what remains are the values
        *derived* from them -- constraints and diagnostics (frozen, so
        rebuilt), label-variable spans, and the default ``annotation at
        <span>`` hints that bake a position into a string.
        """
        state.constraints = [
            dc_replace(c, span=span_map[c.span]) if c.span in span_map else c
            for c in state.constraints
        ]
        state.errors = [
            dc_replace(err, span=span_map[err.span]) if err.span in span_map else err
            for err in state.errors
        ]
        registry = self.algebra.registry
        for node in iter_tree(state.node):
            if not isinstance(node, AnnotatedType):
                continue
            site = registry.site_of(node)
            if site is None:
                continue
            var = site.var
            new_span = span_map.get(var.span)
            if new_span is None:
                continue
            stale_hint = f"annotation at {var.span}"
            object.__setattr__(var, "span", new_span)
            if site.hint == stale_hint:
                site.hint = f"annotation at {new_span}"
            if var.hint == stale_hint:
                object.__setattr__(var, "hint", f"annotation at {new_span}")
        for control, var in state.pc_vars:
            if var.span in span_map:
                object.__setattr__(var, "span", span_map[var.span])

    # ------------------------------------------------------------------ refresh

    def refresh(self, program: Program) -> GenerationResult:
        """Bring the cached constraint system up to date with ``program``."""
        algebra = self.algebra
        # The algebra captured the ambient recorder at construction; a
        # long-lived workspace must see the recorder of *this* check.
        algebra.telemetry = current_recorder()

        first = not self.units
        plans = diff_program(self.units, program)
        self.units = [plan.state for plan in plans]

        for plan in plans:
            if plan.span_map:
                self._apply_respan(plan.state, plan.span_map)

        if first:
            assembled = program
        else:
            assembled = Program(
                tuple(p.state.node for p in plans if not p.state.is_control),
                tuple(p.state.node for p in plans if p.state.is_control),
                span=program.span,
                name=program.name,
            )

        stats = RegenStats(units_total=len(plans))
        registry = algebra.registry

        gamma = RecordingContext()
        delta = RecordingDefs()
        analysis = FlowAnalysis(algebra)
        analysis.function_bounds = RecordingDict("fn")
        analysis.table_bounds = RecordingDict("tbl")
        labeler = algebra.make_labeler(delta)
        kind = SecurityType(SMatchKind(), algebra.bottom)
        for member in DEFAULT_MATCH_KINDS:
            gamma.bind(member, kind)
        analysis._suggest_declaration_hints(assembled)

        recorders = (gamma, delta, analysis.function_bounds, analysis.table_bounds)
        for plan in plans:
            state = plan.state
            if plan.respanned:
                stats.units_respanned += 1
            if not plan.dirty:
                stats.units_reused += 1
                stats.constraints_reused += len(state.constraints)
                for tag, name, value in state.effects:
                    if tag == "gamma":
                        gamma.bind(name, value)
                    elif tag == "delta":
                        delta.define(name, value)
                    elif tag == "fn":
                        analysis.function_bounds[name] = value
                    else:
                        analysis.table_bounds[name] = value
                continue

            stats.units_rewalked += 1
            log: list = []
            algebra.constraints = ConstraintSet()
            algebra.errors = []
            algebra.control_pc_vars = []
            registry.begin_touch_log()
            for recorder in recorders:
                recorder.effects = log
            try:
                if state.is_control:
                    analysis.check_control(state.node, gamma, labeler)
                else:
                    analysis.check_declaration(
                        state.node, gamma, labeler, algebra.bottom
                    )
            finally:
                for recorder in recorders:
                    recorder.effects = None
            state.constraints = algebra.constraints.as_list()
            state.errors = list(algebra.errors)
            state.pc_vars = list(algebra.control_pc_vars)
            state.touches = registry.end_touch_log()
            state.effects = log
            stats.constraints_regenerated += len(state.constraints)

        # Merge per-unit products back into one global system, in unit
        # order, exactly as one cold walk would have emitted them.
        merged = ConstraintSet()
        errors = []
        pc_vars = []
        sites: List[InferenceSite] = []
        seen_sites: set = set()
        for state in self.units:
            for constraint in state.constraints:
                merged.add(constraint)
            errors.extend(state.errors)
            pc_vars.extend(state.pc_vars)
            for site in state.touches:
                if id(site) not in seen_sites:
                    seen_sites.add(id(site))
                    sites.append(site)
        registry.restrict_to(sites)

        algebra.constraints = merged
        algebra.errors = errors
        algebra.control_pc_vars = pc_vars

        stats.sites_live = len(sites)
        self.last = stats
        return GenerationResult(
            assembled,
            self.lattice,
            merged.as_list(),
            registry.sites(),
            registry,
            list(errors),
            dict(analysis.function_bounds),
            dict(analysis.table_bounds),
            list(pc_vars),
        )
