"""Session-oriented workspaces: incremental re-checking as a service.

The one-shot pipeline (:mod:`repro.tool.pipeline`) re-parses, re-walks,
and re-solves from scratch on every call.  This package keeps all of that
state *warm* across edits:

* :class:`Workspace` (:mod:`repro.workspace.session`) -- the long-lived
  session object: open a program, edit it, re-check it, pin annotation
  slots interactively;
* :mod:`repro.workspace.diff` / :mod:`repro.workspace.regen` --
  declaration-level structural diffing and the incremental constraint
  re-generation built on it;
* :mod:`repro.workspace.persist` -- versioned save/load of the solved
  state (:func:`save_workspace` / :func:`load_workspace`);
* :mod:`repro.workspace.rpc` -- the JSON-RPC serving front end behind
  ``p4bid serve``.
"""

from repro.workspace.diff import UnitPlan, UnitState, diff_program, program_units
from repro.workspace.persist import load_workspace, save_workspace
from repro.workspace.regen import IncrementalGenerator, RegenStats
from repro.workspace.session import Workspace, WorkspaceError

__all__ = [
    "Workspace",
    "WorkspaceError",
    "IncrementalGenerator",
    "RegenStats",
    "UnitPlan",
    "UnitState",
    "diff_program",
    "program_units",
    "save_workspace",
    "load_workspace",
]
