"""Versioned persistence for solved workspaces.

:func:`save_workspace` pickles the whole :class:`~repro.workspace.session.Workspace`
-- program, per-unit caches, registry, solver, solved assignment -- inside
a versioned envelope; :func:`load_workspace` validates the envelope and
rebinds the ambient telemetry recorder (recorders are session state, never
persisted).  Because pickling preserves referential identity across the
object graph (the same :class:`~repro.inference.terms.LabelVar` object is
one object on load, wherever it was referenced), a loaded workspace
produces *byte-identical* results to the session that saved it.

The format is a trusted-input cache, exactly like compiler ``.o`` /
incremental-build artifacts: load only files your own sessions wrote
(pickle executes no validation against adversarial inputs).
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Union

from repro.telemetry.recorder import NULL_RECORDER, current_recorder
from repro.version import __version__

FORMAT = "p4bid-workspace"
VERSION = 1


def save_workspace(workspace, path: Union[str, Path]) -> None:
    """Persist ``workspace`` (with its solved state) to ``path``."""
    from repro.workspace.session import Workspace

    if not isinstance(workspace, Workspace):
        raise TypeError(f"expected a Workspace, got {type(workspace).__name__}")
    algebra = workspace._generator.algebra
    live_recorder = algebra.telemetry
    # Recorders hold session-local trace state (and a TraceRecorder an
    # unbounded span list); persisted workspaces always carry the no-op
    # recorder and re-capture the ambient one on load / next refresh.
    algebra.telemetry = NULL_RECORDER
    try:
        payload = {
            "format": FORMAT,
            "version": VERSION,
            "tool_version": __version__,
            "lattice": workspace.lattice.name,
            "revision": workspace.revision,
            "workspace": workspace,
        }
        with open(path, "wb") as handle:
            pickle.dump(payload, handle, protocol=4)
    finally:
        algebra.telemetry = live_recorder


def load_workspace(path: Union[str, Path]):
    """Restore a workspace persisted by :func:`save_workspace`."""
    from repro.workspace.session import Workspace, WorkspaceError

    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except (pickle.UnpicklingError, EOFError, AttributeError, ImportError) as exc:
        raise WorkspaceError(f"{path}: not a {FORMAT} file ({exc})") from exc
    if not isinstance(payload, dict) or payload.get("format") != FORMAT:
        raise WorkspaceError(f"{path}: not a {FORMAT} file")
    if payload.get("version") != VERSION:
        raise WorkspaceError(
            f"{path}: workspace format version {payload.get('version')!r} "
            f"is not supported (expected {VERSION})"
        )
    workspace = payload["workspace"]
    if not isinstance(workspace, Workspace):
        raise WorkspaceError(f"{path}: malformed workspace payload")
    workspace._generator.algebra.telemetry = current_recorder()
    return workspace
